#include "util/rng.h"

#include <cmath>

namespace jarvis::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t DeriveSeed(std::uint64_t root_seed, std::uint64_t stream) {
  // Jump the SplitMix64 state ahead by `stream` increments of the golden
  // gamma; SplitMix64() then advances once more and finalizes, so stream k
  // returns finalize(root + (k + 1) * gamma) — the (k + 1)-th output of the
  // SplitMix64 sequence rooted at `root_seed`.
  std::uint64_t state = root_seed + stream * 0x9e3779b97f4a7c15ULL;
  return SplitMix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::NextInt: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextU64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      (std::numeric_limits<std::uint64_t>::max() % span);
  std::uint64_t draw;
  do {
    draw = NextU64();
  } while (draw >= limit && limit != 0);
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t Rng::NextIndex(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::NextIndex: n == 0");
  return static_cast<std::size_t>(NextInt(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = mag * std::sin(angle);
  has_spare_gaussian_ = true;
  return mag * std::cos(angle);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::NextWeighted: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::NextWeighted: no positive weight");
  }
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall back to the last entry
}

int Rng::NextPoisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    const double draw = NextGaussian(lambda, std::sqrt(lambda));
    return draw < 0.0 ? 0 : static_cast<int>(std::lround(draw));
  }
  const double limit = std::exp(-lambda);
  int count = 0;
  double product = NextDouble();
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

double Rng::NextExponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::NextExponential: rate <= 0");
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::SampleIndices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::SampleIndices: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: shuffle only the first k slots.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + NextIndex(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace jarvis::util
