#include "util/flags.h"

#include <stdexcept>

#include "util/strings.h"

namespace jarvis::util {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty() || body[0] == '=') {
      throw std::invalid_argument("malformed flag: " + arg);
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not a flag; bare "--name"
    // otherwise.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Flags::GetInt(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const int value = std::stoi(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string value = ToLower(it->second);
  if (value.empty() || value == "true" || value == "1" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              it->second + "'");
}

}  // namespace jarvis::util
