#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace jarvis::util {

JsonValue::JsonValue(JsonArray a)
    : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}

JsonValue::JsonValue(JsonObject o)
    : type_(Type::kObject),
      object_(std::make_shared<JsonObject>(std::move(o))) {}

bool JsonValue::AsBool() const {
  if (type_ != Type::kBool) throw JsonError("not a bool");
  return bool_;
}

double JsonValue::AsNumber() const {
  if (type_ != Type::kNumber) throw JsonError("not a number");
  return number_;
}

std::int64_t JsonValue::AsInt() const {
  return static_cast<std::int64_t>(std::llround(AsNumber()));
}

const std::string& JsonValue::AsString() const {
  if (type_ != Type::kString) throw JsonError("not a string");
  return string_;
}

const JsonArray& JsonValue::AsArray() const {
  if (type_ != Type::kArray) throw JsonError("not an array");
  return *array_;
}

const JsonObject& JsonValue::AsObject() const {
  if (type_ != Type::kObject) throw JsonError("not an object");
  return *object_;
}

JsonArray& JsonValue::MutableArray() {
  if (type_ != Type::kArray) throw JsonError("not an array");
  if (array_.use_count() > 1) array_ = std::make_shared<JsonArray>(*array_);
  return *array_;
}

JsonObject& JsonValue::MutableObject() {
  if (type_ != Type::kObject) throw JsonError("not an object");
  if (object_.use_count() > 1) object_ = std::make_shared<JsonObject>(*object_);
  return *object_;
}

const JsonValue& JsonValue::At(const std::string& key) const {
  const auto& obj = AsObject();
  auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing key: " + key);
  return it->second;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const auto& obj = AsObject();
  auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_number()) return fallback;
  return it->second.AsNumber();
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const auto& obj = AsObject();
  auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_string()) return fallback;
  return it->second.AsString();
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return *array_ == *other.array_;
    case Type::kObject:
      return *object_ == *other.object_;
  }
  return false;
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void AppendNumber(std::string& out, double value) {
  if (value == static_cast<double>(std::llround(value)) &&
      std::fabs(value) < 1e15) {
    out += std::to_string(std::llround(value));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void Indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      out += JsonEscape(string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : *array_) {
        if (!first) out.push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        item.DumpTo(out, indent, depth + 1);
      }
      if (!array_->empty()) Indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : *object_) {
        if (!first) out.push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        out += JsonEscape(key);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        value.DumpTo(out, indent, depth + 1);
      }
      if (!object_->empty()) Indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue ParseDocument() {
    SkipWhitespace();
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  char Take() {
    char c = Peek();
    ++pos_;
    return c;
  }

  void Expect(char c) {
    if (Take() != c) Fail(std::string("expected '") + c + "'");
  }

  void ExpectLiteral(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) {
      Fail("bad literal");
    }
    pos_ += literal.size();
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue(ParseString());
      case 't':
        ExpectLiteral("true");
        return JsonValue(true);
      case 'f':
        ExpectLiteral("false");
        return JsonValue(false);
      case 'n':
        ExpectLiteral("null");
        return JsonValue();
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonObject obj;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      obj.emplace(std::move(key), ParseValue());
      SkipWhitespace();
      char c = Take();
      if (c == '}') break;
      if (c != ',') Fail("expected ',' or '}'");
    }
    return JsonValue(std::move(obj));
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonArray arr;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      SkipWhitespace();
      arr.push_back(ParseValue());
      SkipWhitespace();
      char c = Take();
      if (c == ']') break;
      if (c != ',') Fail("expected ',' or ']'");
    }
    return JsonValue(std::move(arr));
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      char c = Take();
      if (c == '"') break;
      if (c == '\\') {
        char esc = Take();
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = Take();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                Fail("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are out of
            // scope for log records, which are ASCII).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            Fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  JsonValue ParseNumber() {
    std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    try {
      return JsonValue(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      Fail("bad number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace jarvis::util
