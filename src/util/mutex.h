// Annotated synchronization primitives — the only lock types allowed in
// src/ (tools/lint.py rule 8 bans raw std::mutex & friends outside this
// header pair). Thin wrappers over the std primitives that carry the
// capability annotations of util/thread_annotations.h, so the Clang
// `thread-safety` preset can prove lock discipline at compile time, plus an
// always-on held-lock assertion:
//
//   * Mutex / SharedMutex are capabilities. Members they protect carry
//     JARVIS_GUARDED_BY(mutex_); methods that assume the lock carry
//     JARVIS_REQUIRES(mutex_); public methods that take the lock carry
//     JARVIS_EXCLUDES(mutex_).
//   * MutexLock / WriterMutexLock / ReaderMutexLock are the RAII guards
//     (scoped capabilities). Prefer them over manual Lock/Unlock.
//   * CondVar pairs with Mutex (condition_variable_any under the hood, so
//     waits route through the annotated lock/unlock and keep the owner
//     bookkeeping exact across the sleep).
//
// Held-lock assertions: every Mutex tracks its owning thread (two relaxed
// atomic ops per lock/unlock — noise next to the lock itself, and the
// locks in this codebase sit on coarse paths: task scheduling, event
// publication, metric wiring). That buys three runtime checks in every
// build type, each throwing util::CheckError instead of deadlocking or
// corrupting silently:
//   * Lock() detects same-thread re-acquisition (self-deadlock) — the
//     dynamic backstop for the JARVIS_EXCLUDES re-entrancy contracts the
//     static analysis can't see through a std::function boundary.
//   * Unlock() detects release by a non-owner thread.
//   * AssertHeld() lets a REQUIRES-annotated helper verify its contract
//     dynamically too (opt-in, call it at the top of the helper).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "util/thread_annotations.h"

namespace jarvis::util {

// Exclusive mutex (std::mutex + owner tracking + capability annotations).
class JARVIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex();
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() JARVIS_ACQUIRE();
  void Unlock() JARVIS_RELEASE();
  bool TryLock() JARVIS_TRY_ACQUIRE(true);

  // Throws util::CheckError unless the calling thread holds the lock. Use
  // at the top of JARVIS_REQUIRES helpers to back the static contract with
  // a dynamic one.
  void AssertHeld() const JARVIS_ASSERT_CAPABILITY(this);
  // Throws util::CheckError if the calling thread holds the lock (e.g. a
  // callback about to call back into an EXCLUDES API).
  void AssertNotHeld() const;

  // BasicLockable spelling so std facilities (CondVar's
  // condition_variable_any) compose while keeping the owner bookkeeping.
  void lock() JARVIS_ACQUIRE() { Lock(); }
  void unlock() JARVIS_RELEASE() { Unlock(); }

 private:
  std::mutex mutex_;
  // The thread currently holding mutex_ (default id = none). Relaxed is
  // enough: exact values are only compared against the reader's own id,
  // and writes are ordered by the mutex itself.
  std::atomic<std::thread::id> owner_{};
};

// Reader/writer mutex. Owner tracking covers the exclusive side only — a
// shared holder set cannot be tracked without per-thread state, which this
// codebase bans (lint rule 7).
class JARVIS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  ~SharedMutex();
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() JARVIS_ACQUIRE();
  void Unlock() JARVIS_RELEASE();
  void ReaderLock() JARVIS_ACQUIRE_SHARED();
  void ReaderUnlock() JARVIS_RELEASE_SHARED();

  // Exclusive-held assertion (see Mutex::AssertHeld).
  void AssertHeld() const JARVIS_ASSERT_CAPABILITY(this);

 private:
  std::shared_mutex mutex_;
  std::atomic<std::thread::id> owner_{};  // exclusive owner only
};

// RAII exclusive lock over a Mutex.
class JARVIS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) JARVIS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() JARVIS_RELEASE() { mutex_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

// RAII exclusive lock over a SharedMutex (the writer side).
class JARVIS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) JARVIS_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.Lock();
  }
  ~WriterMutexLock() JARVIS_RELEASE() { mutex_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// RAII shared (reader) lock over a SharedMutex.
class JARVIS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) JARVIS_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.ReaderLock();
  }
  ~ReaderMutexLock() JARVIS_RELEASE() { mutex_.ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// Condition variable paired with util::Mutex. Waits release and re-acquire
// through the mutex's annotated lock/unlock, so owner tracking stays exact
// while the thread sleeps. The analysis does not model the release inside
// Wait — REQUIRES(mutex) holds at entry and at return, which is the
// contract callers see.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mutex`, blocks until notified, re-acquires.
  // Spurious wakeups happen; use the predicate overload.
  void Wait(Mutex& mutex) JARVIS_REQUIRES(mutex);

  // Waits until pred() is true (re-evaluated under the lock after every
  // wakeup).
  template <typename Predicate>
  void Wait(Mutex& mutex, Predicate pred) JARVIS_REQUIRES(mutex) {
    while (!pred()) {
      Wait(mutex);
    }
  }

  // Timed wait: blocks until notified or `timeout_us` elapsed. Returns
  // false on timeout, true when woken by a signal (spurious wakeups
  // included — re-check the condition either way). A non-positive timeout
  // returns false immediately without sleeping. This is what deadline-based
  // policies (AggregationService's flush loop) build on.
  bool WaitFor(Mutex& mutex, std::int64_t timeout_us) JARVIS_REQUIRES(mutex);

  void Signal();     // wake one waiter
  void SignalAll();  // wake every waiter

 private:
  std::condition_variable_any cv_;
};

}  // namespace jarvis::util
