#include "util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace jarvis::util::io {

namespace {

std::string ErrnoText(int err) {
  return std::error_code(err, std::generic_category()).message();
}

[[noreturn]] void ThrowIo(const std::string& op, const std::string& path,
                          int err) {
  throw IoError(op + " failed for '" + path + "': " + ErrnoText(err));
}

constexpr std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

// RAII fd so every error path closes.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

void WriteAll(int fd, const std::string& path, const std::string& payload) {
  std::size_t written = 0;
  while (written < payload.size()) {
    const ::ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowIo("write", path, errno);
    }
    written += static_cast<std::size_t>(n);
  }
}

// Best effort: directory fsync makes the rename itself durable, but some
// filesystems refuse fsync on directory fds — never fail the write on it.
void FsyncDirOf(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  static constexpr std::array<std::uint32_t, 256> kTable = MakeCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(const std::string& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

void CreateDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw IoError("create_directories failed for '" + path +
                  "': " + ec.message());
  }
}

std::string ReadFile(const std::string& path) {
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) ThrowIo("open", path, errno);
  std::string out;
  std::array<char, 1 << 16> buffer;
  for (;;) {
    const ::ssize_t n = ::read(fd.get(), buffer.data(), buffer.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowIo("read", path, errno);
    }
    if (n == 0) break;
    out.append(buffer.data(), static_cast<std::size_t>(n));
  }
  return out;
}

void RemoveFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

void AtomicWriteFile(const std::string& path, const std::string& payload,
                     WriteInterceptor* interceptor) {
  const std::string tmp = path + ".tmp";
  std::string bytes = payload;
  if (interceptor != nullptr) interceptor->OnWrite(path, bytes);
  {
    Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
    if (fd.get() < 0) ThrowIo("open", tmp, errno);
    try {
      WriteAll(fd.get(), tmp, bytes);
      if (::fsync(fd.get()) != 0) ThrowIo("fsync", tmp, errno);
    } catch (...) {
      RemoveFile(tmp);
      throw;
    }
  }
  if (interceptor != nullptr && !interceptor->OnRename(path)) {
    RemoveFile(tmp);
    throw IoError("rename failed for '" + path + "': injected storage fault");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    RemoveFile(tmp);
    ThrowIo("rename", path, err);
  }
  FsyncDirOf(path);
}

}  // namespace jarvis::util::io
