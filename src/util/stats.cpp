#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace jarvis::util {

double Sum(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("Mean: empty input");
  return Sum(xs) / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("Variance: empty input");
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Min(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("Min: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("Max: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("Percentile: empty input");
  // Negated comparison so a NaN p (for which every comparison is false)
  // cannot slip past the range check.
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("Percentile: bad p");
  }
  // A NaN sample breaks std::sort's strict weak ordering (undefined
  // behavior) and would make every rank meaningless — reject it.
  for (double x : xs) {
    if (std::isnan(x)) throw std::invalid_argument("Percentile: NaN sample");
  }
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ == 0) return 0.0;
  // Welford's m2 is mathematically non-negative but can round to a tiny
  // negative value (e.g. many identical large-magnitude samples); clamp so
  // variance() never goes negative and stddev() never sqrt(-0.0...1) = NaN.
  return std::max(0.0, m2_) / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

std::vector<RocPoint> RocCurve(const std::vector<double>& scores,
                               const std::vector<bool>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("RocCurve: size mismatch");
  }
  std::size_t positives = 0;
  for (bool b : labels) positives += b ? 1 : 0;
  const std::size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) {
    throw std::invalid_argument("RocCurve: needs both classes");
  }

  // Sort by score descending; sweep the threshold down through the scores.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<RocPoint> curve;
  curve.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]]) ++tp;
    else ++fp;
    // Emit a point only when the next score differs (ties share a point).
    if (i + 1 < order.size() && scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    curve.push_back({scores[order[i]],
                     static_cast<double>(fp) / static_cast<double>(negatives),
                     static_cast<double>(tp) / static_cast<double>(positives)});
  }
  return curve;
}

double RocAuc(const std::vector<RocPoint>& curve) {
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx = curve[i].false_positive_rate - curve[i - 1].false_positive_rate;
    const double y = 0.5 * (curve[i].true_positive_rate + curve[i - 1].true_positive_rate);
    auc += dx * y;
  }
  return auc;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(lo < hi)) {
    throw std::invalid_argument("Histogram: bad range or zero bins");
  }
}

void Histogram::Add(double x) {
  // NaN has no bin; casting it (or ±inf) to an integer is undefined
  // behavior, so guard first and clamp while still in the double domain.
  if (std::isnan(x)) {
    ++nan_ignored_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  const double scaled =
      std::clamp(frac * static_cast<double>(counts_.size()), 0.0,
                 static_cast<double>(counts_.size()) - 1.0);
  ++counts_[static_cast<std::size_t>(scaled)];
  ++total_;
}

double Histogram::BinCenter(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(i) + 0.5);
}

std::string Histogram::ToString() const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[48];
    std::snprintf(label, sizeof label, "%10.3g | ", BinCenter(i));
    out += label;
    const std::size_t width = counts_[i] * 50 / peak;
    out.append(width, '#');
    out += " " + std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace jarvis::util
