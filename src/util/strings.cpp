#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace jarvis::util {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(std::move(current));
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string PadRight(std::string text, std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

std::string PadLeft(std::string text, std::size_t width) {
  if (text.size() < width) text.insert(0, width - text.size(), ' ');
  return text;
}

}  // namespace jarvis::util
