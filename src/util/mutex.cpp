#include "util/mutex.h"

#include "util/check.h"

namespace jarvis::util {

namespace {

// Default-constructed id == "no thread".
const std::thread::id kNoOwner{};

}  // namespace

// ---------------------------------------------------------------------------
// Mutex

Mutex::~Mutex() {
  // Destroying a locked mutex is UB; surface it as a contract violation
  // while the owner information is still there.
  JARVIS_CHECK(owner_.load(std::memory_order_relaxed) == kNoOwner,
               "util::Mutex destroyed while locked");
}

void Mutex::Lock() {
  JARVIS_CHECK(
      owner_.load(std::memory_order_relaxed) != std::this_thread::get_id(),
      "util::Mutex::Lock: re-entrant lock on the owning thread "
      "(self-deadlock; see the JARVIS_EXCLUDES contract of the caller)");
  mutex_.lock();
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

void Mutex::Unlock() {
  JARVIS_CHECK(
      owner_.load(std::memory_order_relaxed) == std::this_thread::get_id(),
      "util::Mutex::Unlock: calling thread does not hold the lock");
  owner_.store(kNoOwner, std::memory_order_relaxed);
  mutex_.unlock();
}

bool Mutex::TryLock() {
  JARVIS_CHECK(
      owner_.load(std::memory_order_relaxed) != std::this_thread::get_id(),
      "util::Mutex::TryLock: re-entrant lock on the owning thread");
  if (!mutex_.try_lock()) return false;
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  return true;
}

void Mutex::AssertHeld() const {
  JARVIS_CHECK(
      owner_.load(std::memory_order_relaxed) == std::this_thread::get_id(),
      "util::Mutex::AssertHeld: calling thread does not hold the lock");
}

void Mutex::AssertNotHeld() const {
  JARVIS_CHECK(
      owner_.load(std::memory_order_relaxed) != std::this_thread::get_id(),
      "util::Mutex::AssertNotHeld: calling thread holds the lock");
}

// ---------------------------------------------------------------------------
// SharedMutex

SharedMutex::~SharedMutex() {
  JARVIS_CHECK(owner_.load(std::memory_order_relaxed) == kNoOwner,
               "util::SharedMutex destroyed while exclusively locked");
}

void SharedMutex::Lock() {
  JARVIS_CHECK(
      owner_.load(std::memory_order_relaxed) != std::this_thread::get_id(),
      "util::SharedMutex::Lock: re-entrant exclusive lock (self-deadlock)");
  mutex_.lock();
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

void SharedMutex::Unlock() {
  JARVIS_CHECK(
      owner_.load(std::memory_order_relaxed) == std::this_thread::get_id(),
      "util::SharedMutex::Unlock: calling thread does not hold the lock");
  owner_.store(kNoOwner, std::memory_order_relaxed);
  mutex_.unlock();
}

void SharedMutex::ReaderLock() {
  JARVIS_CHECK(
      owner_.load(std::memory_order_relaxed) != std::this_thread::get_id(),
      "util::SharedMutex::ReaderLock: exclusive owner downgrading via "
      "re-entrant reader lock (self-deadlock)");
  mutex_.lock_shared();
}

void SharedMutex::ReaderUnlock() { mutex_.unlock_shared(); }

void SharedMutex::AssertHeld() const {
  JARVIS_CHECK(
      owner_.load(std::memory_order_relaxed) == std::this_thread::get_id(),
      "util::SharedMutex::AssertHeld: calling thread does not hold the "
      "exclusive lock");
}

// ---------------------------------------------------------------------------
// CondVar

void CondVar::Wait(Mutex& mutex) {
  // condition_variable_any releases/re-acquires through Mutex's
  // BasicLockable surface, so the owner bookkeeping (and its contract
  // checks) stay exact across the sleep.
  cv_.wait(mutex);
}

bool CondVar::WaitFor(Mutex& mutex, std::int64_t timeout_us) {
  if (timeout_us <= 0) return false;
  // Same BasicLockable routing as Wait, so the owner bookkeeping survives
  // the timed sleep too.
  return cv_.wait_for(mutex, std::chrono::microseconds(timeout_us)) ==
         std::cv_status::no_timeout;
}

void CondVar::Signal() { cv_.notify_one(); }

void CondVar::SignalAll() { cv_.notify_all(); }

}  // namespace jarvis::util
