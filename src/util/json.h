// Minimal JSON value model, writer, and recursive-descent parser.
//
// The events module logs device events as JSON records in the 11-field
// schema the paper describes (Section V-A-1), and the log parser reads them
// back. We implement the small JSON subset needed for that round trip:
// objects, arrays, strings, numbers, booleans, and null, with standard
// escape handling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace jarvis::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
// std::map keeps keys ordered so serialized logs are deterministic.
using JsonObject = std::map<std::string, JsonValue>;

// Raised on malformed input or wrong-type access.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

// A JSON value: null, bool, number (double), string, array, or object.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}           // NOLINT
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}              // NOLINT
  JsonValue(std::int64_t i)                                           // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  JsonValue(std::string s)                                            // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(JsonArray a);                                             // NOLINT
  JsonValue(JsonObject o);                                            // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw JsonError on type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;
  const JsonArray& AsArray() const;
  const JsonObject& AsObject() const;
  JsonArray& MutableArray();
  JsonObject& MutableObject();

  // Object field lookup; throws JsonError if absent or not an object.
  const JsonValue& At(const std::string& key) const;
  // Returns fallback when the key is absent.
  double GetNumber(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;

  // Serializes compactly (no whitespace). `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  // Parses a complete JSON document; throws JsonError on malformed input.
  static JsonValue Parse(const std::string& text);

  bool operator==(const JsonValue& other) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

// Escapes a string for embedding in JSON output (adds surrounding quotes).
std::string JsonEscape(const std::string& raw);

}  // namespace jarvis::util
