// Lightweight CSV writer/reader used by the benchmark harness to emit the
// rows/series behind each paper table and figure, and by the simulators to
// dump traces for inspection.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace jarvis::util {

// Accumulates rows and writes RFC-4180-style CSV (quotes fields containing
// commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with %.6g.
  void AddNumericRow(const std::vector<double>& row);

  std::size_t row_count() const { return rows_.size(); }

  std::string ToString() const;
  void WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Parses CSV text into rows of fields. Handles quoted fields with embedded
// commas/newlines and doubled quotes.
std::vector<std::vector<std::string>> ParseCsv(const std::string& text);

// Reads and parses a CSV file; throws std::runtime_error if unreadable.
std::vector<std::vector<std::string>> ReadCsvFile(const std::string& path);

}  // namespace jarvis::util
