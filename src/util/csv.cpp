#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/io.h"

namespace jarvis::util {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter::AddRow: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

void CsvWriter::AddNumericRow(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    fields.emplace_back(buf);
  }
  AddRow(std::move(fields));
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out.push_back(',');
    out += QuoteField(header_[i]);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out.push_back(',');
      out += QuoteField(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

void CsvWriter::WriteFile(const std::string& path) const {
  // Durable writes go through the atomic path (lint rule 10): a crashed
  // report writer must never leave a half-written CSV behind.
  io::AtomicWriteFile(path, ToString());
}

std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      default:
        field.push_back(c);
        row_has_content = true;
    }
  }
  if (row_has_content || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::vector<std::string>> ReadCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("ReadCsvFile: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str());
}

}  // namespace jarvis::util
