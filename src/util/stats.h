// Descriptive statistics used across the evaluation harness: per-episode
// reward aggregation, ROC curves for the SPL filter (Fig. 5), and summary
// rows for the functionality sweeps (Figs. 6-8).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace jarvis::util {

double Mean(const std::vector<double>& xs);
double Variance(const std::vector<double>& xs);  // population variance
double StdDev(const std::vector<double>& xs);
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);
double Sum(const std::vector<double>& xs);

// Linear-interpolated percentile; p in [0, 100]. Requires non-empty input.
double Percentile(std::vector<double> xs, double p);

// Numerically stable single-pass accumulator (Welford).
class OnlineStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// One (false-positive-rate, true-positive-rate) point of a ROC curve.
struct RocPoint {
  double threshold;
  double false_positive_rate;
  double true_positive_rate;
};

// Builds a ROC curve from classifier scores. `scores` are "probability of
// positive"; `labels` true class. Thresholds sweep the unique score values.
std::vector<RocPoint> RocCurve(const std::vector<double>& scores,
                               const std::vector<bool>& labels);

// Area under a ROC curve by trapezoid rule over the sorted points.
double RocAuc(const std::vector<RocPoint>& curve);

// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
// samples (including ±inf) clamp to the edge buckets. NaN samples have no
// bin and are ignored (tallied separately in nan_ignored()).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void Add(double x);
  const std::vector<std::size_t>& counts() const { return counts_; }
  std::size_t total() const { return total_; }
  std::size_t nan_ignored() const { return nan_ignored_; }
  double BinCenter(std::size_t i) const;
  std::string ToString() const;  // ASCII rendering for bench output

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_ignored_ = 0;
};

}  // namespace jarvis::util
