// Minimal command-line flag parsing for the example tools:
// `--name=value`, `--name value`, and boolean `--name` forms, with typed
// accessors and leftover positional arguments.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace jarvis::util {

class Flags {
 public:
  // Parses argv; throws std::invalid_argument on malformed flags
  // (e.g. "--=x").
  Flags(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  // Typed access with fallback; throws std::invalid_argument when the
  // value exists but does not parse as the requested type.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int GetInt(const std::string& name, int fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  // Arguments that are not flags, in order (argv[0] excluded).
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;  // "" for bare booleans
  std::vector<std::string> positional_;
};

}  // namespace jarvis::util
