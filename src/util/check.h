// Contract-check macros for precondition and invariant enforcement.
//
// Policy (see DESIGN.md "Correctness tooling"):
//   JARVIS_CHECK(...)   — always on, in every build type. Use for API
//                         preconditions whose violation indicates caller
//                         misuse (shape mismatches, invalid configuration)
//                         and for invariants that guard the safe table.
//   JARVIS_DCHECK(...)  — compiled out when NDEBUG is defined (Release /
//                         RelWithDebInfo) unless JARVIS_DCHECK_ENABLED is
//                         forced to 1. Use on hot paths (per-element tensor
//                         access) where the release build must keep the
//                         unchecked fast path.
//
// A failed check throws util::CheckError (a std::logic_error) carrying
// file:line, the stringified condition, and an optional streamed message:
//
//   JARVIS_CHECK(r < rows_, "Tensor::At: row ", r, " out of ", rows_);
//   JARVIS_CHECK_EQ(values.size(), cols_, "Tensor::SetRow width");
//
// Throwing (rather than aborting) keeps contract violations testable with
// plain EXPECT_THROW and lets long-running monitors contain a misbehaving
// caller without taking the whole process down.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

// Debug-only checks default to the build type: active when NDEBUG is not
// defined. Force with -DJARVIS_DCHECK_ENABLED=0/1 (the test binaries force 1
// so contract tests run under every build type).
#ifndef JARVIS_DCHECK_ENABLED
#ifdef NDEBUG
#define JARVIS_DCHECK_ENABLED 0
#else
#define JARVIS_DCHECK_ENABLED 1
#endif
#endif

namespace jarvis::util {

// Thrown on contract violation. Derives from std::logic_error: a failed
// check is by definition a programming error, not an environmental one.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace check_internal {

// Builds the final message and throws CheckError. Out-of-line so the cold
// failure path costs one call in the caller's code.
[[noreturn]] void CheckFail(const char* file, int line, const char* condition,
                            const std::string& message);

template <typename... Args>
std::string StreamArgs(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
  }
}

}  // namespace check_internal
}  // namespace jarvis::util

#define JARVIS_CHECK(condition, ...)                                \
  do {                                                              \
    if (!(condition)) {                                             \
      ::jarvis::util::check_internal::CheckFail(                    \
          __FILE__, __LINE__, #condition,                           \
          ::jarvis::util::check_internal::StreamArgs(__VA_ARGS__)); \
    }                                                               \
  } while (false)

// Binary comparison checks report both operand values on failure.
#define JARVIS_CHECK_OP_(op, lhs, rhs, ...)                             \
  do {                                                                  \
    const auto& jarvis_check_lhs_ = (lhs);                              \
    const auto& jarvis_check_rhs_ = (rhs);                              \
    if (!(jarvis_check_lhs_ op jarvis_check_rhs_)) {                    \
      ::jarvis::util::check_internal::CheckFail(                        \
          __FILE__, __LINE__, #lhs " " #op " " #rhs,                    \
          ::jarvis::util::check_internal::StreamArgs(                   \
              "(", jarvis_check_lhs_, " vs ", jarvis_check_rhs_, ") ") + \
              ::jarvis::util::check_internal::StreamArgs(__VA_ARGS__)); \
    }                                                                   \
  } while (false)

#define JARVIS_CHECK_EQ(lhs, rhs, ...) JARVIS_CHECK_OP_(==, lhs, rhs, __VA_ARGS__)
#define JARVIS_CHECK_NE(lhs, rhs, ...) JARVIS_CHECK_OP_(!=, lhs, rhs, __VA_ARGS__)
#define JARVIS_CHECK_LT(lhs, rhs, ...) JARVIS_CHECK_OP_(<, lhs, rhs, __VA_ARGS__)
#define JARVIS_CHECK_LE(lhs, rhs, ...) JARVIS_CHECK_OP_(<=, lhs, rhs, __VA_ARGS__)
#define JARVIS_CHECK_GT(lhs, rhs, ...) JARVIS_CHECK_OP_(>, lhs, rhs, __VA_ARGS__)
#define JARVIS_CHECK_GE(lhs, rhs, ...) JARVIS_CHECK_OP_(>=, lhs, rhs, __VA_ARGS__)

#if JARVIS_DCHECK_ENABLED
#define JARVIS_DCHECK(condition, ...) JARVIS_CHECK(condition, __VA_ARGS__)
#define JARVIS_DCHECK_EQ(lhs, rhs, ...) JARVIS_CHECK_EQ(lhs, rhs, __VA_ARGS__)
#define JARVIS_DCHECK_NE(lhs, rhs, ...) JARVIS_CHECK_NE(lhs, rhs, __VA_ARGS__)
#define JARVIS_DCHECK_LT(lhs, rhs, ...) JARVIS_CHECK_LT(lhs, rhs, __VA_ARGS__)
#define JARVIS_DCHECK_LE(lhs, rhs, ...) JARVIS_CHECK_LE(lhs, rhs, __VA_ARGS__)
#define JARVIS_DCHECK_GT(lhs, rhs, ...) JARVIS_CHECK_GT(lhs, rhs, __VA_ARGS__)
#define JARVIS_DCHECK_GE(lhs, rhs, ...) JARVIS_CHECK_GE(lhs, rhs, __VA_ARGS__)
#else
// Disabled variants still type-check their operands (in an unevaluated
// branch the optimizer removes) so a DCHECK-only variable is not "unused"
// and release-only bit-rot is caught at compile time.
#define JARVIS_DCHECK(condition, ...) \
  do {                                \
    if (false) {                      \
      (void)(condition);              \
    }                                 \
  } while (false)
#define JARVIS_DCHECK_OP_DISABLED_(lhs, rhs) \
  do {                                       \
    if (false) {                             \
      (void)(lhs);                           \
      (void)(rhs);                           \
    }                                        \
  } while (false)
#define JARVIS_DCHECK_EQ(lhs, rhs, ...) JARVIS_DCHECK_OP_DISABLED_(lhs, rhs)
#define JARVIS_DCHECK_NE(lhs, rhs, ...) JARVIS_DCHECK_OP_DISABLED_(lhs, rhs)
#define JARVIS_DCHECK_LT(lhs, rhs, ...) JARVIS_DCHECK_OP_DISABLED_(lhs, rhs)
#define JARVIS_DCHECK_LE(lhs, rhs, ...) JARVIS_DCHECK_OP_DISABLED_(lhs, rhs)
#define JARVIS_DCHECK_GT(lhs, rhs, ...) JARVIS_DCHECK_OP_DISABLED_(lhs, rhs)
#define JARVIS_DCHECK_GE(lhs, rhs, ...) JARVIS_DCHECK_OP_DISABLED_(lhs, rhs)
#endif
