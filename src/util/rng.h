// Deterministic, seedable random number generation for simulation and
// learning components. All stochastic behavior in the library flows through
// util::Rng so experiments are reproducible from a single seed.
//
// Thread safety: Rng is NOT thread-safe — every Next* call mutates the
// generator state, and concurrent calls on one instance are a data race.
// Concurrent code (the fleet runtime) gives each execution stream its own
// Rng, seeded via DeriveSeed so the streams are decorrelated yet fully
// reproducible from one root seed.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace jarvis::util {

// Derives the seed for sub-stream `stream` of the generator family rooted
// at `root_seed`: the SplitMix64 stream is jumped ahead by `stream + 1`
// increments and finalized, so consecutive stream indices (tenant 0, 1, 2,
// ...) yield decorrelated 64-bit seeds even when root seeds are small
// consecutive integers. This is the one sanctioned way to fan a single
// experiment seed out to per-tenant / per-restart seeds — raw `seed + i`
// arithmetic hands neighboring streams nearly identical xoshiro
// initializations, which the SplitMix64 finalizer mixes away.
std::uint64_t DeriveSeed(std::uint64_t root_seed, std::uint64_t stream);

// xoshiro256** by Blackman & Vigna, seeded via SplitMix64. Chosen over
// std::mt19937 for speed and for a guaranteed-stable output sequence across
// standard-library implementations (reproducibility of experiments).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform bits.
  std::uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform index in [0, n). Requires n > 0.
  std::size_t NextIndex(std::size_t n);

  // Uniform real in [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Bernoulli trial: true with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Samples an index according to non-negative weights. Requires at least
  // one strictly positive weight.
  std::size_t NextWeighted(const std::vector<double>& weights);

  // Poisson-distributed count with the given rate (Knuth for small lambda,
  // normal approximation above 64).
  int NextPoisson(double lambda);

  // Exponential inter-arrival with the given rate (> 0).
  double NextExponential(double rate);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::size_t j = NextIndex(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  // Draws k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k);

  // Forks an independent stream; deterministic given the parent state.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace jarvis::util
