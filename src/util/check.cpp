#include "util/check.h"

namespace jarvis::util::check_internal {

void CheckFail(const char* file, int line, const char* condition,
               const std::string& message) {
  std::string what = std::string("CHECK failed: ") + condition;
  if (!message.empty()) {
    what += ": ";
    what += message;
  }
  what += " [";
  what += file;
  what += ":";
  what += std::to_string(line);
  what += "]";
  throw CheckError(what);
}

}  // namespace jarvis::util::check_internal
