// Durable file I/O: the one write path of the library.
//
// Every durable write in src/ goes through AtomicWriteFile (tools/lint.py
// rule 10 bans raw std::ofstream / fopen writes elsewhere), which commits
// with the classic write-temp → fsync → rename sequence so a crash at any
// point leaves either the old file or the new file — never a half-written
// hybrid. What CAN still reach a reader is whatever the storage layer did
// to the bytes (torn write inside the temp file, a bit flip at rest, a
// truncated rename target on a broken filesystem); detecting that is the
// checksum layer's job (persist::Checkpoint), not this one's.
//
// WriteInterceptor is the deterministic fault-injection seam: the chaos
// suite's faults::StorageFaultInjector implements it to corrupt payloads
// and fail renames on a seeded schedule, so recovery paths are tested
// against the exact fault taxonomy this module's contract allows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace jarvis::util::io {

// A filesystem operation failed (open/write/fsync/rename/read); the
// message carries the path and the errno text. Distinct from CheckError:
// I/O failure is an environment condition callers are expected to handle
// (retry, degrade), not a programming-contract violation.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320) over bytes — the
// per-section checksum of the checkpoint format.
std::uint32_t Crc32(const void* data, std::size_t size);
std::uint32_t Crc32(const std::string& bytes);

// Deterministic fault-injection hook for AtomicWriteFile. Production
// writes pass nullptr; chaos tests pass faults::StorageFaultInjector.
class WriteInterceptor {
 public:
  virtual ~WriteInterceptor() = default;

  // Called with the payload about to hit the temp file; may mutate it
  // (torn write, truncation, bit flip). The mutated bytes are what lands
  // on disk AND what rename commits — exactly a storage-layer corruption.
  virtual void OnWrite(const std::string& path, std::string& payload) = 0;

  // Called before the rename step; returning false simulates a crash
  // between the temp-file write and the commit (the temp file is cleaned
  // up and AtomicWriteFile throws IoError; the old target is untouched).
  virtual bool OnRename(const std::string& path) = 0;
};

bool FileExists(const std::string& path);

// mkdir -p. Throws IoError when a component exists as a non-directory or
// creation fails.
void CreateDirectories(const std::string& path);

// Whole file as bytes. Throws IoError when missing/unreadable — a missing
// checkpoint is an expected recovery case, so callers catch this.
std::string ReadFile(const std::string& path);

void RemoveFile(const std::string& path);  // ignores a missing file

// Durable atomic write: <path>.tmp is written and fsynced, then renamed
// over <path> (followed by a best-effort directory fsync so the rename
// itself is durable). Throws IoError on any failure, leaving the previous
// contents of <path> (if any) intact. Not safe for concurrent writers of
// the SAME path (they share the temp name); distinct paths are fine.
void AtomicWriteFile(const std::string& path, const std::string& payload,
                     WriteInterceptor* interceptor = nullptr);

}  // namespace jarvis::util::io
