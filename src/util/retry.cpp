#include "util/retry.h"

namespace jarvis::util {

int BackoffMs(const RetryPolicy& policy, int attempt) {
  if (attempt <= 1 || policy.base_backoff_ms <= 0) return 0;
  double delay = policy.base_backoff_ms;
  for (int k = 2; k < attempt; ++k) {
    delay *= policy.backoff_factor;
    if (delay >= policy.max_backoff_ms) return policy.max_backoff_ms;
  }
  if (delay >= policy.max_backoff_ms) return policy.max_backoff_ms;
  return static_cast<int>(delay);
}

int BackoffMsJittered(const RetryPolicy& policy, int attempt, Rng& rng) {
  const int base = BackoffMs(policy, attempt);
  if (base <= 0) return 0;
  double fraction = policy.jitter_fraction;
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  if (fraction == 0.0) return base;
  // One draw per nonzero delay keeps the stream aligned with the attempt
  // sequence regardless of the cap.
  const double scale = 1.0 - fraction * rng.NextDouble();
  return static_cast<int>(static_cast<double>(base) * scale);
}

}  // namespace jarvis::util
