#include "util/retry.h"

namespace jarvis::util {

int BackoffMs(const RetryPolicy& policy, int attempt) {
  if (attempt <= 1 || policy.base_backoff_ms <= 0) return 0;
  double delay = policy.base_backoff_ms;
  for (int k = 2; k < attempt; ++k) {
    delay *= policy.backoff_factor;
    if (delay >= policy.max_backoff_ms) return policy.max_backoff_ms;
  }
  if (delay >= policy.max_backoff_ms) return policy.max_backoff_ms;
  return static_cast<int>(delay);
}

}  // namespace jarvis::util
