// Capability annotations for Clang Thread Safety Analysis (Hutchins et al.,
// "C/C++ Thread Safety Analysis"; the GUARDED_BY/REQUIRES model used
// throughout Abseil). Annotating which mutex guards which member, and which
// lock a method requires, turns lock discipline into a compile-time
// invariant: building with `-Wthread-safety -Werror=thread-safety-analysis`
// (the `thread-safety` CMake preset) rejects any unguarded access instead
// of hoping a TSan run hits the bad interleaving.
//
// Under any compiler without the attributes (GCC, MSVC) every macro expands
// to nothing, so annotated code builds everywhere; only the Clang preset
// enforces. Use the macros on util::Mutex-based code (src/util/mutex.h) —
// raw std primitives are banned in src/ by tools/lint.py rule 8 precisely
// because the analysis cannot see through them.
//
// Quick reference (DESIGN.md §13 has the full locking model):
//   JARVIS_GUARDED_BY(mu)   member access requires holding mu
//   JARVIS_REQUIRES(mu)     caller must hold mu before calling
//   JARVIS_EXCLUDES(mu)     caller must NOT hold mu (the function takes it;
//                           calling it re-entrantly from under mu is a
//                           compile error where the analysis can see it)
//   JARVIS_ACQUIRE/RELEASE  the function itself locks / unlocks mu
#pragma once

// Attributes are keyed on __has_attribute rather than bare __clang__ so an
// old Clang (or any future compiler growing the attributes) degrades
// gracefully instead of erroring on unknown attributes.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define JARVIS_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef JARVIS_THREAD_ANNOTATION_
#define JARVIS_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

// --- Type annotations -------------------------------------------------------

// Marks a class as a lockable capability ("mutex" names it in diagnostics).
#define JARVIS_CAPABILITY(x) JARVIS_THREAD_ANNOTATION_(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases.
#define JARVIS_SCOPED_CAPABILITY JARVIS_THREAD_ANNOTATION_(scoped_lockable)

// --- Member annotations -----------------------------------------------------

// Reads and writes of the member require holding the given capability.
#define JARVIS_GUARDED_BY(x) JARVIS_THREAD_ANNOTATION_(guarded_by(x))

// As GUARDED_BY, but for the data a pointer/smart-pointer member points to.
#define JARVIS_PT_GUARDED_BY(x) JARVIS_THREAD_ANNOTATION_(pt_guarded_by(x))

// Static lock-order declarations (deadlock detection between two mutexes).
#define JARVIS_ACQUIRED_BEFORE(...) \
  JARVIS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define JARVIS_ACQUIRED_AFTER(...) \
  JARVIS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// --- Function annotations ---------------------------------------------------

// Caller must hold the capability (exclusively / shared) when calling.
#define JARVIS_REQUIRES(...) \
  JARVIS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define JARVIS_REQUIRES_SHARED(...) \
  JARVIS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability and holds it on return.
#define JARVIS_ACQUIRE(...) \
  JARVIS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define JARVIS_ACQUIRE_SHARED(...) \
  JARVIS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

// The function releases a capability the caller holds.
#define JARVIS_RELEASE(...) \
  JARVIS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define JARVIS_RELEASE_SHARED(...) \
  JARVIS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define JARVIS_RELEASE_GENERIC(...) \
  JARVIS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// The function tries to acquire and returns the given value on success.
#define JARVIS_TRY_ACQUIRE(...) \
  JARVIS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define JARVIS_TRY_ACQUIRE_SHARED(...) \
  JARVIS_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability: the function takes it itself, so a
// call from under the lock would self-deadlock. This is how a re-entrancy
// contract (EventBus::Publish) becomes a compile-time error.
#define JARVIS_EXCLUDES(...) \
  JARVIS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Tells the analysis to assume the capability is held past this call
// (backed by a runtime check in util::Mutex::AssertHeld).
#define JARVIS_ASSERT_CAPABILITY(x) \
  JARVIS_THREAD_ANNOTATION_(assert_capability(x))
#define JARVIS_ASSERT_SHARED_CAPABILITY(x) \
  JARVIS_THREAD_ANNOTATION_(assert_shared_capability(x))

// The function returns a reference to the mutex that guards its result.
#define JARVIS_RETURN_CAPABILITY(x) JARVIS_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code the analysis cannot model. Every use needs a
// written justification at the use site.
#define JARVIS_NO_THREAD_SAFETY_ANALYSIS \
  JARVIS_THREAD_ANNOTATION_(no_thread_safety_analysis)
