// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace jarvis::util {

std::vector<std::string> Split(const std::string& text, char sep);
std::string Join(const std::vector<std::string>& parts, const std::string& sep);
std::string Trim(const std::string& text);
std::string ToLower(std::string text);
bool StartsWith(const std::string& text, const std::string& prefix);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Left-pads/truncates to a fixed width (for aligned table output).
std::string PadRight(std::string text, std::size_t width);
std::string PadLeft(std::string text, std::size_t width);

}  // namespace jarvis::util
