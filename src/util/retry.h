// Bounded retry with deterministic exponential backoff, for the
// fault-recovery paths (faults::ReliablePublisher and friends). No jitter
// on purpose: recovery behavior must replay bit-for-bit from a seed, like
// every other stochastic process in the library (which this one is not).
//
// The sleep function is injectable so tests record the backoff sequence
// instead of waiting it out; passing nullptr skips sleeping entirely,
// which is the right default in a simulation whose clock is SimTime
// minutes, not wall time.
#pragma once

#include <functional>

namespace jarvis::util {

struct RetryPolicy {
  int max_attempts = 3;        // total tries, clamped to >= 1
  int base_backoff_ms = 10;    // delay before the second attempt
  double backoff_factor = 2.0; // multiplier per further failed attempt
  int max_backoff_ms = 10000;  // delay ceiling
};

// Deterministic backoff before the given 1-based attempt: attempt 1 waits
// nothing, attempt k >= 2 waits base * factor^(k-2), capped at the ceiling.
int BackoffMs(const RetryPolicy& policy, int attempt);

struct RetryResult {
  bool succeeded = false;
  int attempts = 0;          // attempts actually made
  int total_backoff_ms = 0;  // sum of delays requested
};

using SleepFn = std::function<void(int delay_ms)>;

// Calls `fn` (returning true on success) until it succeeds or the policy's
// attempt budget runs out.
template <typename Fn>
RetryResult Retry(const RetryPolicy& policy, Fn&& fn,
                  const SleepFn& sleep = nullptr) {
  RetryResult result;
  const int budget = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1; attempt <= budget; ++attempt) {
    if (attempt > 1) {
      const int delay = BackoffMs(policy, attempt);
      result.total_backoff_ms += delay;
      if (sleep) sleep(delay);
    }
    ++result.attempts;
    if (fn()) {
      result.succeeded = true;
      break;
    }
  }
  return result;
}

}  // namespace jarvis::util
