// Bounded retry with capped exponential backoff, for the fault-recovery
// paths (faults::ReliablePublisher, fleet checkpoint writes). Two backoff
// flavors, both deterministic:
//
//   * jitter_fraction == 0 (default): the exact schedule base * factor^k,
//     capped — replayable with no state at all.
//   * jitter_fraction > 0: each delay is scaled by a factor drawn from
//     [1 - jitter_fraction, 1] using an Rng seeded from jitter_seed. A
//     fleet of tenants retrying against one failing store must not hammer
//     it in lockstep; seeded jitter decorrelates them while keeping every
//     sequence bit-replayable from its seed, like every other stochastic
//     process in the library.
//
// The sleep function is injectable so tests record the backoff sequence
// instead of waiting it out; passing nullptr skips sleeping entirely,
// which is the right default in a simulation whose clock is SimTime
// minutes, not wall time.
#pragma once

#include <cstdint>
#include <functional>

#include "util/rng.h"

namespace jarvis::util {

struct RetryPolicy {
  int max_attempts = 3;        // total tries, clamped to >= 1
  int base_backoff_ms = 10;    // delay before the second attempt
  double backoff_factor = 2.0; // multiplier per further failed attempt
  int max_backoff_ms = 10000;  // delay ceiling
  // Jitter: each delay is scaled by a uniform draw from
  // [1 - jitter_fraction, 1]. 0 disables (exact schedule); values are
  // clamped to [0, 1]. The cap applies before scaling, so a jittered
  // delay never exceeds max_backoff_ms.
  double jitter_fraction = 0.0;
  std::uint64_t jitter_seed = 0;  // seeds the per-Retry jitter stream
};

// Deterministic backoff before the given 1-based attempt: attempt 1 waits
// nothing, attempt k >= 2 waits base * factor^(k-2), capped at the ceiling.
// Ignores jitter (the no-jitter schedule).
int BackoffMs(const RetryPolicy& policy, int attempt);

// Jittered backoff: the BackoffMs schedule scaled by a draw from `rng`
// (one draw per nonzero delay). Same (policy, seed) -> same sequence.
int BackoffMsJittered(const RetryPolicy& policy, int attempt, Rng& rng);

struct RetryResult {
  bool succeeded = false;
  int attempts = 0;          // attempts actually made
  int total_backoff_ms = 0;  // sum of delays requested
};

using SleepFn = std::function<void(int delay_ms)>;

// Calls `fn` (returning true on success) until it succeeds or the policy's
// attempt budget runs out. The jitter stream (when enabled) is seeded
// fresh per call, so every Retry invocation replays identically.
template <typename Fn>
RetryResult Retry(const RetryPolicy& policy, Fn&& fn,
                  const SleepFn& sleep = nullptr) {
  RetryResult result;
  Rng jitter_rng(policy.jitter_seed);
  const bool jittered = policy.jitter_fraction > 0.0;
  const int budget = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1; attempt <= budget; ++attempt) {
    if (attempt > 1) {
      const int delay = jittered
                            ? BackoffMsJittered(policy, attempt, jitter_rng)
                            : BackoffMs(policy, attempt);
      result.total_backoff_ms += delay;
      if (sleep) sleep(delay);
    }
    ++result.attempts;
    if (fn()) {
      result.succeeded = true;
      break;
    }
  }
  return result;
}

}  // namespace jarvis::util
