// Simulation time. The paper's smart-home instantiation uses episodes with
// time period T = 1 day and interval I = 1 minute (Section V-A-2), so the
// natural clock unit across the library is the minute. SimTime counts
// minutes from the simulation epoch (midnight of day 0, a Monday).
#pragma once

#include <cstdint>
#include <string>

namespace jarvis::util {

inline constexpr int kMinutesPerHour = 60;
inline constexpr int kMinutesPerDay = 24 * kMinutesPerHour;
inline constexpr int kMinutesPerWeek = 7 * kMinutesPerDay;

// Absolute simulation time in minutes since the epoch.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t minutes) : minutes_(minutes) {}

  static constexpr SimTime FromDayAndMinute(int day, int minute_of_day) {
    return SimTime(static_cast<std::int64_t>(day) * kMinutesPerDay +
                   minute_of_day);
  }
  static constexpr SimTime FromHms(int day, int hour, int minute) {
    return FromDayAndMinute(day, hour * kMinutesPerHour + minute);
  }

  constexpr std::int64_t minutes() const { return minutes_; }
  constexpr int day() const {
    return static_cast<int>(minutes_ / kMinutesPerDay);
  }
  constexpr int minute_of_day() const {
    return static_cast<int>(((minutes_ % kMinutesPerDay) + kMinutesPerDay) %
                            kMinutesPerDay);
  }
  constexpr int hour_of_day() const { return minute_of_day() / kMinutesPerHour; }
  constexpr int minute_of_hour() const {
    return minute_of_day() % kMinutesPerHour;
  }
  // Day of week: 0 = Monday ... 6 = Sunday (epoch is a Monday).
  constexpr int day_of_week() const { return ((day() % 7) + 7) % 7; }
  constexpr bool is_weekend() const { return day_of_week() >= 5; }

  constexpr SimTime operator+(std::int64_t delta_minutes) const {
    return SimTime(minutes_ + delta_minutes);
  }
  constexpr SimTime operator-(std::int64_t delta_minutes) const {
    return SimTime(minutes_ - delta_minutes);
  }
  constexpr std::int64_t operator-(SimTime other) const {
    return minutes_ - other.minutes_;
  }
  SimTime& operator+=(std::int64_t delta_minutes) {
    minutes_ += delta_minutes;
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  // "d3 14:05" style rendering for logs and bench output.
  std::string ToString() const;
  // ISO-like "2020-01-<day+1>T14:05:00" timestamp used in event logs.
  std::string ToTimestamp() const;

 private:
  std::int64_t minutes_ = 0;
};

// Circular distance between two minutes-of-day (the shorter way around the
// 24h dial). Used by the dis-utility term |t - t'| where habitual action
// times wrap around midnight.
int CircularMinuteDistance(int minute_a, int minute_b);

}  // namespace jarvis::util
