#include "util/timeofday.h"

#include <cstdio>
#include <cstdlib>

namespace jarvis::util {

std::string SimTime::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "d%d %02d:%02d", day(), hour_of_day(),
                minute_of_hour());
  return buf;
}

std::string SimTime::ToTimestamp() const {
  // Simulation dates are synthetic; render them into January 2020 onward,
  // which is enough for sortable, human-readable log timestamps.
  const int total_days = day();
  const int month = total_days / 28 + 1;   // 28-day synthetic months
  const int day_of_month = total_days % 28 + 1;
  char buf[40];
  std::snprintf(buf, sizeof buf, "2020-%02d-%02dT%02d:%02d:00", month,
                day_of_month, hour_of_day(), minute_of_hour());
  return buf;
}

int CircularMinuteDistance(int minute_a, int minute_b) {
  int diff = std::abs(minute_a - minute_b) % kMinutesPerDay;
  if (diff > kMinutesPerDay / 2) diff = kMinutesPerDay - diff;
  return diff;
}

}  // namespace jarvis::util
