// Home B data source: the Smart* [18] stand-in. The Smart* project
// published multi-month traces of a real western-Massachusetts home
// (per-device power, weather, occupancy). We reproduce its statistical
// shape with a calibrated scenario generator: New-England seasonal
// temperatures, realistic per-device power magnitudes (already encoded in
// the device library), and less regular occupancy than the synthetic
// Home A.
//
// The functionality evaluation draws "30 random days" from this dataset
// (Section VI-D); days are addressed by index and deterministic per seed.
#pragma once

#include <vector>

#include "fsm/environment.h"
#include "sim/resident.h"
#include "sim/scenario.h"

namespace jarvis::sim {

class SmartStarDataset {
 public:
  // `fsm` must outlive the dataset.
  SmartStarDataset(const fsm::EnvironmentFsm& fsm, std::uint64_t seed);

  // The trace of natural (real-user) behavior for a day index. Each call
  // simulates the requested day from the home's overnight state, so days
  // are independent draws like the paper's random-day sampling.
  DayTrace Day(int day_index) const;

  // Draws `count` distinct random day indices from the first year.
  std::vector<int> SampleDays(int count, std::uint64_t sample_seed) const;

  const ScenarioGenerator& generator() const { return generator_; }
  const fsm::EnvironmentFsm& fsm() const { return fsm_; }
  ThermalConfig thermal_config() const { return thermal_; }

 private:
  const fsm::EnvironmentFsm& fsm_;
  ScenarioGenerator generator_;
  ThermalConfig thermal_;
  std::uint64_t seed_;
};

}  // namespace jarvis::sim
