// Per-day exogenous context: occupancy schedule, weather, day-ahead prices,
// and the resident's intended device uses ("demands"). The resident
// simulator turns a scenario into natural behavior (what the home does
// without machine intervention); the RL environment replays the same
// scenario while the agent chooses controllable actions, so that paper
// comparisons (normal vs Jarvis, Figs. 6-8) share identical conditions.
#pragma once

#include <string>
#include <vector>

#include "sim/prices.h"
#include "sim/weather.h"
#include "util/rng.h"
#include "util/timeofday.h"

namespace jarvis::sim {

// One intended device use, e.g. "run the dishwasher around 20:15".
struct ApplianceDemand {
  std::string device_label;
  std::string action_name;     // the action satisfying the demand
  int preferred_minute = 0;    // the user's habitual minute-of-day
  int duration_minutes = 0;    // how long the resulting activity runs
};

struct DayScenario {
  int day = 0;
  bool weekend = false;
  int wake_minute = 0;
  int sleep_minute = 0;
  std::vector<int> departure_minutes;  // leaves home, sorted
  std::vector<int> arrival_minutes;    // returns home, sorted

  // Minute-resolution series, all sized kMinutesPerDay.
  std::vector<bool> occupied;
  std::vector<bool> someone_awake;
  std::vector<double> outdoor_c;
  std::vector<double> forecast_c;
  std::vector<double> price_usd_per_kwh;

  std::vector<ApplianceDemand> demands;

  bool OccupiedAt(int minute) const {
    return occupied[static_cast<std::size_t>(minute)];
  }
};

struct ScheduleConfig {
  int weekday_wake_mean = 6 * 60 + 30;
  int weekday_leave_mean = 8 * 60;
  int weekday_return_mean = 17 * 60 + 30;
  int sleep_mean = 22 * 60 + 45;
  int weekend_wake_mean = 8 * 60 + 15;
  int jitter_stddev = 25;  // minutes, applies to all anchors
  double weekend_errand_probability = 0.6;
};

// Generates deterministic scenarios given a seed: scenario (seed, day) is a
// pure function, so "30 random days" are reproducible.
class ScenarioGenerator {
 public:
  ScenarioGenerator(ScheduleConfig schedule, WeatherConfig weather,
                    PriceConfig prices, std::uint64_t seed);

  DayScenario Generate(int day) const;

  const WeatherModel& weather() const { return weather_; }
  const DamPriceModel& prices() const { return prices_; }

 private:
  ScheduleConfig schedule_;
  WeatherModel weather_;
  DamPriceModel prices_;
  std::uint64_t seed_;
};

}  // namespace jarvis::sim
