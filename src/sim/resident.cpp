#include "sim/resident.h"

#include <algorithm>
#include <stdexcept>

#include "events/handler.h"

namespace jarvis::sim {

namespace {

std::optional<fsm::DeviceId> Find(const fsm::EnvironmentFsm& fsm,
                                  const std::string& label) {
  for (const auto& device : fsm.devices()) {
    if (device.label() == label) return device.id();
  }
  return std::nullopt;
}

}  // namespace

HomeRefs::HomeRefs(const fsm::EnvironmentFsm& fsm)
    : lock(Find(fsm, "lock")),
      door_sensor(Find(fsm, "door_sensor")),
      light(Find(fsm, "light")),
      thermostat(Find(fsm, "thermostat")),
      temp_sensor(Find(fsm, "temp_sensor")),
      fridge(Find(fsm, "fridge")),
      oven(Find(fsm, "oven")),
      tv(Find(fsm, "tv")),
      washer(Find(fsm, "washer")),
      dishwasher(Find(fsm, "dishwasher")),
      coffee_maker(Find(fsm, "coffee_maker")) {}

ResidentSimulator::ResidentSimulator(const fsm::EnvironmentFsm& fsm,
                                     ThermalConfig thermal, std::uint64_t seed,
                                     BehaviorConfig behavior)
    : fsm_(fsm),
      refs_(fsm),
      thermal_config_(thermal),
      behavior_(behavior),
      rng_(seed) {}

fsm::StateVector ResidentSimulator::OvernightState() const {
  fsm::StateVector state(fsm_.device_count(), 0);
  auto set = [&](const std::optional<fsm::DeviceId>& id,
                 const std::string& state_name) {
    if (!id) return;
    const auto& device = fsm_.device(*id);
    const auto index = device.FindState(state_name);
    if (!index) throw std::logic_error("OvernightState: bad state name");
    state[static_cast<std::size_t>(*id)] = *index;
  };
  set(refs_.lock, "locked_outside");
  set(refs_.door_sensor, "sensing");
  set(refs_.light, "off");
  set(refs_.thermostat, "off");
  set(refs_.temp_sensor, "optimal");
  set(refs_.fridge, "closed");
  set(refs_.oven, "off");
  set(refs_.tv, "off");
  set(refs_.washer, "off");
  set(refs_.dishwasher, "off");
  set(refs_.coffee_maker, "off");
  return state;
}

DayTrace ResidentSimulator::SimulateDay(const DayScenario& scenario,
                                        const fsm::StateVector& initial_state,
                                        double initial_indoor_c) {
  fsm_.ValidateState(initial_state);
  ThermalModel thermal(thermal_config_);
  thermal.set_indoor_temp_c(initial_indoor_c);

  const util::SimTime day_start =
      util::SimTime::FromDayAndMinute(scenario.day, 0);
  DayTrace trace{scenario,
                 fsm::Episode({util::kMinutesPerDay, 1}, day_start,
                              initial_state),
                 {},
                 {},
                 {}};
  trace.indoor_c.reserve(util::kMinutesPerDay);

  auto handlers = events::MakeStandardHandlers(fsm_.devices());

  fsm::StateVector state = initial_state;

  // Pending timed actions: (minute, device, action_name, via_app).
  struct Pending {
    int minute;
    fsm::DeviceId device;
    std::string action;
    std::string app;
  };
  std::vector<Pending> pending;
  auto schedule = [&](int minute, std::optional<fsm::DeviceId> device,
                      const std::string& action, const std::string& app) {
    if (!device || minute < 0 || minute >= util::kMinutesPerDay) return;
    pending.push_back({minute, *device, action, app});
  };

  // Demands turn into start + finish actions.
  for (const auto& demand : scenario.demands) {
    const auto device = Find(fsm_, demand.device_label);
    if (!device) continue;
    schedule(demand.preferred_minute, device, demand.action_name, "manual");
    const int finish = demand.preferred_minute + demand.duration_minutes;
    if (demand.device_label == "oven") {
      schedule(demand.preferred_minute + 10, device, "start_bake", "manual");
      schedule(finish, device, "power_off", "manual");
    } else if (demand.device_label == "dishwasher" ||
               demand.device_label == "washer") {
      schedule(finish, device, "finish_cycle", "manual");
    } else if (demand.device_label == "coffee_maker") {
      // power on just before brewing, off after.
      schedule(demand.preferred_minute - 1, device, "power_on", "manual");
      schedule(finish, device, "finish_brew", "manual");
      schedule(finish + 2, device, "power_off", "manual");
    } else if (demand.device_label == "tv") {
      schedule(finish, device, "power_off", "manual");
    }
  }
  // Washers/dishwashers need power_on before their cycle.
  for (const auto& demand : scenario.demands) {
    if (demand.device_label == "dishwasher" || demand.device_label == "washer") {
      schedule(demand.preferred_minute - 1, Find(fsm_, demand.device_label),
               "power_on", "manual");
    }
  }
  // Fridge opens briefly around meals.
  if (refs_.fridge) {
    for (int meal :
         {scenario.wake_minute + 20, 12 * 60 + 15, 18 * 60 + 40}) {
      if (meal >= util::kMinutesPerDay) continue;
      schedule(meal, refs_.fridge, "open_door", "manual");
      schedule(meal + 2, refs_.fridge, "close_door", "manual");
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              return a.minute < b.minute;
            });

  std::size_t pending_cursor = 0;

  auto is_dark = [](int minute) {
    return minute < 6 * 60 + 45 || minute >= 17 * 60 + 45;
  };

  for (int minute = 0; minute < util::kMinutesPerDay; ++minute) {
    const util::SimTime now = day_start + minute;
    const bool occupied = scenario.occupied[static_cast<std::size_t>(minute)];
    const bool awake =
        scenario.someone_awake[static_cast<std::size_t>(minute)];

    fsm::ActionVector action(fsm_.device_count(), fsm::kNoAction);
    std::vector<bool> acted(fsm_.device_count(), false);

    auto act = [&](std::optional<fsm::DeviceId> id, const std::string& name,
                   const std::string& app) {
      if (!id) return;
      const auto idx = static_cast<std::size_t>(*id);
      if (acted[idx]) return;  // one action per device per interval
      const auto& device = fsm_.device(*id);
      const auto action_index = device.FindAction(name);
      if (!action_index) throw std::logic_error("bad action name: " + name);
      if (!device.ActionHasEffect(state[idx], *action_index)) return;
      action[idx] = *action_index;
      acted[idx] = true;

      auto handler_it = handlers.find(device.label());
      if (handler_it != handlers.end()) {
        trace.events.push_back(handler_it->second.MakeEvent(
            now, device.Transition(state[idx], *action_index), *action_index,
            "user0", app, "home", "main"));
      }
    };

    // Departure / arrival routines (Apps 1, 3, 5 of Table II). The door
    // unlocks when the household wakes (morning routine), locks at
    // departure (m), and App 5 reacts to the departure trigger (m+1) —
    // unless the user forgot to arm it that day.
    const bool departing =
        std::find(scenario.departure_minutes.begin(),
                  scenario.departure_minutes.end(),
                  minute) != scenario.departure_minutes.end();
    const bool just_departed =
        minute > 0 &&
        std::find(scenario.departure_minutes.begin(),
                  scenario.departure_minutes.end(),
                  minute - 1) != scenario.departure_minutes.end();
    const bool arriving =
        std::find(scenario.arrival_minutes.begin(),
                  scenario.arrival_minutes.end(),
                  minute) != scenario.arrival_minutes.end();

    // Door sensor exogenous state (auth_user blip on arrival).
    if (refs_.door_sensor) {
      const auto idx = static_cast<std::size_t>(*refs_.door_sensor);
      const auto& sensor = fsm_.device(*refs_.door_sensor);
      fsm::StateIndex sensor_state = *sensor.FindState("sensing");
      if (arriving) sensor_state = *sensor.FindState("auth_user");
      if (state[idx] != sensor_state &&
          state[idx] != *sensor.FindState("off")) {
        state[idx] = sensor_state;
        auto handler_it = handlers.find(sensor.label());
        if (handler_it != handlers.end()) {
          trace.events.push_back(handler_it->second.MakeEvent(
              now, sensor_state, fsm::kNoAction, "", "", "home", "main"));
        }
      }
    }

    if (arriving) {
      act(refs_.lock, "unlock", "unlock-door-on-auth-user");
      if (is_dark(minute)) act(refs_.light, "power_on", "lights-on-arrival");
    }
    if (departing) {
      act(refs_.lock, "lock", "manual");
    }
    if (just_departed) {
      // App 5 reacts to the departure (lock + nobody home). Human
      // imperfection: some days the shutdown does not happen and the
      // devices keep drawing power until the user returns.
      if (!rng_.NextBool(behavior_.forget_on_departure)) {
        act(refs_.light, "power_off", "leave-home-shutdown");
        act(refs_.thermostat, "power_off", "leave-home-shutdown");
        act(refs_.tv, "power_off", "leave-home-shutdown");
      }
    }

    // Wake / sleep routines.
    if (minute == scenario.wake_minute) {
      act(refs_.lock, "unlock", "manual");  // morning deadbolt routine
      if (is_dark(minute)) act(refs_.light, "power_on", "manual");
    }
    if (minute == scenario.sleep_minute) {
      act(refs_.light, "power_off", "manual");
      act(refs_.lock, "lock", "manual");
      act(refs_.tv, "power_off", "manual");
    }
    // Lights when darkness falls while people are up and home.
    if (occupied && awake && minute == 17 * 60 + 45) {
      act(refs_.light, "power_on", "manual");
    }

    // Comfort-driven thermostat (App 2), active while the house is
    // occupied; the temperature sensor state is driven by the thermal
    // model below. Real users react on a human timescale, not per minute.
    const bool user_checks_temp =
        behavior_.thermostat_reaction_minutes <= 1 ||
        minute % behavior_.thermostat_reaction_minutes == 0;
    if (refs_.thermostat && refs_.temp_sensor && occupied && user_checks_temp) {
      const auto sensor_idx = static_cast<std::size_t>(*refs_.temp_sensor);
      const auto& sensor = fsm_.device(*refs_.temp_sensor);
      const fsm::StateIndex sensor_state = state[sensor_idx];
      if (sensor_state == *sensor.FindState("below_optimal")) {
        act(refs_.thermostat, "increase_temp", "maintain-optimal-temperature");
      } else if (sensor_state == *sensor.FindState("above_optimal")) {
        act(refs_.thermostat, "decrease_temp", "maintain-optimal-temperature");
      } else if (sensor_state == *sensor.FindState("optimal")) {
        act(refs_.thermostat, "power_off", "maintain-optimal-temperature");
      }
    }

    // Scheduled demand actions (only while someone is home and awake).
    while (pending_cursor < pending.size() &&
           pending[pending_cursor].minute <= minute) {
      const auto& p = pending[pending_cursor];
      if (p.minute == minute && occupied && awake) {
        act(p.device, p.action, p.app);
      }
      ++pending_cursor;
    }

    // Record the step, then advance device states and physics.
    trace.episode.Record(now, state, action);
    state = fsm_.Apply(state, action);

    // Thermal step driven by the thermostat state just entered.
    HvacMode mode = HvacMode::kOff;
    if (refs_.thermostat) {
      const auto thermostat_state =
          state[static_cast<std::size_t>(*refs_.thermostat)];
      if (thermostat_state <= 2) {
        mode = HvacModeFromThermostatState(thermostat_state);
      }
    }
    thermal.Step(mode, scenario.outdoor_c[static_cast<std::size_t>(minute)]);
    trace.indoor_c.push_back(thermal.indoor_temp_c());

    // Temperature sensor exogenous update.
    if (refs_.temp_sensor) {
      const auto idx = static_cast<std::size_t>(*refs_.temp_sensor);
      const auto& sensor = fsm_.device(*refs_.temp_sensor);
      const fsm::StateIndex new_state = thermal.SensorState();
      if (state[idx] != new_state && state[idx] != *sensor.FindState("off") &&
          state[idx] != *sensor.FindState("fire_alarm")) {
        state[idx] = new_state;
        auto handler_it = handlers.find(sensor.label());
        // The reading changed *after* this minute's physics step, so the
        // event carries the next minute's timestamp — the state it
        // describes is the one recorded at minute + 1. A change after the
        // day's final minute has no step to describe and is not emitted.
        if (handler_it != handlers.end() &&
            minute + 1 < util::kMinutesPerDay) {
          trace.events.push_back(handler_it->second.MakeEvent(
              now + 1, new_state, fsm::kNoAction, "", "", "home", "main"));
        }
      }
    }
  }

  trace.metrics = ComputeMetrics(fsm_, trace.episode, scenario, trace.indoor_c,
                                 thermal_config_);
  return trace;
}

std::vector<DayTrace> ResidentSimulator::SimulateDays(
    const ScenarioGenerator& generator, int start_day, int day_count) {
  std::vector<DayTrace> traces;
  fsm::StateVector state = OvernightState();
  double indoor_c = thermal_config_.initial_indoor_c;
  for (int d = 0; d < day_count; ++d) {
    const DayScenario scenario = generator.Generate(start_day + d);
    traces.push_back(SimulateDay(scenario, state, indoor_c));
    state = traces.back().episode.FinalState(fsm_);
    indoor_c = traces.back().indoor_c.back();
  }
  return traces;
}

DayMetrics ComputeMetrics(const fsm::EnvironmentFsm& fsm,
                          const fsm::Episode& episode,
                          const DayScenario& scenario,
                          const std::vector<double>& indoor_c,
                          const ThermalConfig& thermal) {
  DayMetrics metrics;
  for (std::size_t step = 0; step < episode.steps().size(); ++step) {
    const auto& record = episode.steps()[step];
    double watts = 0.0;
    for (std::size_t i = 0; i < fsm.device_count(); ++i) {
      watts += fsm.devices()[i].PowerDraw(record.state[i]);
    }
    const double kwh = watts / 1000.0 / 60.0;  // one-minute interval
    metrics.energy_kwh += kwh;
    const int minute = record.time.minute_of_day();
    metrics.cost_usd +=
        kwh * scenario.price_usd_per_kwh[static_cast<std::size_t>(minute)];

    if (step < indoor_c.size()) {
      const double temp = indoor_c[step];
      double error = 0.0;
      if (temp > thermal.optimal_high_c) error = temp - thermal.optimal_high_c;
      if (temp < thermal.optimal_low_c) error = thermal.optimal_low_c - temp;
      metrics.comfort_error_all_c_min += error;
      if (scenario.occupied[static_cast<std::size_t>(minute)]) {
        metrics.comfort_error_c_min += error;
      }
    }
  }
  return metrics;
}

}  // namespace jarvis::sim
