// Resident behavior simulator: the OpenSHS [17] / Smart* [18] stand-in.
// Given a DayScenario it produces the home's *natural* behavior — the
// trigger-action patterns occurring "without machine intervention"
// (Section IV-A): locking up when leaving, lights tracking occupancy and
// darkness, comfort-driven thermostat use, and the day's appliance demands
// at their habitual times.
//
// The output doubles as (a) learning episodes for the security policy
// learner and (b) the "normal user behavior" baseline the paper compares
// Jarvis against in Figs. 6-8.
#pragma once

#include <optional>
#include <vector>

#include "events/event.h"
#include "fsm/device_library.h"
#include "fsm/environment.h"
#include "fsm/episode.h"
#include "sim/scenario.h"
#include "sim/thermal.h"

namespace jarvis::sim {

// Energy / cost / comfort totals for one simulated day.
struct DayMetrics {
  double energy_kwh = 0.0;
  double cost_usd = 0.0;
  // Sum over occupied minutes of |indoor - comfort band| in degC-minutes.
  double comfort_error_c_min = 0.0;
  // Sum over all minutes (used by diagnostics).
  double comfort_error_all_c_min = 0.0;
};

// Everything produced by simulating one day.
struct DayTrace {
  DayScenario scenario;
  fsm::Episode episode;
  std::vector<events::Event> events;
  std::vector<double> indoor_c;  // per minute
  DayMetrics metrics;
};

// Resolved device ids for the labels the simulator manipulates; devices
// absent from the home are nullopt and simply not driven.
struct HomeRefs {
  explicit HomeRefs(const fsm::EnvironmentFsm& fsm);

  std::optional<fsm::DeviceId> lock, door_sensor, light, thermostat,
      temp_sensor, fridge, oven, tv, washer, dishwasher, coffee_maker;
};

// Human imperfection knobs. The paper's baseline is *real user behavior*
// (OpenSHS / Smart* traces), and the functionality advantage of Jarvis in
// Figs. 6-8 exists precisely because people forget devices and react to
// temperature drift slowly. Setting both knobs to zero yields an idealized
// resident (useful in tests).
struct BehaviorConfig {
  // Probability (per departure) of forgetting a running device when
  // leaving home: lights stay on, thermostat keeps running.
  double forget_on_departure = 0.45;
  // The user notices an uncomfortable temperature only every N minutes.
  int thermostat_reaction_minutes = 15;
};

class ResidentSimulator {
 public:
  ResidentSimulator(const fsm::EnvironmentFsm& fsm, ThermalConfig thermal,
                    std::uint64_t seed, BehaviorConfig behavior = {});

  // Simulates one day from the given initial state and indoor temperature.
  DayTrace SimulateDay(const DayScenario& scenario,
                       const fsm::StateVector& initial_state,
                       double initial_indoor_c);

  // Simulates consecutive days, carrying device states and indoor
  // temperature across midnights. Starts from the home's natural overnight
  // state (everything off/locked, sensors on).
  std::vector<DayTrace> SimulateDays(const ScenarioGenerator& generator,
                                     int start_day, int day_count);

  // The natural overnight initial state: locked, lights off, thermostat
  // off, sensors sensing/optimal, appliances off/closed.
  fsm::StateVector OvernightState() const;

  const fsm::EnvironmentFsm& fsm() const { return fsm_; }
  const ThermalConfig& thermal_config() const { return thermal_config_; }

 private:
  const fsm::EnvironmentFsm& fsm_;
  HomeRefs refs_;
  ThermalConfig thermal_config_;
  BehaviorConfig behavior_;
  util::Rng rng_;
};

// Computes DayMetrics for an arbitrary per-minute state trace (used to
// score Jarvis-optimized behavior with the same yardstick as natural
// behavior). `indoor_c` may be empty when no thermal data applies.
DayMetrics ComputeMetrics(const fsm::EnvironmentFsm& fsm,
                          const fsm::Episode& episode,
                          const DayScenario& scenario,
                          const std::vector<double>& indoor_c,
                          const ThermalConfig& thermal);

}  // namespace jarvis::sim
