#include "sim/prices.h"

#include <algorithm>
#include <cmath>

namespace jarvis::sim {

DamPriceModel::DamPriceModel(PriceConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

bool DamPriceModel::IsPeak(util::SimTime t) const {
  const int hour = t.hour_of_day();
  return hour >= config_.peak_start_hour && hour < config_.peak_end_hour;
}

bool DamPriceModel::IsOffPeak(util::SimTime t) const {
  const int hour = t.hour_of_day();
  if (config_.off_peak_start_hour <= config_.off_peak_end_hour) {
    return hour >= config_.off_peak_start_hour &&
           hour < config_.off_peak_end_hour;
  }
  return hour >= config_.off_peak_start_hour ||
         hour < config_.off_peak_end_hour;
}

double DamPriceModel::BasePrice(int hour) const {
  const util::SimTime probe = util::SimTime::FromHms(0, hour, 0);
  if (IsPeak(probe)) return config_.peak_usd_per_kwh;
  if (IsOffPeak(probe)) return config_.off_peak_usd_per_kwh;
  return config_.shoulder_usd_per_kwh;
}

double DamPriceModel::PriceAt(util::SimTime t) const {
  util::Rng rng(seed_ ^
                (static_cast<std::uint64_t>(t.day()) *
                 std::uint64_t{0xd1b54a32d192ed03}) ^
                (static_cast<std::uint64_t>(t.hour_of_day()) *
                 std::uint64_t{0x2545f4914f6cdd1d}));
  const double factor =
      std::max(0.2, 1.0 + rng.NextGaussian(0.0, config_.volatility));
  return BasePrice(t.hour_of_day()) * factor;
}

std::vector<double> DamPriceModel::DaySchedule(int day) const {
  std::vector<double> schedule;
  schedule.reserve(24);
  for (int hour = 0; hour < 24; ++hour) {
    schedule.push_back(PriceAt(util::SimTime::FromHms(day, hour, 0)));
  }
  return schedule;
}

int DamPriceModel::CheapestHour(int day) const {
  const auto schedule = DaySchedule(day);
  return static_cast<int>(
      std::min_element(schedule.begin(), schedule.end()) - schedule.begin());
}

}  // namespace jarvis::sim
