// First-order lumped thermal model of the house: indoor temperature relaxes
// toward outdoor temperature through the envelope, and the HVAC injects or
// removes heat while the thermostat is in heat/cool. Minute-resolution
// stepping matches the episode interval I = 1 min.
//
// The model supplies the HVAC readings behind the temperature-optimization
// functionality F_3 and drives the temperature sensor's discrete state
// (above/below/optimal).
#pragma once

#include "fsm/device.h"
#include "util/timeofday.h"

namespace jarvis::sim {

struct ThermalConfig {
  double envelope_coefficient = 0.0035;  // per minute; leakier = larger
  double heat_rate_c_per_min = 0.15;     // HVAC heating effect
  double cool_rate_c_per_min = 0.12;     // HVAC cooling effect
  double optimal_low_c = 20.0;           // comfort band lower edge
  double optimal_high_c = 23.0;          // comfort band upper edge
  double initial_indoor_c = 21.0;
};

// Thermostat mode as the thermal model sees it, mapped from the thermostat
// device state (heat/cool/off).
enum class HvacMode { kOff, kHeat, kCool };

class ThermalModel {
 public:
  explicit ThermalModel(ThermalConfig config);

  double indoor_temp_c() const { return indoor_c_; }
  void set_indoor_temp_c(double temp) { indoor_c_ = temp; }

  // Advances one minute under the given HVAC mode and outdoor temperature;
  // returns the new indoor temperature.
  double Step(HvacMode mode, double outdoor_c);

  // Discrete temperature-sensor state for the current indoor temperature:
  // above_optimal / below_optimal / optimal relative to the comfort band.
  // (fire_alarm and off are never produced by the thermal model.)
  fsm::StateIndex SensorState() const;

  // Absolute distance from the comfort band (0 inside the band); the
  // per-minute temperature error integrated by the F_3 evaluation.
  double ComfortErrorC() const;

  const ThermalConfig& config() const { return config_; }

 private:
  ThermalConfig config_;
  double indoor_c_;
};

// Maps a thermostat device state index (heat=0, cool=1, off=2 in the device
// library) to an HvacMode.
HvacMode HvacModeFromThermostatState(fsm::StateIndex thermostat_state);

}  // namespace jarvis::sim
