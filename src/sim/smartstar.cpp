#include "sim/smartstar.h"

namespace jarvis::sim {

namespace {

ScheduleConfig SmartStarSchedule() {
  ScheduleConfig schedule;
  // Real-user anchors wander more than the synthetic Home A.
  schedule.jitter_stddev = 45;
  schedule.weekday_wake_mean = 6 * 60 + 50;
  schedule.weekday_return_mean = 17 * 60 + 50;
  schedule.weekend_errand_probability = 0.75;
  return schedule;
}

WeatherConfig SmartStarWeather() {
  WeatherConfig weather;
  // Western Massachusetts: cold winters, warm summers.
  weather.annual_mean_c = 9.0;
  weather.seasonal_amplitude_c = 16.0;
  weather.diurnal_amplitude_c = 7.0;
  weather.noise_stddev_c = 2.5;
  return weather;
}

PriceConfig SmartStarPrices() {
  PriceConfig prices;
  // ISO-NE-like day-ahead structure.
  prices.off_peak_usd_per_kwh = 0.07;
  prices.shoulder_usd_per_kwh = 0.13;
  prices.peak_usd_per_kwh = 0.31;
  prices.volatility = 0.2;
  return prices;
}

}  // namespace

SmartStarDataset::SmartStarDataset(const fsm::EnvironmentFsm& fsm,
                                   std::uint64_t seed)
    : fsm_(fsm),
      generator_(SmartStarSchedule(), SmartStarWeather(), SmartStarPrices(),
                 seed),
      thermal_(),
      seed_(seed) {
  // A slightly leakier envelope than default (an older real home).
  thermal_.envelope_coefficient = 0.0045;
}

DayTrace SmartStarDataset::Day(int day_index) const {
  ResidentSimulator simulator(
      fsm_, thermal_,
      seed_ ^ (static_cast<std::uint64_t>(day_index) * std::uint64_t{0xff51afd7ed558ccd}));
  const DayScenario scenario = generator_.Generate(day_index);
  return simulator.SimulateDay(scenario, simulator.OvernightState(),
                               thermal_.initial_indoor_c);
}

std::vector<int> SmartStarDataset::SampleDays(int count,
                                              std::uint64_t sample_seed) const {
  util::Rng rng(seed_ ^ sample_seed);
  const auto indices = rng.SampleIndices(365, static_cast<std::size_t>(count));
  return std::vector<int>(indices.begin(), indices.end());
}

}  // namespace jarvis::sim
