// Outdoor temperature model standing in for the weather behind the Smart*
// dataset [18]: a seasonal trend plus a diurnal sinusoid (coldest ~05:00,
// warmest ~15:00) plus day-to-day weather noise. Also provides the
// "day-ahead forecast" used by the temperature-optimization functionality
// F_3 (Section VI-D).
#pragma once

#include "util/rng.h"
#include "util/timeofday.h"

namespace jarvis::sim {

struct WeatherConfig {
  double annual_mean_c = 12.0;       // yearly average outdoor temperature
  double seasonal_amplitude_c = 14.0; // summer-winter swing (half-range)
  double diurnal_amplitude_c = 6.0;  // day-night swing (half-range)
  double noise_stddev_c = 1.5;       // per-day weather offset
  int coldest_day_of_year = 20;      // late January
  int warmest_minute_of_day = 15 * 60;
};

class WeatherModel {
 public:
  WeatherModel(WeatherConfig config, std::uint64_t seed);

  // Actual outdoor temperature at a time instance (deterministic per seed).
  double OutdoorTempC(util::SimTime t) const;

  // Day-ahead forecast: the model's smooth component without the weather
  // noise of the actual day, plus a small forecast error.
  double ForecastTempC(util::SimTime t) const;

  const WeatherConfig& config() const { return config_; }

 private:
  double SmoothComponent(util::SimTime t) const;
  // Deterministic per-day noise derived from the seed and day index.
  double DayNoise(int day, std::uint64_t stream) const;

  WeatherConfig config_;
  std::uint64_t seed_;
};

}  // namespace jarvis::sim
