// Day-ahead-market electricity price model standing in for the ERCOT DAM
// feed [20] behind the energy-cost functionality F_1. Prices are hourly,
// published a day ahead, with the canonical structure: cheap overnight
// trough, morning shoulder, late-afternoon peak, plus day-level volatility.
#pragma once

#include <vector>

#include "util/rng.h"
#include "util/timeofday.h"

namespace jarvis::sim {

struct PriceConfig {
  double off_peak_usd_per_kwh = 0.06;
  double shoulder_usd_per_kwh = 0.12;
  double peak_usd_per_kwh = 0.28;
  double volatility = 0.15;  // multiplicative day-level noise (stddev)
  int peak_start_hour = 15;
  int peak_end_hour = 20;    // exclusive
  int off_peak_start_hour = 22;
  int off_peak_end_hour = 6;  // exclusive, wraps midnight
};

class DamPriceModel {
 public:
  DamPriceModel(PriceConfig config, std::uint64_t seed);

  // Price in $/kWh for the hour containing t (pure function of time).
  double PriceAt(util::SimTime t) const;

  // The full 24-hour day-ahead schedule for a day (what the optimizer sees).
  std::vector<double> DaySchedule(int day) const;

  bool IsPeak(util::SimTime t) const;
  bool IsOffPeak(util::SimTime t) const;

  // The cheapest hour of a day's schedule (used as the t' target for
  // cost-aware scheduling analyses).
  int CheapestHour(int day) const;

  const PriceConfig& config() const { return config_; }

 private:
  double BasePrice(int hour) const;

  PriceConfig config_;
  std::uint64_t seed_;
};

}  // namespace jarvis::sim
