#include "sim/anomaly.h"

#include <stdexcept>

namespace jarvis::sim {

namespace {

std::optional<fsm::DeviceId> Find(const fsm::EnvironmentFsm& fsm,
                                  const std::string& label) {
  for (const auto& device : fsm.devices()) {
    if (device.label() == label) return device.id();
  }
  return std::nullopt;
}

}  // namespace

std::string AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kFridgeDoorLeftOpen:
      return "fridge-door-left-open";
    case AnomalyKind::kOvenLeftOnShort:
      return "oven-left-on-short";
    case AnomalyKind::kTvLeftOnShort:
      return "tv-left-on-short";
    case AnomalyKind::kOutOfScheduleLight:
      return "out-of-schedule-light";
    case AnomalyKind::kOddHourAppliance:
      return "odd-hour-appliance";
    case AnomalyKind::kDoubleToggle:
      return "double-toggle";
  }
  throw std::logic_error("unknown anomaly kind");
}

AnomalyGenerator::AnomalyGenerator(const fsm::EnvironmentFsm& fsm,
                                   std::uint64_t seed)
    : fsm_(fsm), rng_(seed) {}

std::vector<AnomalyKind> AnomalyGenerator::SupportedKinds() const {
  std::vector<AnomalyKind> kinds;
  if (Find(fsm_, "fridge")) kinds.push_back(AnomalyKind::kFridgeDoorLeftOpen);
  if (Find(fsm_, "oven")) kinds.push_back(AnomalyKind::kOvenLeftOnShort);
  if (Find(fsm_, "tv")) kinds.push_back(AnomalyKind::kTvLeftOnShort);
  if (Find(fsm_, "light")) kinds.push_back(AnomalyKind::kOutOfScheduleLight);
  if (Find(fsm_, "washer") || Find(fsm_, "dishwasher") ||
      Find(fsm_, "coffee_maker")) {
    kinds.push_back(AnomalyKind::kOddHourAppliance);
  }
  if (Find(fsm_, "light") || Find(fsm_, "tv")) {
    kinds.push_back(AnomalyKind::kDoubleToggle);
  }
  if (kinds.empty()) {
    throw std::logic_error("AnomalyGenerator: no expressible anomalies");
  }
  return kinds;
}

fsm::ActionVector AnomalyGenerator::SingleAction(
    fsm::DeviceId device, const std::string& action_name) const {
  fsm::ActionVector action(fsm_.device_count(), fsm::kNoAction);
  const auto index = fsm_.device(device).FindAction(action_name);
  if (!index) {
    throw std::logic_error("AnomalyGenerator: bad action " + action_name);
  }
  action[static_cast<std::size_t>(device)] = *index;
  return action;
}

AnomalyInstance AnomalyGenerator::Generate(const fsm::StateVector& state) {
  const auto kinds = SupportedKinds();
  return GenerateOfKind(kinds[rng_.NextIndex(kinds.size())], state);
}

AnomalyInstance AnomalyGenerator::GenerateOfKind(
    AnomalyKind kind, const fsm::StateVector& state) {
  fsm_.ValidateState(state);
  switch (kind) {
    case AnomalyKind::kFridgeDoorLeftOpen: {
      const auto fridge = Find(fsm_, "fridge");
      if (!fridge) break;
      // The door is opened at an unusual minute and (by virtue of no
      // close action following) left open.
      const int minute = static_cast<int>(rng_.NextInt(1 * 60, 4 * 60));
      return {kind, minute, SingleAction(*fridge, "open_door"),
              "fridge door opened at night and left open"};
    }
    case AnomalyKind::kOvenLeftOnShort: {
      const auto oven = Find(fsm_, "oven");
      if (!oven) break;
      const int minute = static_cast<int>(rng_.NextInt(14 * 60, 16 * 60));
      return {kind, minute, SingleAction(*oven, "start_preheat"),
              "oven preheated mid-afternoon with no meal"};
    }
    case AnomalyKind::kTvLeftOnShort: {
      const auto tv = Find(fsm_, "tv");
      if (!tv) break;
      const int minute = static_cast<int>(rng_.NextInt(2 * 60, 5 * 60));
      return {kind, minute, SingleAction(*tv, "power_on"),
              "TV switched on in the small hours"};
    }
    case AnomalyKind::kOutOfScheduleLight: {
      const auto light = Find(fsm_, "light");
      if (!light) break;
      const int minute = static_cast<int>(rng_.NextInt(1 * 60, 5 * 60));
      return {kind, minute, SingleAction(*light, "power_on"),
              "light on during sleep hours (bathroom trip)"};
    }
    case AnomalyKind::kOddHourAppliance: {
      for (const char* label : {"washer", "dishwasher", "coffee_maker"}) {
        const auto device = Find(fsm_, label);
        if (!device) continue;
        const auto& dev = fsm_.device(*device);
        const std::string action =
            dev.FindAction("start_cycle") ? "start_cycle" : "brew";
        const int minute = static_cast<int>(rng_.NextInt(0, 4 * 60));
        // These appliances start from idle; assume the user powered them
        // on (the instance is the unusual start itself).
        return {kind, minute, SingleAction(*device, action),
                std::string(label) + " run at an odd hour"};
      }
      break;
    }
    case AnomalyKind::kDoubleToggle: {
      for (const char* label : {"light", "tv"}) {
        const auto device = Find(fsm_, label);
        if (!device) continue;
        const int minute = static_cast<int>(rng_.NextInt(9 * 60, 21 * 60));
        return {kind, minute, SingleAction(*device, "power_on"),
                std::string(label) + " toggled twice by mistake"};
      }
      break;
    }
  }
  throw std::invalid_argument("GenerateOfKind: kind not supported in home");
}

bool AnomalyGenerator::LooksLikeBenignArchetype(
    const std::string& device_label, const std::string& action_name,
    int minute_of_day) const {
  // Mirrors the minute ranges used by GenerateOfKind.
  if (device_label == "fridge" && action_name == "open_door") {
    return minute_of_day >= 1 * 60 && minute_of_day <= 4 * 60;
  }
  if (device_label == "oven" && action_name == "start_preheat") {
    return minute_of_day >= 14 * 60 && minute_of_day <= 16 * 60;
  }
  if (device_label == "tv" && action_name == "power_on") {
    return minute_of_day >= 2 * 60 && minute_of_day <= 5 * 60;
  }
  if (device_label == "light" && action_name == "power_on") {
    return (minute_of_day >= 1 * 60 && minute_of_day <= 5 * 60) ||
           (minute_of_day >= 9 * 60 && minute_of_day <= 21 * 60);
  }
  if ((device_label == "washer" || device_label == "dishwasher") &&
      action_name == "start_cycle") {
    return minute_of_day <= 4 * 60;
  }
  if (device_label == "coffee_maker" && action_name == "brew") {
    return minute_of_day <= 4 * 60;
  }
  return false;
}

std::vector<LabeledSample> AnomalyGenerator::BuildTrainingSet(
    const std::vector<fsm::TriggerAction>& normal_behavior,
    std::size_t anomaly_count,
    std::optional<std::size_t> background_negatives) {
  if (normal_behavior.empty()) {
    throw std::invalid_argument("BuildTrainingSet: no normal behavior");
  }
  const std::size_t negatives =
      background_negatives.value_or(anomaly_count / 2);
  std::vector<LabeledSample> samples;
  samples.reserve(normal_behavior.size() + anomaly_count + negatives);
  for (const auto& ta : normal_behavior) {
    samples.push_back({ta, false, AnomalyKind::kFridgeDoorLeftOpen});
  }

  const auto kinds = SupportedKinds();
  const auto lock = Find(fsm_, "lock");
  const auto home_lock_state =
      lock ? fsm_.device(*lock).FindState("unlocked") : std::nullopt;
  for (std::size_t i = 0; i < anomaly_count; ++i) {
    // Anchor each anomaly on a state actually seen in normal behavior so
    // the ANN separates on (state, action, time) structure, not on
    // never-seen states. Benign anomalies are *human* errors — someone is
    // home — so the lock context is forced to the at-home state; an
    // identical device action with the house locked up is an attack, not a
    // malfunction, and must stay distinguishable.
    fsm::StateVector anchor =
        normal_behavior[rng_.NextIndex(normal_behavior.size())].trigger_state;
    if (lock && home_lock_state) {
      anchor[static_cast<std::size_t>(*lock)] = *home_lock_state;
    }
    const AnomalyKind kind = kinds[rng_.NextIndex(kinds.size())];
    AnomalyInstance instance = GenerateOfKind(kind, anchor);
    samples.push_back({{anchor, instance.action, instance.minute}, true, kind});
  }

  // Background negatives: random transitions that match no benign
  // archetype, labeled not-benign (default-deny).
  std::size_t produced = 0;
  std::size_t guard = 0;
  while (produced < negatives && guard < negatives * 50 + 100) {
    ++guard;
    const auto& anchor =
        normal_behavior[rng_.NextIndex(normal_behavior.size())];
    const auto device_index = rng_.NextIndex(fsm_.device_count());
    const auto& device = fsm_.devices()[device_index];
    const auto action_index =
        static_cast<fsm::ActionIndex>(rng_.NextIndex(
            static_cast<std::size_t>(device.action_count())));
    const int minute = static_cast<int>(rng_.NextInt(0, 24 * 60 - 1));
    if (LooksLikeBenignArchetype(device.label(),
                                 device.action_name(action_index), minute)) {
      continue;
    }
    fsm::ActionVector action(fsm_.device_count(), fsm::kNoAction);
    action[device_index] = action_index;
    samples.push_back({{anchor.trigger_state, std::move(action), minute},
                       false,
                       AnomalyKind::kFridgeDoorLeftOpen});
    ++produced;
  }

  rng_.Shuffle(samples);
  return samples;
}

}  // namespace jarvis::sim
