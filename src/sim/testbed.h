// The virtual evaluation testbed of Fig. 4: five users and two locations.
// Home A runs on OpenSHS-style simulated daily activities; Home B is the
// Smart*-calibrated dataset. The SPL training set TD combines learning-
// episode behavior with 55,156 user-generated benign anomaly samples
// (paper Section VI-A).
#pragma once

#include <memory>
#include <vector>

#include "fsm/device_library.h"
#include "sim/anomaly.h"
#include "sim/attack.h"
#include "sim/resident.h"
#include "sim/smartstar.h"

namespace jarvis::sim {

struct TestbedConfig {
  std::uint64_t seed = 42;
  int users = 5;
  int learning_days = 14;       // L: 14 days spread across the year (see DESIGN.md)
  std::size_t benign_anomaly_samples = 55156;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  const TestbedConfig& config() const { return config_; }
  const fsm::EnvironmentFsm& home_a() const { return home_a_; }
  const fsm::EnvironmentFsm& home_b() const { return home_b_; }

  // Home A learning phase: one week of OpenSHS-style natural behavior.
  std::vector<DayTrace> HomeALearningTraces() const;
  std::vector<fsm::Episode> HomeALearningEpisodes() const;

  // Contiguous Home A days starting at day 0, states carried across
  // midnights — unlike the seasonal-stride learning traces, the timestamps
  // form one gap-free stream. The chaos suite feeds these through fault
  // injectors into the parser.
  std::vector<DayTrace> HomeAContiguousTraces(int day_count) const;
  // The same days flattened into a single time-sorted event stream.
  std::vector<events::Event> HomeAEventStream(int day_count) const;

  // Home B real-data-style days.
  const SmartStarDataset& home_b_data() const { return *home_b_data_; }

  // Labeled ANN training set TD: learning-phase T/A behavior plus the
  // configured number of benign anomalies.
  std::vector<LabeledSample> BuildTrainingSet() const;

  // The 214 malicious violations for the security evaluation.
  std::vector<Violation> BuildViolations() const;

  ScenarioGenerator home_a_generator() const;
  ThermalConfig home_a_thermal() const { return ThermalConfig{}; }

 private:
  TestbedConfig config_;
  fsm::EnvironmentFsm home_a_;
  fsm::EnvironmentFsm home_b_;
  std::unique_ptr<SmartStarDataset> home_b_data_;
};

}  // namespace jarvis::sim
