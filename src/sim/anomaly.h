// Benign-anomaly generator: the SIMADL [12] stand-in. The paper's SPL
// component must tolerate benign device malfunctions and human errors —
// fridge or oven doors left open, a TV left on for a short stretch,
// out-of-schedule activity — without branding them unsafe. Participants in
// the SIMADL study defined such anomalies themselves and simulated them;
// here we generate labeled samples of the same archetypes (55k+ samples
// for the training set TD, plus injectable per-episode instances).
#pragma once

#include <string>
#include <vector>

#include "fsm/environment.h"
#include "fsm/episode.h"
#include "util/rng.h"

namespace jarvis::sim {

enum class AnomalyKind {
  kFridgeDoorLeftOpen,
  kOvenLeftOnShort,
  kTvLeftOnShort,
  kOutOfScheduleLight,
  kOddHourAppliance,
  kDoubleToggle,  // human error: toggling a device twice in a row
};

std::string AnomalyKindName(AnomalyKind kind);

// One labeled T/A sample for ANN training: the trigger state, the action,
// the minute of day, and whether it is a benign anomaly (true) or normal
// behavior (false).
struct LabeledSample {
  fsm::TriggerAction ta;
  bool benign_anomaly = false;
  AnomalyKind kind = AnomalyKind::kFridgeDoorLeftOpen;  // valid if anomaly
};

// An anomalous mini-sequence to splice into an episode: at `minute`, apply
// `action`; the sequence stays plausible (reachable states only).
struct AnomalyInstance {
  AnomalyKind kind;
  int minute;
  fsm::ActionVector action;
  std::string description;
};

class AnomalyGenerator {
 public:
  AnomalyGenerator(const fsm::EnvironmentFsm& fsm, std::uint64_t seed);

  // Which anomaly kinds are expressible in this home (device-dependent).
  std::vector<AnomalyKind> SupportedKinds() const;

  // Draws one anomaly instance applicable to the given state at a random
  // minute. The action only involves devices present in the home.
  AnomalyInstance Generate(const fsm::StateVector& state);
  AnomalyInstance GenerateOfKind(AnomalyKind kind, const fsm::StateVector& state);

  // Builds the labeled training dataset TD for the ANN filter:
  // `normal` T/A observations from learning episodes labeled false, plus
  // `anomaly_count` synthetic benign anomalies labeled true, plus
  // `background_negatives` random non-anomalous transitions labeled false.
  // The background negatives teach the filter the default-deny stance the
  // paper's Occam bias requires (Section VI-F): behavior matching neither
  // habit nor a known benign archetype must not score as benign. Pass
  // anomaly_count / 2 when unsure (the default).
  std::vector<LabeledSample> BuildTrainingSet(
      const std::vector<fsm::TriggerAction>& normal_behavior,
      std::size_t anomaly_count,
      std::optional<std::size_t> background_negatives = std::nullopt);

  // True when (device label, action, minute) matches one of the benign
  // anomaly archetypes this generator can produce (used to keep background
  // negatives from contradicting the positive class).
  bool LooksLikeBenignArchetype(const std::string& device_label,
                                const std::string& action_name,
                                int minute_of_day) const;

 private:
  fsm::ActionVector SingleAction(fsm::DeviceId device,
                                 const std::string& action_name) const;

  const fsm::EnvironmentFsm& fsm_;
  util::Rng rng_;
};

}  // namespace jarvis::sim
