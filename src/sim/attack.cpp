#include "sim/attack.h"

#include <set>
#include <stdexcept>

namespace jarvis::sim {

namespace {

// Device indices in the full evaluation home (device_library.h order).
struct Refs {
  fsm::DeviceId lock, door_sensor, light, thermostat, temp_sensor, fridge,
      oven, tv, washer, dishwasher, coffee_maker;
};

Refs ResolveRefs(const fsm::EnvironmentFsm& fsm) {
  auto id = [&](const char* label) { return fsm.DeviceIdByLabel(label); };
  return {id("lock"),   id("door_sensor"), id("light"),
          id("thermostat"), id("temp_sensor"), id("fridge"),
          id("oven"),   id("tv"),          id("washer"),
          id("dishwasher"), id("coffee_maker")};
}

fsm::StateIndex StateOf(const fsm::EnvironmentFsm& fsm, fsm::DeviceId device,
                        const char* name) {
  const auto index = fsm.device(device).FindState(name);
  if (!index) {
    throw std::logic_error(std::string("attack: unknown state ") + name);
  }
  return *index;
}

fsm::ActionIndex ActionOf(const fsm::EnvironmentFsm& fsm, fsm::DeviceId device,
                          const char* name) {
  const auto index = fsm.device(device).FindAction(name);
  if (!index) {
    throw std::logic_error(std::string("attack: unknown action ") + name);
  }
  return *index;
}

// A context template: a quiet locked home (the lock reads locked_outside
// whether the residents are asleep inside or away; the attack minute
// carries the occupancy semantics, matching natural behavior where the
// lock state alone does not encode occupancy).
fsm::StateVector NightAwayState(const fsm::EnvironmentFsm& fsm,
                                const Refs& refs, bool occupied) {
  (void)occupied;
  fsm::StateVector state(fsm.device_count(), 0);
  state[static_cast<std::size_t>(refs.lock)] =
      StateOf(fsm, refs.lock, "locked_outside");
  state[static_cast<std::size_t>(refs.door_sensor)] =
      StateOf(fsm, refs.door_sensor, "sensing");
  state[static_cast<std::size_t>(refs.light)] =
      StateOf(fsm, refs.light, "off");
  state[static_cast<std::size_t>(refs.thermostat)] =
      StateOf(fsm, refs.thermostat, "off");
  state[static_cast<std::size_t>(refs.temp_sensor)] =
      StateOf(fsm, refs.temp_sensor, "optimal");
  state[static_cast<std::size_t>(refs.fridge)] =
      StateOf(fsm, refs.fridge, "closed");
  state[static_cast<std::size_t>(refs.oven)] = StateOf(fsm, refs.oven, "off");
  state[static_cast<std::size_t>(refs.tv)] = StateOf(fsm, refs.tv, "off");
  state[static_cast<std::size_t>(refs.washer)] =
      StateOf(fsm, refs.washer, "off");
  state[static_cast<std::size_t>(refs.dishwasher)] =
      StateOf(fsm, refs.dishwasher, "off");
  state[static_cast<std::size_t>(refs.coffee_maker)] =
      StateOf(fsm, refs.coffee_maker, "off");
  return state;
}

}  // namespace

std::string ViolationTypeName(ViolationType type) {
  switch (type) {
    case ViolationType::kTriggerActionSafety:
      return "T/A safety violation";
    case ViolationType::kAccessControl:
      return "integrity/access-control violation";
    case ViolationType::kConflictRace:
      return "conflicting-action/race violation";
    case ViolationType::kMaliciousApp:
      return "malicious-app safety violation";
    case ViolationType::kInsider:
      return "insider attack";
  }
  throw std::logic_error("unknown violation type");
}

AttackGenerator::AttackGenerator(const fsm::EnvironmentFsm& fsm,
                                 std::uint64_t seed)
    : fsm_(fsm), seed_(seed) {
  ResolveRefs(fsm);  // throws early when a required device is missing
}

std::vector<Violation> AttackGenerator::GenerateAll(
    ViolationCounts counts) const {
  const Refs refs = ResolveRefs(fsm_);
  util::Rng rng(seed_);
  std::vector<Violation> violations;
  // Distinctness of (state, action) pairs across all violations.
  std::set<std::pair<std::uint64_t, std::vector<int>>> seen;

  auto action_fingerprint = [&](const fsm::ActionVector& action) {
    return std::vector<int>(action.begin(), action.end());
  };

  auto emit = [&](ViolationType type, std::string description,
                  fsm::StateVector state, fsm::ActionVector action, int minute,
                  fsm::AppId app, fsm::UserId user) -> bool {
    const auto key = std::make_pair(fsm_.codec().Encode(state),
                                    action_fingerprint(action));
    if (!seen.insert(key).second) return false;
    violations.push_back({type, std::move(description), std::move(state),
                          std::move(action), minute, app, user});
    return true;
  };

  auto single = [&](fsm::DeviceId device, const char* action_name) {
    fsm::ActionVector action(fsm_.device_count(), fsm::kNoAction);
    action[static_cast<std::size_t>(device)] =
        ActionOf(fsm_, device, action_name);
    return action;
  };

  // Randomly perturb "background" appliance states to mint distinct
  // contexts for the same unsafe pattern; only plausible states are used.
  auto perturb = [&](fsm::StateVector state) {
    auto flip = [&](fsm::DeviceId device, std::initializer_list<const char*>
                                              plausible) {
      std::vector<fsm::StateIndex> options;
      for (const char* name : plausible) {
        options.push_back(StateOf(fsm_, device, name));
      }
      state[static_cast<std::size_t>(device)] =
          options[rng.NextIndex(options.size())];
    };
    flip(refs.tv, {"off", "standby", "on"});
    flip(refs.washer, {"off", "idle", "washing"});
    flip(refs.dishwasher, {"off", "idle", "running"});
    flip(refs.coffee_maker, {"off", "idle"});
    flip(refs.fridge, {"closed"});
    flip(refs.light, {"off", "on"});
    return state;
  };

  // ---- Type 1: T/A safety violations (default 114) -----------------------
  struct Type1Pattern {
    fsm::DeviceId device;
    const char* action;
    const char* description;
    bool occupied;
    int minute_lo, minute_hi;
  };
  const std::vector<Type1Pattern> type1_patterns = {
      // Attack windows are chosen to sit inside time buckets where the
      // action never occurs naturally: midday unlocks (wake and arrival
      // unlocks live in the [6,9) and [15,21) buckets) and small-hours
      // unlocks (the earliest natural wake unlock is past 05:00).
      {refs.lock, "unlock", "door unlocked while nobody is home", false,
       12 * 60 + 30, 15 * 60 - 15},
      {refs.lock, "unlock", "door unlocked while the user sleeps", true,
       1 * 60, 2 * 60 + 45},
      {refs.lock, "power_off", "smart lock powered off", false, 0,
       23 * 60},
      {refs.door_sensor, "power_off", "door sensor disabled", true, 0,
       23 * 60},
      {refs.temp_sensor, "power_off", "temperature/fire sensor disabled",
       true, 0, 23 * 60},
      {refs.thermostat, "power_off",
       "heater cut while the house is below the comfort band at night", true,
       0, 5 * 60},
      {refs.oven, "start_preheat", "oven started while nobody is home", false,
       9 * 60, 16 * 60},
      {refs.fridge, "power_off", "fridge powered off (food spoilage)", true,
       0, 23 * 60},
      {refs.thermostat, "increase_temp",
       "heater driven while the house is already above the comfort band",
       true, 12 * 60, 18 * 60},
  };
  {
    int produced = 0;
    std::size_t pattern_index = 0;
    int guard = 0;
    while (produced < counts.type1 && guard < counts.type1 * 50) {
      ++guard;
      const auto& pattern = type1_patterns[pattern_index];
      pattern_index = (pattern_index + 1) % type1_patterns.size();

      fsm::StateVector state =
          perturb(NightAwayState(fsm_, refs, pattern.occupied));
      // Pattern-specific context adjustments.
      if (pattern.device == refs.thermostat &&
          std::string(pattern.action) == "power_off") {
        state[static_cast<std::size_t>(refs.temp_sensor)] =
            StateOf(fsm_, refs.temp_sensor, "below_optimal");
        state[static_cast<std::size_t>(refs.thermostat)] =
            StateOf(fsm_, refs.thermostat, "heat");
      }
      if (pattern.device == refs.thermostat &&
          std::string(pattern.action) == "increase_temp") {
        state[static_cast<std::size_t>(refs.temp_sensor)] =
            StateOf(fsm_, refs.temp_sensor, "above_optimal");
      }
      const int minute = static_cast<int>(
          rng.NextInt(pattern.minute_lo, pattern.minute_hi));
      if (emit(ViolationType::kTriggerActionSafety, pattern.description,
               std::move(state), single(pattern.device, pattern.action),
               minute, fsm::kManualApp, 0)) {
        ++produced;
      }
    }
    if (produced < counts.type1) {
      throw std::logic_error("attack: could not mint enough type-1 contexts");
    }
  }

  // ---- Type 2: integrity / access-control violations (default 40) --------
  {
    int produced = 0;
    int guard = 0;
    while (produced < counts.type2 && guard < counts.type2 * 50) {
      ++guard;
      fsm::StateVector state = perturb(NightAwayState(fsm_, refs, false));
      // The door sensor reports an unauthorized user; the attack unlocks or
      // power-cycles the lock anyway, via an app that holds no lock
      // subscription (app 2 = maintain-optimal-temperature).
      state[static_cast<std::size_t>(refs.door_sensor)] =
          StateOf(fsm_, refs.door_sensor, "unauth_user");
      const bool unlock = produced % 2 == 0;
      const int minute = static_cast<int>(rng.NextInt(0, 23 * 60));
      if (emit(ViolationType::kAccessControl,
               unlock ? "unauthorized user at door, lock opened via "
                        "non-subscribed app"
                      : "unauthorized user at door, lock power-cycled via "
                        "non-subscribed app",
               std::move(state),
               single(refs.lock, unlock ? "unlock" : "power_off"), minute,
               /*via_app=*/2, /*via_user=*/1)) {
        ++produced;
      }
    }
    if (produced < counts.type2) {
      throw std::logic_error("attack: could not mint enough type-2 contexts");
    }
  }

  // ---- Type 3: conflicting-action / race violations (default 40) ---------
  {
    int produced = 0;
    int guard = 0;
    while (produced < counts.type3 && guard < counts.type3 * 50) {
      ++guard;
      fsm::StateVector state = perturb(NightAwayState(fsm_, refs, true));
      fsm::ActionVector action(fsm_.device_count(), fsm::kNoAction);
      // Contradictory multi-device joint actions that never co-occur
      // naturally: e.g. unlocking while cutting the lights and driving the
      // heater with the fridge open, all in one interval.
      switch (produced % 4) {
        case 0:
          action[static_cast<std::size_t>(refs.lock)] =
              ActionOf(fsm_, refs.lock, "unlock");
          action[static_cast<std::size_t>(refs.light)] =
              ActionOf(fsm_, refs.light, "power_off");
          state[static_cast<std::size_t>(refs.light)] =
              StateOf(fsm_, refs.light, "on");
          break;
        case 1:
          action[static_cast<std::size_t>(refs.thermostat)] =
              ActionOf(fsm_, refs.thermostat, "increase_temp");
          action[static_cast<std::size_t>(refs.fridge)] =
              ActionOf(fsm_, refs.fridge, "open_door");
          break;
        case 2:
          action[static_cast<std::size_t>(refs.lock)] =
              ActionOf(fsm_, refs.lock, "lock");
          action[static_cast<std::size_t>(refs.door_sensor)] =
              ActionOf(fsm_, refs.door_sensor, "power_off");
          break;
        default:
          action[static_cast<std::size_t>(refs.oven)] =
              ActionOf(fsm_, refs.oven, "start_preheat");
          action[static_cast<std::size_t>(refs.washer)] =
              ActionOf(fsm_, refs.washer, "power_off");
          state[static_cast<std::size_t>(refs.washer)] =
              StateOf(fsm_, refs.washer, "washing");
          break;
      }
      const int minute = static_cast<int>(rng.NextInt(0, 23 * 60));
      if (emit(ViolationType::kConflictRace,
               "conflicting joint action race", std::move(state),
               std::move(action), minute, fsm::kManualApp, 0)) {
        ++produced;
      }
    }
    if (produced < counts.type3) {
      throw std::logic_error("attack: could not mint enough type-3 contexts");
    }
  }

  // ---- Type 4: malicious apps (default 10) -------------------------------
  {
    int produced = 0;
    int guard = 0;
    while (produced < counts.type4 && guard < counts.type4 * 50) {
      ++guard;
      fsm::StateVector state = perturb(NightAwayState(fsm_, refs, true));
      // Classic sensor-suppression chain: a trojan app disables the
      // temperature/fire sensor, then heats the oven.
      fsm::ActionVector action(fsm_.device_count(), fsm::kNoAction);
      action[static_cast<std::size_t>(refs.temp_sensor)] =
          ActionOf(fsm_, refs.temp_sensor, "power_off");
      action[static_cast<std::size_t>(refs.oven)] =
          ActionOf(fsm_, refs.oven, "start_preheat");
      const int minute = static_cast<int>(rng.NextInt(1 * 60, 5 * 60));
      if (emit(ViolationType::kMaliciousApp,
               "trojan app suppresses fire sensor then heats oven",
               std::move(state), std::move(action), minute,
               /*via_app=*/3, /*via_user=*/0)) {
        ++produced;
      }
    }
    if (produced < counts.type4) {
      throw std::logic_error("attack: could not mint enough type-4 contexts");
    }
  }

  // ---- Type 5: insider attacks (default 10) ------------------------------
  {
    int produced = 0;
    int guard = 0;
    while (produced < counts.type5 && guard < counts.type5 * 50) {
      ++guard;
      fsm::StateVector state = perturb(NightAwayState(fsm_, refs, true));
      // An authorized user unlocks the door in the dead of night while
      // everyone sleeps — authorized in the access-control sense, never
      // seen in natural behavior.
      const int minute = static_cast<int>(rng.NextInt(1 * 60, 2 * 60 + 45));
      fsm::ActionVector action = single(refs.lock, "unlock");
      if (produced % 2 == 1) {
        action[static_cast<std::size_t>(refs.light)] =
            ActionOf(fsm_, refs.light, "power_off");
        state[static_cast<std::size_t>(refs.light)] =
            StateOf(fsm_, refs.light, "on");
      }
      if (emit(ViolationType::kInsider,
               "insider unlocks door during sleep hours", std::move(state),
               std::move(action), minute, fsm::kManualApp, /*via_user=*/1)) {
        ++produced;
      }
    }
    if (produced < counts.type5) {
      throw std::logic_error("attack: could not mint enough type-5 contexts");
    }
  }

  return violations;
}

fsm::Episode AttackGenerator::InjectIntoEpisode(const fsm::EnvironmentFsm& fsm,
                                                const fsm::Episode& base,
                                                const Violation& violation) {
  fsm::Episode injected(base.config(), base.start_time(),
                        base.initial_state());
  const int interval = base.config().interval_minutes;
  for (const auto& step : base.steps()) {
    const int minute = step.time.minute_of_day();
    if (minute <= violation.minute && violation.minute < minute + interval) {
      injected.Record(step.time, violation.state, violation.action);
    } else {
      injected.Record(step.time, step.state, step.action);
    }
  }
  (void)fsm;
  return injected;
}

}  // namespace jarvis::sim
