// Security-violation generator: reproduces the paper's 214 manually
// crafted violation instances (Section VI-B), drawn from the five types
// distilled from Soteria [4], IoTGuard [5], and Ding & Hu [19]:
//
//   Type 1 (114): trigger/action safety violations — an unsafe action for
//           the current context, e.g. unlocking the door while nobody is
//           home, powering off the temperature or door sensors, cutting
//           the heater while the house is cold at night.
//   Type 2 (40): integrity / access-control violations — actions issued
//           through apps or users without the required subscriptions, or
//           in unauthenticated contexts (door sensor reporting an
//           unauthorized user).
//   Type 3 (40): conflicting-action / race violations — joint actions that
//           contradict each other or never co-occur naturally in a single
//           interval (lock-and-unlock races, heat-while-venting).
//   Type 4 (10): malicious apps causing safety violations — app-attributed
//           chains such as suppressing the temperature sensor and then
//           running the oven.
//   Type 5 (10): insider attacks — authorized users acting at hours and in
//           contexts that natural behavior never produces (3am unlocks).
//
// Every instance is a concrete unsafe state transition (S, A) plus attack
// metadata, injectable into episodes to build the 21,400 malicious
// episodes of the evaluation.
#pragma once

#include <string>
#include <vector>

#include "fsm/environment.h"
#include "fsm/episode.h"
#include "util/rng.h"

namespace jarvis::sim {

enum class ViolationType {
  kTriggerActionSafety = 1,
  kAccessControl = 2,
  kConflictRace = 3,
  kMaliciousApp = 4,
  kInsider = 5,
};

std::string ViolationTypeName(ViolationType type);

struct Violation {
  ViolationType type;
  std::string description;
  fsm::StateVector state;    // the trigger context S
  fsm::ActionVector action;  // the unsafe action A
  int minute;                // minute-of-day the attack fires
  fsm::AppId via_app = fsm::kManualApp;
  fsm::UserId via_user = 0;
};

// Paper-exact counts per type.
struct ViolationCounts {
  int type1 = 114;
  int type2 = 40;
  int type3 = 40;
  int type4 = 10;
  int type5 = 10;
  int total() const { return type1 + type2 + type3 + type4 + type5; }
};

class AttackGenerator {
 public:
  // Requires the full 11-device home (the evaluation testbed); throws when
  // required devices are missing.
  AttackGenerator(const fsm::EnvironmentFsm& fsm, std::uint64_t seed);

  // Generates all violations with the paper's counts (default 214). All
  // (state, action) pairs are pairwise distinct.
  std::vector<Violation> GenerateAll(ViolationCounts counts = {}) const;

  // Splices a violation into a copy of the episode: the step at the
  // violation's minute has its state replaced by the violation context and
  // its action replaced by the unsafe action.
  static fsm::Episode InjectIntoEpisode(const fsm::EnvironmentFsm& fsm,
                                        const fsm::Episode& base,
                                        const Violation& violation);

 private:
  const fsm::EnvironmentFsm& fsm_;
  std::uint64_t seed_;
};

}  // namespace jarvis::sim
