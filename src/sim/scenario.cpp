#include "sim/scenario.h"

#include <algorithm>

namespace jarvis::sim {

namespace {

int ClampMinute(int minute) {
  return std::clamp(minute, 0, util::kMinutesPerDay - 1);
}

}  // namespace

ScenarioGenerator::ScenarioGenerator(ScheduleConfig schedule,
                                     WeatherConfig weather, PriceConfig prices,
                                     std::uint64_t seed)
    : schedule_(schedule),
      weather_(weather, seed ^ 0xabcd1234ULL),
      prices_(prices, seed ^ 0x5678ef90ULL),
      seed_(seed) {}

DayScenario ScenarioGenerator::Generate(int day) const {
  util::Rng rng(seed_ ^ (static_cast<std::uint64_t>(day) *
                         std::uint64_t{0x9e3779b97f4a7c15}));
  DayScenario scenario;
  scenario.day = day;
  scenario.weekend = util::SimTime::FromDayAndMinute(day, 0).is_weekend();

  auto jitter = [&](int mean) {
    return ClampMinute(static_cast<int>(
        rng.NextGaussian(mean, schedule_.jitter_stddev)));
  };

  // Wake never before 06:00: keeps the small-hours day-parts free of
  // natural lock/light activity, which the safety semantics rely on.
  scenario.wake_minute =
      std::max(6 * 60, jitter(scenario.weekend ? schedule_.weekend_wake_mean
                                               : schedule_.weekday_wake_mean));
  scenario.sleep_minute = jitter(schedule_.sleep_mean);
  if (scenario.sleep_minute <= scenario.wake_minute + 8 * 60) {
    scenario.sleep_minute = ClampMinute(scenario.wake_minute + 14 * 60);
  }

  if (!scenario.weekend) {
    const int leave = std::max(scenario.wake_minute + 30,
                               jitter(schedule_.weekday_leave_mean));
    const int arrive =
        std::max(leave + 4 * 60, jitter(schedule_.weekday_return_mean));
    scenario.departure_minutes.push_back(ClampMinute(leave));
    scenario.arrival_minutes.push_back(ClampMinute(arrive));
  } else if (rng.NextBool(schedule_.weekend_errand_probability)) {
    const int leave = jitter(11 * 60);
    const int arrive = std::max(leave + 45, jitter(13 * 60 + 30));
    scenario.departure_minutes.push_back(ClampMinute(std::max(
        leave, scenario.wake_minute + 45)));
    scenario.arrival_minutes.push_back(ClampMinute(arrive));
  }

  // Build the occupancy / awake series from the anchors.
  scenario.occupied.assign(util::kMinutesPerDay, true);
  scenario.someone_awake.assign(util::kMinutesPerDay, false);
  for (std::size_t i = 0; i < scenario.departure_minutes.size(); ++i) {
    const int leave = scenario.departure_minutes[i];
    const int arrive = i < scenario.arrival_minutes.size()
                           ? scenario.arrival_minutes[i]
                           : util::kMinutesPerDay - 1;
    for (int m = leave; m < arrive; ++m) {
      scenario.occupied[static_cast<std::size_t>(m)] = false;
    }
  }
  for (int m = scenario.wake_minute; m < scenario.sleep_minute; ++m) {
    scenario.someone_awake[static_cast<std::size_t>(m)] = true;
  }

  // Weather and price series, minute resolution.
  scenario.outdoor_c.resize(util::kMinutesPerDay);
  scenario.forecast_c.resize(util::kMinutesPerDay);
  scenario.price_usd_per_kwh.resize(util::kMinutesPerDay);
  for (int m = 0; m < util::kMinutesPerDay; ++m) {
    const util::SimTime t = util::SimTime::FromDayAndMinute(day, m);
    scenario.outdoor_c[static_cast<std::size_t>(m)] = weather_.OutdoorTempC(t);
    scenario.forecast_c[static_cast<std::size_t>(m)] = weather_.ForecastTempC(t);
    scenario.price_usd_per_kwh[static_cast<std::size_t>(m)] =
        prices_.PriceAt(t);
  }

  // The day's appliance demands: the resident's habits, lightly jittered.
  scenario.demands.push_back({"coffee_maker", "brew",
                              ClampMinute(scenario.wake_minute + 10), 8});
  const int dinner = jitter(18 * 60 + 30);
  scenario.demands.push_back({"oven", "start_preheat", dinner, 55});
  scenario.demands.push_back(
      {"dishwasher", "start_cycle", ClampMinute(dinner + 90), 75});
  if (scenario.weekend || rng.NextBool(0.25)) {
    scenario.demands.push_back(
        {"washer", "start_cycle", jitter(10 * 60 + 30), 65});
  }
  scenario.demands.push_back(
      {"tv", "power_on", ClampMinute(dinner + 45),
       std::max(30, scenario.sleep_minute - dinner - 60)});
  std::sort(scenario.demands.begin(), scenario.demands.end(),
            [](const ApplianceDemand& a, const ApplianceDemand& b) {
              return a.preferred_minute < b.preferred_minute;
            });
  return scenario;
}

}  // namespace jarvis::sim
