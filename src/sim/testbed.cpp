#include "sim/testbed.h"
#include <algorithm>

namespace jarvis::sim {

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      home_a_(fsm::BuildFullHome(config.users)),
      home_b_(fsm::BuildFullHome(config.users)),
      home_b_data_(std::make_unique<SmartStarDataset>(home_b_,
                                                      config.seed ^ 0xb0bULL)) {}

ScenarioGenerator Testbed::home_a_generator() const {
  return ScenarioGenerator(ScheduleConfig{}, WeatherConfig{}, PriceConfig{},
                           config_.seed);
}

std::vector<DayTrace> Testbed::HomeALearningTraces() const {
  // The learning days are spread across the year so the learnt safe
  // behavior covers seasonal routines (heating in winter, cooling in
  // summer). A single contiguous January week would never observe cooling
  // and P_safe would block it forever — the "rare situations" caveat of
  // Section V-B-1 applied to seasons.
  ResidentSimulator simulator(home_a_, ThermalConfig{}, config_.seed ^ 0xa11ceULL);
  const ScenarioGenerator generator = home_a_generator();
  std::vector<DayTrace> traces;
  const int stride = std::max(1, 365 / std::max(1, config_.learning_days));
  fsm::StateVector state = simulator.OvernightState();
  for (int i = 0; i < config_.learning_days; ++i) {
    const DayScenario scenario = generator.Generate(i * stride);
    traces.push_back(simulator.SimulateDay(scenario, state,
                                           ThermalConfig{}.initial_indoor_c));
  }
  return traces;
}

std::vector<DayTrace> Testbed::HomeAContiguousTraces(int day_count) const {
  ResidentSimulator simulator(home_a_, ThermalConfig{},
                              config_.seed ^ 0xa11ceULL);
  return simulator.SimulateDays(home_a_generator(), 0, day_count);
}

std::vector<events::Event> Testbed::HomeAEventStream(int day_count) const {
  std::vector<events::Event> stream;
  for (const auto& trace : HomeAContiguousTraces(day_count)) {
    stream.insert(stream.end(), trace.events.begin(), trace.events.end());
  }
  return stream;
}

std::vector<fsm::Episode> Testbed::HomeALearningEpisodes() const {
  std::vector<fsm::Episode> episodes;
  for (auto& trace : HomeALearningTraces()) {
    episodes.push_back(std::move(trace.episode));
  }
  return episodes;
}

std::vector<LabeledSample> Testbed::BuildTrainingSet() const {
  const auto episodes = HomeALearningEpisodes();
  const auto normal = fsm::ExtractTriggerActions(episodes);
  AnomalyGenerator generator(home_a_, config_.seed ^ 0xbadULL);
  return generator.BuildTrainingSet(normal, config_.benign_anomaly_samples);
}

std::vector<Violation> Testbed::BuildViolations() const {
  AttackGenerator generator(home_a_, config_.seed ^ 0xdeadULL);
  return generator.GenerateAll();
}

}  // namespace jarvis::sim
