#include "sim/thermal.h"

#include <algorithm>
#include <stdexcept>

namespace jarvis::sim {

ThermalModel::ThermalModel(ThermalConfig config)
    : config_(config), indoor_c_(config.initial_indoor_c) {
  if (config_.optimal_low_c >= config_.optimal_high_c) {
    throw std::invalid_argument("ThermalModel: empty comfort band");
  }
}

double ThermalModel::Step(HvacMode mode, double outdoor_c) {
  // Envelope exchange pulls indoor toward outdoor.
  indoor_c_ += config_.envelope_coefficient * (outdoor_c - indoor_c_);
  switch (mode) {
    case HvacMode::kHeat:
      indoor_c_ += config_.heat_rate_c_per_min;
      break;
    case HvacMode::kCool:
      indoor_c_ -= config_.cool_rate_c_per_min;
      break;
    case HvacMode::kOff:
      break;
  }
  return indoor_c_;
}

fsm::StateIndex ThermalModel::SensorState() const {
  // Device-library temp sensor states: 0=above_optimal, 1=below_optimal,
  // 2=optimal.
  if (indoor_c_ > config_.optimal_high_c) return 0;
  if (indoor_c_ < config_.optimal_low_c) return 1;
  return 2;
}

double ThermalModel::ComfortErrorC() const {
  if (indoor_c_ > config_.optimal_high_c) {
    return indoor_c_ - config_.optimal_high_c;
  }
  if (indoor_c_ < config_.optimal_low_c) {
    return config_.optimal_low_c - indoor_c_;
  }
  return 0.0;
}

HvacMode HvacModeFromThermostatState(fsm::StateIndex thermostat_state) {
  switch (thermostat_state) {
    case 0:
      return HvacMode::kHeat;
    case 1:
      return HvacMode::kCool;
    case 2:
      return HvacMode::kOff;
    default:
      throw std::out_of_range("HvacModeFromThermostatState: bad state");
  }
}

}  // namespace jarvis::sim
