#include "sim/weather.h"

#include <cmath>

namespace jarvis::sim {

WeatherModel::WeatherModel(WeatherConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

double WeatherModel::SmoothComponent(util::SimTime t) const {
  const double day_of_year = static_cast<double>(t.day() % 365);
  const double season_phase =
      2.0 * M_PI * (day_of_year - config_.coldest_day_of_year) / 365.0;
  const double seasonal =
      -config_.seasonal_amplitude_c * std::cos(season_phase);

  const double minute = static_cast<double>(t.minute_of_day());
  const double diurnal_phase =
      2.0 * M_PI * (minute - config_.warmest_minute_of_day) /
      static_cast<double>(util::kMinutesPerDay);
  const double diurnal = config_.diurnal_amplitude_c * std::cos(diurnal_phase);

  return config_.annual_mean_c + seasonal + diurnal;
}

double WeatherModel::DayNoise(int day, std::uint64_t stream) const {
  // A fresh generator per (seed, day, stream) keeps lookups stateless and
  // order-independent, so OutdoorTempC is a pure function of time.
  util::Rng rng(seed_ ^
                (static_cast<std::uint64_t>(day) *
                 std::uint64_t{0x517cc1b727220a95}) ^
                stream);
  return rng.NextGaussian(0.0, config_.noise_stddev_c);
}

double WeatherModel::OutdoorTempC(util::SimTime t) const {
  return SmoothComponent(t) + DayNoise(t.day(), 0);
}

double WeatherModel::ForecastTempC(util::SimTime t) const {
  // Forecasts miss the actual day's noise but carry their own small error.
  return SmoothComponent(t) + 0.3 * DayNoise(t.day(), 1);
}

}  // namespace jarvis::sim
