// Seeded fault injection over the event path. Two entry points share the
// fault vocabulary of faults::FaultSchedule:
//
//   FaultInjector — batch path: corrupts a recorded, time-sorted event
//     stream (e.g. a simulator trace) before it reaches the parser.
//   FaultyBus — live path: wraps events::EventBus::Publish and injects the
//     same faults one publication at a time, including retryable publish
//     failures (kPublishFail) that ReliablePublisher recovers from via
//     util::Retry.
//
// Both count every fault they actually inject (FaultCounters), so chaos
// tests can check downstream degradation accounting against ground truth.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "events/bus.h"
#include "events/event.h"
#include "faults/schedule.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace jarvis::faults {

// Batch-path injector. Apply() is deterministic for a given (schedule,
// stream) pair: it re-seeds its RNG from the schedule seed on every call,
// so the same call yields the same faulted stream bit for bit.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule);

  // Returns the faulted copy of `events` (which must be time-sorted, the
  // parser's own precondition). Counters accumulate across calls.
  std::vector<events::Event> Apply(const std::vector<events::Event>& events);

  const FaultCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = {}; }
  const FaultSchedule& schedule() const { return schedule_; }

  // Wires faults.injector.* counters mirroring FaultCounters (one obs
  // counter per fault kind, bumped by delta at the end of each Apply).
  // Ground truth for the chaos tests' counter round-trip. Null disables.
  void SetMetrics(obs::Registry* registry);

 private:
  FaultSchedule schedule_;
  FaultCounters counters_;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* duplicated_counter_ = nullptr;
  obs::Counter* delayed_counter_ = nullptr;
  obs::Counter* reordered_counter_ = nullptr;
  obs::Counter* corrupted_counter_ = nullptr;
  obs::Counter* offline_counter_ = nullptr;
  obs::Counter* flap_counter_ = nullptr;
  obs::Counter* stuck_counter_ = nullptr;
  obs::Counter* publish_fail_counter_ = nullptr;
};

// Live-path injector wrapping an EventBus. Delayed events are held back
// and delivered (with their original timestamps, i.e. as stragglers) once
// Flush() advances past their due time; Publish() flushes implicitly up to
// the published event's timestamp.
//
// Thread safety (DESIGN.md §13): thread-safe. One util::Mutex guards the
// RNG, counters, pending queue, and flap/stuck memory; fault decisions and
// state mutation happen under the lock, but the resulting deliveries go to
// inner_.Publish OUTSIDE the lock (the bus runs subscriber callbacks, and
// holding the injector lock across arbitrary callbacks invites deadlock).
// Deliveries from a single Publish/Flush call stay in schedule order; the
// interleaving between racing callers is whatever the race resolves to,
// exactly like racing Publish calls on the bare bus.
class FaultyBus {
 public:
  FaultyBus(events::EventBus& inner, FaultSchedule schedule);

  // Applies the schedule to one live publication. Returns false only when
  // a kPublishFail fault ate the event — the caller may retry (see
  // ReliablePublisher); every other fault consumes the event silently.
  bool Publish(const events::Event& event) JARVIS_EXCLUDES(mutex_);

  // Delivers held-back events whose due time is <= now.
  void Flush(util::SimTime now) JARVIS_EXCLUDES(mutex_);
  // Delivers everything still pending (end of stream).
  void FlushAll() JARVIS_EXCLUDES(mutex_);

  std::size_t pending_delayed() const JARVIS_EXCLUDES(mutex_);
  // Snapshot by value: a reference into guarded state would dangle the
  // moment another thread publishes.
  FaultCounters counters() const JARVIS_EXCLUDES(mutex_);
  events::EventBus& inner() { return inner_; }

 private:
  struct Pending {
    util::SimTime due;
    events::Event event;
  };

  // Moves every pending event with due <= now (in due order) into `out`;
  // the caller delivers them after releasing the lock.
  void CollectDueLocked(util::SimTime now, std::vector<events::Event>& out)
      JARVIS_REQUIRES(mutex_);

  events::EventBus& inner_;       // unguarded: thread-safe bus, const ref
  const FaultSchedule schedule_;  // unguarded: fixed at construction
  mutable util::Mutex mutex_;
  util::Rng rng_ JARVIS_GUARDED_BY(mutex_);
  FaultCounters counters_ JARVIS_GUARDED_BY(mutex_);
  std::vector<Pending> pending_ JARVIS_GUARDED_BY(mutex_);
  // Per-spec stuck values and per-device last sensor value (flap memory).
  std::vector<std::unordered_map<std::string, std::string>> stuck_
      JARVIS_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::string> last_value_
      JARVIS_GUARDED_BY(mutex_);
};

// Fault-recovery path: publishes through a FaultyBus, retrying failed
// publishes under util::Retry's bounded deterministic backoff.
class ReliablePublisher {
 public:
  explicit ReliablePublisher(FaultyBus& bus, util::RetryPolicy policy = {},
                             util::SleepFn sleep = nullptr);

  // True once the publish went through; false when the attempt budget ran
  // out and the event was abandoned.
  bool Publish(const events::Event& event);

  std::size_t retried_publishes() const { return retried_; }
  std::size_t abandoned_publishes() const { return abandoned_; }

 private:
  FaultyBus& bus_;
  util::RetryPolicy policy_;
  util::SleepFn sleep_;
  std::size_t retried_ = 0;
  std::size_t abandoned_ = 0;
};

}  // namespace jarvis::faults
