// Declarative fault model (DESIGN.md "Fault model & degradation behavior").
// A FaultSchedule lists independent fault processes — each with a kind, a
// per-event rate, an active time window, and an optional device scope —
// plus one seed. Given the same schedule and the same input stream, the
// injector reproduces the same faults bit for bit, so every chaos run is
// replayable.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/timeofday.h"

namespace jarvis::faults {

enum class FaultKind {
  kDrop,          // event silently lost in transit
  kDuplicate,     // event delivered twice (at-least-once delivery glitch)
  kDelay,         // event arrives late: stream position slips past its
                  // timestamp, so downstream sees an out-of-order straggler
  kReorder,       // event swapped with its successor
  kCorruptField,  // one schema field mangled to garbage
  kDeviceOffline, // a device's events suppressed while the window is active
  kDeviceFlap,    // a device rapidly re-reports its previous value before
                  // the current one (connectivity flapping)
  kStuckSensor,   // sensor reports freeze at the first in-window value
  kPublishFail,   // live-bus publish fails outright (retryable; see
                  // faults::ReliablePublisher) — batch injection ignores it
};

std::string FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kDrop;
  // Per-event Bernoulli probability in [0, 1]; 1.0 makes the fault
  // deterministic within the window (e.g. a hard device outage).
  double rate = 0.0;
  // Active window in absolute simulation minutes, [start, end).
  util::SimTime window_start{0};
  util::SimTime window_end{std::numeric_limits<std::int64_t>::max()};
  // Device scope for device-level faults; "" matches every device.
  std::string device_label;
  int delay_minutes = 5;    // kDelay: how late the event arrives
  std::string stuck_value;  // kStuckSensor: forced value ("" = first seen)

  bool AppliesAt(util::SimTime t) const {
    return t >= window_start && t < window_end;
  }
  bool AppliesTo(const std::string& device) const {
    return device_label.empty() || device_label == device;
  }
};

struct FaultSchedule {
  std::vector<FaultSpec> specs;
  std::uint64_t seed = 0;

  bool empty() const { return specs.empty(); }
};

// Counts of faults actually injected, by kind — the ground truth the chaos
// suite checks core::HealthReport counters against.
struct FaultCounters {
  std::size_t dropped = 0;
  std::size_t duplicated = 0;        // extra copies emitted
  std::size_t delayed = 0;
  std::size_t reordered = 0;         // swaps performed
  std::size_t corrupted = 0;
  std::size_t offline_drops = 0;
  std::size_t flap_reports = 0;      // extra contradictory reports emitted
  std::size_t stuck_reports = 0;     // reports rewritten to the stuck value
  std::size_t publish_failures = 0;  // failed live publishes (pre-retry)

  std::size_t total() const {
    return dropped + duplicated + delayed + reordered + corrupted +
           offline_drops + flap_reports + stuck_reports + publish_failures;
  }
  FaultCounters& operator+=(const FaultCounters& other);
  bool operator==(const FaultCounters&) const = default;
};

}  // namespace jarvis::faults
