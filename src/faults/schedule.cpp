#include "faults/schedule.h"

#include <stdexcept>

namespace jarvis::faults {

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCorruptField:
      return "corrupt-field";
    case FaultKind::kDeviceOffline:
      return "device-offline";
    case FaultKind::kDeviceFlap:
      return "device-flap";
    case FaultKind::kStuckSensor:
      return "stuck-sensor";
    case FaultKind::kPublishFail:
      return "publish-fail";
  }
  throw std::logic_error("unknown fault kind");
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& other) {
  dropped += other.dropped;
  duplicated += other.duplicated;
  delayed += other.delayed;
  reordered += other.reordered;
  corrupted += other.corrupted;
  offline_drops += other.offline_drops;
  flap_reports += other.flap_reports;
  stuck_reports += other.stuck_reports;
  publish_failures += other.publish_failures;
  return *this;
}

}  // namespace jarvis::faults
