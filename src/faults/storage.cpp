#include "faults/storage.h"

#include <stdexcept>

namespace jarvis::faults {

namespace {

bool Applies(const StorageFaultSpec& spec, const std::string& path) {
  return spec.path_substring.empty() ||
         path.find(spec.path_substring) != std::string::npos;
}

std::size_t KeptBytes(const StorageFaultSpec& spec, std::size_t size) {
  double fraction = spec.keep_fraction;
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  return static_cast<std::size_t>(fraction * static_cast<double>(size));
}

}  // namespace

std::string StorageFaultKindName(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kTornWrite:
      return "torn-write";
    case StorageFaultKind::kTruncation:
      return "truncation";
    case StorageFaultKind::kBitFlip:
      return "bit-flip";
    case StorageFaultKind::kRenameFail:
      return "rename-fail";
  }
  throw std::logic_error("unknown storage fault kind");
}

StorageFaultCounters& StorageFaultCounters::operator+=(
    const StorageFaultCounters& other) {
  torn_writes += other.torn_writes;
  truncations += other.truncations;
  bit_flips += other.bit_flips;
  rename_failures += other.rename_failures;
  return *this;
}

StorageFaultInjector::StorageFaultInjector(
    std::vector<StorageFaultSpec> specs, std::uint64_t seed)
    : specs_(std::move(specs)), rng_(seed) {
  for (const StorageFaultSpec& spec : specs_) {
    if (spec.rate < 0.0 || spec.rate > 1.0) {
      throw std::invalid_argument(
          "StorageFaultInjector: rate outside [0, 1]");
    }
  }
}

void StorageFaultInjector::Reseed(std::uint64_t seed) {
  rng_ = util::Rng(seed);
}

void StorageFaultInjector::OnWrite(const std::string& path,
                                   std::string& payload) {
  for (const StorageFaultSpec& spec : specs_) {
    if (spec.kind == StorageFaultKind::kRenameFail) continue;
    if (!Applies(spec, path)) continue;
    // Draw even when the payload is empty so the decision stream is a
    // function of the write sequence alone.
    const bool fire = rng_.NextDouble() < spec.rate;
    if (!fire || payload.empty()) continue;
    switch (spec.kind) {
      case StorageFaultKind::kTornWrite: {
        // The tail of the write never hit the platter: length preserved,
        // bytes past the tear read back as zeros.
        const std::size_t kept = KeptBytes(spec, payload.size());
        for (std::size_t i = kept; i < payload.size(); ++i) payload[i] = 0;
        ++counters_.torn_writes;
        break;
      }
      case StorageFaultKind::kTruncation:
        payload.resize(KeptBytes(spec, payload.size()));
        ++counters_.truncations;
        break;
      case StorageFaultKind::kBitFlip: {
        const int flips = spec.bit_flips < 1 ? 1 : spec.bit_flips;
        for (int i = 0; i < flips; ++i) {
          const std::size_t byte = static_cast<std::size_t>(
              rng_.NextU64() % payload.size());
          const int bit = static_cast<int>(rng_.NextU64() % 8);
          payload[byte] = static_cast<char>(
              static_cast<unsigned char>(payload[byte]) ^ (1u << bit));
        }
        ++counters_.bit_flips;
        break;
      }
      case StorageFaultKind::kRenameFail:
        break;  // handled in OnRename
    }
  }
}

bool StorageFaultInjector::OnRename(const std::string& path) {
  for (const StorageFaultSpec& spec : specs_) {
    if (spec.kind != StorageFaultKind::kRenameFail) continue;
    if (!Applies(spec, path)) continue;
    if (rng_.NextDouble() < spec.rate) {
      ++counters_.rename_failures;
      return false;
    }
  }
  return true;
}

}  // namespace jarvis::faults
