// Storage fault family: deterministic corruption of the durable write
// path, mirroring the event-path fault model (faults::FaultSchedule) for
// files. A StorageFaultInjector plugs into util::io::AtomicWriteFile as
// its WriteInterceptor, so the chaos suite can hand a fleet's checkpoint
// writes a seeded schedule of torn writes, truncations, bit flips, and
// failed renames — and then assert that persist::Checkpoint::Parse detects
// every one of them (checksums/lengths) and the pipeline degrades
// per-section to fail-safe instead of serving garbage.
//
// Determinism: decisions come from one Rng seeded at construction (or
// Reseed), consumed in write order. The same injector seed over the same
// sequence of writes corrupts the same bytes the same way, so every chaos
// run is replayable. Counters are the ground truth recovery accounting is
// checked against, exactly like FaultCounters on the event path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/io.h"
#include "util/rng.h"

namespace jarvis::faults {

enum class StorageFaultKind {
  kTornWrite,   // only a prefix of the payload lands; the tail reads as
                // zeros (length preserved — a tear inside the file)
  kTruncation,  // the file is cut short at a fraction of its length
  kBitFlip,     // random bit(s) flipped inside the payload
  kRenameFail,  // the commit rename fails: old file survives, write throws
};

std::string StorageFaultKindName(StorageFaultKind kind);

struct StorageFaultSpec {
  StorageFaultKind kind = StorageFaultKind::kBitFlip;
  // Per-write Bernoulli probability in [0, 1]; 1.0 faults every matching
  // write deterministically.
  double rate = 0.0;
  // Path scope: the fault applies only to paths containing this substring
  // ("" matches every write).
  std::string path_substring;
  // kTornWrite / kTruncation: fraction of the payload that survives.
  double keep_fraction = 0.5;
  // kBitFlip: bits flipped per faulted write.
  int bit_flips = 1;
};

struct StorageFaultCounters {
  std::size_t torn_writes = 0;
  std::size_t truncations = 0;
  std::size_t bit_flips = 0;       // faulted writes, not individual bits
  std::size_t rename_failures = 0;

  std::size_t total() const {
    return torn_writes + truncations + bit_flips + rename_failures;
  }
  StorageFaultCounters& operator+=(const StorageFaultCounters& other);
  bool operator==(const StorageFaultCounters&) const = default;
};

// Thread-compatible, like the batch FaultInjector: chaos tests drive one
// injector from one thread (the fleet's checkpoint writes are issued by
// the coordinating thread, not tenant jobs).
class StorageFaultInjector final : public util::io::WriteInterceptor {
 public:
  StorageFaultInjector(std::vector<StorageFaultSpec> specs,
                       std::uint64_t seed);

  // util::io::WriteInterceptor: applies every matching spec in order.
  void OnWrite(const std::string& path, std::string& payload) override;
  bool OnRename(const std::string& path) override;

  const StorageFaultCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = {}; }
  // Restarts the decision stream (a fresh deterministic replay).
  void Reseed(std::uint64_t seed);

 private:
  std::vector<StorageFaultSpec> specs_;
  util::Rng rng_;
  StorageFaultCounters counters_;
};

}  // namespace jarvis::faults
