#include "faults/injector.h"

#include <algorithm>
#include <cstddef>
#include <limits>

namespace jarvis::faults {

namespace {

constexpr std::uint64_t kInjectorSalt = 0xfa17ULL;

// Mangles one field chosen by the RNG. The garbage strings are valid UTF-8
// but outside every device vocabulary, so downstream stages classify them
// as unknown rather than crashing.
void CorruptField(util::Rng& rng, events::Event* event) {
  switch (rng.NextIndex(3)) {
    case 0:
      event->attribute_value = "??corrupt??";
      break;
    case 1:
      event->command = "??corrupt??";
      break;
    default:
      event->device_label += "~corrupt";
      break;
  }
}

bool IsSensorReport(const events::Event& event) {
  return event.command.empty();
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultInjector (batch path)

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)) {}

void FaultInjector::SetMetrics(obs::Registry* registry) {
  if (registry == nullptr) {
    dropped_counter_ = nullptr;
    duplicated_counter_ = nullptr;
    delayed_counter_ = nullptr;
    reordered_counter_ = nullptr;
    corrupted_counter_ = nullptr;
    offline_counter_ = nullptr;
    flap_counter_ = nullptr;
    stuck_counter_ = nullptr;
    publish_fail_counter_ = nullptr;
    return;
  }
  dropped_counter_ = registry->GetCounter("faults.injector.dropped");
  duplicated_counter_ = registry->GetCounter("faults.injector.duplicated");
  delayed_counter_ = registry->GetCounter("faults.injector.delayed");
  reordered_counter_ = registry->GetCounter("faults.injector.reordered");
  corrupted_counter_ = registry->GetCounter("faults.injector.corrupted");
  offline_counter_ = registry->GetCounter("faults.injector.offline_drops");
  flap_counter_ = registry->GetCounter("faults.injector.flap_reports");
  stuck_counter_ = registry->GetCounter("faults.injector.stuck_reports");
  publish_fail_counter_ =
      registry->GetCounter("faults.injector.publish_failures");
}

std::vector<events::Event> FaultInjector::Apply(
    const std::vector<events::Event>& events) {
  const FaultCounters before = counters_;
  util::Rng rng(schedule_.seed ^ kInjectorSalt);
  std::vector<std::unordered_map<std::string, std::string>> stuck(
      schedule_.specs.size());
  std::unordered_map<std::string, std::string> last_value;
  struct Pending {
    util::SimTime due;
    events::Event event;
  };
  std::vector<Pending> pending;

  std::vector<events::Event> out;
  out.reserve(events.size());

  const auto flush_due = [&](util::SimTime now) {
    // Small list: scan for due arrivals, earliest first, keep order stable.
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Pending& a, const Pending& b) {
                       return a.due < b.due;
                     });
    std::size_t emitted = 0;
    for (const auto& p : pending) {
      if (p.due > now) break;
      out.push_back(p.event);  // original timestamp: arrives as a straggler
      ++emitted;
    }
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(emitted));
  };

  for (const auto& input : events) {
    flush_due(input.date);

    events::Event event = input;
    bool drop = false;
    bool flap = false;
    bool delayed = false;
    int delay_minutes = 0;
    std::size_t copies = 0;

    // Loss faults first, whatever their schedule position: an event that
    // never arrives must not also be duplicated, corrupted, or delayed.
    for (std::size_t i = 0; i < schedule_.specs.size() && !drop; ++i) {
      const FaultSpec& spec = schedule_.specs[i];
      if (!spec.AppliesAt(input.date)) continue;
      if (spec.kind == FaultKind::kDeviceOffline) {
        if (spec.AppliesTo(input.device_label) && rng.NextBool(spec.rate)) {
          ++counters_.offline_drops;
          drop = true;
        }
      } else if (spec.kind == FaultKind::kDrop) {
        if (rng.NextBool(spec.rate)) {
          ++counters_.dropped;
          drop = true;
        }
      }
    }

    for (std::size_t i = 0; i < schedule_.specs.size() && !drop; ++i) {
      const FaultSpec& spec = schedule_.specs[i];
      if (!spec.AppliesAt(input.date)) continue;
      switch (spec.kind) {
        case FaultKind::kDeviceOffline:
        case FaultKind::kDrop:
          break;  // handled in the loss pass above
        case FaultKind::kStuckSensor:
          if (IsSensorReport(input) && spec.AppliesTo(input.device_label)) {
            std::string& stuck_value = stuck[i][input.device_label];
            if (stuck_value.empty()) {
              stuck_value = spec.stuck_value.empty() ? input.attribute_value
                                                     : spec.stuck_value;
            }
            if (rng.NextBool(spec.rate) &&
                event.attribute_value != stuck_value) {
              event.attribute_value = stuck_value;
              ++counters_.stuck_reports;
            }
          }
          break;
        case FaultKind::kCorruptField:
          if (rng.NextBool(spec.rate)) {
            CorruptField(rng, &event);
            ++counters_.corrupted;
          }
          break;
        case FaultKind::kDeviceFlap:
          if (IsSensorReport(input) && spec.AppliesTo(input.device_label) &&
              rng.NextBool(spec.rate)) {
            flap = true;
          }
          break;
        case FaultKind::kDuplicate:
          if (rng.NextBool(spec.rate)) {
            ++copies;
            ++counters_.duplicated;
          }
          break;
        case FaultKind::kDelay:
          if (rng.NextBool(spec.rate)) {
            delayed = true;
            delay_minutes = spec.delay_minutes;
            ++counters_.delayed;
          }
          break;
        case FaultKind::kReorder:    // second pass below
        case FaultKind::kPublishFail:  // live path only
          break;
      }
    }

    if (!drop) {
      if (flap) {
        const auto it = last_value.find(input.device_label);
        if (it != last_value.end() && it->second != event.attribute_value) {
          events::Event stale = event;
          stale.attribute_value = it->second;
          out.push_back(stale);
          ++counters_.flap_reports;
        }
      }
      if (delayed) {
        // Duplicated copies ride along with the delayed original.
        for (std::size_t c = 0; c <= copies; ++c) {
          pending.push_back({input.date + delay_minutes, event});
        }
      } else {
        out.push_back(event);
        for (std::size_t c = 0; c < copies; ++c) out.push_back(event);
      }
    }
    // Flap memory tracks what the device last reported (pre-fault value),
    // whether or not the transmission survived.
    if (IsSensorReport(input)) last_value[input.device_label] = input.attribute_value;
  }
  flush_due(util::SimTime(std::numeric_limits<std::int64_t>::max()));

  for (const FaultSpec& spec : schedule_.specs) {
    if (spec.kind != FaultKind::kReorder) continue;
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (!spec.AppliesAt(out[i].date)) continue;
      if (rng.NextBool(spec.rate)) {
        std::swap(out[i], out[i + 1]);
        ++counters_.reordered;
        ++i;  // do not immediately re-reorder the swapped pair
      }
    }
  }
  if (dropped_counter_ != nullptr) {
    // Mirror this Apply's FaultCounters deltas into the obs registry so
    // the two accountings can never drift apart.
    dropped_counter_->Increment(counters_.dropped - before.dropped);
    duplicated_counter_->Increment(counters_.duplicated - before.duplicated);
    delayed_counter_->Increment(counters_.delayed - before.delayed);
    reordered_counter_->Increment(counters_.reordered - before.reordered);
    corrupted_counter_->Increment(counters_.corrupted - before.corrupted);
    offline_counter_->Increment(counters_.offline_drops -
                                before.offline_drops);
    flap_counter_->Increment(counters_.flap_reports - before.flap_reports);
    stuck_counter_->Increment(counters_.stuck_reports - before.stuck_reports);
    publish_fail_counter_->Increment(counters_.publish_failures -
                                     before.publish_failures);
  }
  return out;
}

// ---------------------------------------------------------------------------
// FaultyBus (live path)

FaultyBus::FaultyBus(events::EventBus& inner, FaultSchedule schedule)
    : inner_(inner),
      schedule_(std::move(schedule)),
      rng_(schedule_.seed ^ kInjectorSalt),
      stuck_(schedule_.specs.size()) {}

void FaultyBus::CollectDueLocked(util::SimTime now,
                                 std::vector<events::Event>& out) {
  // Small list: scan for due arrivals, earliest first, keep order stable.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.due < b.due;
                   });
  std::size_t emitted = 0;
  for (const auto& p : pending_) {
    if (p.due > now) break;
    out.push_back(p.event);  // original timestamp: arrives as a straggler
    ++emitted;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(emitted));
}

void FaultyBus::Flush(util::SimTime now) {
  std::vector<events::Event> due;
  {
    util::MutexLock lock(mutex_);
    CollectDueLocked(now, due);
  }
  for (const auto& event : due) inner_.Publish(event);
}

void FaultyBus::FlushAll() {
  Flush(util::SimTime(std::numeric_limits<std::int64_t>::max()));
}

std::size_t FaultyBus::pending_delayed() const {
  util::MutexLock lock(mutex_);
  return pending_.size();
}

FaultCounters FaultyBus::counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

bool FaultyBus::Publish(const events::Event& input) {
  // Every fault decision and state mutation happens under one lock hold;
  // the decided deliveries go to the inner bus only after release, so
  // subscriber callbacks never run while the injector lock is held.
  std::vector<events::Event> deliver;
  bool accepted = true;
  {
    util::MutexLock lock(mutex_);
    CollectDueLocked(input.date, deliver);

    events::Event event = input;
    bool lost = false;
    bool flap = false;
    bool delayed = false;
    int delay_minutes = 0;
    std::size_t copies = 0;

    // Loss faults first, whatever their schedule position (see Apply).
    for (const FaultSpec& spec : schedule_.specs) {
      if (!spec.AppliesAt(input.date)) continue;
      if (spec.kind == FaultKind::kPublishFail) {
        if (rng_.NextBool(spec.rate)) {
          ++counters_.publish_failures;
          accepted = false;  // retryable: the event was not delivered
          lost = true;
          break;
        }
      } else if (spec.kind == FaultKind::kDeviceOffline) {
        if (spec.AppliesTo(input.device_label) && rng_.NextBool(spec.rate)) {
          ++counters_.offline_drops;
          lost = true;  // consumed, silently
          break;
        }
      } else if (spec.kind == FaultKind::kDrop) {
        if (rng_.NextBool(spec.rate)) {
          ++counters_.dropped;
          lost = true;
          break;
        }
      }
    }

    for (std::size_t i = 0; i < schedule_.specs.size() && !lost; ++i) {
      const FaultSpec& spec = schedule_.specs[i];
      if (!spec.AppliesAt(input.date)) continue;
      switch (spec.kind) {
        case FaultKind::kPublishFail:
        case FaultKind::kDeviceOffline:
        case FaultKind::kDrop:
          break;  // handled in the loss pass above
        case FaultKind::kStuckSensor:
          if (IsSensorReport(input) && spec.AppliesTo(input.device_label)) {
            std::string& stuck_value = stuck_[i][input.device_label];
            if (stuck_value.empty()) {
              stuck_value = spec.stuck_value.empty() ? input.attribute_value
                                                     : spec.stuck_value;
            }
            if (rng_.NextBool(spec.rate) &&
                event.attribute_value != stuck_value) {
              event.attribute_value = stuck_value;
              ++counters_.stuck_reports;
            }
          }
          break;
        case FaultKind::kCorruptField:
          if (rng_.NextBool(spec.rate)) {
            CorruptField(rng_, &event);
            ++counters_.corrupted;
          }
          break;
        case FaultKind::kDeviceFlap:
          if (IsSensorReport(input) && spec.AppliesTo(input.device_label) &&
              rng_.NextBool(spec.rate)) {
            flap = true;
          }
          break;
        case FaultKind::kDuplicate:
          if (rng_.NextBool(spec.rate)) {
            ++copies;
            ++counters_.duplicated;
          }
          break;
        case FaultKind::kDelay:
          if (rng_.NextBool(spec.rate)) {
            delayed = true;
            delay_minutes = spec.delay_minutes;
            ++counters_.delayed;
          }
          break;
        case FaultKind::kReorder:  // meaningless one event at a time
          break;
      }
    }

    if (!lost) {
      if (flap) {
        const auto it = last_value_.find(input.device_label);
        if (it != last_value_.end() && it->second != event.attribute_value) {
          events::Event stale = event;
          stale.attribute_value = it->second;
          deliver.push_back(std::move(stale));
          ++counters_.flap_reports;
        }
      }
      if (IsSensorReport(input)) {
        last_value_[input.device_label] = input.attribute_value;
      }
      if (delayed) {
        for (std::size_t c = 0; c <= copies; ++c) {
          pending_.push_back({input.date + delay_minutes, event});
        }
      } else {
        deliver.push_back(event);
        for (std::size_t c = 0; c < copies; ++c) deliver.push_back(event);
      }
    }
  }

  for (const auto& event : deliver) inner_.Publish(event);
  return accepted;
}

// ---------------------------------------------------------------------------
// ReliablePublisher

ReliablePublisher::ReliablePublisher(FaultyBus& bus, util::RetryPolicy policy,
                                     util::SleepFn sleep)
    : bus_(bus), policy_(policy), sleep_(std::move(sleep)) {}

bool ReliablePublisher::Publish(const events::Event& event) {
  const util::RetryResult result = util::Retry(
      policy_, [&] { return bus_.Publish(event); }, sleep_);
  if (result.attempts > 1) {
    retried_ += static_cast<std::size_t>(result.attempts - 1);
  }
  if (!result.succeeded) ++abandoned_;
  return result.succeeded;
}

}  // namespace jarvis::faults
