// Episodes (Definition 2): ordered state/action records over a time period
// T with interval I. The smart-home instantiation uses T = 1 day and
// I = 1 minute, giving 1440 time instances per episode (Section V-A-2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsm/environment.h"
#include "fsm/state.h"
#include "util/timeofday.h"

namespace jarvis::fsm {

// Episode shape parameters {T, I}; both in minutes.
struct EpisodeConfig {
  int period_minutes = util::kMinutesPerDay;  // T
  int interval_minutes = 1;                   // I

  // n = ceil(T / I): number of time instances per episode.
  int StepsPerEpisode() const {
    return (period_minutes + interval_minutes - 1) / interval_minutes;
  }
};

// One recorded time instance: the state entered and the joint action taken
// at that instance (A_t produces S_{t+1}).
struct EpisodeStep {
  util::SimTime time;
  StateVector state;
  ActionVector action;
};

// A recorded episode: initial state plus every (state, action) pair.
class Episode {
 public:
  Episode(EpisodeConfig config, util::SimTime start, StateVector initial_state);

  const EpisodeConfig& config() const { return config_; }
  util::SimTime start_time() const { return start_; }
  const StateVector& initial_state() const { return initial_state_; }

  // Appends the next step; the step count may not exceed StepsPerEpisode().
  void Record(util::SimTime time, StateVector state, ActionVector action);

  const std::vector<EpisodeStep>& steps() const { return steps_; }
  std::size_t size() const { return steps_.size(); }
  bool IsComplete() const {
    return steps_.size() ==
           static_cast<std::size_t>(config_.StepsPerEpisode());
  }

  // The state reached after the final recorded action, computed through the
  // FSM (the next episode's natural initial state).
  StateVector FinalState(const EnvironmentFsm& fsm) const;

  std::string DebugString(const EnvironmentFsm& fsm) const;

 private:
  EpisodeConfig config_;
  util::SimTime start_;
  StateVector initial_state_;
  std::vector<EpisodeStep> steps_;
};

// A (trigger, action) observation: trigger is the current composite state
// S_t, the action is A_{t+1} (Section IV-A's T/A behavior). The minute of
// day situates the behavior in time for dis-utility estimation.
struct TriggerAction {
  StateVector trigger_state;
  ActionVector action;
  int minute_of_day = 0;
};

// Appends one episode's T/A observations (all-no-op steps skipped) to
// `out`. Returns the number appended.
std::size_t AppendTriggerActions(const Episode& episode,
                                 std::vector<TriggerAction>* out);

// Flattens episodes into the T/A training dataset TD of Algorithm 1,
// skipping all-no-op steps (no transition to learn).
std::vector<TriggerAction> ExtractTriggerActions(
    const std::vector<Episode>& episodes);

}  // namespace jarvis::fsm
