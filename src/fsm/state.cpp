#include "fsm/state.h"

#include <limits>

#include "util/check.h"

namespace jarvis::fsm {

StateCodec::StateCodec(const std::vector<Device>& devices) {
  radices_.reserve(devices.size());
  action_counts_.reserve(devices.size());
  weights_.reserve(devices.size());
  mini_offsets_.reserve(devices.size());

  for (const auto& device : devices) {
    radices_.push_back(device.state_count());
    action_counts_.push_back(device.action_count());

    weights_.push_back(state_space_size_);
    const auto radix = static_cast<std::uint64_t>(device.state_count());
    JARVIS_CHECK(
        state_space_size_ <= std::numeric_limits<std::uint64_t>::max() / radix,
        "StateCodec: joint state space > 2^64");
    state_space_size_ *= radix;

    mini_offsets_.push_back(mini_action_count_);
    mini_action_count_ += static_cast<std::size_t>(device.action_count()) + 1;
    one_hot_width_ += static_cast<std::size_t>(device.state_count());
  }
}

std::uint64_t StateCodec::Encode(const StateVector& state) const {
  JARVIS_CHECK_EQ(state.size(), radices_.size(),
                  "StateCodec::Encode: width mismatch");
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    JARVIS_CHECK(state[i] >= 0 && state[i] < radices_[i],
                 "StateCodec::Encode: state index ", state[i],
                 " out of range for device ", i);
    key += static_cast<std::uint64_t>(state[i]) * weights_[i];
  }
  return key;
}

StateVector StateCodec::Decode(std::uint64_t key) const {
  StateVector state(radices_.size());
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    state[i] =
        static_cast<StateIndex>((key / weights_[i]) %
                                static_cast<std::uint64_t>(radices_[i]));
  }
  return state;
}

std::size_t StateCodec::MiniActionSlot(const MiniAction& mini) const {
  const auto device = static_cast<std::size_t>(mini.device);
  JARVIS_CHECK(mini.device >= 0 && device < mini_offsets_.size(),
               "MiniActionSlot: bad device ", mini.device);
  if (mini.action == kNoAction) return NoOpSlot(mini.device);
  JARVIS_CHECK(mini.action >= 0 && mini.action < action_counts_[device],
               "MiniActionSlot: bad action ", mini.action, " on device ",
               mini.device);
  return mini_offsets_[device] + static_cast<std::size_t>(mini.action);
}

MiniAction StateCodec::SlotToMiniAction(std::size_t slot) const {
  JARVIS_CHECK_LT(slot, mini_action_count_, "SlotToMiniAction: bad slot");
  for (std::size_t i = mini_offsets_.size(); i-- > 0;) {
    if (slot >= mini_offsets_[i]) {
      const std::size_t local = slot - mini_offsets_[i];
      const auto actions = static_cast<std::size_t>(action_counts_[i]);
      return MiniAction{static_cast<DeviceId>(i),
                        local == actions ? kNoAction
                                         : static_cast<ActionIndex>(local)};
    }
  }
  JARVIS_CHECK(false, "SlotToMiniAction: unreachable");
}

std::size_t StateCodec::NoOpSlot(DeviceId device) const {
  const auto idx = static_cast<std::size_t>(device);
  JARVIS_CHECK(device >= 0 && idx < mini_offsets_.size(),
               "NoOpSlot: bad device ", device);
  return mini_offsets_[idx] + static_cast<std::size_t>(action_counts_[idx]);
}

std::vector<std::size_t> StateCodec::ActionToSlots(
    const ActionVector& action) const {
  JARVIS_CHECK_EQ(action.size(), radices_.size(),
                  "ActionToSlots: width mismatch");
  std::vector<std::size_t> slots;
  slots.reserve(action.size());
  for (std::size_t i = 0; i < action.size(); ++i) {
    slots.push_back(
        MiniActionSlot({static_cast<DeviceId>(i), action[i]}));
  }
  return slots;
}

ActionVector StateCodec::SlotsToAction(
    const std::vector<std::size_t>& slots) const {
  ActionVector action(radices_.size(), kNoAction);
  for (std::size_t slot : slots) {
    const MiniAction mini = SlotToMiniAction(slot);
    action[static_cast<std::size_t>(mini.device)] = mini.action;
  }
  return action;
}

std::vector<double> StateCodec::OneHot(const StateVector& state) const {
  JARVIS_CHECK_EQ(state.size(), radices_.size(), "OneHot: width mismatch");
  std::vector<double> features(one_hot_width_, 0.0);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    JARVIS_CHECK(state[i] >= 0 && state[i] < radices_[i],
                 "OneHot: state index ", state[i],
                 " out of range for device ", i);
    features[offset + static_cast<std::size_t>(state[i])] = 1.0;
    offset += static_cast<std::size_t>(radices_[i]);
  }
  return features;
}

std::string StateCodec::StateToString(const std::vector<Device>& devices,
                                      const StateVector& state) const {
  std::string out = "(";
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (i) out += ", ";
    out += devices[i].state_name(state[i]);
  }
  out += ")";
  return out;
}

std::string StateCodec::ActionToString(const std::vector<Device>& devices,
                                       const ActionVector& action) const {
  std::string out = "(";
  for (std::size_t i = 0; i < action.size(); ++i) {
    if (i) out += ", ";
    out += action[i] == kNoAction ? "O" : devices[i].action_name(action[i]);
  }
  out += ")";
  return out;
}

}  // namespace jarvis::fsm
