#include "fsm/environment.h"

#include "util/check.h"

namespace jarvis::fsm {

std::string RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kAccepted:
      return "accepted";
    case RejectReason::kUnauthorizedUserApp:
      return "user-not-subscribed-to-app";
    case RejectReason::kUnauthorizedAppDevice:
      return "app-not-subscribed-to-device";
    case RejectReason::kUnauthorizedUserDevice:
      return "user-lacks-container-access";
    case RejectReason::kDeviceBusy:
      return "device-already-acted-on";
    case RejectReason::kUnknownDevice:
      return "unknown-device";
    case RejectReason::kInvalidAction:
      return "invalid-action";
  }
  JARVIS_CHECK(false, "unknown reject reason: ", static_cast<int>(reason));
}

EnvironmentFsm::EnvironmentFsm(std::vector<Device> devices,
                               AuthorizationModel auth)
    : devices_(std::move(devices)), auth_(std::move(auth)), codec_(devices_) {
  JARVIS_CHECK(!devices_.empty(), "EnvironmentFsm: no devices");
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    JARVIS_CHECK(devices_[i].id() == static_cast<DeviceId>(i),
                 "EnvironmentFsm: device ids must be dense and ordered");
  }
}

const Device& EnvironmentFsm::device(DeviceId id) const {
  JARVIS_CHECK(id >= 0 && static_cast<std::size_t>(id) < devices_.size(),
               "EnvironmentFsm::device: bad id ", id);
  return devices_[static_cast<std::size_t>(id)];
}

const Device& EnvironmentFsm::DeviceByLabel(const std::string& label) const {
  for (const auto& d : devices_) {
    if (d.label() == label) return d;
  }
  JARVIS_CHECK(false, "unknown device label: ", label);
}

DeviceId EnvironmentFsm::DeviceIdByLabel(const std::string& label) const {
  return DeviceByLabel(label).id();
}

void EnvironmentFsm::ValidateState(const StateVector& state) const {
  JARVIS_CHECK_EQ(state.size(), devices_.size(), "state width mismatch");
  for (std::size_t i = 0; i < state.size(); ++i) {
    JARVIS_CHECK(state[i] >= 0 && state[i] < devices_[i].state_count(),
                 "state index ", state[i], " out of range for device ",
                 devices_[i].label());
  }
}

void EnvironmentFsm::ValidateAction(const ActionVector& action) const {
  JARVIS_CHECK_EQ(action.size(), devices_.size(), "action width mismatch");
  for (std::size_t i = 0; i < action.size(); ++i) {
    if (action[i] == kNoAction) continue;
    JARVIS_CHECK(action[i] >= 0 && action[i] < devices_[i].action_count(),
                 "action index ", action[i], " out of range for device ",
                 devices_[i].label());
  }
}

StateVector EnvironmentFsm::Apply(const StateVector& state,
                                  const ActionVector& action) const {
  ValidateState(state);
  ValidateAction(action);
  StateVector next(state.size());
  for (std::size_t i = 0; i < state.size(); ++i) {
    next[i] = devices_[i].Transition(state[i], action[i]);
  }
  return next;
}

ActionVector EnvironmentFsm::ResolveRequests(
    const std::vector<ActionRequest>& requests,
    std::vector<RequestOutcome>* outcomes) const {
  ActionVector action(devices_.size(), kNoAction);
  std::vector<bool> device_taken(devices_.size(), false);

  for (const auto& request : requests) {
    RejectReason reason = RejectReason::kAccepted;
    if (request.device < 0 ||
        static_cast<std::size_t>(request.device) >= devices_.size()) {
      reason = RejectReason::kUnknownDevice;
    } else if (request.action != kNoAction &&
               (request.action < 0 ||
                request.action >=
                    devices_[static_cast<std::size_t>(request.device)]
                        .action_count())) {
      reason = RejectReason::kInvalidAction;
    } else if (!auth_.UserMayUseApp(request.user, request.app)) {
      reason = RejectReason::kUnauthorizedUserApp;
    } else if (!auth_.AppMayActOnDevice(request.app, request.device)) {
      reason = RejectReason::kUnauthorizedAppDevice;
    } else if (!auth_.UserMayAccessDevice(request.user, request.device)) {
      reason = RejectReason::kUnauthorizedUserDevice;
    } else if (device_taken[static_cast<std::size_t>(request.device)]) {
      // Constraint 4: one app per device per interval, first come first
      // served.
      reason = RejectReason::kDeviceBusy;
    } else if (request.action != kNoAction) {
      device_taken[static_cast<std::size_t>(request.device)] = true;
      action[static_cast<std::size_t>(request.device)] = request.action;
    }
    if (outcomes != nullptr) outcomes->push_back({request, reason});
  }
  return action;
}

std::vector<ActionVector> EnvironmentFsm::SingleDeviceActions(
    const StateVector& state) const {
  ValidateState(state);
  std::vector<ActionVector> actions;
  actions.emplace_back(devices_.size(), kNoAction);  // all-no-op
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    for (ActionIndex a = 0; a < devices_[i].action_count(); ++a) {
      ActionVector action(devices_.size(), kNoAction);
      action[i] = a;
      actions.push_back(std::move(action));
    }
  }
  return actions;
}

std::string EnvironmentFsm::DebugString() const {
  std::string out = "EnvironmentFsm with " + std::to_string(devices_.size()) +
                    " devices\n";
  for (const auto& d : devices_) out += d.DebugString();
  return out;
}

}  // namespace jarvis::fsm
