#include "fsm/device_library.h"

namespace jarvis::fsm {

Device MakeSmartLock(DeviceId id) {
  return Device::Builder(id, "lock", DeviceClass::kSecurity)
      .AddState("locked_outside", 5.0)
      .AddState("unlocked", 5.0)
      .AddState("off", 0.0)
      .AddState("locked_inside", 5.0)
      .AddAction("lock")
      .AddAction("unlock")
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("unlocked", "lock", "locked_outside")
      .SetTransition("locked_inside", "lock", "locked_outside")
      .SetTransition("locked_outside", "unlock", "unlocked")
      .SetTransition("locked_inside", "unlock", "unlocked")
      .SetTransition("locked_outside", "power_off", "off")
      .SetTransition("unlocked", "power_off", "off")
      .SetTransition("locked_inside", "power_off", "off")
      .SetTransition("off", "power_on", "locked_outside")
      .SetDefaultDisUtility(0.9)
      .Build();
}

Device MakeDoorSensor(DeviceId id) {
  return Device::Builder(id, "door_sensor", DeviceClass::kSensor)
      .AddState("sensing", 2.0)
      .AddState("auth_user", 2.0)
      .AddState("unauth_user", 2.0)
      .AddState("off", 0.0)
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("sensing", "power_off", "off")
      .SetTransition("auth_user", "power_off", "off")
      .SetTransition("unauth_user", "power_off", "off")
      .SetTransition("off", "power_on", "sensing")
      .SetDefaultDisUtility(0.85)
      .Build();
}

Device MakeSmartLight(DeviceId id) {
  return Device::Builder(id, "light", DeviceClass::kLighting)
      .AddState("off", 0.0)
      .AddState("on", 60.0)
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("on", "power_off", "off")
      .SetTransition("off", "power_on", "on")
      .SetDefaultDisUtility(0.8)
      .Build();
}

Device MakeThermostat(DeviceId id) {
  // "increase_temp" switches the unit to heating, "decrease_temp" to
  // cooling, matching Table I's action semantics.
  return Device::Builder(id, "thermostat", DeviceClass::kHvac)
      .AddState("heat", 2500.0)
      .AddState("cool", 2000.0)
      .AddState("off", 0.0)
      .AddAction("increase_temp")
      .AddAction("decrease_temp")
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("off", "increase_temp", "heat")
      .SetTransition("cool", "increase_temp", "heat")
      .SetTransition("off", "decrease_temp", "cool")
      .SetTransition("heat", "decrease_temp", "cool")
      .SetTransition("heat", "power_off", "off")
      .SetTransition("cool", "power_off", "off")
      .SetTransition("off", "power_on", "heat")
      .SetDefaultDisUtility(0.2)
      .Build();
}

Device MakeTempSensor(DeviceId id) {
  return Device::Builder(id, "temp_sensor", DeviceClass::kSensor)
      .AddState("above_optimal", 2.0)
      .AddState("below_optimal", 2.0)
      .AddState("optimal", 2.0)
      .AddState("fire_alarm", 2.0)
      .AddState("off", 0.0)
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("above_optimal", "power_off", "off")
      .SetTransition("below_optimal", "power_off", "off")
      .SetTransition("optimal", "power_off", "off")
      .SetTransition("fire_alarm", "power_off", "off")
      .SetTransition("off", "power_on", "optimal")
      .SetDefaultDisUtility(0.85)
      .Build();
}

Device MakeFridge(DeviceId id) {
  return Device::Builder(id, "fridge", DeviceClass::kAppliance)
      .AddState("closed", 150.0)
      .AddState("door_open", 220.0)
      .AddState("off", 0.0)
      .AddAction("open_door")
      .AddAction("close_door")
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("closed", "open_door", "door_open")
      .SetTransition("door_open", "close_door", "closed")
      .SetTransition("closed", "power_off", "off")
      .SetTransition("door_open", "power_off", "off")
      .SetTransition("off", "power_on", "closed")
      // A fridge must not stay open or be powered off for long; treat its
      // corrective actions as fairly urgent.
      .SetDefaultDisUtility(0.5)
      .Build();
}

Device MakeOven(DeviceId id) {
  return Device::Builder(id, "oven", DeviceClass::kAppliance)
      .AddState("off", 0.0)
      .AddState("preheating", 2400.0)
      .AddState("baking", 2000.0)
      .AddState("door_open", 800.0)
      .AddAction("start_preheat")
      .AddAction("start_bake")
      .AddAction("open_door")
      .AddAction("close_door")
      .AddAction("power_off")
      .SetTransition("off", "start_preheat", "preheating")
      .SetTransition("preheating", "start_bake", "baking")
      .SetTransition("baking", "open_door", "door_open")
      .SetTransition("door_open", "close_door", "baking")
      .SetTransition("preheating", "power_off", "off")
      .SetTransition("baking", "power_off", "off")
      .SetTransition("door_open", "power_off", "off")
      .SetDefaultDisUtility(0.3)
      .Build();
}

Device MakeTelevision(DeviceId id) {
  return Device::Builder(id, "tv", DeviceClass::kEntertainment)
      .AddState("off", 0.0)
      .AddState("standby", 10.0)
      .AddState("on", 120.0)
      .AddAction("power_on")
      .AddAction("power_off")
      .AddAction("standby")
      .SetTransition("off", "power_on", "on")
      .SetTransition("standby", "power_on", "on")
      .SetTransition("on", "power_off", "off")
      .SetTransition("standby", "power_off", "off")
      .SetTransition("on", "standby", "standby")
      .SetDefaultDisUtility(0.4)
      .Build();
}

Device MakeWashingMachine(DeviceId id) {
  return Device::Builder(id, "washer", DeviceClass::kAppliance)
      .AddState("off", 0.0)
      .AddState("idle", 5.0)
      .AddState("washing", 500.0)
      .AddAction("power_on")
      .AddAction("start_cycle")
      .AddAction("finish_cycle")
      .AddAction("power_off")
      .SetTransition("off", "power_on", "idle")
      .SetTransition("idle", "start_cycle", "washing")
      .SetTransition("washing", "finish_cycle", "idle")
      .SetTransition("idle", "power_off", "off")
      .SetTransition("washing", "power_off", "off")
      .SetDefaultDisUtility(0.15)
      .Build();
}

Device MakeDishwasher(DeviceId id) {
  return Device::Builder(id, "dishwasher", DeviceClass::kAppliance)
      .AddState("off", 0.0)
      .AddState("idle", 5.0)
      .AddState("running", 1800.0)
      .AddAction("power_on")
      .AddAction("start_cycle")
      .AddAction("finish_cycle")
      .AddAction("power_off")
      .SetTransition("off", "power_on", "idle")
      .SetTransition("idle", "start_cycle", "running")
      .SetTransition("running", "finish_cycle", "idle")
      .SetTransition("idle", "power_off", "off")
      .SetTransition("running", "power_off", "off")
      .SetDefaultDisUtility(0.15)
      .Build();
}

Device MakeCoffeeMaker(DeviceId id) {
  return Device::Builder(id, "coffee_maker", DeviceClass::kAppliance)
      .AddState("off", 0.0)
      .AddState("idle", 2.0)
      .AddState("brewing", 900.0)
      .AddAction("power_on")
      .AddAction("brew")
      .AddAction("finish_brew")
      .AddAction("power_off")
      .SetTransition("off", "power_on", "idle")
      .SetTransition("idle", "brew", "brewing")
      .SetTransition("brewing", "finish_brew", "idle")
      .SetTransition("idle", "power_off", "off")
      .SetTransition("brewing", "power_off", "off")
      // Morning coffee is time-sensitive for most users.
      .SetDefaultDisUtility(0.6)
      .Build();
}

Device MakeMotionSensor(DeviceId id) {
  return Device::Builder(id, "motion_sensor", DeviceClass::kSensor)
      .AddState("no_motion", 1.0)
      .AddState("motion", 1.0)
      .AddState("off", 0.0)
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("no_motion", "power_off", "off")
      .SetTransition("motion", "power_off", "off")
      .SetTransition("off", "power_on", "no_motion")
      .SetDefaultDisUtility(0.85)
      .Build();
}

Device MakeSmartPlug(DeviceId id) {
  return Device::Builder(id, "smart_plug", DeviceClass::kAppliance)
      .AddState("off", 0.0)
      .AddState("on", 1500.0)
      .AddAction("power_on")
      .AddAction("power_off")
      .SetTransition("off", "power_on", "on")
      .SetTransition("on", "power_off", "off")
      .SetDefaultDisUtility(0.25)
      .Build();
}

Device MakeSecurityCamera(DeviceId id) {
  return Device::Builder(id, "camera", DeviceClass::kSecurity)
      .AddState("recording", 8.0)
      .AddState("idle", 3.0)
      .AddState("off", 0.0)
      .AddAction("start_recording")
      .AddAction("stop_recording")
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("idle", "start_recording", "recording")
      .SetTransition("recording", "stop_recording", "idle")
      .SetTransition("recording", "power_off", "off")
      .SetTransition("idle", "power_off", "off")
      .SetTransition("off", "power_on", "idle")
      .SetDefaultDisUtility(0.9)
      .Build();
}

Device MakeWaterHeater(DeviceId id) {
  return Device::Builder(id, "water_heater", DeviceClass::kHvac)
      .AddState("standby", 30.0)
      .AddState("heating", 4000.0)
      .AddState("off", 0.0)
      .AddAction("start_heating")
      .AddAction("stop_heating")
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("standby", "start_heating", "heating")
      .SetTransition("heating", "stop_heating", "standby")
      .SetTransition("standby", "power_off", "off")
      .SetTransition("heating", "power_off", "off")
      .SetTransition("off", "power_on", "standby")
      .SetDefaultDisUtility(0.2)
      .Build();
}

Device MakeEvCharger(DeviceId id) {
  return Device::Builder(id, "ev_charger", DeviceClass::kAppliance)
      .AddState("idle", 10.0)
      .AddState("charging", 7000.0)
      .AddState("off", 0.0)
      .AddAction("start_charge")
      .AddAction("stop_charge")
      .AddAction("power_off")
      .AddAction("power_on")
      .SetTransition("idle", "start_charge", "charging")
      .SetTransition("charging", "stop_charge", "idle")
      .SetTransition("idle", "power_off", "off")
      .SetTransition("charging", "power_off", "off")
      .SetTransition("off", "power_on", "idle")
      // Overnight charging is flexible; the car only needs to be full by
      // morning.
      .SetDefaultDisUtility(0.1)
      .Build();
}

std::vector<Device> ExampleHomeDevices() {
  std::vector<Device> devices;
  devices.push_back(MakeSmartLock(0));
  devices.push_back(MakeDoorSensor(1));
  devices.push_back(MakeSmartLight(2));
  devices.push_back(MakeThermostat(3));
  devices.push_back(MakeTempSensor(4));
  return devices;
}

std::vector<Device> FullHomeDevices() {
  std::vector<Device> devices = ExampleHomeDevices();
  devices.push_back(MakeFridge(5));
  devices.push_back(MakeOven(6));
  devices.push_back(MakeTelevision(7));
  devices.push_back(MakeWashingMachine(8));
  devices.push_back(MakeDishwasher(9));
  devices.push_back(MakeCoffeeMaker(10));
  return devices;
}

std::vector<Device> LargeHomeDevices() {
  std::vector<Device> devices = FullHomeDevices();
  devices.push_back(MakeMotionSensor(11));
  devices.push_back(MakeSmartPlug(12));
  devices.push_back(MakeSecurityCamera(13));
  devices.push_back(MakeWaterHeater(14));
  devices.push_back(MakeEvCharger(15));
  return devices;
}

std::vector<std::string> TableTwoAppNames() {
  return {
      "unlock-door-on-auth-user",      // App 1
      "maintain-optimal-temperature",  // App 2
      "lights-on-arrival",             // App 3
      "fire-alarm-open-door-lights",   // App 4
      "leave-home-shutdown",           // App 5
  };
}

EnvironmentFsm BuildHome(std::vector<Device> devices, int user_count) {
  AuthorizationModel auth;
  const LocationId home = auth.AddLocation("home");
  const GroupId main_group = auth.AddGroup("main", home);

  const AppId manual = auth.AddApp("manual", "human operation");
  (void)manual;  // manual == kManualApp == 0 by construction

  std::vector<AppId> apps;
  for (const auto& name : TableTwoAppNames()) {
    apps.push_back(auth.AddApp(name));
  }

  std::vector<UserId> users;
  for (int u = 0; u < user_count; ++u) {
    users.push_back(auth.AddUser("user" + std::to_string(u)));
  }

  for (const auto& device : devices) {
    auth.PlaceDevice(device.id(), home, main_group);
    auth.GrantAppDevice(kManualApp, device.id());
  }
  for (UserId user : users) {
    auth.GrantUserLocation(user, home);
    auth.GrantUserApp(user, kManualApp);
    for (AppId app : apps) auth.GrantUserApp(user, app);
  }

  // Device subscriptions per Table II's "Devices Involved" column; grant
  // only for devices that exist in this home.
  auto grant_if_present = [&](AppId app, DeviceId device) {
    if (device >= 0 && static_cast<std::size_t>(device) < devices.size()) {
      auth.GrantAppDevice(app, device);
    }
  };
  if (apps.size() >= 5 && devices.size() >= 5) {
    grant_if_present(apps[0], 0);  // App 1: D0, D1
    grant_if_present(apps[0], 1);
    grant_if_present(apps[1], 3);  // App 2: D3, D4
    grant_if_present(apps[1], 4);
    grant_if_present(apps[2], 0);  // App 3: D0, D1, D2
    grant_if_present(apps[2], 1);
    grant_if_present(apps[2], 2);
    grant_if_present(apps[3], 0);  // App 4: D0, D2, D4
    grant_if_present(apps[3], 2);
    grant_if_present(apps[3], 4);
    grant_if_present(apps[4], 0);  // App 5: D0, D1, D3
    grant_if_present(apps[4], 1);
    grant_if_present(apps[4], 2);  // App 5 also turns lights off
    grant_if_present(apps[4], 3);
  }

  return EnvironmentFsm(std::move(devices), std::move(auth));
}

EnvironmentFsm BuildExampleHome(int user_count) {
  return BuildHome(ExampleHomeDevices(), user_count);
}

EnvironmentFsm BuildFullHome(int user_count) {
  return BuildHome(FullHomeDevices(), user_count);
}

EnvironmentFsm BuildLargeHome(int user_count) {
  return BuildHome(LargeHomeDevices(), user_count);
}

}  // namespace jarvis::fsm
