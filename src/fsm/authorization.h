// Users, apps, and the container hierarchy of Section III-A: devices live
// in locations and groups, users hold permissions per container, and apps
// act on devices only through device-subscription policies while users
// reach apps through app-subscription policies (state-transition
// constraints 2 and 3 of Section III-B).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fsm/device.h"

namespace jarvis::fsm {

using UserId = int;
using AppId = int;
using LocationId = int;
using GroupId = int;

// By the paper's convention, manual (human) operation is the pseudo-app 0.
inline constexpr AppId kManualApp = 0;

struct User {
  UserId id = -1;
  std::string name;
};

struct App {
  AppId id = -1;
  std::string name;
  std::string description;
};

struct Location {
  LocationId id = -1;
  std::string name;
};

struct Group {
  GroupId id = -1;
  std::string name;
  LocationId location = -1;
};

// Placement of a device inside the container hierarchy.
struct DevicePlacement {
  LocationId location = -1;
  GroupId group = -1;
};

// Registry of principals plus the two subscription-policy tables.
class AuthorizationModel {
 public:
  UserId AddUser(const std::string& name);
  AppId AddApp(const std::string& name, const std::string& description = "");
  LocationId AddLocation(const std::string& name);
  GroupId AddGroup(const std::string& name, LocationId location);

  void PlaceDevice(DeviceId device, LocationId location, GroupId group);

  // App-subscription policy: user may invoke app.
  void GrantUserApp(UserId user, AppId app);
  // Device-subscription policy: app may act on device.
  void GrantAppDevice(AppId app, DeviceId device);
  // Container-level grant: user may access every device in the location.
  void GrantUserLocation(UserId user, LocationId location);

  bool UserMayUseApp(UserId user, AppId app) const;
  bool AppMayActOnDevice(AppId app, DeviceId device) const;
  // User may access the device through its containers (Section III-A: the
  // authorized-user set u_i depends on location and group).
  bool UserMayAccessDevice(UserId user, DeviceId device) const;

  // Full check for one mini-action: user -> app -> device.
  bool Authorize(UserId user, AppId app, DeviceId device) const;

  const std::vector<User>& users() const { return users_; }
  const std::vector<App>& apps() const { return apps_; }
  const std::vector<Location>& locations() const { return locations_; }
  const std::vector<Group>& groups() const { return groups_; }
  std::optional<DevicePlacement> PlacementOf(DeviceId device) const;

 private:
  std::vector<User> users_;
  std::vector<App> apps_;
  std::vector<Location> locations_;
  std::vector<Group> groups_;
  std::map<DeviceId, DevicePlacement> placements_;
  std::set<std::pair<UserId, AppId>> user_app_;
  std::set<std::pair<AppId, DeviceId>> app_device_;
  std::set<std::pair<UserId, LocationId>> user_location_;
};

}  // namespace jarvis::fsm
