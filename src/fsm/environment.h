// The environment FSM (Definition 1): the device set, the composite
// transition function Delta, and enforcement of the five state-transition
// constraints of Section III-B.
#pragma once

#include <string>
#include <vector>

#include "fsm/authorization.h"
#include "fsm/device.h"
#include "fsm/state.h"

namespace jarvis::fsm {

// One attempted device-action in an interval, attributed to a user acting
// through an app (apps subscribe to events; manual operation is app 0).
struct ActionRequest {
  UserId user = -1;
  AppId app = kManualApp;
  DeviceId device = -1;
  ActionIndex action = kNoAction;
};

// Why a request was dropped during conflict resolution.
enum class RejectReason {
  kAccepted,
  kUnauthorizedUserApp,     // constraint 2
  kUnauthorizedAppDevice,   // constraint 3
  kUnauthorizedUserDevice,  // container policy
  kDeviceBusy,              // constraints 1/4: device already acted on
  kUnknownDevice,
  kInvalidAction,
};

std::string RejectReasonName(RejectReason reason);

struct RequestOutcome {
  ActionRequest request;
  RejectReason reason = RejectReason::kAccepted;
};

// Immutable after construction; run-time state is passed in and returned.
class EnvironmentFsm {
 public:
  EnvironmentFsm(std::vector<Device> devices, AuthorizationModel auth);

  std::size_t device_count() const { return devices_.size(); }
  const std::vector<Device>& devices() const { return devices_; }
  const Device& device(DeviceId id) const;
  const AuthorizationModel& auth() const { return auth_; }
  const StateCodec& codec() const { return codec_; }

  // Finds a device by label; throws if absent.
  const Device& DeviceByLabel(const std::string& label) const;
  DeviceId DeviceIdByLabel(const std::string& label) const;

  // Delta: applies a validated joint action (one mini-action per device at
  // most; constraint 5 holds by construction since delta_i is applied once).
  StateVector Apply(const StateVector& state, const ActionVector& action) const;

  // Processes raw requests in arrival order, enforcing authorization and
  // first-come-first-served conflict resolution (constraint 4). Returns the
  // resulting joint action; per-request outcomes are appended to `outcomes`
  // if non-null.
  ActionVector ResolveRequests(const std::vector<ActionRequest>& requests,
                               std::vector<RequestOutcome>* outcomes) const;

  // Validates widths and ranges; throws std::invalid_argument on failure.
  void ValidateState(const StateVector& state) const;
  void ValidateAction(const ActionVector& action) const;

  // All joint actions that change exactly one device ("mini-action"
  // neighborhood), plus the all-no-op action. Used by tabular baselines
  // and the constrained-exploration sampler.
  std::vector<ActionVector> SingleDeviceActions(const StateVector& state) const;

  std::string DebugString() const;

 private:
  std::vector<Device> devices_;
  AuthorizationModel auth_;
  StateCodec codec_;
};

}  // namespace jarvis::fsm
