#include "fsm/authorization.h"

#include "util/check.h"

namespace jarvis::fsm {

UserId AuthorizationModel::AddUser(const std::string& name) {
  const UserId id = static_cast<UserId>(users_.size());
  users_.push_back({id, name});
  return id;
}

AppId AuthorizationModel::AddApp(const std::string& name,
                                 const std::string& description) {
  const AppId id = static_cast<AppId>(apps_.size());
  apps_.push_back({id, name, description});
  return id;
}

LocationId AuthorizationModel::AddLocation(const std::string& name) {
  const LocationId id = static_cast<LocationId>(locations_.size());
  locations_.push_back({id, name});
  return id;
}

GroupId AuthorizationModel::AddGroup(const std::string& name,
                                     LocationId location) {
  JARVIS_CHECK(
      location >= 0 && static_cast<std::size_t>(location) < locations_.size(),
      "AddGroup: unknown location ", location);
  const GroupId id = static_cast<GroupId>(groups_.size());
  groups_.push_back({id, name, location});
  return id;
}

void AuthorizationModel::PlaceDevice(DeviceId device, LocationId location,
                                     GroupId group) {
  JARVIS_CHECK(
      location >= 0 && static_cast<std::size_t>(location) < locations_.size(),
      "PlaceDevice: unknown location ", location);
  JARVIS_CHECK(group >= 0 && static_cast<std::size_t>(group) < groups_.size(),
               "PlaceDevice: unknown group ", group);
  JARVIS_CHECK_EQ(groups_[static_cast<std::size_t>(group)].location, location,
                  "PlaceDevice: group not in location");
  placements_[device] = {location, group};
}

void AuthorizationModel::GrantUserApp(UserId user, AppId app) {
  user_app_.emplace(user, app);
}

void AuthorizationModel::GrantAppDevice(AppId app, DeviceId device) {
  app_device_.emplace(app, device);
}

void AuthorizationModel::GrantUserLocation(UserId user, LocationId location) {
  user_location_.emplace(user, location);
}

bool AuthorizationModel::UserMayUseApp(UserId user, AppId app) const {
  return user_app_.count({user, app}) > 0;
}

bool AuthorizationModel::AppMayActOnDevice(AppId app, DeviceId device) const {
  return app_device_.count({app, device}) > 0;
}

bool AuthorizationModel::UserMayAccessDevice(UserId user,
                                             DeviceId device) const {
  auto it = placements_.find(device);
  if (it == placements_.end()) return false;
  return user_location_.count({user, it->second.location}) > 0;
}

bool AuthorizationModel::Authorize(UserId user, AppId app,
                                   DeviceId device) const {
  return UserMayUseApp(user, app) && AppMayActOnDevice(app, device) &&
         UserMayAccessDevice(user, device);
}

std::optional<DevicePlacement> AuthorizationModel::PlacementOf(
    DeviceId device) const {
  auto it = placements_.find(device);
  if (it == placements_.end()) return std::nullopt;
  return it->second;
}

}  // namespace jarvis::fsm
