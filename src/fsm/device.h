// Device model of Section III-A: each device D_i has a finite set of
// device-states {p_i0..}, a finite set of device-actions {a_i0..}, a
// transition function delta_i(state, action) -> state, and a dis-utility
// function omega_i(state, action) charged per time instance of delay.
//
// Devices also carry physical annotations the smart-home evaluation needs:
// per-state power draw (for the energy functionality F_0) and a device
// class used when assigning dis-utility defaults (Section V-A-4: lights,
// bells, and locks are high dis-utility; HVAC and white goods are low).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace jarvis::fsm {

using DeviceId = int;
using StateIndex = int;
using ActionIndex = int;

// Sentinel for "no action taken on this device this interval" — the 'O'
// entries in the paper's Tables II/III.
inline constexpr ActionIndex kNoAction = -1;

// Broad device classes; drive dis-utility defaults and evaluation grouping.
enum class DeviceClass {
  kSecurity,    // locks, alarms: high dis-utility, safety-critical
  kSensor,      // motion/door/temperature sensors: should stay powered
  kLighting,    // lights: immediate response expected, low power
  kHvac,        // thermostat/heater/AC: deferrable, high power
  kAppliance,   // washer, dishwasher, oven: deferrable, high power
  kEntertainment,  // TV, speakers
};

std::string DeviceClassName(DeviceClass cls);

// Immutable description of one device type; actual run-time state lives in
// the environment's composite state vector.
class Device {
 public:
  struct Builder;

  DeviceId id() const { return id_; }
  const std::string& label() const { return label_; }
  DeviceClass device_class() const { return device_class_; }

  int state_count() const { return static_cast<int>(state_names_.size()); }
  int action_count() const { return static_cast<int>(action_names_.size()); }

  const std::string& state_name(StateIndex s) const;
  const std::string& action_name(ActionIndex a) const;
  // Reverse lookups; nullopt when the name is unknown.
  std::optional<StateIndex> FindState(const std::string& name) const;
  std::optional<ActionIndex> FindAction(const std::string& name) const;

  // delta_i: next state for (state, action). kNoAction returns the state
  // unchanged. Out-of-range inputs fail a JARVIS_CHECK (util::CheckError).
  StateIndex Transition(StateIndex state, ActionIndex action) const;

  // omega_i(state, action): normalized dis-utility per time instance for
  // delaying `action` while in `state`, in [0, 1].
  double DisUtility(StateIndex state, ActionIndex action) const;
  // The device-wide default dis-utility weight (used when per-pair values
  // were not specified).
  double default_dis_utility() const { return default_dis_utility_; }

  // Electrical power drawn while resting in `state`, in watts.
  double PowerDraw(StateIndex state) const;

  // True if the action changes the state when applied in `state`.
  bool ActionHasEffect(StateIndex state, ActionIndex action) const;

  std::string DebugString() const;

 private:
  friend struct Builder;
  Device() = default;

  DeviceId id_ = -1;
  std::string label_;
  DeviceClass device_class_ = DeviceClass::kAppliance;
  std::vector<std::string> state_names_;
  std::vector<std::string> action_names_;
  // Row-major [state][action] next-state table.
  std::vector<StateIndex> transition_;
  // Row-major [state][action] dis-utility table.
  std::vector<double> dis_utility_;
  double default_dis_utility_ = 0.0;
  std::vector<double> power_draw_watts_;
};

// Fluent builder; validates completeness at Build() time.
struct Device::Builder {
  Builder(DeviceId id, std::string label, DeviceClass cls);

  Builder& AddState(const std::string& name, double power_watts = 0.0);
  Builder& AddAction(const std::string& name);
  // Declares delta(state, action) = next. Unspecified pairs default to
  // "no effect" (stay in the same state).
  Builder& SetTransition(const std::string& state, const std::string& action,
                         const std::string& next_state);
  // Device-wide dis-utility weight in [0, 1].
  Builder& SetDefaultDisUtility(double omega);
  // Per-(state, action) dis-utility override.
  Builder& SetDisUtility(const std::string& state, const std::string& action,
                         double omega);

  Device Build();

 private:
  StateIndex RequireState(const std::string& name) const;
  ActionIndex RequireAction(const std::string& name) const;

  Device device_;
  struct PendingTransition {
    std::string state, action, next;
  };
  struct PendingDisUtility {
    std::string state, action;
    double omega;
  };
  std::vector<PendingTransition> pending_transitions_;
  std::vector<PendingDisUtility> pending_dis_utility_;
};

}  // namespace jarvis::fsm
