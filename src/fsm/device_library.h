// Catalog of smart-home device models. The first five reproduce Table I of
// the paper (lock, door sensor, light, thermostat, temperature sensor); the
// remaining six extend the home to the k = 11 devices used in the
// functionality evaluation (Section VI-D).
//
// One deliberate extension over Table I: both sensors gain an explicit
// "off" state reached by their "power_off" action. The paper's safety
// discussion hinges on "turning off temperature and door sensors" being an
// observable (and unsafe) transition, which requires the off state to exist
// in the FSM. This is documented in DESIGN.md.
#pragma once

#include <vector>

#include "fsm/authorization.h"
#include "fsm/device.h"
#include "fsm/environment.h"

namespace jarvis::fsm {

// --- The five Table I devices -------------------------------------------

// D0: smart lock. States: locked_outside, unlocked, off, locked_inside.
// Actions: lock, unlock, power_off, power_on.
Device MakeSmartLock(DeviceId id);

// D1: door touch sensor. States: sensing, auth_user, unauth_user, off.
// Actions: power_off, power_on.
Device MakeDoorSensor(DeviceId id);

// D2: smart light. States: off, on. Actions: power_off, power_on.
Device MakeSmartLight(DeviceId id);

// D3: thermostat controller. States: heat, cool, off.
// Actions: increase_temp, decrease_temp, power_off, power_on.
Device MakeThermostat(DeviceId id);

// D4: temperature sensor. States: above_optimal, below_optimal, optimal,
// fire_alarm, off. Actions: power_off, power_on.
Device MakeTempSensor(DeviceId id);

// --- Additional devices for the 11-device evaluation home ----------------

// D5: refrigerator. States: closed, door_open, off.
// Actions: open_door, close_door, power_off, power_on.
Device MakeFridge(DeviceId id);

// D6: oven. States: off, preheating, baking, door_open.
// Actions: start_preheat, start_bake, open_door, close_door, power_off.
Device MakeOven(DeviceId id);

// D7: television. States: off, standby, on.
// Actions: power_on, power_off, standby.
Device MakeTelevision(DeviceId id);

// D8: washing machine. States: off, idle, washing.
// Actions: power_on, start_cycle, finish_cycle, power_off.
Device MakeWashingMachine(DeviceId id);

// D9: dishwasher. States: off, idle, running.
// Actions: power_on, start_cycle, finish_cycle, power_off.
Device MakeDishwasher(DeviceId id);

// D10: coffee maker. States: off, idle, brewing.
// Actions: power_on, brew, finish_brew, power_off.
Device MakeCoffeeMaker(DeviceId id);

// --- Additional devices for the large-home scalability configuration -----

// Motion sensor. States: no_motion, motion, off. Actions: power_off,
// power_on.
Device MakeMotionSensor(DeviceId id);

// Smart plug (generic 1.5 kW load). States: off, on.
// Actions: power_on, power_off.
Device MakeSmartPlug(DeviceId id);

// Security camera. States: recording, idle, off.
// Actions: start_recording, stop_recording, power_off, power_on.
Device MakeSecurityCamera(DeviceId id);

// Electric water heater. States: standby, heating, off.
// Actions: start_heating, stop_heating, power_off, power_on.
Device MakeWaterHeater(DeviceId id);

// EV charger — the classic deferrable high-power load.
// States: idle, charging, off. Actions: start_charge, stop_charge,
// power_off, power_on.
Device MakeEvCharger(DeviceId id);

// The Table I example home: devices D0..D4 in declaration order.
std::vector<Device> ExampleHomeDevices();

// The full k = 11 evaluation home: D0..D10.
std::vector<Device> FullHomeDevices();

// The k = 16 large home (scalability studies): D0..D15.
std::vector<Device> LargeHomeDevices();

// Names of the five IFTTT-style apps from Table II, in order (app ids 1..5;
// app 0 is manual operation).
std::vector<std::string> TableTwoAppNames();

// Builds an EnvironmentFsm around the given devices with a single-location,
// single-group container setup, `user_count` users all authorized for every
// device, manual app 0, and the five Table II apps subscribed to the
// devices they involve (when those devices exist).
EnvironmentFsm BuildHome(std::vector<Device> devices, int user_count);

// Convenience: the three standard homes.
EnvironmentFsm BuildExampleHome(int user_count = 1);
EnvironmentFsm BuildFullHome(int user_count = 2);
EnvironmentFsm BuildLargeHome(int user_count = 2);

}  // namespace jarvis::fsm
