// Composite environment state and joint actions (Definition 1).
//
// The overall state S_t = (s_0, ..., s_k) is a vector of per-device state
// indices. A joint Action A_t assigns at most one device-action ("mini-
// action", Section V-A-7) per device; kNoAction marks devices left alone.
// States encode to a single uint64 mixed-radix key for use in hash tables
// (the safe-transition table P_safe and tabular Q baselines).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsm/device.h"

namespace jarvis::fsm {

// Per-device state vector. Width equals the device count of the owning
// environment; validation happens in Environment.
using StateVector = std::vector<StateIndex>;

// Per-device action vector; kNoAction entries mean "leave the device alone".
using ActionVector = std::vector<ActionIndex>;

// A single mini-action: one action on one device.
struct MiniAction {
  DeviceId device = -1;
  ActionIndex action = kNoAction;

  bool operator==(const MiniAction&) const = default;
};

// Mixed-radix encoder mapping StateVectors to unique uint64 keys, given the
// per-device state counts. Also enumerates the mini-action space with a
// fixed global numbering (the DQN's output layout).
class StateCodec {
 public:
  explicit StateCodec(const std::vector<Device>& devices);

  std::size_t device_count() const { return radices_.size(); }

  // Total joint-state count (may be astronomically large; capped at the
  // uint64 range — the constructor throws if the product overflows).
  std::uint64_t state_space_size() const { return state_space_size_; }

  std::uint64_t Encode(const StateVector& state) const;
  StateVector Decode(std::uint64_t key) const;

  // Mini-action numbering: for device i with A_i actions, the global slots
  // [offset_i, offset_i + A_i) map to its actions, and slot
  // offset_i + A_i is the explicit per-device no-op. Total width is
  // sum_i (A_i + 1).
  std::size_t mini_action_count() const { return mini_action_count_; }
  std::size_t MiniActionSlot(const MiniAction& mini) const;
  MiniAction SlotToMiniAction(std::size_t slot) const;
  // The slot of device i's no-op.
  std::size_t NoOpSlot(DeviceId device) const;

  // Converts a joint ActionVector to/from the set of per-device slots.
  std::vector<std::size_t> ActionToSlots(const ActionVector& action) const;
  ActionVector SlotsToAction(const std::vector<std::size_t>& slots) const;

  // One-hot encoding of a state (concatenated per-device one-hots), the
  // DQN input featurization. Width = sum of per-device state counts.
  std::size_t one_hot_width() const { return one_hot_width_; }
  std::vector<double> OneHot(const StateVector& state) const;

  std::string StateToString(const std::vector<Device>& devices,
                            const StateVector& state) const;
  std::string ActionToString(const std::vector<Device>& devices,
                             const ActionVector& action) const;

 private:
  std::vector<int> radices_;            // per-device state counts
  std::vector<int> action_counts_;      // per-device action counts
  std::vector<std::uint64_t> weights_;  // mixed-radix place values
  std::vector<std::size_t> mini_offsets_;
  std::uint64_t state_space_size_ = 1;
  std::size_t mini_action_count_ = 0;
  std::size_t one_hot_width_ = 0;
};

// A (state, action) pair key for transition tables.
struct TransitionKey {
  std::uint64_t from_state;
  std::uint64_t to_state;

  bool operator==(const TransitionKey&) const = default;
};

struct TransitionKeyHash {
  std::size_t operator()(const TransitionKey& key) const {
    // Standard 64-bit mix of the two halves.
    std::uint64_t h = key.from_state * 0x9e3779b97f4a7c15ULL;
    h ^= key.to_state + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace jarvis::fsm
