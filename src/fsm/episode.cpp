#include "fsm/episode.h"

#include <algorithm>

#include "util/check.h"

namespace jarvis::fsm {

Episode::Episode(EpisodeConfig config, util::SimTime start,
                 StateVector initial_state)
    : config_(config), start_(start), initial_state_(std::move(initial_state)) {
  JARVIS_CHECK(config_.period_minutes > 0 && config_.interval_minutes > 0,
               "Episode: T and I must be positive (T=",
               config_.period_minutes, ", I=", config_.interval_minutes, ")");
  JARVIS_CHECK_LE(config_.interval_minutes, config_.period_minutes,
                  "Episode: I > T");
}

void Episode::Record(util::SimTime time, StateVector state,
                     ActionVector action) {
  JARVIS_CHECK(!IsComplete(), "Episode::Record: episode already complete");
  steps_.push_back({time, std::move(state), std::move(action)});
}

StateVector Episode::FinalState(const EnvironmentFsm& fsm) const {
  if (steps_.empty()) return initial_state_;
  return fsm.Apply(steps_.back().state, steps_.back().action);
}

std::string Episode::DebugString(const EnvironmentFsm& fsm) const {
  std::string out =
      "Episode start=" + start_.ToString() + " steps=" +
      std::to_string(steps_.size()) + "\n";
  for (const auto& step : steps_) {
    // Only show steps where something happened, to keep output readable.
    const bool any_action =
        std::any_of(step.action.begin(), step.action.end(),
                    [](ActionIndex a) { return a != kNoAction; });
    if (!any_action) continue;
    out += "  " + step.time.ToString() + "  " +
           fsm.codec().StateToString(fsm.devices(), step.state) + " -> " +
           fsm.codec().ActionToString(fsm.devices(), step.action) + "\n";
  }
  return out;
}

std::size_t AppendTriggerActions(const Episode& episode,
                                 std::vector<TriggerAction>* out) {
  std::size_t appended = 0;
  for (const auto& step : episode.steps()) {
    const bool any_action =
        std::any_of(step.action.begin(), step.action.end(),
                    [](ActionIndex a) { return a != kNoAction; });
    if (!any_action) continue;
    out->push_back({step.state, step.action, step.time.minute_of_day()});
    ++appended;
  }
  return appended;
}

std::vector<TriggerAction> ExtractTriggerActions(
    const std::vector<Episode>& episodes) {
  std::vector<TriggerAction> result;
  for (const auto& episode : episodes) {
    AppendTriggerActions(episode, &result);
  }
  return result;
}

}  // namespace jarvis::fsm
