#include "fsm/device.h"

#include "util/check.h"
#include "util/strings.h"

namespace jarvis::fsm {

std::string DeviceClassName(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kSecurity:
      return "security";
    case DeviceClass::kSensor:
      return "sensor";
    case DeviceClass::kLighting:
      return "lighting";
    case DeviceClass::kHvac:
      return "hvac";
    case DeviceClass::kAppliance:
      return "appliance";
    case DeviceClass::kEntertainment:
      return "entertainment";
  }
  JARVIS_CHECK(false, "unknown device class: ", static_cast<int>(cls));
}

const std::string& Device::state_name(StateIndex s) const {
  JARVIS_CHECK(s >= 0 && s < state_count(), "Device::state_name: ", label_,
               " state ", s);
  return state_names_[static_cast<std::size_t>(s)];
}

const std::string& Device::action_name(ActionIndex a) const {
  JARVIS_CHECK(a >= 0 && a < action_count(), "Device::action_name: ", label_,
               " action ", a);
  return action_names_[static_cast<std::size_t>(a)];
}

std::optional<StateIndex> Device::FindState(const std::string& name) const {
  for (std::size_t i = 0; i < state_names_.size(); ++i) {
    if (state_names_[i] == name) return static_cast<StateIndex>(i);
  }
  return std::nullopt;
}

std::optional<ActionIndex> Device::FindAction(const std::string& name) const {
  for (std::size_t i = 0; i < action_names_.size(); ++i) {
    if (action_names_[i] == name) return static_cast<ActionIndex>(i);
  }
  return std::nullopt;
}

StateIndex Device::Transition(StateIndex state, ActionIndex action) const {
  JARVIS_CHECK(state >= 0 && state < state_count(),
               "Device::Transition: bad state ", state, " on ", label_);
  if (action == kNoAction) return state;
  JARVIS_CHECK(action >= 0 && action < action_count(),
               "Device::Transition: bad action ", action, " on ", label_);
  return transition_[static_cast<std::size_t>(state) *
                         static_cast<std::size_t>(action_count()) +
                     static_cast<std::size_t>(action)];
}

double Device::DisUtility(StateIndex state, ActionIndex action) const {
  JARVIS_CHECK(state >= 0 && state < state_count(),
               "Device::DisUtility: bad state ", state, " on ", label_);
  if (action == kNoAction) return 0.0;
  JARVIS_CHECK(action >= 0 && action < action_count(),
               "Device::DisUtility: bad action ", action, " on ", label_);
  return dis_utility_[static_cast<std::size_t>(state) *
                          static_cast<std::size_t>(action_count()) +
                      static_cast<std::size_t>(action)];
}

double Device::PowerDraw(StateIndex state) const {
  JARVIS_CHECK(state >= 0 && state < state_count(),
               "Device::PowerDraw: bad state ", state, " on ", label_);
  return power_draw_watts_[static_cast<std::size_t>(state)];
}

bool Device::ActionHasEffect(StateIndex state, ActionIndex action) const {
  return Transition(state, action) != state;
}

std::string Device::DebugString() const {
  std::string out = util::Format("Device %d '%s' (%s)\n", id_, label_.c_str(),
                                 DeviceClassName(device_class_).c_str());
  out += "  states:";
  for (const auto& s : state_names_) out += " " + s;
  out += "\n  actions:";
  for (const auto& a : action_names_) out += " " + a;
  out += "\n";
  return out;
}

Device::Builder::Builder(DeviceId id, std::string label, DeviceClass cls) {
  device_.id_ = id;
  device_.label_ = std::move(label);
  device_.device_class_ = cls;
}

Device::Builder& Device::Builder::AddState(const std::string& name,
                                           double power_watts) {
  JARVIS_CHECK(!device_.FindState(name).has_value(),
               "duplicate state name: ", name);
  device_.state_names_.push_back(name);
  device_.power_draw_watts_.push_back(power_watts);
  return *this;
}

Device::Builder& Device::Builder::AddAction(const std::string& name) {
  JARVIS_CHECK(!device_.FindAction(name).has_value(),
               "duplicate action name: ", name);
  device_.action_names_.push_back(name);
  return *this;
}

Device::Builder& Device::Builder::SetTransition(const std::string& state,
                                                const std::string& action,
                                                const std::string& next_state) {
  pending_transitions_.push_back({state, action, next_state});
  return *this;
}

Device::Builder& Device::Builder::SetDefaultDisUtility(double omega) {
  JARVIS_CHECK(omega >= 0.0 && omega <= 1.0,
               "dis-utility must be in [0,1], got ", omega);
  device_.default_dis_utility_ = omega;
  return *this;
}

Device::Builder& Device::Builder::SetDisUtility(const std::string& state,
                                                const std::string& action,
                                                double omega) {
  JARVIS_CHECK(omega >= 0.0 && omega <= 1.0,
               "dis-utility must be in [0,1], got ", omega);
  pending_dis_utility_.push_back({state, action, omega});
  return *this;
}

StateIndex Device::Builder::RequireState(const std::string& name) const {
  auto found = device_.FindState(name);
  JARVIS_CHECK(found.has_value(), "unknown state '", name, "' on device ",
               device_.label_);
  return *found;
}

ActionIndex Device::Builder::RequireAction(const std::string& name) const {
  auto found = device_.FindAction(name);
  JARVIS_CHECK(found.has_value(), "unknown action '", name, "' on device ",
               device_.label_);
  return *found;
}

Device Device::Builder::Build() {
  JARVIS_CHECK(!device_.state_names_.empty(),
               "device needs at least one state");
  JARVIS_CHECK(!device_.action_names_.empty(),
               "device needs at least one action");
  const auto states = static_cast<std::size_t>(device_.state_count());
  const auto actions = static_cast<std::size_t>(device_.action_count());

  // Default: actions have no effect unless declared.
  device_.transition_.resize(states * actions);
  for (std::size_t s = 0; s < states; ++s) {
    for (std::size_t a = 0; a < actions; ++a) {
      device_.transition_[s * actions + a] = static_cast<StateIndex>(s);
    }
  }
  for (const auto& t : pending_transitions_) {
    const auto s = static_cast<std::size_t>(RequireState(t.state));
    const auto a = static_cast<std::size_t>(RequireAction(t.action));
    device_.transition_[s * actions + a] = RequireState(t.next);
  }

  device_.dis_utility_.assign(states * actions, device_.default_dis_utility_);
  for (const auto& d : pending_dis_utility_) {
    const auto s = static_cast<std::size_t>(RequireState(d.state));
    const auto a = static_cast<std::size_t>(RequireAction(d.action));
    device_.dis_utility_[s * actions + a] = d.omega;
  }
  return std::move(device_);
}

}  // namespace jarvis::fsm
