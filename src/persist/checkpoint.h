// Versioned, checksummed checkpoint container — the durable form of every
// piece of learned state in the library (DESIGN.md §14).
//
// Layout (all integers little-endian):
//
//   magic   "JVCK"                     4 bytes
//   u32     format version             kFormatVersion
//   u32     section count
//   per section:
//     u32   name length, name bytes    (e.g. "spl", "dqn", "monitor")
//     u64   payload length
//     u32   CRC-32 of the payload
//     payload bytes                    (a serialized JSON document today)
//
// The container is deliberately dumb: sections are opaque byte payloads
// whose meaning belongs to their owners (spl::SafetyPolicyLearner JSON,
// rl::DqnAgent JSON, core::OnlineMonitor JSON). What the container owns is
// INTEGRITY: Parse() never trusts a byte it cannot verify, and it salvages
// per section rather than per file —
//
//   * bad magic / version skew      -> nothing recovered, issue reported;
//   * truncated file                -> sections wholly before the cut are
//                                      recovered, the rest reported;
//   * bit flip inside a payload     -> that section's CRC fails and it is
//                                      dropped, every other section kept;
//   * absurd section header         -> parsing stops there (lengths after
//                                      a corrupt header are meaningless).
//
// Parse() therefore never throws: corruption is data, not a programming
// error, and the caller decides per section how to degrade (keep the valid
// P_safe, cold-start the DQN, put the monitor in deny-unsafe mode).
//
// File I/O goes through util::io — WriteFile commits with the atomic
// write-temp → fsync → rename path and accepts the storage-fault
// interceptor so the chaos suite can corrupt checkpoints deterministically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/io.h"

namespace jarvis::persist {

inline constexpr char kMagic[4] = {'J', 'V', 'C', 'K'};
inline constexpr std::uint32_t kFormatVersion = 1;

// One thing Parse() could not recover, and why. `section` is empty for
// file-level problems (bad magic, version skew, truncation of a header).
struct CheckpointIssue {
  std::string section;
  std::string detail;
};

std::string FormatIssues(const std::vector<CheckpointIssue>& issues);

class Checkpoint {
 public:
  // Adds (or replaces) a named section. Order of first addition is
  // preserved by Serialize.
  void AddSection(const std::string& name, std::string payload);

  bool HasSection(const std::string& name) const;
  // Null when absent. The pointer is invalidated by AddSection.
  const std::string* FindSection(const std::string& name) const;
  std::vector<std::string> SectionNames() const;
  std::size_t section_count() const { return sections_.size(); }

  std::string Serialize() const;

  // Salvages whatever verifies from `bytes`; anything lost is explained in
  // `issues` (optional). Never throws: a checkpoint that fails every check
  // parses as an empty container plus issues.
  static Checkpoint Parse(const std::string& bytes,
                          std::vector<CheckpointIssue>* issues = nullptr);

  // Atomic durable write via util::io::AtomicWriteFile. Throws
  // util::io::IoError on filesystem failure (callers retry via
  // util::Retry); `interceptor` is the chaos-suite fault seam.
  void WriteFile(const std::string& path,
                 util::io::WriteInterceptor* interceptor = nullptr) const;

  // ReadFile throws util::io::IoError when the file is missing/unreadable
  // (the "missing checkpoint" recovery case); otherwise parses leniently
  // like Parse.
  static Checkpoint ReadFile(const std::string& path,
                             std::vector<CheckpointIssue>* issues = nullptr);

 private:
  // Ordered (name, payload) pairs; names are unique.
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace jarvis::persist
