#include "persist/checkpoint.h"

#include <cstring>

namespace jarvis::persist {

namespace {

// Sanity bound on a single section payload: a length field larger than
// this is treated as header corruption rather than attempted (it would
// otherwise drive a multi-gigabyte allocation off one flipped bit).
constexpr std::uint64_t kMaxSectionBytes = 1ULL << 32;

void PutU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
  out.push_back(static_cast<char>((v >> 16) & 0xFFu));
  out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFFu));
  }
}

// Cursor over untrusted bytes: every read is bounds-checked and a failed
// read leaves `ok` false instead of touching out-of-range memory.
struct Reader {
  const std::string& bytes;
  std::size_t pos = 0;
  bool ok = true;

  bool Remaining(std::size_t n) const { return bytes.size() - pos >= n; }

  std::uint32_t U32() {
    if (!ok || !Remaining(4)) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[pos + static_cast<std::size_t>(
                                                          i)]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t U64() {
    if (!ok || !Remaining(8)) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[pos + static_cast<std::size_t>(
                                                          i)]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  std::string Bytes(std::size_t n) {
    if (!ok || !Remaining(n)) {
      ok = false;
      return {};
    }
    std::string out = bytes.substr(pos, n);
    pos += n;
    return out;
  }
};

void Report(std::vector<CheckpointIssue>* issues, std::string section,
            std::string detail) {
  if (issues != nullptr) {
    issues->push_back({std::move(section), std::move(detail)});
  }
}

}  // namespace

std::string FormatIssues(const std::vector<CheckpointIssue>& issues) {
  std::string out;
  for (const auto& issue : issues) {
    if (!out.empty()) out += "; ";
    out += issue.section.empty() ? std::string("<file>") : issue.section;
    out += ": ";
    out += issue.detail;
  }
  return out;
}

void Checkpoint::AddSection(const std::string& name, std::string payload) {
  for (auto& [existing, bytes] : sections_) {
    if (existing == name) {
      bytes = std::move(payload);
      return;
    }
  }
  sections_.emplace_back(name, std::move(payload));
}

bool Checkpoint::HasSection(const std::string& name) const {
  return FindSection(name) != nullptr;
}

const std::string* Checkpoint::FindSection(const std::string& name) const {
  for (const auto& [existing, bytes] : sections_) {
    if (existing == name) return &bytes;
  }
  return nullptr;
}

std::vector<std::string> Checkpoint::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, bytes] : sections_) names.push_back(name);
  return names;
}

std::string Checkpoint::Serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(out, kFormatVersion);
  PutU32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    PutU32(out, static_cast<std::uint32_t>(name.size()));
    out += name;
    PutU64(out, payload.size());
    PutU32(out, util::io::Crc32(payload));
    out += payload;
  }
  return out;
}

Checkpoint Checkpoint::Parse(const std::string& bytes,
                             std::vector<CheckpointIssue>* issues) {
  Checkpoint ckpt;
  Reader reader{bytes};

  if (!reader.Remaining(sizeof(kMagic)) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    Report(issues, "", "bad magic: not a checkpoint file");
    return ckpt;
  }
  reader.pos = sizeof(kMagic);

  const std::uint32_t version = reader.U32();
  if (!reader.ok) {
    Report(issues, "", "truncated header");
    return ckpt;
  }
  if (version != kFormatVersion) {
    // Version skew is all-or-nothing: section layouts of another version
    // are unknown, so nothing after this header can be trusted.
    Report(issues, "",
           "format version skew: file v" + std::to_string(version) +
               ", library v" + std::to_string(kFormatVersion));
    return ckpt;
  }

  const std::uint32_t count = reader.U32();
  if (!reader.ok) {
    Report(issues, "", "truncated header");
    return ckpt;
  }

  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = reader.U32();
    // A section name is human-named and short; an absurd length means the
    // header itself is corrupt and later offsets are meaningless.
    if (!reader.ok || name_len > 4096) {
      Report(issues, "",
             "section " + std::to_string(i) + " of " + std::to_string(count) +
                 ": corrupt or truncated section header; remaining sections "
                 "unrecoverable");
      return ckpt;
    }
    const std::string name = reader.Bytes(name_len);
    const std::uint64_t payload_len = reader.U64();
    const std::uint32_t crc = reader.U32();
    if (!reader.ok || payload_len > kMaxSectionBytes) {
      Report(issues, name.empty() ? "" : name,
             "section " + std::to_string(i) + " of " + std::to_string(count) +
                 ": corrupt or truncated section header; remaining sections "
                 "unrecoverable");
      return ckpt;
    }
    const std::string payload =
        reader.Bytes(static_cast<std::size_t>(payload_len));
    if (!reader.ok) {
      Report(issues, name,
             "payload truncated (wanted " + std::to_string(payload_len) +
                 " bytes); this and remaining sections unrecoverable");
      return ckpt;
    }
    const std::uint32_t actual = util::io::Crc32(payload);
    if (actual != crc) {
      // The length was intact (we resynchronized past the payload), so
      // only THIS section is lost.
      Report(issues, name, "CRC mismatch: payload corrupt, section dropped");
      continue;
    }
    ckpt.AddSection(name, payload);
  }
  if (reader.pos != bytes.size()) {
    Report(issues, "",
           std::to_string(bytes.size() - reader.pos) +
               " trailing byte(s) after the last section (ignored)");
  }
  return ckpt;
}

void Checkpoint::WriteFile(const std::string& path,
                           util::io::WriteInterceptor* interceptor) const {
  util::io::AtomicWriteFile(path, Serialize(), interceptor);
}

Checkpoint Checkpoint::ReadFile(const std::string& path,
                                std::vector<CheckpointIssue>* issues) {
  return Parse(util::io::ReadFile(path), issues);
}

}  // namespace jarvis::persist
