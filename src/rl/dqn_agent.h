// The Deep-Q agent of Algorithm 2 with the mini-action factorization of
// Section V-A-7: the network maps an observation to one Q-value per
// mini-action slot (each device's actions plus its no-op), so the output
// width grows linearly in devices rather than exponentially in joint
// actions. Joint actions are assembled by choosing, per device, the best
// available slot; epsilon-greedy exploration samples per-device among the
// slots the availability mask admits (P_safe-constrained exploration when
// the environment is constrained).
//
// Epsilon decays only while the replay loss is at or below the preferable
// loss L_p, exactly as Algorithm 2's final guard prescribes.
#pragma once

#include <memory>
#include <vector>

#include "fsm/state.h"
#include "neural/network.h"
#include "obs/metrics.h"
#include "rl/replay.h"
#include "util/json.h"
#include "util/rng.h"

namespace jarvis::rl {

struct DqnConfig {
  std::vector<std::size_t> hidden_units = {64, 64};  // two hidden layers
  double learning_rate = 0.001;                      // Section V-A-6
  double gamma = 0.97;                               // discount rate
  double epsilon = 1.0;
  double epsilon_min = 0.05;
  double epsilon_decay = 0.97;
  // Temporally-extended exploration: an exploring device repeats its
  // previous exploratory choice with this probability instead of drawing
  // fresh. Sustained-control behaviors (heating a cold house for an hour)
  // are unreachable by per-step uniform dithering; sticky exploration
  // produces the multi-step streaks they need.
  double explore_repeat_prob = 0.6;
  double preferable_loss = 1.0;  // L_p (rewards are per-minute, O(1))
  // Replay loss above this (or any non-finite loss) flags the agent as
  // diverged; the trainer then restores the last good snapshot, purges the
  // poisoned replay memory, and reseeds exploration.
  double divergence_loss = 1e6;
  std::size_t batch_size = 32;    // BSize
  std::size_t replay_capacity = 20000;
  // Replay passes between target-network syncs; 0 disables the target
  // network and bootstraps from the online network (the paper's setup).
  // A frozen target decouples the bootstrap from the parameters being
  // updated — the standard DQN stabilizer (ablated in bench_ablation_rl).
  int target_sync_interval = 0;
  std::uint64_t seed = 99;
};

// What DqnAgent::ToJson carries beyond the Q-network parameters.
struct AgentSerializeOptions {
  // Adam moments + step count, so a restored agent resumes mid-anneal
  // instead of re-warming the optimizer.
  bool include_optimizer = true;
  // The replay memory. Off by default: it dominates checkpoint size and a
  // warm-started tenant regenerates experience quickly.
  bool include_replay = false;
};

class DqnAgent {
 public:
  DqnAgent(std::size_t feature_width, const fsm::StateCodec& codec,
           DqnConfig config);

  // Chooses a joint action for the observation. `mask` flags available
  // mini-action slots. When `greedy`, exploration is disabled (policy
  // evaluation mode).
  fsm::ActionVector SelectAction(const std::vector<double>& features,
                                 const std::vector<bool>& mask, bool greedy);

  // Q-values for all slots (diagnostics and Table III reporting).
  std::vector<double> QValues(const std::vector<double>& features) const;

  // Greedy joint-action decode from a precomputed Q-value row: per device,
  // the best mask-admitted slot (ties to the no-op). This is exactly
  // SelectAction's greedy path, split out const so (a) a batched forward
  // (runtime::InferenceBatcher) can decode each output row without a second
  // per-row Predict, and (b) concurrent fleet tenants can decode without
  // touching any agent state — unlike SelectAction, which maintains the
  // sticky-exploration memory even when called greedily.
  fsm::ActionVector GreedyActionFromQ(const std::vector<double>& q,
                                      const std::vector<bool>& mask) const;

  void Remember(Experience experience);

  // One replay mini-batch training pass (no-op until the buffer can fill a
  // batch). Returns the masked MSE loss, and applies the L_p-gated epsilon
  // decay.
  double Replay();

  // Applies one unconditional epsilon decay step (e.g. per episode), in
  // addition to Algorithm 2's loss-gated per-replay decay. Used by
  // comparisons that need both agents on a common annealing schedule.
  void DecayEpsilonOnce();

  // Best-policy checkpointing: snapshot the current parameters, restore
  // them later (used by the trainer to keep the best greedy policy seen,
  // since epsilon-greedy training is noisy).
  void SaveSnapshot();
  void RestoreSnapshot();
  bool has_snapshot() const { return !snapshot_.empty(); }

  // Divergence detection and recovery. diverged() reflects the most recent
  // replay loss; ReseedExploration restarts the exploration schedule (fresh
  // RNG stream, initial epsilon, no sticky-slot memory) so a restored
  // network does not replay the trajectory that diverged it; the purge
  // drops non-finite experiences from the replay memory.
  bool diverged() const;
  void ReseedExploration(std::uint64_t seed);
  std::size_t PurgePoisonedExperiences() { return buffer_.PurgePoisoned(); }

  // Wires rl.agent.* instruments (actions selected, replay batches, loss
  // and epsilon histograms, replay-size gauge, forward/train timers) and
  // cascades to the network (neural.predict_batch.rows). Null disables —
  // and the hot-loop call sites are additionally wrapped in
  // JARVIS_OBS_ONLY so a -DJARVIS_OBS_OFF build compiles them out.
  void SetMetrics(obs::Registry* registry);

  // Checkpoint persistence. ToJson captures the learnt state (Q-network,
  // optionally optimizer moments and replay memory) plus the exploration
  // point (epsilon, last loss). LoadJson restores into an agent built with
  // the same widths — feature width and mini-action count are recorded and
  // verified, and every numeric field is validated (util::JsonError on
  // hostile documents) before any state is replaced. The target network and
  // sticky-exploration memory are transient and reset on load; metrics
  // wiring survives (SetMetrics state is re-applied to the restored
  // network).
  util::JsonValue ToJson(const AgentSerializeOptions& options = {}) const;
  void LoadJson(const util::JsonValue& doc);

  double epsilon() const { return config_.epsilon; }
  double last_loss() const { return last_loss_; }
  const DqnConfig& config() const { return config_; }
  const neural::Network& network() const { return network_; }
  std::size_t replay_size() const { return buffer_.size(); }

 private:
  // Per-device best available slot by Q-value; `q` is the network output
  // row for the observation.
  std::size_t BestSlotForDevice(const std::vector<double>& q,
                                const std::vector<bool>& mask,
                                std::size_t device) const;

  const fsm::StateCodec& codec_;
  DqnConfig config_;
  neural::Network network_;
  // Frozen copy of the online network for bootstrap targets; null when
  // target_sync_interval == 0.
  std::unique_ptr<neural::Network> target_network_;
  int replays_since_sync_ = 0;
  ReplayBuffer buffer_;
  util::Rng rng_;
  double initial_epsilon_;
  double last_loss_ = 0.0;
  std::vector<std::pair<neural::Tensor, neural::Tensor>> snapshot_;
  // Last exploratory slot per device (sticky exploration); empty until the
  // first SelectAction.
  std::vector<std::size_t> last_explore_slot_;
  // Last registry handed to SetMetrics, so LoadJson can re-wire the
  // restored network's instruments.
  obs::Registry* metrics_registry_ = nullptr;
  // Hot-loop scratch, reused across calls so steady-state SelectAction and
  // Replay perform zero allocations (DESIGN.md §12).
  std::vector<double> q_scratch_;
  std::vector<std::size_t> replay_indices_;
  neural::Tensor replay_inputs_;   // batch x features
  neural::Tensor replay_next_;     // batch x features (zeros on done rows)
  neural::Tensor replay_targets_;  // batch x slots
  neural::Tensor replay_mask_;     // batch x slots
  obs::Counter* actions_counter_ = nullptr;
  obs::Counter* replays_counter_ = nullptr;
  obs::Gauge* replay_size_gauge_ = nullptr;
  obs::Gauge* epsilon_gauge_ = nullptr;
  obs::Histogram* loss_histogram_ = nullptr;
  obs::Histogram* epsilon_histogram_ = nullptr;
  obs::Histogram* forward_timer_ = nullptr;
  obs::Histogram* train_timer_ = nullptr;
};

}  // namespace jarvis::rl
