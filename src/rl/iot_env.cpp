#include "rl/iot_env.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jarvis::rl {

IoTEnv::IoTEnv(const fsm::EnvironmentFsm& fsm, const sim::DayTrace& natural,
               sim::ThermalConfig thermal,
               const spl::SafetyPolicyLearner* learner, IoTEnvConfig config)
    : fsm_(fsm),
      natural_(natural),
      thermal_config_(thermal),
      learner_(learner),
      config_(config),
      reward_(config.weights),
      refs_(fsm),
      max_watts_(0.0),
      max_price_(0.0),
      thermal_(thermal),
      episode_({util::kMinutesPerDay, 1},
               util::SimTime::FromDayAndMinute(natural.scenario.day, 0),
               natural.episode.initial_state()) {
  if (config_.constrained && learner_ == nullptr) {
    throw std::invalid_argument("IoTEnv: constrained mode needs a learner");
  }
  if (util::kMinutesPerDay % config_.decision_interval_minutes != 0) {
    throw std::invalid_argument(
        "IoTEnv: decision interval must divide the day");
  }
  for (const auto& device : fsm_.devices()) {
    double device_max = 0.0;
    for (fsm::StateIndex s = 0; s < device.state_count(); ++s) {
      device_max = std::max(device_max, device.PowerDraw(s));
    }
    max_watts_ += device_max;
  }
  max_price_ = *std::max_element(natural.scenario.price_usd_per_kwh.begin(),
                                 natural.scenario.price_usd_per_kwh.end());
  Reset();
}

void IoTEnv::Reset() {
  minute_ = 0;
  state_ = natural_.episode.initial_state();
  thermal_ = sim::ThermalModel(thermal_config_);
  episode_ = fsm::Episode(
      {util::kMinutesPerDay, 1},
      util::SimTime::FromDayAndMinute(natural_.scenario.day, 0), state_);
  indoor_c_.clear();
  indoor_c_.reserve(util::kMinutesPerDay);
  violation_patterns_.clear();
  violation_events_ = 0;
  cumulative_reward_ = 0.0;

  demands_.clear();
  for (const auto& demand : natural_.scenario.demands) {
    if (demand.device_label != "washer" && demand.device_label != "dishwasher") {
      continue;  // only deferrable appliances become agent demands
    }
    for (const auto& device : fsm_.devices()) {
      if (device.label() == demand.device_label) {
        demands_.push_back({demand, device.id(), false, -1});
        break;
      }
    }
  }
}

bool IoTEnv::IsDeferrable(fsm::DeviceId device) const {
  for (const auto& demand : demands_) {
    if (demand.device == device) return true;
  }
  return false;
}

fsm::ActionVector IoTEnv::ResidentActionsAt(int minute) const {
  fsm::ActionVector actions(fsm_.device_count(), fsm::kNoAction);
  const auto& step =
      natural_.episode.steps()[static_cast<std::size_t>(minute)];
  auto copy_if_owned = [&](const std::optional<fsm::DeviceId>& id) {
    if (!id) return;
    const auto idx = static_cast<std::size_t>(*id);
    actions[idx] = step.action[idx];
  };
  // Resident-owned devices: physical-presence actions the optimizer must
  // not usurp. Thermostat, light, washer, and dishwasher belong to the
  // agent; sensors evolve exogenously.
  copy_if_owned(refs_.lock);
  copy_if_owned(refs_.fridge);
  copy_if_owned(refs_.oven);
  copy_if_owned(refs_.tv);
  copy_if_owned(refs_.coffee_maker);
  return actions;
}

std::size_t IoTEnv::feature_width() const {
  return fsm_.codec().one_hot_width() + 7;
}

std::vector<double> IoTEnv::Features() const {
  return FeaturesFor(state_, minute_);
}

std::vector<double> IoTEnv::FeaturesFor(const fsm::StateVector& raw_state,
                                        int raw_minute) const {
  std::vector<double> features = fsm_.codec().OneHot(raw_state);
  features.reserve(feature_width());
  const int minute = std::clamp(raw_minute, 0, util::kMinutesPerDay - 1);
  const double phase = 2.0 * M_PI * static_cast<double>(minute) /
                       static_cast<double>(util::kMinutesPerDay);
  const auto m = static_cast<std::size_t>(minute);
  features.push_back(std::sin(phase));
  features.push_back(std::cos(phase));
  features.push_back(natural_.scenario.occupied[m] ? 1.0 : 0.0);
  features.push_back(natural_.scenario.someone_awake[m] ? 1.0 : 0.0);
  features.push_back(natural_.scenario.price_usd_per_kwh[m] / max_price_);
  features.push_back(natural_.scenario.outdoor_c[m] / 40.0);
  features.push_back((thermal_.indoor_temp_c() - 21.0) / 10.0);
  return features;
}

std::vector<bool> IoTEnv::SafeSlotMaskFor(const fsm::StateVector& state,
                                          int minute) const {
  const auto& codec = fsm_.codec();
  std::vector<bool> mask(codec.mini_action_count(), false);
  for (std::size_t slot = 0; slot < mask.size(); ++slot) {
    const fsm::MiniAction mini = codec.SlotToMiniAction(slot);
    if (mini.action == fsm::kNoAction) {
      mask[slot] = true;  // doing nothing is always available
      continue;
    }
    const auto& device = fsm_.device(mini.device);
    if (!device.ActionHasEffect(
            state[static_cast<std::size_t>(mini.device)], mini.action)) {
      continue;  // equivalent to no-op; keep the action space tight
    }
    if (config_.constrained) {
      mask[slot] = learner_->table().IsMiniActionSafe(state, mini, minute);
    } else {
      mask[slot] = true;
    }
  }
  return mask;
}

std::vector<bool> IoTEnv::SafeSlotMask() const {
  return SafeSlotMaskFor(state_, std::min(minute_, util::kMinutesPerDay - 1));
}

fsm::ActionVector IoTEnv::DemonstrationAction() const {
  // The rule-based controller the Table II apps implement, applied to the
  // agent-owned devices in the *current* env state: comfort-track the
  // thermostat while occupied and shut it off when away (App 2 + App 5),
  // match the lighting habit, and start deferrable demands at their
  // preferred minute. Algorithm 2's agent starts from this app behavior
  // and improves on it.
  fsm::ActionVector action(fsm_.device_count(), fsm::kNoAction);
  if (done()) return action;
  const int minute = minute_;
  const auto m = static_cast<std::size_t>(minute);
  const bool occupied = natural_.scenario.occupied[m];
  const bool awake = natural_.scenario.someone_awake[m];

  if (refs_.thermostat) {
    const auto idx = static_cast<std::size_t>(*refs_.thermostat);
    const auto& thermostat = fsm_.device(*refs_.thermostat);
    if (occupied) {
      if (thermal_.indoor_temp_c() < thermal_config_.optimal_low_c) {
        action[idx] = *thermostat.FindAction("increase_temp");
      } else if (thermal_.indoor_temp_c() > thermal_config_.optimal_high_c) {
        action[idx] = *thermostat.FindAction("decrease_temp");
      } else if (state_[idx] != *thermostat.FindState("off") &&
                 thermal_.indoor_temp_c() >
                     thermal_config_.optimal_low_c + 1.0) {
        // Inside the band with margin: coast.
        action[idx] = *thermostat.FindAction("power_off");
      }
    } else if (state_[idx] != *thermostat.FindState("off")) {
      action[idx] = *thermostat.FindAction("power_off");
    }
  }

  if (refs_.light) {
    const auto idx = static_cast<std::size_t>(*refs_.light);
    const auto& light = fsm_.device(*refs_.light);
    const bool dark = minute < 6 * 60 + 45 || minute >= 17 * 60 + 45;
    const bool want_on = dark && occupied && awake;
    if (want_on && state_[idx] == *light.FindState("off")) {
      action[idx] = *light.FindAction("power_on");
    } else if (!want_on && state_[idx] == *light.FindState("on")) {
      action[idx] = *light.FindAction("power_off");
    }
  }

  for (const auto& demand : demands_) {
    if (demand.started) continue;
    const auto idx = static_cast<std::size_t>(demand.device);
    const auto& device = fsm_.device(demand.device);
    if (minute + config_.decision_interval_minutes <=
        demand.demand.preferred_minute) {
      continue;
    }
    // Power on first if needed, then start the cycle.
    if (state_[idx] == *device.FindState("off")) {
      if (const auto on = device.FindAction("power_on")) action[idx] = *on;
    } else if (const auto start =
                   device.FindAction(demand.demand.action_name)) {
      action[idx] = *start;
    }
  }
  return action;
}

double IoTEnv::AdvanceMinute(const fsm::ActionVector* agent_action) {
  const int minute = minute_;
  const auto m = static_cast<std::size_t>(minute);
  const util::SimTime now =
      util::SimTime::FromDayAndMinute(natural_.scenario.day, minute);

  // ---- Merge actions: resident first (constraint 4), agent second. ----
  fsm::ActionVector merged = ResidentActionsAt(minute);
  // Auto-finish running deferrable cycles.
  for (auto& demand : demands_) {
    if (demand.started && demand.finish_minute == minute) {
      const auto idx = static_cast<std::size_t>(demand.device);
      const auto& device = fsm_.device(demand.device);
      const auto finish = device.FindAction("finish_cycle");
      if (finish && merged[idx] == fsm::kNoAction &&
          device.ActionHasEffect(state_[idx], *finish)) {
        merged[idx] = *finish;
      }
    }
  }

  if (agent_action != nullptr) {
    fsm_.ValidateAction(*agent_action);
    for (std::size_t i = 0; i < agent_action->size(); ++i) {
      const fsm::ActionIndex a = (*agent_action)[i];
      if (a == fsm::kNoAction) continue;
      if (merged[i] != fsm::kNoAction) continue;  // device busy this minute
      const fsm::MiniAction mini{static_cast<fsm::DeviceId>(i), a};
      if (!fsm_.device(mini.device)
               .ActionHasEffect(state_[i], a)) {
        continue;
      }
      if (config_.constrained &&
          !learner_->table().IsMiniActionSafe(state_, mini, minute)) {
        continue;  // the constrained agent cannot leave the whitelist
      }
      if (learner_ != nullptr &&
          learner_->ClassifyMini(state_, mini, minute) ==
              spl::Verdict::kViolation) {
        ++violation_events_;
        std::uint64_t pattern = static_cast<std::uint64_t>(mini.device);
        pattern = pattern * 131 + static_cast<std::uint64_t>(mini.action + 1);
        pattern = pattern * 131 + static_cast<std::uint64_t>(state_[i]);
        pattern = pattern * 131 +
                  static_cast<std::uint64_t>(minute / spl::kTimeBucketMinutes);
        violation_patterns_.insert(pattern);
      }
      merged[i] = a;
    }
  }

  // ---- Record and advance the FSM. ----
  episode_.Record(now, state_, merged);
  fsm::StateVector next = fsm_.Apply(state_, merged);

  // Deferrable demand bookkeeping: a start action satisfies the demand.
  for (auto& demand : demands_) {
    if (demand.started) continue;
    const auto idx = static_cast<std::size_t>(demand.device);
    if (merged[idx] == fsm::kNoAction) continue;
    const auto& device = fsm_.device(demand.device);
    if (device.action_name(merged[idx]) == demand.demand.action_name) {
      demand.started = true;
      demand.finish_minute =
          std::min(minute + demand.demand.duration_minutes,
                   util::kMinutesPerDay - 1);
    }
  }

  // ---- Exogenous sensor evolution. ----
  if (refs_.door_sensor) {
    const auto idx = static_cast<std::size_t>(*refs_.door_sensor);
    const auto& sensor = fsm_.device(*refs_.door_sensor);
    if (next[idx] != *sensor.FindState("off")) {
      const bool arriving =
          std::find(natural_.scenario.arrival_minutes.begin(),
                    natural_.scenario.arrival_minutes.end(),
                    minute) != natural_.scenario.arrival_minutes.end();
      next[idx] = arriving ? *sensor.FindState("auth_user")
                           : *sensor.FindState("sensing");
    }
  }

  // ---- Physics. ----
  sim::HvacMode mode = sim::HvacMode::kOff;
  if (refs_.thermostat) {
    const auto thermostat_state =
        next[static_cast<std::size_t>(*refs_.thermostat)];
    if (thermostat_state <= 2) {
      mode = sim::HvacModeFromThermostatState(thermostat_state);
    }
  }
  thermal_.Step(mode, natural_.scenario.outdoor_c[m]);
  indoor_c_.push_back(thermal_.indoor_temp_c());

  if (refs_.temp_sensor) {
    const auto idx = static_cast<std::size_t>(*refs_.temp_sensor);
    const auto& sensor = fsm_.device(*refs_.temp_sensor);
    if (next[idx] != *sensor.FindState("off") &&
        next[idx] != *sensor.FindState("fire_alarm")) {
      next[idx] = thermal_.SensorState();
    }
  }

  // ---- Reward. ----
  double watts = 0.0;
  for (std::size_t i = 0; i < fsm_.device_count(); ++i) {
    watts += fsm_.devices()[i].PowerDraw(next[i]);
  }

  double pending = 0.0;
  for (const auto& demand : demands_) {
    if (demand.started || minute < demand.demand.preferred_minute) continue;
    const double delay =
        static_cast<double>(minute - demand.demand.preferred_minute);
    pending += fsm_.device(demand.device).default_dis_utility() * delay /
               static_cast<double>(util::kMinutesPerDay);
  }
  // Comfort habit: an occupied house outside the comfort band charges the
  // user's standing discomfort each minute, growing with how far the
  // temperature has drifted (a 10-degC-cold house is far worse than a
  // 1-degC one). Even when the functionality weight on temperature is
  // small, abandoning heating must not pay (the paper's chi-balance
  // requirement).
  if (refs_.thermostat && natural_.scenario.occupied[m]) {
    const double error = thermal_.ComfortErrorC();
    if (error > 0.5) {
      pending += config_.comfort_disutility_per_degc_min *
                 std::min(error, 10.0);
    }
  }
  // Lighting habit: dark + occupied + awake wants the light on.
  if (refs_.light) {
    const bool dark = minute < 6 * 60 + 45 || minute >= 17 * 60 + 45;
    const auto idx = static_cast<std::size_t>(*refs_.light);
    const auto& light = fsm_.device(*refs_.light);
    if (dark && natural_.scenario.occupied[m] &&
        natural_.scenario.someone_awake[m] &&
        next[idx] == *light.FindState("off")) {
      pending += light.default_dis_utility();
    }
  }
  pending *= config_.disutility_scale;

  StepPhysical physical;
  physical.interval_watts = watts;
  physical.max_watts = max_watts_;
  physical.price_usd_per_kwh = natural_.scenario.price_usd_per_kwh[m];
  physical.max_price_usd_per_kwh = max_price_;
  physical.comfort_error_c = thermal_.ComfortErrorC();
  physical.occupied = natural_.scenario.occupied[m];
  physical.pending_disutility = pending;

  const double reward = reward_.Compute(physical);
  cumulative_reward_ += reward;

  state_ = std::move(next);
  ++minute_;
  return reward;
}

StepResult IoTEnv::Step(const fsm::ActionVector& agent_action) {
  if (done()) throw std::logic_error("IoTEnv::Step: episode is done");
  double reward = AdvanceMinute(&agent_action);
  int minutes = 1;
  for (; minutes < config_.decision_interval_minutes && !done(); ++minutes) {
    reward += AdvanceMinute(nullptr);
  }
  // The step reward is the *mean per-minute* R_smart over the interval, so
  // Q-value magnitudes stay O(1/(1-gamma)) regardless of the decision
  // interval chosen.
  return {reward / static_cast<double>(minutes), done()};
}

sim::DayMetrics IoTEnv::Metrics() const {
  return sim::ComputeMetrics(fsm_, episode_, natural_.scenario, indoor_c_,
                             thermal_config_);
}

}  // namespace jarvis::rl
