// Experience replay (Section V-A-6): the agent remembers transitions from
// prior episodes and replays random mini-batches to learn cumulative
// rewards, so the DQN retains experience across episodes.
#pragma once

#include <cstddef>
#include <vector>

#include "util/json.h"
#include "util/rng.h"

namespace jarvis::rl {

// One remembered decision instant. Targets are recomputed at replay time
// from the current network, so the experience stores the raw observation,
// the mini-action slots taken, the reward, and the next observation with
// its availability mask.
struct Experience {
  std::vector<double> features;
  std::vector<std::size_t> taken_slots;
  double reward = 0.0;
  std::vector<double> next_features;
  std::vector<bool> next_mask;
  bool done = false;
};

// Fixed-capacity ring buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void Add(Experience experience);

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool CanSample(std::size_t batch) const { return buffer_.size() >= batch; }

  // Samples `batch` buffer indices uniformly with replacement (Algorithm
  // 2's Sample(Mem, BSize)). Indices — not pointers — are returned because
  // Add() overwrites slots once the ring is full and PurgePoisoned()
  // compacts the buffer: a pointer taken before either call can dangle or
  // silently alias a different experience. An index is valid (At() accepts
  // it) until the next Add, PurgePoisoned, or Clear, and its *meaning*
  // (which experience it names) changes under the same operations — consume
  // samples before mutating the buffer.
  std::vector<std::size_t> Sample(std::size_t batch, util::Rng& rng) const;

  // Allocation-free variant: fills `out` (cleared first) with `batch`
  // sampled indices. Draws from `rng` identically to Sample().
  void SampleInto(std::size_t batch, util::Rng& rng,
                  std::vector<std::size_t>& out) const;

  // Bounds-checked access to a sampled experience (JARVIS_CHECK: throws
  // util::CheckError on a stale index that outlived a shrink). The
  // reference follows the same lifetime contract as the index.
  const Experience& At(std::size_t index) const;

  // Divergence recovery: removes experiences with non-finite features or
  // rewards (or absurd reward magnitudes) so a restored network does not
  // immediately re-train on the samples that diverged it. Returns the
  // number removed; relative order of survivors is preserved.
  std::size_t PurgePoisoned();

  void Clear();

  // Persistence for checkpointing. ToJson emits experiences oldest-first
  // regardless of where the ring cursor sits, so a LoadJson round-trip
  // (which re-Adds in order) reproduces the same overwrite order and the
  // same index->experience mapping for a given sample stream. LoadJson
  // validates every entry against the agent's widths (features ==
  // `feature_width`, masks == `slot_count`, slots < `slot_count`, finite
  // numerics) and throws util::JsonError before touching the buffer —
  // hostile documents must not evict real experience.
  util::JsonValue ToJson() const;
  void LoadJson(const util::JsonValue& doc, std::size_t feature_width,
                std::size_t slot_count);

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Experience> buffer_;
};

}  // namespace jarvis::rl
