// Experience replay (Section V-A-6): the agent remembers transitions from
// prior episodes and replays random mini-batches to learn cumulative
// rewards, so the DQN retains experience across episodes.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace jarvis::rl {

// One remembered decision instant. Targets are recomputed at replay time
// from the current network, so the experience stores the raw observation,
// the mini-action slots taken, the reward, and the next observation with
// its availability mask.
struct Experience {
  std::vector<double> features;
  std::vector<std::size_t> taken_slots;
  double reward = 0.0;
  std::vector<double> next_features;
  std::vector<bool> next_mask;
  bool done = false;
};

// Fixed-capacity ring buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void Add(Experience experience);

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool CanSample(std::size_t batch) const { return buffer_.size() >= batch; }

  // Samples `batch` experiences uniformly with replacement (Algorithm 2's
  // Sample(Mem, BSize)).
  std::vector<const Experience*> Sample(std::size_t batch,
                                        util::Rng& rng) const;

  // Divergence recovery: removes experiences with non-finite features or
  // rewards (or absurd reward magnitudes) so a restored network does not
  // immediately re-train on the samples that diverged it. Returns the
  // number removed; relative order of survivors is preserved.
  std::size_t PurgePoisoned();

  void Clear();

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Experience> buffer_;
};

}  // namespace jarvis::rl
