// Gym-like environment contract (the paper builds its simulated RF
// environment on OpenAI Gym, Section V-A-5). Concrete environments —
// IoTEnv for the smart home — implement this interface so agents and
// trainers can be written against the abstraction.
#pragma once

#include <cstddef>
#include <vector>

#include "fsm/state.h"

namespace jarvis::rl {

struct StepResult {
  double reward = 0.0;
  bool done = false;
};

class Environment {
 public:
  virtual ~Environment() = default;

  // Restarts the episode.
  virtual void Reset() = 0;

  // Applies the agent's joint action at the current decision instant and
  // advances to the next one.
  virtual StepResult Step(const fsm::ActionVector& action) = 0;

  virtual bool done() const = 0;
  virtual int steps_per_episode() const = 0;

  // Featurized observation of the current state.
  virtual std::vector<double> Features() const = 0;
  virtual std::size_t feature_width() const = 0;

  // Availability mask over mini-action slots at the current observation.
  virtual std::vector<bool> SafeSlotMask() const = 0;

  // Cumulative (un-normalized) episode reward so far.
  virtual double cumulative_reward() const = 0;
};

}  // namespace jarvis::rl
