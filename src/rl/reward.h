// The estimated smart reward function R_smart of Section IV-B:
//
//   R_smart(S, A, t) = sum_j f_j * F_j(s, a, t)
//                      - (I / kT) * sum_i omega_i(s_i, a) * (t - t')
//
// The utility part combines the normalized functionality rewards the
// evaluation uses (Section VI-D): F_0 energy usage, F_1 electricity cost
// under day-ahead prices, F_3 temperature difference. The dis-utility part
// charges each device for delay relative to the user's habitual time t'.
// The utility-disutility ratio chi balances the two sides; the evaluation
// uses chi = 1 so "optimized actions never cause more dis-utility than
// functionality".
#pragma once

#include <cstddef>
#include <string>

namespace jarvis::rl {

// Functionality weights f_j. The evaluation sweeps each in [0.1, 0.9] with
// the others sharing the remainder (f_1 + f_2 + f_3 = 1).
struct RewardWeights {
  double f_energy = 1.0 / 3.0;
  double f_cost = 1.0 / 3.0;
  double f_temp = 1.0 / 3.0;
  // Utility/dis-utility balance chi (Section IV-B). 1.0 = balanced.
  double chi = 1.0;

  double Sum() const { return f_energy + f_cost + f_temp; }

  // Sets one functionality's weight to `value` and splits the remainder
  // evenly across the other two (the sweep parameterization of Figs. 6-8).
  static RewardWeights Sweep(const std::string& focus, double value);
};

// Physical quantities of one environment step, gathered by the env.
struct StepPhysical {
  double interval_watts = 0.0;     // mean draw over the interval
  double max_watts = 1.0;          // home-wide maximum draw (normalizer)
  double price_usd_per_kwh = 0.0;  // current DAM price
  double max_price_usd_per_kwh = 1.0;
  double comfort_error_c = 0.0;    // |indoor - comfort band|
  bool occupied = false;
  // Sum over devices of omega_i * normalized pending delay (computed by
  // the env's habit tracker): the (I/kT) * sum omega_i (t - t') term.
  double pending_disutility = 0.0;
};

class SmartReward {
 public:
  explicit SmartReward(RewardWeights weights);

  // Normalized functionality rewards, each in [0, 1].
  double EnergyReward(const StepPhysical& physical) const;
  double CostReward(const StepPhysical& physical) const;
  double TempReward(const StepPhysical& physical) const;

  // sum_j f_j F_j, in [0, Sum()].
  double Utility(const StepPhysical& physical) const;

  // The dis-utility term, scaled by 1/chi so that chi > 1 favors utility.
  double DisUtility(const StepPhysical& physical) const;

  // R_smart = Utility - DisUtility.
  double Compute(const StepPhysical& physical) const;

  const RewardWeights& weights() const { return weights_; }

 private:
  RewardWeights weights_;
};

}  // namespace jarvis::rl
