// Training loop for Algorithm 2: runs the agent through EP episodes of the
// simulated environment, storing experiences and replaying mini-batches,
// then evaluates the learnt policy greedily and reports both the reward
// trajectory and the physical day metrics (energy / cost / comfort) that
// the functionality benches compare against normal behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "rl/dqn_agent.h"
#include "rl/iot_env.h"

namespace jarvis::rl {

// When (if ever) a training run streams its live weights out mid-run —
// the online-learning lever: serving traffic rides a policy at most N
// episodes / T ms stale instead of waiting for the whole run to finish.
// Triggers compose with OR; all disabled (the default) means
// publish-on-completion only, the exact pre-republish behavior.
struct RepublishPolicy {
  // Publish after every N completed (non-aborted) episodes. 0 = off.
  int every_episodes = 0;
  // Publish when at least this much wall time passed since the last
  // publish (checked at episode boundaries; kTiming-shaped — use the
  // episode trigger where determinism matters). 0 = off.
  std::int64_t every_ms = 0;
  // Publish whenever an episode ends with a strictly lower replay loss
  // than any seen before in this run.
  bool on_loss_improvement = false;

  bool enabled() const {
    return every_episodes > 0 || every_ms > 0 || on_loss_improvement;
  }
};

// What the trainer knows at the episode boundary that triggered a
// republish; handed to the hook alongside the live network.
struct EpisodeProgress {
  int episode = 0;  // 0-based index of the episode that just completed
  int restart = 0;  // filled by core::Jarvis (which restart is training)
  double loss = 0.0;
  double reward = 0.0;
};

// Invoked on the training thread at republish points with the agent's LIVE
// network — quiescent for exactly the duration of the call (the trainer is
// the single writer and it is blocked in the hook). Implementations must
// snapshot (e.g. AggregationService::PublishWeights clones) rather than
// retain the reference, and must not throw or draw from the trainer's RNG
// streams: the training trajectory is bit-identical with or without a hook.
using RepublishHook =
    std::function<void(const EpisodeProgress&, const neural::Network&)>;

struct TrainerConfig {
  int episodes = 24;            // EP
  int replays_per_step = 1;     // replay() calls per decision instant
  // Episodes at the start of training driven by the resident's natural
  // behavior instead of the agent (experiences are stored and replayed as
  // usual). Deep-Q from demonstrations, scaled down: gives the value
  // function a known-good trajectory so sustained-control optima (hours of
  // winter heating) are discoverable from any seed.
  int demonstration_episodes = 2;
  // Streaming-republish cadence; no effect unless Train is also given a
  // RepublishHook to stream through.
  RepublishPolicy republish;
};

struct TrainResult {
  std::vector<double> episode_rewards;   // training episodes, in order
  double final_epsilon = 0.0;
  double final_loss = 0.0;
  std::size_t training_violations = 0;   // summed over training episodes

  // Divergence recovery accounting: how many episodes were aborted because
  // the replay loss went non-finite (or past divergence_loss), and how many
  // poisoned experiences the recoveries dropped from the replay memory.
  std::size_t divergence_recoveries = 0;
  std::size_t poisoned_experiences_purged = 0;

  // Mid-run weight publishes the republish policy triggered (0 when the
  // policy is disabled or no hook was passed).
  std::size_t republishes = 0;

  // Greedy evaluation episode after training.
  double greedy_reward = 0.0;
  std::size_t greedy_violations = 0;
  sim::DayMetrics greedy_metrics;
  fsm::Episode greedy_episode{{1, 1}, util::SimTime(0), {0}};
};

// Trains `agent` on `env` and greedily evaluates. The env is reset as
// needed; after return it holds the greedy evaluation episode. When
// `metrics` is non-null the run bumps rl.trainer.* counters (episodes,
// steps, divergence recoveries, purged experiences, republishes) and wires
// the agent (rl.agent.*) for the duration of the call; observation only —
// the training trajectory is identical either way.
//
// A non-null `republish_hook` is invoked per config.republish at episode
// boundaries (never after an aborted episode: the weights were just
// restored from the divergence snapshot, publishing them would re-serve a
// policy the trainer already rejected). The hook draws no RNG and the
// trainer takes no decision from it, so the trajectory is bit-identical
// with or without streaming enabled.
TrainResult Train(IoTEnv& env, DqnAgent& agent, TrainerConfig config,
                  obs::Registry* metrics = nullptr,
                  RepublishHook republish_hook = nullptr);

// Runs one greedy (no exploration, no learning) episode and returns its
// cumulative reward. The env afterwards holds the episode.
double RunGreedyEpisode(IoTEnv& env, DqnAgent& agent);

}  // namespace jarvis::rl
