// Training loop for Algorithm 2: runs the agent through EP episodes of the
// simulated environment, storing experiences and replaying mini-batches,
// then evaluates the learnt policy greedily and reports both the reward
// trajectory and the physical day metrics (energy / cost / comfort) that
// the functionality benches compare against normal behavior.
#pragma once

#include <vector>

#include "obs/metrics.h"
#include "rl/dqn_agent.h"
#include "rl/iot_env.h"

namespace jarvis::rl {

struct TrainerConfig {
  int episodes = 24;            // EP
  int replays_per_step = 1;     // replay() calls per decision instant
  // Episodes at the start of training driven by the resident's natural
  // behavior instead of the agent (experiences are stored and replayed as
  // usual). Deep-Q from demonstrations, scaled down: gives the value
  // function a known-good trajectory so sustained-control optima (hours of
  // winter heating) are discoverable from any seed.
  int demonstration_episodes = 2;
};

struct TrainResult {
  std::vector<double> episode_rewards;   // training episodes, in order
  double final_epsilon = 0.0;
  double final_loss = 0.0;
  std::size_t training_violations = 0;   // summed over training episodes

  // Divergence recovery accounting: how many episodes were aborted because
  // the replay loss went non-finite (or past divergence_loss), and how many
  // poisoned experiences the recoveries dropped from the replay memory.
  std::size_t divergence_recoveries = 0;
  std::size_t poisoned_experiences_purged = 0;

  // Greedy evaluation episode after training.
  double greedy_reward = 0.0;
  std::size_t greedy_violations = 0;
  sim::DayMetrics greedy_metrics;
  fsm::Episode greedy_episode{{1, 1}, util::SimTime(0), {0}};
};

// Trains `agent` on `env` and greedily evaluates. The env is reset as
// needed; after return it holds the greedy evaluation episode. When
// `metrics` is non-null the run bumps rl.trainer.* counters (episodes,
// steps, divergence recoveries, purged experiences) and wires the agent
// (rl.agent.*) for the duration of the call; observation only — the
// training trajectory is identical either way.
TrainResult Train(IoTEnv& env, DqnAgent& agent, TrainerConfig config,
                  obs::Registry* metrics = nullptr);

// Runs one greedy (no exploration, no learning) episode and returns its
// cumulative reward. The env afterwards holds the episode.
double RunGreedyEpisode(IoTEnv& env, DqnAgent& agent);

}  // namespace jarvis::rl
