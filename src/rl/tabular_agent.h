// Tabular Q-learning baseline. Keys Q-values on a factored context (the
// acted device's state, the security context, and the hour of day) instead
// of a neural approximation. Converges deterministically on small problems,
// which makes it the reference implementation the agent tests check the
// DQN against.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fsm/environment.h"
#include "util/rng.h"

namespace jarvis::rl {

struct TabularConfig {
  double learning_rate = 0.2;
  double gamma = 0.95;
  double epsilon = 1.0;
  double epsilon_min = 0.05;
  double epsilon_decay = 0.995;
  std::uint64_t seed = 123;
};

class TabularQAgent {
 public:
  TabularQAgent(const fsm::EnvironmentFsm& fsm, TabularConfig config);

  // Chooses a joint action (per-device best/random available slot).
  fsm::ActionVector SelectAction(const fsm::StateVector& state, int minute,
                                 const std::vector<bool>& mask, bool greedy);

  // One-step Q update for every mini-action taken.
  void Update(const fsm::StateVector& state, int minute,
              const fsm::ActionVector& action, double reward,
              const fsm::StateVector& next_state, int next_minute,
              const std::vector<bool>& next_mask, bool done);

  void DecayEpsilon();
  double epsilon() const { return config_.epsilon; }
  std::size_t table_size() const { return q_.size(); }

  double QValue(const fsm::StateVector& state, int minute,
                const fsm::MiniAction& mini) const;

 private:
  std::uint64_t Key(const fsm::StateVector& state, int minute,
                    std::size_t slot) const;
  double BestAvailableQ(const fsm::StateVector& state, int minute,
                        const std::vector<bool>& mask,
                        std::size_t device) const;
  std::size_t BestAvailableSlot(const fsm::StateVector& state, int minute,
                                const std::vector<bool>& mask,
                                std::size_t device, util::Rng& rng,
                                bool explore);

  const fsm::EnvironmentFsm& fsm_;
  TabularConfig config_;
  std::vector<fsm::DeviceId> context_devices_;
  std::unordered_map<std::uint64_t, double> q_;
  util::Rng rng_;
};

}  // namespace jarvis::rl
