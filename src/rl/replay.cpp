#include "rl/replay.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace jarvis::rl {

namespace {

bool Poisoned(const Experience& exp) {
  constexpr double kAbsurdReward = 1e9;
  if (!std::isfinite(exp.reward) || std::abs(exp.reward) > kAbsurdReward) {
    return true;
  }
  const auto finite = [](double v) { return std::isfinite(v); };
  return !std::all_of(exp.features.begin(), exp.features.end(), finite) ||
         !std::all_of(exp.next_features.begin(), exp.next_features.end(),
                      finite);
}

}  // namespace

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  JARVIS_CHECK_GT(capacity, std::size_t{0}, "ReplayBuffer: capacity 0");
  buffer_.reserve(capacity);
}

void ReplayBuffer::Add(Experience experience) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(experience));
  } else {
    buffer_[next_] = std::move(experience);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<std::size_t> ReplayBuffer::Sample(std::size_t batch,
                                              util::Rng& rng) const {
  std::vector<std::size_t> sample;
  SampleInto(batch, rng, sample);
  return sample;
}

void ReplayBuffer::SampleInto(std::size_t batch, util::Rng& rng,
                              std::vector<std::size_t>& out) const {
  JARVIS_CHECK(CanSample(batch),
               "ReplayBuffer::Sample: not enough experiences (", buffer_.size(),
               " < ", batch, ")");
  out.clear();
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    out.push_back(rng.NextIndex(buffer_.size()));
  }
}

const Experience& ReplayBuffer::At(std::size_t index) const {
  JARVIS_CHECK_LT(index, buffer_.size(),
                  "ReplayBuffer::At: stale or out-of-range index");
  return buffer_[index];
}

std::size_t ReplayBuffer::PurgePoisoned() {
  const std::size_t before = buffer_.size();
  buffer_.erase(std::remove_if(buffer_.begin(), buffer_.end(), Poisoned),
                buffer_.end());
  // Re-anchor the ring cursor: while below capacity Add() appends, and the
  // size-mod-capacity cursor keeps overwrite order correct once full again.
  next_ = buffer_.size() % capacity_;
  return before - buffer_.size();
}

void ReplayBuffer::Clear() {
  buffer_.clear();
  next_ = 0;
}

}  // namespace jarvis::rl
