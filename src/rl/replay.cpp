#include "rl/replay.h"

#include "util/check.h"

namespace jarvis::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  JARVIS_CHECK_GT(capacity, std::size_t{0}, "ReplayBuffer: capacity 0");
  buffer_.reserve(capacity);
}

void ReplayBuffer::Add(Experience experience) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(experience));
  } else {
    buffer_[next_] = std::move(experience);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<const Experience*> ReplayBuffer::Sample(std::size_t batch,
                                                    util::Rng& rng) const {
  JARVIS_CHECK(CanSample(batch),
               "ReplayBuffer::Sample: not enough experiences (", buffer_.size(),
               " < ", batch, ")");
  std::vector<const Experience*> sample;
  sample.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    sample.push_back(&buffer_[rng.NextIndex(buffer_.size())]);
  }
  return sample;
}

void ReplayBuffer::Clear() {
  buffer_.clear();
  next_ = 0;
}

}  // namespace jarvis::rl
