#include "rl/replay.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace jarvis::rl {

namespace {

bool Poisoned(const Experience& exp) {
  constexpr double kAbsurdReward = 1e9;
  if (!std::isfinite(exp.reward) || std::abs(exp.reward) > kAbsurdReward) {
    return true;
  }
  const auto finite = [](double v) { return std::isfinite(v); };
  return !std::all_of(exp.features.begin(), exp.features.end(), finite) ||
         !std::all_of(exp.next_features.begin(), exp.next_features.end(),
                      finite);
}

}  // namespace

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  JARVIS_CHECK_GT(capacity, std::size_t{0}, "ReplayBuffer: capacity 0");
  buffer_.reserve(capacity);
}

void ReplayBuffer::Add(Experience experience) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(experience));
  } else {
    buffer_[next_] = std::move(experience);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<std::size_t> ReplayBuffer::Sample(std::size_t batch,
                                              util::Rng& rng) const {
  std::vector<std::size_t> sample;
  SampleInto(batch, rng, sample);
  return sample;
}

void ReplayBuffer::SampleInto(std::size_t batch, util::Rng& rng,
                              std::vector<std::size_t>& out) const {
  JARVIS_CHECK(CanSample(batch),
               "ReplayBuffer::Sample: not enough experiences (", buffer_.size(),
               " < ", batch, ")");
  out.clear();
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    out.push_back(rng.NextIndex(buffer_.size()));
  }
}

const Experience& ReplayBuffer::At(std::size_t index) const {
  JARVIS_CHECK_LT(index, buffer_.size(),
                  "ReplayBuffer::At: stale or out-of-range index");
  return buffer_[index];
}

std::size_t ReplayBuffer::PurgePoisoned() {
  const std::size_t before = buffer_.size();
  buffer_.erase(std::remove_if(buffer_.begin(), buffer_.end(), Poisoned),
                buffer_.end());
  // Re-anchor the ring cursor: while below capacity Add() appends, and the
  // size-mod-capacity cursor keeps overwrite order correct once full again.
  next_ = buffer_.size() % capacity_;
  return before - buffer_.size();
}

void ReplayBuffer::Clear() {
  buffer_.clear();
  next_ = 0;
}

namespace {

util::JsonValue DoublesToJson(const std::vector<double>& values) {
  util::JsonArray arr;
  arr.reserve(values.size());
  for (double v : values) arr.emplace_back(v);
  return util::JsonValue(std::move(arr));
}

std::vector<double> DoublesFromJson(const util::JsonValue& doc,
                                    std::size_t expected_width,
                                    const char* what) {
  const auto& arr = doc.AsArray();
  if (arr.size() != expected_width) {
    throw util::JsonError(std::string("ReplayBuffer::LoadJson: ") + what +
                          " width mismatch");
  }
  std::vector<double> values;
  values.reserve(arr.size());
  for (const auto& entry : arr) {
    const double v = entry.AsNumber();
    if (!std::isfinite(v)) {
      throw util::JsonError(std::string("ReplayBuffer::LoadJson: ") + what +
                            " non-finite");
    }
    values.push_back(v);
  }
  return values;
}

}  // namespace

util::JsonValue ReplayBuffer::ToJson() const {
  util::JsonArray experiences;
  experiences.reserve(buffer_.size());
  // Oldest-first: once the ring is full, next_ points at the oldest slot.
  const std::size_t start = buffer_.size() == capacity_ ? next_ : 0;
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    const Experience& exp = buffer_[(start + i) % buffer_.size()];
    util::JsonObject obj;
    obj["features"] = DoublesToJson(exp.features);
    util::JsonArray slots;
    slots.reserve(exp.taken_slots.size());
    for (std::size_t slot : exp.taken_slots) {
      slots.emplace_back(static_cast<std::int64_t>(slot));
    }
    obj["taken_slots"] = util::JsonValue(std::move(slots));
    obj["reward"] = util::JsonValue(exp.reward);
    obj["next_features"] = DoublesToJson(exp.next_features);
    util::JsonArray mask;
    mask.reserve(exp.next_mask.size());
    for (const bool bit : exp.next_mask) mask.emplace_back(bit);
    obj["next_mask"] = util::JsonValue(std::move(mask));
    obj["done"] = util::JsonValue(exp.done);
    experiences.push_back(util::JsonValue(std::move(obj)));
  }
  return util::JsonValue(std::move(experiences));
}

void ReplayBuffer::LoadJson(const util::JsonValue& doc,
                            std::size_t feature_width,
                            std::size_t slot_count) {
  const auto& arr = doc.AsArray();
  if (arr.size() > capacity_) {
    throw util::JsonError(
        "ReplayBuffer::LoadJson: document holds more experiences than "
        "capacity");
  }
  // Validate the whole document into a staging vector before committing:
  // a rejected load must leave the existing experience intact.
  std::vector<Experience> staged;
  staged.reserve(arr.size());
  for (const auto& entry : arr) {
    Experience exp;
    exp.features =
        DoublesFromJson(entry.At("features"), feature_width, "features");
    for (const auto& slot_doc : entry.At("taken_slots").AsArray()) {
      const std::int64_t slot = slot_doc.AsInt();
      if (slot < 0 || static_cast<std::size_t>(slot) >= slot_count) {
        throw util::JsonError(
            "ReplayBuffer::LoadJson: taken slot out of range");
      }
      exp.taken_slots.push_back(static_cast<std::size_t>(slot));
    }
    const double reward = entry.At("reward").AsNumber();
    if (!std::isfinite(reward)) {
      throw util::JsonError("ReplayBuffer::LoadJson: reward non-finite");
    }
    exp.reward = reward;
    exp.next_features = DoublesFromJson(entry.At("next_features"),
                                        feature_width, "next_features");
    const auto& mask = entry.At("next_mask").AsArray();
    if (mask.size() != slot_count) {
      throw util::JsonError("ReplayBuffer::LoadJson: next_mask width mismatch");
    }
    exp.next_mask.reserve(mask.size());
    for (const auto& bit : mask) exp.next_mask.push_back(bit.AsBool());
    exp.done = entry.At("done").AsBool();
    staged.push_back(std::move(exp));
  }
  Clear();
  for (Experience& exp : staged) Add(std::move(exp));
}

}  // namespace jarvis::rl
