#include "rl/dqn_agent.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "neural/serialize.h"

namespace jarvis::rl {

namespace {

neural::Network BuildNetwork(std::size_t inputs, std::size_t outputs,
                             const DqnConfig& config) {
  std::vector<neural::LayerSpec> layers;
  for (std::size_t units : config.hidden_units) {
    layers.push_back({units, neural::Activation::kRelu});
  }
  layers.push_back({outputs, neural::Activation::kIdentity});
  return neural::Network(inputs, layers, neural::Loss::kMeanSquaredError,
                         std::make_unique<neural::Adam>(config.learning_rate),
                         util::Rng(config.seed ^ 0x5eedULL));
}

}  // namespace

DqnAgent::DqnAgent(std::size_t feature_width, const fsm::StateCodec& codec,
                   DqnConfig config)
    : codec_(codec),
      config_(config),
      network_(BuildNetwork(feature_width, codec.mini_action_count(), config)),
      buffer_(config.replay_capacity),
      rng_(config.seed),
      initial_epsilon_(config.epsilon) {}

void DqnAgent::SetMetrics(obs::Registry* registry) {
  metrics_registry_ = registry;
  network_.SetMetrics(registry);
  if (registry == nullptr) {
    actions_counter_ = nullptr;
    replays_counter_ = nullptr;
    replay_size_gauge_ = nullptr;
    epsilon_gauge_ = nullptr;
    loss_histogram_ = nullptr;
    epsilon_histogram_ = nullptr;
    forward_timer_ = nullptr;
    train_timer_ = nullptr;
    return;
  }
  actions_counter_ = registry->GetCounter("rl.agent.actions_selected");
  replays_counter_ = registry->GetCounter("rl.agent.replay_batches");
  replay_size_gauge_ = registry->GetGauge("rl.agent.replay_size");
  epsilon_gauge_ = registry->GetGauge("rl.agent.epsilon");
  // Replay-loss distribution; the top buckets catch divergence excursions.
  loss_histogram_ = registry->GetHistogram(
      "rl.agent.replay_loss",
      {0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 100.0, 10000.0});
  // Exploration trajectory: how training time distributes across the
  // epsilon anneal from 1.0 down to epsilon_min.
  epsilon_histogram_ = registry->GetHistogram(
      "rl.agent.epsilon_trajectory",
      {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0});
  forward_timer_ = registry->GetTimerUs("rl.agent.forward_us");
  train_timer_ = registry->GetTimerUs("rl.agent.train_us");
}

bool DqnAgent::diverged() const {
  return !std::isfinite(last_loss_) || last_loss_ > config_.divergence_loss;
}

void DqnAgent::ReseedExploration(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  config_.epsilon = initial_epsilon_;
  last_explore_slot_.clear();
  last_loss_ = 0.0;
}

std::vector<double> DqnAgent::QValues(
    const std::vector<double>& features) const {
  return network_.PredictOne(features);
}

std::size_t DqnAgent::BestSlotForDevice(const std::vector<double>& q,
                                        const std::vector<bool>& mask,
                                        std::size_t device) const {
  const std::size_t noop = codec_.NoOpSlot(static_cast<fsm::DeviceId>(device));
  // Ties (including an untrained network's uniform output) resolve to the
  // no-op: acting needs positive evidence.
  std::size_t best = noop;
  double best_q = q[noop];
  // A device's slots are contiguous with the no-op last; walk back from the
  // no-op while the slot still maps to this device.
  std::size_t range_begin = noop;
  while (range_begin > 0 &&
         codec_.SlotToMiniAction(range_begin - 1).device ==
             static_cast<fsm::DeviceId>(device)) {
    --range_begin;
  }
  for (std::size_t slot = range_begin; slot < noop; ++slot) {
    if (!mask[slot]) continue;
    if (q[slot] > best_q) {
      best_q = q[slot];
      best = slot;
    }
  }
  return best;
}

fsm::ActionVector DqnAgent::GreedyActionFromQ(
    const std::vector<double>& q, const std::vector<bool>& mask) const {
  if (mask.size() != codec_.mini_action_count()) {
    throw std::invalid_argument("DqnAgent::GreedyActionFromQ: mask width");
  }
  if (q.size() != codec_.mini_action_count()) {
    throw std::invalid_argument("DqnAgent::GreedyActionFromQ: q width");
  }
  std::vector<std::size_t> slots;
  slots.reserve(codec_.device_count());
  for (std::size_t device = 0; device < codec_.device_count(); ++device) {
    slots.push_back(BestSlotForDevice(q, mask, device));
  }
  return codec_.SlotsToAction(slots);
}

fsm::ActionVector DqnAgent::SelectAction(const std::vector<double>& features,
                                         const std::vector<bool>& mask,
                                         bool greedy) {
  if (mask.size() != codec_.mini_action_count()) {
    throw std::invalid_argument("DqnAgent::SelectAction: mask width");
  }
  JARVIS_OBS_ONLY(
      if (actions_counter_ != nullptr) actions_counter_->Increment();)
  // One allocation-free forward into agent scratch serves both the greedy
  // decode and the exploit branches below.
  network_.PredictOneInto(features, q_scratch_);
  if (greedy) return GreedyActionFromQ(q_scratch_, mask);
  std::vector<std::size_t> slots;
  // Per-device exploration: each device independently explores with
  // probability epsilon while the rest follow the greedy policy. This
  // keeps the joint reward attributable — a single deviating device at a
  // time once epsilon anneals — which the factored mini-action Q-head
  // needs for credit assignment.
  const std::vector<double>& q = q_scratch_;

  if (last_explore_slot_.size() != codec_.device_count()) {
    last_explore_slot_.assign(codec_.device_count(),
                              codec_.mini_action_count());  // sentinel
  }
  for (std::size_t device = 0; device < codec_.device_count(); ++device) {
    const bool explore = !greedy && rng_.NextBool(config_.epsilon);
    const std::size_t noop =
        codec_.NoOpSlot(static_cast<fsm::DeviceId>(device));
    if (explore) {
      // Sticky exploration: repeat the previous exploratory choice when
      // still available, else draw uniform among the available slots.
      const std::size_t previous = last_explore_slot_[device];
      if (previous < mask.size() && mask[previous] &&
          rng_.NextBool(config_.explore_repeat_prob)) {
        slots.push_back(previous);
        continue;
      }
      std::vector<std::size_t> available;
      std::size_t range_begin = noop;
      while (range_begin > 0 &&
             codec_.SlotToMiniAction(range_begin - 1).device ==
                 static_cast<fsm::DeviceId>(device)) {
        --range_begin;
      }
      for (std::size_t slot = range_begin; slot <= noop; ++slot) {
        if (mask[slot]) available.push_back(slot);
      }
      const std::size_t chosen =
          available.empty() ? noop
                            : available[rng_.NextIndex(available.size())];
      last_explore_slot_[device] = chosen;
      slots.push_back(chosen);
    } else {
      slots.push_back(BestSlotForDevice(q, mask, device));
    }
  }
  return codec_.SlotsToAction(slots);
}

void DqnAgent::DecayEpsilonOnce() {
  config_.epsilon =
      std::max(config_.epsilon_min, config_.epsilon * config_.epsilon_decay);
}

void DqnAgent::SaveSnapshot() { snapshot_ = network_.ExportParameters(); }

void DqnAgent::RestoreSnapshot() {
  if (snapshot_.empty()) {
    throw std::logic_error("DqnAgent::RestoreSnapshot: no snapshot");
  }
  network_.ImportParameters(snapshot_);
}

void DqnAgent::Remember(Experience experience) {
  buffer_.Add(std::move(experience));
}

double DqnAgent::Replay() {
  if (!buffer_.CanSample(config_.batch_size)) return 0.0;
  // Indices, not pointers: the buffer stays unmutated until TrainBatchMasked
  // returns, so every index below names the experience it was drawn for.
  buffer_.SampleInto(config_.batch_size, rng_, replay_indices_);

  // Target-network bookkeeping: sync the frozen copy every N replays and
  // evaluate bootstrap Q-values through it.
  const bool use_target = config_.target_sync_interval > 0;
  if (use_target) {
    if (target_network_ == nullptr) {
      target_network_ = std::make_unique<neural::Network>(
          BuildNetwork(network_.input_features(), codec_.mini_action_count(),
                       config_));
      target_network_->CopyParametersFrom(network_);
      replays_since_sync_ = 0;
    } else if (replays_since_sync_ >= config_.target_sync_interval) {
      target_network_->CopyParametersFrom(network_);
      replays_since_sync_ = 0;
    }
    ++replays_since_sync_;
  }
  const neural::Network& bootstrap_net =
      use_target ? *target_network_ : network_;

  const std::size_t batch = replay_indices_.size();
  const std::size_t outputs = codec_.mini_action_count();
  const std::size_t width = buffer_.At(replay_indices_[0]).features.size();
  replay_inputs_.Resize(batch, width);
  replay_next_.Resize(batch, width);
  replay_next_.Fill(0.0);
  for (std::size_t i = 0; i < batch; ++i) {
    const Experience& exp = buffer_.At(replay_indices_[i]);
    replay_inputs_.SetRow(i, exp.features);
    // Done rows keep the zero fill: their bootstrap output is computed by
    // the batched forward below but never read (future stays 0), so the
    // row content is irrelevant — zeros keep the forward finite.
    if (!exp.done) replay_next_.SetRow(i, exp.next_features);
  }
  // Current predictions seed the target tensor so non-taken slots carry no
  // gradient (mask) and taken slots move toward r + gamma * max Q(s', .).
  // One cached forward serves both the targets and the training step below
  // (TrainCachedMasked) — the pre-overhaul code ran this forward twice.
  // Copy-assign out of layer scratch (capacity reused: no steady-state
  // allocation) before the targets are edited in place.
  {
    JARVIS_OBS_ONLY(obs::ScopedTimer timer(forward_timer_);)
    replay_targets_ = network_.ForwardForTraining(replay_inputs_);
  }
  // One batched forward replaces batch-size per-row PredictOne calls for
  // the next-state bootstrap. Each row of the batched output is
  // bit-identical to the per-row prediction (the PredictBatch row-
  // independence invariant), so targets are unchanged. PredictScratch uses
  // the inference ping-pong scratch, so the layer caches the training step
  // reads are untouched even when bootstrap_net is the online network.
  const neural::Tensor& next_q_all =
      bootstrap_net.PredictScratch(replay_next_);
  replay_mask_.Resize(batch, outputs);
  replay_mask_.Fill(0.0);

  for (std::size_t i = 0; i < batch; ++i) {
    const Experience& exp = buffer_.At(replay_indices_[i]);
    const double* next_q = next_q_all.data().data() + i * outputs;
    for (std::size_t slot : exp.taken_slots) {
      // Each device head is its own sub-MDP: the bootstrap maximizes over
      // that device's *own* next choices, not over every device's slots —
      // a global max would inflate every target by the best slot anywhere
      // and erase per-device action rankings.
      double future = 0.0;
      if (!exp.done) {
        const auto device = codec_.SlotToMiniAction(slot).device;
        const std::size_t noop = codec_.NoOpSlot(device);
        std::size_t range_begin = noop;
        while (range_begin > 0 &&
               codec_.SlotToMiniAction(range_begin - 1).device == device) {
          --range_begin;
        }
        double best = -std::numeric_limits<double>::infinity();
        for (std::size_t s = range_begin; s <= noop; ++s) {
          if (exp.next_mask[s] && next_q[s] > best) best = next_q[s];
        }
        if (best > -std::numeric_limits<double>::infinity()) future = best;
      }
      replay_targets_.At(i, slot) = exp.reward + config_.gamma * future;
      replay_mask_.At(i, slot) = 1.0;
    }
  }

  {
    JARVIS_OBS_ONLY(obs::ScopedTimer timer(train_timer_);)
    last_loss_ =
        network_.TrainCachedMasked(replay_targets_, replay_mask_);
  }

  // Algorithm 2's guard: decay exploration only once the network fits its
  // replay targets to the preferable loss.
  if (config_.epsilon > config_.epsilon_min &&
      last_loss_ <= config_.preferable_loss) {
    config_.epsilon =
        std::max(config_.epsilon_min, config_.epsilon * config_.epsilon_decay);
  }
  JARVIS_OBS_ONLY(if (replays_counter_ != nullptr) {
    replays_counter_->Increment();
    replay_size_gauge_->Set(static_cast<double>(buffer_.size()));
    epsilon_gauge_->Set(config_.epsilon);
    loss_histogram_->Observe(last_loss_);
    epsilon_histogram_->Observe(config_.epsilon);
  })
  return last_loss_;
}

util::JsonValue DqnAgent::ToJson(const AgentSerializeOptions& options) const {
  util::JsonObject obj;
  obj["format_version"] = util::JsonValue(std::int64_t{1});
  obj["feature_width"] =
      util::JsonValue(static_cast<std::int64_t>(network_.input_features()));
  obj["mini_actions"] =
      util::JsonValue(static_cast<std::int64_t>(codec_.mini_action_count()));
  obj["epsilon"] = util::JsonValue(config_.epsilon);
  obj["last_loss"] = util::JsonValue(last_loss_);
  obj["network"] = neural::ToJson(
      network_, neural::SerializeOptions{options.include_optimizer});
  if (options.include_replay) obj["replay"] = buffer_.ToJson();
  return util::JsonValue(std::move(obj));
}

void DqnAgent::LoadJson(const util::JsonValue& doc) {
  if (doc.AsObject().count("format_version") != 0) {
    const std::int64_t version = doc.At("format_version").AsInt();
    if (version != 1) {
      throw util::JsonError("DqnAgent::LoadJson: unsupported format version " +
                            std::to_string(version));
    }
  }
  // Width guard: a checkpoint from a differently-shaped home must be
  // rejected before any network rebuild — the codec decode below would
  // otherwise index a Q-row of the wrong width.
  const std::int64_t feature_width = doc.At("feature_width").AsInt();
  const std::int64_t mini_actions = doc.At("mini_actions").AsInt();
  if (feature_width < 0 ||
      static_cast<std::size_t>(feature_width) != network_.input_features() ||
      mini_actions < 0 ||
      static_cast<std::size_t>(mini_actions) != codec_.mini_action_count()) {
    throw util::JsonError(
        "DqnAgent::LoadJson: checkpoint widths do not match this agent");
  }
  const double epsilon = doc.At("epsilon").AsNumber();
  if (!std::isfinite(epsilon) || epsilon < 0.0 || epsilon > 1.0) {
    throw util::JsonError("DqnAgent::LoadJson: epsilon out of [0,1]");
  }
  const double last_loss = doc.At("last_loss").AsNumber();
  if (!std::isfinite(last_loss)) {
    // A diverged agent must never have been persisted; a non-finite loss
    // here means the document is corrupt or hostile.
    throw util::JsonError("DqnAgent::LoadJson: last_loss non-finite");
  }
  // Rebuild through the same constructor path as BuildNetwork, so the
  // restored network carries the same loss/optimizer kind; FromJson
  // validates parameters (finiteness, shapes) and optimizer state before
  // returning.
  neural::Network restored = neural::FromJson(
      doc.At("network"), neural::Loss::kMeanSquaredError,
      std::make_unique<neural::Adam>(config_.learning_rate),
      util::Rng(config_.seed ^ 0x5eedULL));
  if (restored.input_features() != network_.input_features() ||
      restored.output_features() != codec_.mini_action_count()) {
    throw util::JsonError(
        "DqnAgent::LoadJson: network document shape does not match this "
        "agent");
  }
  if (doc.AsObject().count("replay") != 0) {
    buffer_.LoadJson(doc.At("replay"), network_.input_features(),
                     codec_.mini_action_count());
  } else {
    buffer_.Clear();
  }
  // Commit point: everything validated.
  network_ = std::move(restored);
  network_.SetMetrics(metrics_registry_);
  config_.epsilon = epsilon;
  last_loss_ = last_loss;
  // Transients reset: the frozen target resyncs from the restored online
  // network on the next Replay; sticky exploration restarts.
  target_network_.reset();
  replays_since_sync_ = 0;
  last_explore_slot_.clear();
  snapshot_.clear();
}

}  // namespace jarvis::rl
