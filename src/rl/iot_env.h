// The simulated RL environment of Section V-A-5: a Gym-style day-long
// episode over the smart-home FSM, with physics (thermal model, power
// draw, day-ahead prices), exogenous resident behavior, the R_smart reward,
// and optional P_safe constraint enforcement.
//
// Episode structure: T = 1 day. The environment integrates physics at
// minute resolution (I = 1 min, matching the paper); the agent submits a
// joint action every `decision_interval_minutes` (default 15) — a
// computational batching of Algorithm 2's per-instance loop documented in
// DESIGN.md. Exogenous resident actions (leaving/arriving, cooking, meals,
// entertainment) replay from the day's *natural* trace so that normal and
// Jarvis-optimized behavior face identical conditions; the agent owns the
// optimization surface (thermostat, lighting, deferrable appliances) but
// may attempt actions on any device — the resident wins same-interval
// conflicts first-come-first-served (constraint 4).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "fsm/episode.h"
#include "rl/env.h"
#include "rl/reward.h"
#include "sim/resident.h"
#include "spl/learner.h"

namespace jarvis::rl {

struct IoTEnvConfig {
  int decision_interval_minutes = 10;
  RewardWeights weights;
  // When true, SafeSlotMask() exposes only P_safe-whitelisted mini-actions
  // and Step() refuses unlisted ones; when false the agent may take any
  // action (the unconstrained baseline) and violations are only counted.
  bool constrained = true;
  // Scale on the per-minute dis-utility charges (chi tuning beyond the
  // weights' chi knob).
  double disutility_scale = 1.0;
  // Per-minute, per-degC dis-utility while the house is occupied and
  // outside the comfort band (linear in the error up to a 10 degC cap).
  // The user's standing discomfort must out-price the marginal energy+cost
  // reward of not heating at *any* error magnitude, so even low-f_temp
  // policies keep the house livable — the chi = 1 balance of Section VI-D
  // ("optimized actions never cause more dis-utility than functionality").
  double comfort_disutility_per_degc_min = 0.1;
};

class IoTEnv final : public Environment {
 public:
  // `natural` must be the resident trace for the same scenario the agent
  // will optimize; `learner` may be null only when unconstrained.
  IoTEnv(const fsm::EnvironmentFsm& fsm, const sim::DayTrace& natural,
         sim::ThermalConfig thermal, const spl::SafetyPolicyLearner* learner,
         IoTEnvConfig config);

  // Restarts the episode; returns nothing (query state()/Features()).
  void Reset() override;

  // Applies the agent's joint action at the current decision instant, then
  // integrates exogenous behavior and physics until the next one.
  StepResult Step(const fsm::ActionVector& agent_action) override;

  bool done() const override { return minute_ >= util::kMinutesPerDay; }
  int current_minute() const { return minute_; }
  const fsm::StateVector& state() const { return state_; }
  int steps_per_episode() const override {
    return util::kMinutesPerDay / config_.decision_interval_minutes;
  }

  // DQN featurization of the current observation.
  std::vector<double> Features() const override;
  // Featurization of an arbitrary (state, minute) under this env's
  // scenario (the SuggestAction path; indoor temperature uses the env's
  // current thermal state).
  std::vector<double> FeaturesFor(const fsm::StateVector& state,
                                  int minute) const;
  std::size_t feature_width() const override;

  // Availability mask over mini-action slots for the current observation:
  // no-ops always on; actions without effect off; and, when constrained,
  // only P_safe-whitelisted mini-actions on.
  std::vector<bool> SafeSlotMask() const override;
  // The same mask for an arbitrary (state, minute), used when computing
  // replay targets.
  std::vector<bool> SafeSlotMaskFor(const fsm::StateVector& state,
                                    int minute) const;

  // Demonstration action for the upcoming decision interval: what the
  // resident's natural behavior did with the agent-owned devices
  // (thermostat, light, deferrable appliances) in [now, now + interval).
  // Used to seed the replay buffer with a known-good trajectory so
  // sustained-control behaviors (winter heating) are discoverable.
  fsm::ActionVector DemonstrationAction() const;

  // Count of *distinct* violation patterns the agent committed this
  // episode: one per (device, action, device-state, day-part). A policy
  // re-committing the same unsafe pattern every interval raises one
  // alert, matching how an auditor reports deduplicated findings.
  std::size_t violations() const { return violation_patterns_.size(); }
  // Raw count of executed agent mini-actions judged kViolation.
  std::size_t violation_events() const { return violation_events_; }
  // Episode cumulative reward so far (sum of per-minute rewards).
  double cumulative_reward() const override { return cumulative_reward_; }

  // Minute-resolution record of the episode (for audits and metrics).
  const fsm::Episode& episode() const { return episode_; }
  const std::vector<double>& indoor_trace() const { return indoor_c_; }
  sim::DayMetrics Metrics() const;

  const fsm::EnvironmentFsm& fsm() const { return fsm_; }
  const IoTEnvConfig& config() const { return config_; }
  const sim::DayScenario& scenario() const { return natural_.scenario; }

 private:
  // One simulated minute: merge actions, advance FSM and physics, charge
  // rewards. `agent_action` is non-null only on decision minutes.
  double AdvanceMinute(const fsm::ActionVector* agent_action);

  // Exogenous resident mini-actions for this minute, from the natural
  // trace, restricted to resident-owned devices.
  fsm::ActionVector ResidentActionsAt(int minute) const;

  bool IsDeferrable(fsm::DeviceId device) const;

  const fsm::EnvironmentFsm& fsm_;
  const sim::DayTrace& natural_;
  sim::ThermalConfig thermal_config_;
  const spl::SafetyPolicyLearner* learner_;
  IoTEnvConfig config_;
  SmartReward reward_;

  sim::HomeRefs refs_;
  double max_watts_;
  double max_price_;

  // --- per-episode state ---
  int minute_ = 0;
  fsm::StateVector state_;
  sim::ThermalModel thermal_;
  fsm::Episode episode_;
  std::vector<double> indoor_c_;
  std::set<std::uint64_t> violation_patterns_;
  std::size_t violation_events_ = 0;
  double cumulative_reward_ = 0.0;

  // Deferrable demand tracking: satisfied once the device's start action
  // executes; pending delay accrues dis-utility.
  struct DemandState {
    sim::ApplianceDemand demand;
    fsm::DeviceId device;
    bool started = false;
    int finish_minute = -1;  // scheduled auto-finish once started
  };
  std::vector<DemandState> demands_;
};

}  // namespace jarvis::rl
