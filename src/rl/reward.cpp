#include "rl/reward.h"

#include <algorithm>
#include <stdexcept>

namespace jarvis::rl {

RewardWeights RewardWeights::Sweep(const std::string& focus, double value) {
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument("RewardWeights::Sweep: value out of [0,1]");
  }
  const double rest = (1.0 - value) / 2.0;
  RewardWeights weights;
  if (focus == "energy") {
    weights.f_energy = value;
    weights.f_cost = rest;
    weights.f_temp = rest;
  } else if (focus == "cost") {
    weights.f_cost = value;
    weights.f_energy = rest;
    weights.f_temp = rest;
  } else if (focus == "temp") {
    weights.f_temp = value;
    weights.f_energy = rest;
    weights.f_cost = rest;
  } else {
    throw std::invalid_argument("RewardWeights::Sweep: unknown focus " + focus);
  }
  return weights;
}

SmartReward::SmartReward(RewardWeights weights) : weights_(weights) {
  if (weights_.chi <= 0.0) {
    throw std::invalid_argument("SmartReward: chi must be positive");
  }
}

double SmartReward::EnergyReward(const StepPhysical& physical) const {
  if (physical.max_watts <= 0.0) return 0.0;
  return std::clamp(1.0 - physical.interval_watts / physical.max_watts, 0.0,
                    1.0);
}

double SmartReward::CostReward(const StepPhysical& physical) const {
  const double denom = physical.max_watts * physical.max_price_usd_per_kwh;
  if (denom <= 0.0) return 0.0;
  return std::clamp(
      1.0 - physical.interval_watts * physical.price_usd_per_kwh / denom, 0.0,
      1.0);
}

double SmartReward::TempReward(const StepPhysical& physical) const {
  // 5degC of comfort error saturates the penalty. Comfort only counts while
  // the house is occupied (an empty house has no one to be uncomfortable);
  // unoccupied intervals return full reward so F_temp never pushes the
  // agent to heat an empty home.
  if (!physical.occupied) return 1.0;
  return std::clamp(1.0 - physical.comfort_error_c / 5.0, 0.0, 1.0);
}

double SmartReward::Utility(const StepPhysical& physical) const {
  return weights_.f_energy * EnergyReward(physical) +
         weights_.f_cost * CostReward(physical) +
         weights_.f_temp * TempReward(physical);
}

double SmartReward::DisUtility(const StepPhysical& physical) const {
  return physical.pending_disutility / weights_.chi;
}

double SmartReward::Compute(const StepPhysical& physical) const {
  return Utility(physical) - DisUtility(physical);
}

}  // namespace jarvis::rl
