#include "rl/trainer.h"
#include <chrono>
#include <cmath>
#include <limits>

namespace jarvis::rl {

namespace {

std::vector<std::size_t> TakenSlots(const fsm::StateCodec& codec,
                                    const fsm::ActionVector& action) {
  // Every device contributes a slot (no-op included) so the network also
  // learns the value of leaving devices alone.
  return codec.ActionToSlots(action);
}

// Decides, at each completed-episode boundary, whether the republish policy
// fires. Pure bookkeeping: reads the wall clock only when the time trigger
// is armed, and never otherwise perturbs the run.
class RepublishScheduler {
 public:
  explicit RepublishScheduler(const RepublishPolicy& policy)
      : policy_(policy) {
    if (policy_.every_ms > 0) {
      last_publish_ = std::chrono::steady_clock::now();
    }
  }

  bool ShouldPublish(double loss) {
    bool fire = false;
    if (policy_.every_episodes > 0 &&
        ++episodes_since_ >= policy_.every_episodes) {
      fire = true;
    }
    if (policy_.every_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration_cast<std::chrono::milliseconds>(
              now - last_publish_)
              .count() >= policy_.every_ms) {
        fire = true;
      }
    }
    if (policy_.on_loss_improvement && std::isfinite(loss) &&
        loss < best_loss_) {
      best_loss_ = loss;
      fire = true;
    }
    if (fire) {
      episodes_since_ = 0;
      if (policy_.every_ms > 0) {
        last_publish_ = std::chrono::steady_clock::now();
      }
    }
    return fire;
  }

 private:
  const RepublishPolicy policy_;
  int episodes_since_ = 0;
  double best_loss_ = std::numeric_limits<double>::infinity();
  std::chrono::steady_clock::time_point last_publish_;
};

}  // namespace

double RunGreedyEpisode(IoTEnv& env, DqnAgent& agent) {
  env.Reset();
  while (!env.done()) {
    const auto features = env.Features();
    const auto mask = env.SafeSlotMask();
    env.Step(agent.SelectAction(features, mask, /*greedy=*/true));
  }
  return env.cumulative_reward();
}

TrainResult Train(IoTEnv& env, DqnAgent& agent, TrainerConfig config,
                  obs::Registry* metrics, RepublishHook republish_hook) {
  TrainResult result;
  const auto& codec = env.fsm().codec();
  double best_greedy = -std::numeric_limits<double>::infinity();
  const bool streaming =
      republish_hook != nullptr && config.republish.enabled();
  RepublishScheduler republish(config.republish);

  // Trainer-level counters are bumped per episode (from local tallies),
  // never inside the step loop; the agent's own hot-loop instruments are
  // wired through SetMetrics and null-checked at their call sites.
  obs::Counter* episodes_counter = nullptr;
  obs::Counter* steps_counter = nullptr;
  obs::Counter* recoveries_counter = nullptr;
  obs::Counter* purged_counter = nullptr;
  obs::Counter* republish_counter = nullptr;
  if (metrics != nullptr) {
    agent.SetMetrics(metrics);
    episodes_counter = metrics->GetCounter("rl.trainer.episodes");
    steps_counter = metrics->GetCounter("rl.trainer.steps");
    recoveries_counter =
        metrics->GetCounter("rl.trainer.divergence_recoveries");
    purged_counter = metrics->GetCounter("rl.trainer.purged_experiences");
    republish_counter = metrics->GetCounter("rl.trainer.republishes",
                                            obs::Determinism::kTiming);
  }

  // Last-good-weights baseline: taken before any replay pass so divergence
  // recovery always has a snapshot to fall back to, even in episode 0.
  // Best-greedy tracking below overwrites it with strictly better weights.
  agent.SaveSnapshot();

  for (int ep = 0; ep < config.episodes; ++ep) {
    const bool demonstrate = ep < config.demonstration_episodes;
    bool aborted = false;
    std::size_t episode_steps = 0;
    env.Reset();
    while (!env.done()) {
      ++episode_steps;
      const auto features = env.Features();
      const auto mask = env.SafeSlotMask();
      const auto action = demonstrate
                              ? env.DemonstrationAction()
                              : agent.SelectAction(features, mask, false);
      const StepResult step = env.Step(action);

      Experience experience;
      experience.features = features;
      experience.taken_slots = TakenSlots(codec, action);
      experience.reward = step.reward;
      experience.done = step.done;
      if (!step.done) {
        experience.next_features = env.Features();
        experience.next_mask = env.SafeSlotMask();
      } else {
        experience.next_features.assign(features.size(), 0.0);
        experience.next_mask.assign(codec.mini_action_count(), false);
      }
      agent.Remember(std::move(experience));
      for (int r = 0; r < config.replays_per_step; ++r) {
        result.final_loss = agent.Replay();
      }

      // Divergence recovery: a non-finite or exploding replay loss means
      // the network is gone — abort the episode, restore the last good
      // weights, drop the poisoned experiences, and restart exploration on
      // a fresh RNG stream so the run stays deterministic but does not
      // retrace the diverging trajectory.
      if (agent.diverged()) {
        ++result.divergence_recoveries;
        agent.RestoreSnapshot();
        const std::size_t purged = agent.PurgePoisonedExperiences();
        result.poisoned_experiences_purged += purged;
        if (recoveries_counter != nullptr) {
          recoveries_counter->Increment();
          purged_counter->Increment(purged);
        }
        agent.ReseedExploration(agent.config().seed ^
                                (0x9e3779b97f4a7c15ULL *
                                 (result.divergence_recoveries + 1)));
        aborted = true;
        break;
      }
    }
    result.episode_rewards.push_back(env.cumulative_reward());
    result.training_violations += env.violations();
    if (episodes_counter != nullptr) {
      episodes_counter->Increment();
      steps_counter->Increment(episode_steps);
    }
    // An aborted episode's weights were just restored from the snapshot:
    // re-evaluating them greedily would re-measure the snapshot itself —
    // and publishing them would re-serve a policy the recovery rejected.
    if (aborted) continue;

    // Streaming republish: hand the live network to the hook at the
    // policy's cadence. The trainer is blocked here, so the network is
    // quiescent for the duration; the hook draws no RNG, so the training
    // trajectory is bit-identical with or without it.
    if (streaming && republish.ShouldPublish(result.final_loss)) {
      EpisodeProgress progress;
      progress.episode = ep;
      progress.loss = result.final_loss;
      progress.reward = env.cumulative_reward();
      republish_hook(progress, agent.network());
      ++result.republishes;
      if (republish_counter != nullptr) republish_counter->Increment();
    }

    // Track the best greedy policy seen: epsilon-greedy training is noisy
    // and the final network is not always the best one.
    const double greedy = RunGreedyEpisode(env, agent);
    if (greedy > best_greedy) {
      best_greedy = greedy;
      agent.SaveSnapshot();
    }
  }
  result.final_epsilon = agent.epsilon();
  if (agent.has_snapshot()) agent.RestoreSnapshot();

  result.greedy_reward = RunGreedyEpisode(env, agent);
  result.greedy_violations = env.violations();
  result.greedy_metrics = env.Metrics();
  result.greedy_episode = env.episode();
  return result;
}

}  // namespace jarvis::rl
