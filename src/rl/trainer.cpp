#include "rl/trainer.h"
#include <limits>

namespace jarvis::rl {

namespace {

std::vector<std::size_t> TakenSlots(const fsm::StateCodec& codec,
                                    const fsm::ActionVector& action) {
  // Every device contributes a slot (no-op included) so the network also
  // learns the value of leaving devices alone.
  return codec.ActionToSlots(action);
}

}  // namespace

double RunGreedyEpisode(IoTEnv& env, DqnAgent& agent) {
  env.Reset();
  while (!env.done()) {
    const auto features = env.Features();
    const auto mask = env.SafeSlotMask();
    env.Step(agent.SelectAction(features, mask, /*greedy=*/true));
  }
  return env.cumulative_reward();
}

TrainResult Train(IoTEnv& env, DqnAgent& agent, TrainerConfig config,
                  obs::Registry* metrics) {
  TrainResult result;
  const auto& codec = env.fsm().codec();
  double best_greedy = -std::numeric_limits<double>::infinity();

  // Trainer-level counters are bumped per episode (from local tallies),
  // never inside the step loop; the agent's own hot-loop instruments are
  // wired through SetMetrics and null-checked at their call sites.
  obs::Counter* episodes_counter = nullptr;
  obs::Counter* steps_counter = nullptr;
  obs::Counter* recoveries_counter = nullptr;
  obs::Counter* purged_counter = nullptr;
  if (metrics != nullptr) {
    agent.SetMetrics(metrics);
    episodes_counter = metrics->GetCounter("rl.trainer.episodes");
    steps_counter = metrics->GetCounter("rl.trainer.steps");
    recoveries_counter =
        metrics->GetCounter("rl.trainer.divergence_recoveries");
    purged_counter = metrics->GetCounter("rl.trainer.purged_experiences");
  }

  // Last-good-weights baseline: taken before any replay pass so divergence
  // recovery always has a snapshot to fall back to, even in episode 0.
  // Best-greedy tracking below overwrites it with strictly better weights.
  agent.SaveSnapshot();

  for (int ep = 0; ep < config.episodes; ++ep) {
    const bool demonstrate = ep < config.demonstration_episodes;
    bool aborted = false;
    std::size_t episode_steps = 0;
    env.Reset();
    while (!env.done()) {
      ++episode_steps;
      const auto features = env.Features();
      const auto mask = env.SafeSlotMask();
      const auto action = demonstrate
                              ? env.DemonstrationAction()
                              : agent.SelectAction(features, mask, false);
      const StepResult step = env.Step(action);

      Experience experience;
      experience.features = features;
      experience.taken_slots = TakenSlots(codec, action);
      experience.reward = step.reward;
      experience.done = step.done;
      if (!step.done) {
        experience.next_features = env.Features();
        experience.next_mask = env.SafeSlotMask();
      } else {
        experience.next_features.assign(features.size(), 0.0);
        experience.next_mask.assign(codec.mini_action_count(), false);
      }
      agent.Remember(std::move(experience));
      for (int r = 0; r < config.replays_per_step; ++r) {
        result.final_loss = agent.Replay();
      }

      // Divergence recovery: a non-finite or exploding replay loss means
      // the network is gone — abort the episode, restore the last good
      // weights, drop the poisoned experiences, and restart exploration on
      // a fresh RNG stream so the run stays deterministic but does not
      // retrace the diverging trajectory.
      if (agent.diverged()) {
        ++result.divergence_recoveries;
        agent.RestoreSnapshot();
        const std::size_t purged = agent.PurgePoisonedExperiences();
        result.poisoned_experiences_purged += purged;
        if (recoveries_counter != nullptr) {
          recoveries_counter->Increment();
          purged_counter->Increment(purged);
        }
        agent.ReseedExploration(agent.config().seed ^
                                (0x9e3779b97f4a7c15ULL *
                                 (result.divergence_recoveries + 1)));
        aborted = true;
        break;
      }
    }
    result.episode_rewards.push_back(env.cumulative_reward());
    result.training_violations += env.violations();
    if (episodes_counter != nullptr) {
      episodes_counter->Increment();
      steps_counter->Increment(episode_steps);
    }
    // An aborted episode's weights were just restored from the snapshot:
    // re-evaluating them greedily would re-measure the snapshot itself.
    if (aborted) continue;

    // Track the best greedy policy seen: epsilon-greedy training is noisy
    // and the final network is not always the best one.
    const double greedy = RunGreedyEpisode(env, agent);
    if (greedy > best_greedy) {
      best_greedy = greedy;
      agent.SaveSnapshot();
    }
  }
  result.final_epsilon = agent.epsilon();
  if (agent.has_snapshot()) agent.RestoreSnapshot();

  result.greedy_reward = RunGreedyEpisode(env, agent);
  result.greedy_violations = env.violations();
  result.greedy_metrics = env.Metrics();
  result.greedy_episode = env.episode();
  return result;
}

}  // namespace jarvis::rl
