#include "rl/tabular_agent.h"

#include <limits>

namespace jarvis::rl {

namespace {

std::uint64_t Mix(std::uint64_t h, std::uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xc4ceb9fe1a85ec53ULL;
  return h ^ (h >> 33);
}

}  // namespace

TabularQAgent::TabularQAgent(const fsm::EnvironmentFsm& fsm,
                             TabularConfig config)
    : fsm_(fsm), config_(config), rng_(config.seed) {
  for (const char* label : {"lock", "door_sensor", "temp_sensor"}) {
    for (const auto& device : fsm_.devices()) {
      if (device.label() == label) {
        context_devices_.push_back(device.id());
        break;
      }
    }
  }
}

std::uint64_t TabularQAgent::Key(const fsm::StateVector& state, int minute,
                                 std::size_t slot) const {
  const fsm::MiniAction mini = fsm_.codec().SlotToMiniAction(slot);
  std::uint64_t key = 0x7abULL;
  key = Mix(key, slot);
  key = Mix(key, static_cast<std::uint64_t>(
                     state[static_cast<std::size_t>(mini.device)]));
  for (const fsm::DeviceId context : context_devices_) {
    key = Mix(key, static_cast<std::uint64_t>(
                       state[static_cast<std::size_t>(context)]));
  }
  key = Mix(key, static_cast<std::uint64_t>(minute / 60));
  return key;
}

double TabularQAgent::BestAvailableQ(const fsm::StateVector& state, int minute,
                                     const std::vector<bool>& mask,
                                     std::size_t device) const {
  const std::size_t noop =
      fsm_.codec().NoOpSlot(static_cast<fsm::DeviceId>(device));
  std::size_t range_begin = noop;
  while (range_begin > 0 &&
         fsm_.codec().SlotToMiniAction(range_begin - 1).device ==
             static_cast<fsm::DeviceId>(device)) {
    --range_begin;
  }
  double best = 0.0;
  bool any = false;
  for (std::size_t slot = range_begin; slot <= noop; ++slot) {
    if (!mask[slot]) continue;
    auto it = q_.find(Key(state, minute, slot));
    const double value = it == q_.end() ? 0.0 : it->second;
    if (!any || value > best) {
      best = value;
      any = true;
    }
  }
  return any ? best : 0.0;
}

std::size_t TabularQAgent::BestAvailableSlot(const fsm::StateVector& state,
                                             int minute,
                                             const std::vector<bool>& mask,
                                             std::size_t device,
                                             util::Rng& rng, bool explore) {
  const std::size_t noop =
      fsm_.codec().NoOpSlot(static_cast<fsm::DeviceId>(device));
  std::size_t range_begin = noop;
  while (range_begin > 0 &&
         fsm_.codec().SlotToMiniAction(range_begin - 1).device ==
             static_cast<fsm::DeviceId>(device)) {
    --range_begin;
  }
  if (explore) {
    std::vector<std::size_t> available;
    for (std::size_t slot = range_begin; slot <= noop; ++slot) {
      if (mask[slot]) available.push_back(slot);
    }
    return available.empty() ? noop
                             : available[rng.NextIndex(available.size())];
  }
  // Ties resolve to the no-op: acting needs positive evidence.
  std::size_t best = noop;
  auto noop_it = q_.find(Key(state, minute, noop));
  double best_q = noop_it == q_.end() ? 0.0 : noop_it->second;
  for (std::size_t slot = range_begin; slot < noop; ++slot) {
    if (!mask[slot]) continue;
    auto it = q_.find(Key(state, minute, slot));
    const double value = it == q_.end() ? 0.0 : it->second;
    if (value > best_q) {
      best_q = value;
      best = slot;
    }
  }
  return best;
}

fsm::ActionVector TabularQAgent::SelectAction(const fsm::StateVector& state,
                                              int minute,
                                              const std::vector<bool>& mask,
                                              bool greedy) {
  const bool explore = !greedy && rng_.NextBool(config_.epsilon);
  std::vector<std::size_t> slots;
  for (std::size_t device = 0; device < fsm_.device_count(); ++device) {
    slots.push_back(
        BestAvailableSlot(state, minute, mask, device, rng_, explore));
  }
  return fsm_.codec().SlotsToAction(slots);
}

void TabularQAgent::Update(const fsm::StateVector& state, int minute,
                           const fsm::ActionVector& action, double reward,
                           const fsm::StateVector& next_state, int next_minute,
                           const std::vector<bool>& next_mask, bool done) {
  for (std::size_t i = 0; i < action.size(); ++i) {
    if (action[i] == fsm::kNoAction) continue;
    const std::size_t slot = fsm_.codec().MiniActionSlot(
        {static_cast<fsm::DeviceId>(i), action[i]});
    const double future =
        done ? 0.0 : BestAvailableQ(next_state, next_minute, next_mask, i);
    const double target = reward + config_.gamma * future;
    double& value = q_[Key(state, minute, slot)];
    value += config_.learning_rate * (target - value);
  }
}

void TabularQAgent::DecayEpsilon() {
  config_.epsilon =
      std::max(config_.epsilon_min, config_.epsilon * config_.epsilon_decay);
}

double TabularQAgent::QValue(const fsm::StateVector& state, int minute,
                             const fsm::MiniAction& mini) const {
  auto it = q_.find(Key(state, minute, fsm_.codec().MiniActionSlot(mini)));
  return it == q_.end() ? 0.0 : it->second;
}

}  // namespace jarvis::rl
