// The logger app of Section V-A-1: subscribes to all device capabilities on
// the bus and stores every event as a JSON log line.
#pragma once

#include <string>
#include <vector>

#include "events/bus.h"
#include "events/event.h"

namespace jarvis::events {

class LoggerApp {
 public:
  // Subscribes to everything on construction.
  explicit LoggerApp(EventBus& bus);
  ~LoggerApp();

  LoggerApp(const LoggerApp&) = delete;
  LoggerApp& operator=(const LoggerApp&) = delete;

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // Serializes all stored events, one JSON object per line.
  std::string DumpLog() const;
  void WriteLogFile(const std::string& path) const;

  // Parses a log dump back into events (inverse of DumpLog). Lines that
  // fail to parse are skipped and counted in *dropped if non-null.
  static std::vector<Event> ParseLog(const std::string& text,
                                     std::size_t* dropped = nullptr);
  static std::vector<Event> ReadLogFile(const std::string& path,
                                        std::size_t* dropped = nullptr);

 private:
  EventBus& bus_;
  SubscriptionId subscription_;
  std::vector<Event> events_;
};

}  // namespace jarvis::events
