// Log parsing (Section V-A-2): folds a normalized event stream into the
// FSM state model and cuts it into learning episodes of {T, I} shape.
//
// Each event carries the device's new state (Attribute.value) and the
// command that caused it (Capability.command). The parser tracks the
// composite state minute by minute; commands become the joint action of
// the interval in which they arrive (constraint: the first command per
// device per interval wins, later ones are dropped and counted).
#pragma once

#include <vector>

#include "events/event.h"
#include "fsm/environment.h"
#include "fsm/episode.h"

namespace jarvis::events {

struct ParseStats {
  std::size_t events_consumed = 0;
  std::size_t unknown_device = 0;
  std::size_t unknown_state = 0;
  std::size_t unknown_command = 0;
  std::size_t conflicting_commands = 0;  // dropped by first-come-first-served
  std::size_t out_of_order = 0;          // timestamps going backwards
};

class LogParser {
 public:
  LogParser(const fsm::EnvironmentFsm& fsm, fsm::EpisodeConfig config);

  // Parses a time-sorted event stream starting from `initial_state` at
  // `start`. Produces one episode per period T until the events run out;
  // the final partial episode is included only if `keep_partial`.
  std::vector<fsm::Episode> Parse(const std::vector<Event>& events,
                                  const fsm::StateVector& initial_state,
                                  util::SimTime start,
                                  bool keep_partial = false);

  const ParseStats& stats() const { return stats_; }

 private:
  const fsm::EnvironmentFsm& fsm_;
  fsm::EpisodeConfig config_;
  ParseStats stats_;
};

}  // namespace jarvis::events
