// Log parsing (Section V-A-2): folds a normalized event stream into the
// FSM state model and cuts it into learning episodes of {T, I} shape.
//
// Each event carries the device's new state (Attribute.value) and the
// command that caused it (Capability.command). The parser tracks the
// composite state minute by minute; commands become the joint action of
// the interval in which they arrive (constraint: the first command per
// device per interval wins, later ones are dropped and counted).
#pragma once

#include <vector>

#include "events/event.h"
#include "fsm/environment.h"
#include "fsm/episode.h"
#include "obs/metrics.h"

namespace jarvis::events {

struct ParseStats {
  std::size_t events_consumed = 0;
  std::size_t unknown_device = 0;
  std::size_t unknown_state = 0;
  std::size_t unknown_command = 0;
  std::size_t conflicting_commands = 0;  // dropped by first-come-first-served
  std::size_t out_of_order = 0;          // timestamps going backwards
  std::size_t stragglers_skipped = 0;    // late arrivals behind the cursor
};

// Degradation accounting for one Parse call: every reason an event was
// dropped or skipped, plus the configured drop budget. A report beyond
// budget means the stream was too degraded for the episodes to be trusted
// blindly — callers decide (the parser itself never gives up; it parses
// whatever survives). Feeds core::HealthReport.
struct ParseReport {
  ParseStats stats;
  std::size_t events_seen = 0;  // raw stream size before any drop
  double drop_budget = 1.0;     // ceiling on the tolerated drop fraction

  std::size_t events_dropped() const {
    return stats.unknown_device + stats.unknown_state + stats.unknown_command +
           stats.conflicting_commands + stats.stragglers_skipped;
  }
  double DropFraction() const {
    return events_seen == 0
               ? 0.0
               : static_cast<double>(events_dropped()) /
                     static_cast<double>(events_seen);
  }
  bool WithinBudget() const { return DropFraction() <= drop_budget; }
};

class LogParser {
 public:
  // `drop_budget` is the tolerated fraction of dropped/skipped events per
  // Parse call before the report flags the stream as beyond budget; the
  // default tolerates anything (pre-fault-model behavior).
  LogParser(const fsm::EnvironmentFsm& fsm, fsm::EpisodeConfig config,
            double drop_budget = 1.0);

  // Parses a time-sorted event stream starting from `initial_state` at
  // `start`. Produces one episode per period T until the events run out;
  // the final partial episode is included only if `keep_partial`.
  std::vector<fsm::Episode> Parse(const std::vector<Event>& events,
                                  const fsm::StateVector& initial_state,
                                  util::SimTime start,
                                  bool keep_partial = false);

  const ParseStats& stats() const { return report_.stats; }
  const ParseReport& report() const { return report_; }

  // Wires events.parser.* counters (events_seen / accepted / dropped /
  // stragglers / episodes). Null disables. Counters are bumped once per
  // Parse call from the finished report — the per-event loop stays
  // untouched and the counts are exact by construction:
  // events_seen == events_accepted + events_dropped.
  void SetMetrics(obs::Registry* registry);

 private:
  const fsm::EnvironmentFsm& fsm_;
  fsm::EpisodeConfig config_;
  ParseReport report_;
  obs::Counter* events_seen_counter_ = nullptr;
  obs::Counter* events_accepted_counter_ = nullptr;
  obs::Counter* events_dropped_counter_ = nullptr;
  obs::Counter* stragglers_counter_ = nullptr;
  obs::Counter* episodes_counter_ = nullptr;
};

}  // namespace jarvis::events
