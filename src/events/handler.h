// Device handlers (Section II-A): parse device-specific raw messages into
// normalized, edge-readable events, and normalize raw attribute values /
// commands into the discrete device-states and device-actions of the FSM
// (the manually developed normalization functions of Section V-A-2).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "events/event.h"
#include "fsm/device.h"

namespace jarvis::events {

// A raw message as a device would emit it on the wire: free-form vendor
// vocabulary ("ON", "pwr:1", "LOCK_JAMMED") rather than normalized names.
struct RawDeviceMessage {
  util::SimTime time;
  std::string device_label;
  std::string raw_attribute;  // vendor attribute name
  std::string raw_value;      // vendor value vocabulary
  std::string raw_command;    // vendor command vocabulary, may be empty
};

// Per-device normalization: vendor vocabulary -> FSM state/action names.
// One handler instance serves one device type.
class DeviceHandler {
 public:
  // The default mapping is the identity over the device's own state/action
  // names (already normalized); vendor synonyms are added on top.
  explicit DeviceHandler(const fsm::Device& device);

  const std::string& device_label() const { return device_label_; }

  // Adds vendor synonyms. Matching is case-insensitive.
  void AddValueSynonym(const std::string& vendor_value,
                       const std::string& state_name);
  void AddCommandSynonym(const std::string& vendor_command,
                         const std::string& action_name);

  // Normalizes a raw value/command; nullopt if unknown after synonym and
  // identity lookup.
  std::optional<fsm::StateIndex> NormalizeValue(const std::string& raw) const;
  std::optional<fsm::ActionIndex> NormalizeCommand(const std::string& raw) const;

  // Parses a complete raw message into a normalized Event. Returns nullopt
  // when the value cannot be normalized (unknown vendor vocabulary); such
  // messages are dropped and counted by the caller.
  std::optional<Event> Normalize(const RawDeviceMessage& message,
                                 const std::string& user_info,
                                 const std::string& app_info,
                                 const std::string& location_info,
                                 const std::string& group_info) const;

  // Reverse direction: renders a normalized state/action back into an
  // Event for publication (used by the simulators, which operate directly
  // in FSM vocabulary).
  Event MakeEvent(util::SimTime time, fsm::StateIndex new_state,
                  fsm::ActionIndex action, const std::string& user_info,
                  const std::string& app_info,
                  const std::string& location_info,
                  const std::string& group_info) const;

 private:
  std::string device_label_;
  std::string capability_;
  std::map<std::string, fsm::StateIndex> value_to_state_;
  std::map<std::string, fsm::ActionIndex> command_to_action_;
  std::vector<std::string> state_names_;
  std::vector<std::string> action_names_;
};

// Builds a handler per device with the built-in vendor synonym tables for
// the device library (lock/light/thermostat/etc. vocabularies).
std::map<std::string, DeviceHandler> MakeStandardHandlers(
    const std::vector<fsm::Device>& devices);

}  // namespace jarvis::events
