// Normalized IoT events in the 11-field log schema of Section V-A-1:
//   (Event.date, Event.data, User.info, App.info, Group.info,
//    Location.info, Device.label, Capability.name, Attribute.name,
//    Attribute.value, Capability.command)
//
// Devices publish attribute changes; apps subscribed to the capability see
// the publication (Section II-A's publish-subscribe architecture).
#pragma once

#include <string>

#include "util/json.h"
#include "util/timeofday.h"

namespace jarvis::events {

struct Event {
  util::SimTime date;          // Event.date
  std::string data;            // Event.data: free-form payload
  std::string user_info;       // User.info: acting user, "" if none
  std::string app_info;        // App.info: acting app ("manual" for app 0)
  std::string group_info;      // Group.info
  std::string location_info;   // Location.info
  std::string device_label;    // Device.label
  std::string capability;      // Capability.name, e.g. "switch", "lock"
  std::string attribute;       // Attribute.name, e.g. "power", "lockState"
  std::string attribute_value; // Attribute.value: the new (raw) value
  std::string command;         // Capability.command that caused the change

  util::JsonValue ToJson() const;
  static Event FromJson(const util::JsonValue& doc);

  // One JSON object per line, the on-disk log format.
  std::string ToLogLine() const;
  static Event FromLogLine(const std::string& line);

  bool operator==(const Event&) const = default;
};

}  // namespace jarvis::events
