#include "events/event.h"

namespace jarvis::events {

using util::JsonObject;
using util::JsonValue;

JsonValue Event::ToJson() const {
  JsonObject obj;
  obj["event_date"] = JsonValue(date.ToTimestamp());
  obj["event_minute"] = JsonValue(static_cast<std::int64_t>(date.minutes()));
  obj["event_data"] = JsonValue(data);
  obj["user_info"] = JsonValue(user_info);
  obj["app_info"] = JsonValue(app_info);
  obj["group_info"] = JsonValue(group_info);
  obj["location_info"] = JsonValue(location_info);
  obj["device_label"] = JsonValue(device_label);
  obj["capability_name"] = JsonValue(capability);
  obj["attribute_name"] = JsonValue(attribute);
  obj["attribute_value"] = JsonValue(attribute_value);
  obj["capability_command"] = JsonValue(command);
  return JsonValue(std::move(obj));
}

Event Event::FromJson(const JsonValue& doc) {
  Event event;
  event.date = util::SimTime(doc.At("event_minute").AsInt());
  event.data = doc.GetString("event_data", "");
  event.user_info = doc.GetString("user_info", "");
  event.app_info = doc.GetString("app_info", "");
  event.group_info = doc.GetString("group_info", "");
  event.location_info = doc.GetString("location_info", "");
  event.device_label = doc.GetString("device_label", "");
  event.capability = doc.GetString("capability_name", "");
  event.attribute = doc.GetString("attribute_name", "");
  event.attribute_value = doc.GetString("attribute_value", "");
  event.command = doc.GetString("capability_command", "");
  return event;
}

std::string Event::ToLogLine() const { return ToJson().Dump(); }

Event Event::FromLogLine(const std::string& line) {
  return FromJson(JsonValue::Parse(line));
}

}  // namespace jarvis::events
