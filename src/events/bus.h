// Publish-subscribe event bus (Section II-A). Apps subscribe to device
// capabilities; every publication of a matching event is delivered to all
// subscribers in subscription order.
//
// Thread safety: an EventBus is a per-home (per-tenant) object and is NOT
// thread-safe — Publish/Subscribe mutate the subscription list and
// counters without locking. The fleet runtime gives every tenant shard its
// own bus; nothing here is shared across shards (no statics, no global
// registries — the shared-state audit for DESIGN.md §10 and the
// tools/lint.py mutable-static ban keep it that way). Publish is
// re-entrant on one thread: a callback may Subscribe during delivery.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "events/event.h"

namespace jarvis::events {

using EventCallback = std::function<void(const Event&)>;
using SubscriptionId = std::size_t;

class EventBus {
 public:
  // Subscribes to events from a specific (device, capability) pair. Empty
  // strings act as wildcards; Subscribe("", "") sees everything (this is
  // how the logger app subscribes to all capabilities, Section V-A-1).
  SubscriptionId Subscribe(const std::string& device_label,
                           const std::string& capability,
                           EventCallback callback);

  void Unsubscribe(SubscriptionId id);

  // Delivers the event to every matching live subscription, in order.
  void Publish(const Event& event);

  std::size_t subscription_count() const;
  std::size_t published_count() const { return published_count_; }

 private:
  struct Subscription {
    SubscriptionId id;
    std::string device_label;  // "" = any device
    std::string capability;    // "" = any capability
    EventCallback callback;
    bool active = true;
  };

  std::vector<Subscription> subscriptions_;
  SubscriptionId next_id_ = 0;
  std::size_t published_count_ = 0;
};

}  // namespace jarvis::events
