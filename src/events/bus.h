// Publish-subscribe event bus (Section II-A). Apps subscribe to device
// capabilities; every publication of a matching event is delivered to all
// subscribers in subscription order.
//
// Thread safety (DESIGN.md §13): the bus is thread-safe — Subscribe,
// Unsubscribe, and Publish may race from any threads. One util::Mutex
// guards the subscription list and counters; delivery happens OUTSIDE the
// lock (the matching callbacks are snapshotted under the lock, then each
// is re-checked for liveness and invoked unlocked), so a slow subscriber
// never blocks the bus and a callback may freely Subscribe/Unsubscribe.
// Callbacks themselves run on the publishing thread; an app that keeps
// state (LoggerApp) is only thread-safe if its own state is.
//
// Re-entrancy contract (tightened from PR 2, now annotated): a callback
// MAY Subscribe or Unsubscribe during delivery — new subscriptions only
// see later publications, an unsubscribed callback stops within the same
// publication. A callback MUST NOT Publish on the same bus (re-entrant
// Publish): the JARVIS_EXCLUDES(mutex_) annotation makes that a compile
// error wherever the analysis can see the call chain, and a guarded
// delivering-threads set makes it a deterministic util::CheckError (not
// reordered deliveries) when it hides behind a std::function boundary.
// Distinct threads publishing concurrently remain fine — the ban is
// per-thread nesting, not cross-thread parallelism.
#pragma once

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "events/event.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jarvis::events {

using EventCallback = std::function<void(const Event&)>;
using SubscriptionId = std::size_t;

class EventBus {
 public:
  // Subscribes to events from a specific (device, capability) pair. Empty
  // strings act as wildcards; Subscribe("", "") sees everything (this is
  // how the logger app subscribes to all capabilities, Section V-A-1).
  SubscriptionId Subscribe(const std::string& device_label,
                           const std::string& capability,
                           EventCallback callback) JARVIS_EXCLUDES(mutex_);

  void Unsubscribe(SubscriptionId id) JARVIS_EXCLUDES(mutex_);

  // Delivers the event to every matching live subscription, in order.
  // Must not be called re-entrantly from a callback (see header comment).
  void Publish(const Event& event) JARVIS_EXCLUDES(mutex_);

  std::size_t subscription_count() const JARVIS_EXCLUDES(mutex_);
  std::size_t published_count() const JARVIS_EXCLUDES(mutex_);

 private:
  struct Subscription {
    SubscriptionId id;
    std::string device_label;  // "" = any device
    std::string capability;    // "" = any capability
    EventCallback callback;
    bool active = true;
  };

  // True when `subscriptions_[index]` matches (event, active) — callers
  // hold the lock.
  bool MatchesLocked(std::size_t index, const Event& event) const
      JARVIS_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::vector<Subscription> subscriptions_ JARVIS_GUARDED_BY(mutex_);
  SubscriptionId next_id_ JARVIS_GUARDED_BY(mutex_) = 0;
  std::size_t published_count_ JARVIS_GUARDED_BY(mutex_) = 0;
  // Threads currently delivering (size == number of concurrent Publish
  // calls, so it stays tiny); membership check is the runtime re-entrancy
  // backstop for the JARVIS_EXCLUDES contract.
  std::vector<std::thread::id> delivering_threads_ JARVIS_GUARDED_BY(mutex_);
};

}  // namespace jarvis::events
