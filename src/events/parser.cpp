#include "events/parser.h"

#include <algorithm>

namespace jarvis::events {

LogParser::LogParser(const fsm::EnvironmentFsm& fsm, fsm::EpisodeConfig config)
    : fsm_(fsm), config_(config) {}

std::vector<fsm::Episode> LogParser::Parse(
    const std::vector<Event>& events, const fsm::StateVector& initial_state,
    util::SimTime start, bool keep_partial) {
  fsm_.ValidateState(initial_state);
  stats_ = {};

  std::vector<fsm::Episode> episodes;
  if (events.empty()) return episodes;

  // The parsing horizon runs from `start` to the last event, rounded up to
  // a whole episode.
  util::SimTime last_event_time = start;
  for (const auto& event : events) {
    if (event.date < last_event_time) {
      ++stats_.out_of_order;
    } else {
      last_event_time = event.date;
    }
  }

  fsm::StateVector state = initial_state;
  std::size_t cursor = 0;
  util::SimTime t = start;

  while (cursor < events.size() || (t - start) == 0) {
    fsm::Episode episode(config_, t, state);
    const int steps = config_.StepsPerEpisode();
    for (int step = 0; step < steps; ++step) {
      const util::SimTime interval_end = t + config_.interval_minutes;

      fsm::ActionVector action(fsm_.device_count(), fsm::kNoAction);
      std::vector<bool> acted(fsm_.device_count(), false);
      // Exogenous state overrides observed this interval (device -> state).
      std::vector<std::pair<std::size_t, fsm::StateIndex>> overrides;

      while (cursor < events.size() && events[cursor].date < interval_end) {
        const Event& event = events[cursor];
        ++cursor;
        if (event.date < t) continue;  // out-of-order stragglers: skip
        ++stats_.events_consumed;

        const fsm::Device* device = nullptr;
        std::size_t device_index = 0;
        for (std::size_t i = 0; i < fsm_.device_count(); ++i) {
          if (fsm_.devices()[i].label() == event.device_label) {
            device = &fsm_.devices()[i];
            device_index = i;
            break;
          }
        }
        if (device == nullptr) {
          ++stats_.unknown_device;
          continue;
        }

        if (!event.command.empty()) {
          const auto action_index = device->FindAction(event.command);
          if (!action_index) {
            ++stats_.unknown_command;
            continue;
          }
          if (acted[device_index]) {
            ++stats_.conflicting_commands;  // first command wins
            continue;
          }
          acted[device_index] = true;
          action[device_index] = *action_index;
        } else {
          // Exogenous attribute change (sensor flips, user arrives, ...).
          const auto state_index = device->FindState(event.attribute_value);
          if (!state_index) {
            ++stats_.unknown_state;
            continue;
          }
          overrides.emplace_back(device_index, *state_index);
        }
      }

      // Command-less events describe the state *at* their timestamp
      // (sensors report readings, they do not cause them), so overrides
      // apply before the step is recorded; commands then act on the
      // updated state.
      for (const auto& [device_index, new_state] : overrides) {
        state[device_index] = new_state;
      }
      episode.Record(t, state, action);
      state = fsm_.Apply(state, action);
      t = interval_end;
    }
    const bool complete = episode.IsComplete();
    if (complete || keep_partial) episodes.push_back(std::move(episode));
    if (cursor >= events.size()) break;
  }
  return episodes;
}

}  // namespace jarvis::events
