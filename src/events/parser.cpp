#include "events/parser.h"

#include <algorithm>

namespace jarvis::events {

LogParser::LogParser(const fsm::EnvironmentFsm& fsm, fsm::EpisodeConfig config,
                     double drop_budget)
    : fsm_(fsm), config_(config) {
  report_.drop_budget = drop_budget;
}

void LogParser::SetMetrics(obs::Registry* registry) {
  if (registry == nullptr) {
    events_seen_counter_ = nullptr;
    events_accepted_counter_ = nullptr;
    events_dropped_counter_ = nullptr;
    stragglers_counter_ = nullptr;
    episodes_counter_ = nullptr;
    return;
  }
  events_seen_counter_ = registry->GetCounter("events.parser.events_seen");
  events_accepted_counter_ =
      registry->GetCounter("events.parser.events_accepted");
  events_dropped_counter_ =
      registry->GetCounter("events.parser.events_dropped");
  stragglers_counter_ =
      registry->GetCounter("events.parser.stragglers_skipped");
  episodes_counter_ = registry->GetCounter("events.parser.episodes_parsed");
}

std::vector<fsm::Episode> LogParser::Parse(
    const std::vector<Event>& events, const fsm::StateVector& initial_state,
    util::SimTime start, bool keep_partial) {
  fsm_.ValidateState(initial_state);
  const double drop_budget = report_.drop_budget;
  report_ = {};
  report_.drop_budget = drop_budget;
  report_.events_seen = events.size();
  ParseStats& stats = report_.stats;

  std::vector<fsm::Episode> episodes;
  if (events.empty()) return episodes;

  // The parsing horizon runs from `start` to the last event, rounded up to
  // a whole episode.
  util::SimTime last_event_time = start;
  for (const auto& event : events) {
    if (event.date < last_event_time) {
      ++stats.out_of_order;
    } else {
      last_event_time = event.date;
    }
  }

  fsm::StateVector state = initial_state;
  std::size_t cursor = 0;
  util::SimTime t = start;

  while (cursor < events.size() || (t - start) == 0) {
    fsm::Episode episode(config_, t, state);
    const int steps = config_.StepsPerEpisode();
    for (int step = 0; step < steps; ++step) {
      const util::SimTime interval_end = t + config_.interval_minutes;

      fsm::ActionVector action(fsm_.device_count(), fsm::kNoAction);
      std::vector<bool> acted(fsm_.device_count(), false);
      // Exogenous state overrides observed this interval (device -> state).
      std::vector<std::pair<std::size_t, fsm::StateIndex>> overrides;

      while (cursor < events.size() && events[cursor].date < interval_end) {
        const Event& event = events[cursor];
        ++cursor;
        if (event.date < t) {
          // Out-of-order straggler (late arrival): skipped, but accounted
          // for so degraded transports are visible in the ParseReport.
          ++stats.stragglers_skipped;
          continue;
        }
        ++stats.events_consumed;

        const fsm::Device* device = nullptr;
        std::size_t device_index = 0;
        for (std::size_t i = 0; i < fsm_.device_count(); ++i) {
          if (fsm_.devices()[i].label() == event.device_label) {
            device = &fsm_.devices()[i];
            device_index = i;
            break;
          }
        }
        if (device == nullptr) {
          ++stats.unknown_device;
          continue;
        }

        if (!event.command.empty()) {
          const auto action_index = device->FindAction(event.command);
          if (!action_index) {
            ++stats.unknown_command;
            continue;
          }
          if (acted[device_index]) {
            ++stats.conflicting_commands;  // first command wins
            continue;
          }
          acted[device_index] = true;
          action[device_index] = *action_index;
        } else {
          // Exogenous attribute change (sensor flips, user arrives, ...).
          const auto state_index = device->FindState(event.attribute_value);
          if (!state_index) {
            ++stats.unknown_state;
            continue;
          }
          overrides.emplace_back(device_index, *state_index);
        }
      }

      // Command-less events describe the state *at* their timestamp
      // (sensors report readings, they do not cause them), so overrides
      // apply before the step is recorded; commands then act on the
      // updated state.
      for (const auto& [device_index, new_state] : overrides) {
        state[device_index] = new_state;
      }
      episode.Record(t, state, action);
      state = fsm_.Apply(state, action);
      t = interval_end;
    }
    const bool complete = episode.IsComplete();
    if (complete || keep_partial) episodes.push_back(std::move(episode));
    if (cursor >= events.size()) break;
  }
  if (events_seen_counter_ != nullptr) {
    // Every seen event is either a straggler or consumed, and consumed
    // events either pass the vocabulary/conflict checks (accepted) or are
    // dropped — so accepted + dropped == seen holds by construction.
    const std::size_t vocab_drops = stats.unknown_device +
                                    stats.unknown_state +
                                    stats.unknown_command +
                                    stats.conflicting_commands;
    events_seen_counter_->Increment(report_.events_seen);
    events_accepted_counter_->Increment(stats.events_consumed - vocab_drops);
    events_dropped_counter_->Increment(report_.events_dropped());
    stragglers_counter_->Increment(stats.stragglers_skipped);
    episodes_counter_->Increment(episodes.size());
  }
  return episodes;
}

}  // namespace jarvis::events
