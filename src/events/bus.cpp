#include "events/bus.h"

#include <algorithm>

namespace jarvis::events {

SubscriptionId EventBus::Subscribe(const std::string& device_label,
                                   const std::string& capability,
                                   EventCallback callback) {
  const SubscriptionId id = next_id_++;
  subscriptions_.push_back(
      {id, device_label, capability, std::move(callback), true});
  return id;
}

void EventBus::Unsubscribe(SubscriptionId id) {
  for (auto& sub : subscriptions_) {
    if (sub.id == id) {
      sub.active = false;
      return;
    }
  }
}

void EventBus::Publish(const Event& event) {
  ++published_count_;
  // Index-based loop: callbacks may add subscriptions while we iterate;
  // those only take effect for later publications of this same event set.
  // A callback that calls Subscribe() can also reallocate subscriptions_,
  // so no reference into the vector may be held across the invocation:
  // fields are matched through indexed access and the callback is invoked
  // through a copy that survives reallocation.
  const std::size_t live_at_publish = subscriptions_.size();
  for (std::size_t i = 0; i < live_at_publish; ++i) {
    if (!subscriptions_[i].active) continue;
    if (!subscriptions_[i].device_label.empty() &&
        subscriptions_[i].device_label != event.device_label) {
      continue;
    }
    if (!subscriptions_[i].capability.empty() &&
        subscriptions_[i].capability != event.capability) {
      continue;
    }
    const EventCallback callback = subscriptions_[i].callback;
    callback(event);
  }
}

std::size_t EventBus::subscription_count() const {
  return static_cast<std::size_t>(
      std::count_if(subscriptions_.begin(), subscriptions_.end(),
                    [](const Subscription& s) { return s.active; }));
}

}  // namespace jarvis::events
