#include "events/bus.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace jarvis::events {

SubscriptionId EventBus::Subscribe(const std::string& device_label,
                                   const std::string& capability,
                                   EventCallback callback) {
  util::MutexLock lock(mutex_);
  const SubscriptionId id = next_id_++;
  subscriptions_.push_back(
      {id, device_label, capability, std::move(callback), true});
  return id;
}

void EventBus::Unsubscribe(SubscriptionId id) {
  util::MutexLock lock(mutex_);
  for (auto& sub : subscriptions_) {
    if (sub.id == id) {
      sub.active = false;
      return;
    }
  }
}

bool EventBus::MatchesLocked(std::size_t index, const Event& event) const {
  const Subscription& sub = subscriptions_[index];
  if (!sub.active) return false;
  if (!sub.device_label.empty() && sub.device_label != event.device_label) {
    return false;
  }
  if (!sub.capability.empty() && sub.capability != event.capability) {
    return false;
  }
  return true;
}

void EventBus::Publish(const Event& event) {
  // RAII membership in delivering_threads_, so a throwing callback cannot
  // leave this thread permanently marked as "delivering".
  class DeliveryScope {
   public:
    explicit DeliveryScope(EventBus& bus) : bus_(bus) {}
    ~DeliveryScope() {
      util::MutexLock lock(bus_.mutex_);
      auto& threads = bus_.delivering_threads_;
      const auto it =
          std::find(threads.begin(), threads.end(), std::this_thread::get_id());
      if (it != threads.end()) threads.erase(it);
    }

   private:
    EventBus& bus_;
  };

  std::size_t live_at_publish = 0;
  {
    util::MutexLock lock(mutex_);
    const auto self = std::this_thread::get_id();
    JARVIS_CHECK(std::find(delivering_threads_.begin(),
                           delivering_threads_.end(),
                           self) == delivering_threads_.end(),
                 "EventBus::Publish: re-entrant publish from a callback "
                 "(banned by the JARVIS_EXCLUDES contract; queue the event "
                 "and publish after delivery returns)");
    delivering_threads_.push_back(self);
    ++published_count_;
    // Subscriptions added during delivery get indices >= this bound and
    // only see later publications.
    live_at_publish = subscriptions_.size();
  }
  DeliveryScope scope(*this);

  for (std::size_t i = 0; i < live_at_publish; ++i) {
    // Re-check liveness under the lock before each invocation so an
    // Unsubscribe during delivery still suppresses the rest of this
    // publication, then invoke through a copy outside the lock — a slow
    // or re-subscribing callback never holds the bus mutex.
    EventCallback callback;
    {
      util::MutexLock lock(mutex_);
      if (!MatchesLocked(i, event)) continue;
      callback = subscriptions_[i].callback;
    }
    callback(event);
  }
}

std::size_t EventBus::subscription_count() const {
  util::MutexLock lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(subscriptions_.begin(), subscriptions_.end(),
                    [](const Subscription& s) { return s.active; }));
}

std::size_t EventBus::published_count() const {
  util::MutexLock lock(mutex_);
  return published_count_;
}

}  // namespace jarvis::events
