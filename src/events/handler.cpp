#include "events/handler.h"

#include "util/strings.h"

namespace jarvis::events {

DeviceHandler::DeviceHandler(const fsm::Device& device)
    : device_label_(device.label()),
      capability_(fsm::DeviceClassName(device.device_class())) {
  for (fsm::StateIndex s = 0; s < device.state_count(); ++s) {
    state_names_.push_back(device.state_name(s));
    value_to_state_[util::ToLower(device.state_name(s))] = s;
  }
  for (fsm::ActionIndex a = 0; a < device.action_count(); ++a) {
    action_names_.push_back(device.action_name(a));
    command_to_action_[util::ToLower(device.action_name(a))] = a;
  }
}

void DeviceHandler::AddValueSynonym(const std::string& vendor_value,
                                    const std::string& state_name) {
  auto it = value_to_state_.find(util::ToLower(state_name));
  if (it == value_to_state_.end()) {
    throw std::invalid_argument("AddValueSynonym: unknown state " + state_name);
  }
  value_to_state_[util::ToLower(vendor_value)] = it->second;
}

void DeviceHandler::AddCommandSynonym(const std::string& vendor_command,
                                      const std::string& action_name) {
  auto it = command_to_action_.find(util::ToLower(action_name));
  if (it == command_to_action_.end()) {
    throw std::invalid_argument("AddCommandSynonym: unknown action " +
                                action_name);
  }
  command_to_action_[util::ToLower(vendor_command)] = it->second;
}

std::optional<fsm::StateIndex> DeviceHandler::NormalizeValue(
    const std::string& raw) const {
  auto it = value_to_state_.find(util::ToLower(util::Trim(raw)));
  if (it == value_to_state_.end()) return std::nullopt;
  return it->second;
}

std::optional<fsm::ActionIndex> DeviceHandler::NormalizeCommand(
    const std::string& raw) const {
  auto it = command_to_action_.find(util::ToLower(util::Trim(raw)));
  if (it == command_to_action_.end()) return std::nullopt;
  return it->second;
}

std::optional<Event> DeviceHandler::Normalize(
    const RawDeviceMessage& message, const std::string& user_info,
    const std::string& app_info, const std::string& location_info,
    const std::string& group_info) const {
  const auto state = NormalizeValue(message.raw_value);
  if (!state) return std::nullopt;
  fsm::ActionIndex action = fsm::kNoAction;
  if (!message.raw_command.empty()) {
    const auto normalized = NormalizeCommand(message.raw_command);
    if (!normalized) return std::nullopt;
    action = *normalized;
  }
  return MakeEvent(message.time, *state, action, user_info, app_info,
                   location_info, group_info);
}

Event DeviceHandler::MakeEvent(util::SimTime time, fsm::StateIndex new_state,
                               fsm::ActionIndex action,
                               const std::string& user_info,
                               const std::string& app_info,
                               const std::string& location_info,
                               const std::string& group_info) const {
  Event event;
  event.date = time;
  event.device_label = device_label_;
  event.capability = capability_;
  event.attribute = "state";
  event.attribute_value = state_names_.at(static_cast<std::size_t>(new_state));
  event.command = action == fsm::kNoAction
                      ? ""
                      : action_names_.at(static_cast<std::size_t>(action));
  event.user_info = user_info;
  event.app_info = app_info;
  event.location_info = location_info;
  event.group_info = group_info;
  event.data = "state-change";
  return event;
}

std::map<std::string, DeviceHandler> MakeStandardHandlers(
    const std::vector<fsm::Device>& devices) {
  std::map<std::string, DeviceHandler> handlers;
  for (const auto& device : devices) {
    DeviceHandler handler(device);
    // Common vendor vocabularies seen on SmartThings-class devices.
    if (device.label() == "lock") {
      handler.AddValueSynonym("LOCKED", "locked_outside");
      handler.AddValueSynonym("UNLOCKED", "unlocked");
      handler.AddCommandSynonym("LOCK_DOOR", "lock");
      handler.AddCommandSynonym("UNLOCK_DOOR", "unlock");
    } else if (device.label() == "light") {
      handler.AddValueSynonym("ON", "on");
      handler.AddValueSynonym("OFF", "off");
      handler.AddValueSynonym("pwr:1", "on");
      handler.AddValueSynonym("pwr:0", "off");
      handler.AddCommandSynonym("turnOn", "power_on");
      handler.AddCommandSynonym("turnOff", "power_off");
    } else if (device.label() == "thermostat") {
      handler.AddValueSynonym("HEATING", "heat");
      handler.AddValueSynonym("COOLING", "cool");
      handler.AddValueSynonym("IDLE", "off");
      handler.AddCommandSynonym("setHeatingSetpoint", "increase_temp");
      handler.AddCommandSynonym("setCoolingSetpoint", "decrease_temp");
    } else if (device.label() == "tv") {
      handler.AddValueSynonym("ON", "on");
      handler.AddValueSynonym("OFF", "off");
      handler.AddValueSynonym("STANDBY", "standby");
    }
    handlers.emplace(device.label(), std::move(handler));
  }
  return handlers;
}

}  // namespace jarvis::events
