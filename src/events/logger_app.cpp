#include "events/logger_app.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/io.h"

namespace jarvis::events {

LoggerApp::LoggerApp(EventBus& bus) : bus_(bus) {
  subscription_ = bus_.Subscribe(
      "", "", [this](const Event& event) { events_.push_back(event); });
}

LoggerApp::~LoggerApp() { bus_.Unsubscribe(subscription_); }

std::string LoggerApp::DumpLog() const {
  std::string out;
  for (const auto& event : events_) {
    out += event.ToLogLine();
    out.push_back('\n');
  }
  return out;
}

void LoggerApp::WriteLogFile(const std::string& path) const {
  // Durable writes go through the atomic path (lint rule 10): a crash
  // mid-dump must leave the previous log file intact, not a torn one.
  util::io::AtomicWriteFile(path, DumpLog());
}

std::vector<Event> LoggerApp::ParseLog(const std::string& text,
                                       std::size_t* dropped) {
  std::vector<Event> events;
  std::size_t drop_count = 0;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    try {
      events.push_back(Event::FromLogLine(line));
    } catch (const util::JsonError&) {
      ++drop_count;
    }
  }
  if (dropped != nullptr) *dropped = drop_count;
  return events;
}

std::vector<Event> LoggerApp::ReadLogFile(const std::string& path,
                                          std::size_t* dropped) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("LoggerApp: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseLog(buffer.str(), dropped);
}

}  // namespace jarvis::events
