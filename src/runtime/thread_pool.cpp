#include "runtime/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace jarvis::runtime {

ThreadPool::ThreadPool(std::size_t workers, std::size_t queue_capacity,
                       obs::Registry* registry)
    : queue_capacity_(std::max<std::size_t>(1, queue_capacity)) {
  if (registry != nullptr) {
    executed_counter_ = registry->GetCounter("runtime.pool.tasks_executed");
    failed_counter_ = registry->GetCounter("runtime.pool.tasks_failed");
    queue_depth_gauge_ = registry->GetGauge("runtime.pool.queue_depth",
                                            obs::Determinism::kTiming);
    task_timer_ = registry->GetTimerUs("runtime.pool.task_us");
  }
  const std::size_t count = std::max<std::size_t>(1, workers);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  if (!task) return false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return shutting_down_ || queue_.size() < queue_capacity_;
    });
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock,
                      [this] { return shutting_down_ || !queue_.empty(); });
      // Graceful shutdown: drain the queue before exiting, so Shutdown()
      // runs everything already accepted.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      }
    }
    not_full_.notify_one();

    std::exception_ptr error;
    try {
      obs::ScopedTimer timer(task_timer_);
      task();
    } catch (...) {
      error = std::current_exception();
    }

    if (executed_counter_ != nullptr) {
      executed_counter_->Increment();
      if (error) failed_counter_->Increment();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      ++executed_;
      if (error) {
        ++failed_;
        if (first_error_.empty()) {
          try {
            std::rethrow_exception(error);
          } catch (const std::exception& e) {
            first_error_ = e.what();
          } catch (...) {
            first_error_ = "unknown exception";
          }
        }
      }
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return executed_;
}

std::size_t ThreadPool::tasks_failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

std::string ThreadPool::first_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return first_error_;
}

}  // namespace jarvis::runtime
