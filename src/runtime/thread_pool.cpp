#include "runtime/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace jarvis::runtime {

ThreadPool::ThreadPool(std::size_t workers, std::size_t queue_capacity,
                       obs::Registry* registry)
    : worker_count_(std::max<std::size_t>(1, workers)),
      queue_capacity_(std::max<std::size_t>(1, queue_capacity)) {
  if (registry != nullptr) {
    executed_counter_ = registry->GetCounter("runtime.pool.tasks_executed");
    failed_counter_ = registry->GetCounter("runtime.pool.tasks_failed");
    queue_depth_gauge_ = registry->GetGauge("runtime.pool.queue_depth",
                                            obs::Determinism::kTiming);
    task_timer_ = registry->GetTimerUs("runtime.pool.task_us");
  }
  // Spawn under the lock: workers_ is guarded, and a worker that starts
  // instantly blocks on the same mutex until construction finishes.
  util::MutexLock lock(mutex_);
  workers_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  if (!task) return false;
  {
    util::MutexLock lock(mutex_);
    while (!shutting_down_ && queue_.size() >= queue_capacity_) {
      not_full_.Wait(mutex_);
    }
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  not_empty_.Signal();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (!task) return false;
  {
    util::MutexLock lock(mutex_);
    if (shutting_down_ || queue_.size() >= queue_capacity_) return false;
    queue_.push_back(std::move(task));
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  not_empty_.Signal();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) {
        not_empty_.Wait(mutex_);
      }
      // Graceful shutdown: drain the queue before exiting, so Shutdown()
      // runs everything already accepted.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      }
    }
    not_full_.Signal();

    std::exception_ptr error;
    try {
      obs::ScopedTimer timer(task_timer_);
      task();
    } catch (...) {
      error = std::current_exception();
    }

    if (executed_counter_ != nullptr) {
      executed_counter_->Increment();
      if (error) failed_counter_->Increment();
    }
    {
      util::MutexLock lock(mutex_);
      --active_;
      ++executed_;
      if (error) {
        ++failed_;
        if (first_error_.empty()) {
          try {
            std::rethrow_exception(error);
          } catch (const std::exception& e) {
            first_error_ = e.what();
          } catch (...) {
            first_error_ = "unknown exception";
          }
        }
      }
      if (queue_.empty() && active_ == 0) idle_.SignalAll();
    }
  }
}

void ThreadPool::WaitIdle() {
  util::MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) {
    idle_.Wait(mutex_);
  }
}

void ThreadPool::Shutdown() {
  std::vector<std::thread> to_join;
  {
    util::MutexLock lock(mutex_);
    if (shutting_down_) {
      // Another thread is (or finished) joining; wait until the workers
      // are really gone so every Shutdown caller gets the same
      // "all tasks completed" postcondition. Joining the same
      // std::thread twice is UB, hence swap-and-wait instead of a
      // shared join loop.
      while (!joined_) {
        shutdown_done_.Wait(mutex_);
      }
      return;
    }
    shutting_down_ = true;
    to_join.swap(workers_);
  }
  not_empty_.SignalAll();
  not_full_.SignalAll();
  for (auto& worker : to_join) {
    if (worker.joinable()) worker.join();
  }
  {
    util::MutexLock lock(mutex_);
    joined_ = true;
  }
  shutdown_done_.SignalAll();
}

std::size_t ThreadPool::tasks_executed() const {
  util::MutexLock lock(mutex_);
  return executed_;
}

std::size_t ThreadPool::tasks_failed() const {
  util::MutexLock lock(mutex_);
  return failed_;
}

std::string ThreadPool::first_error() const {
  util::MutexLock lock(mutex_);
  return first_error_;
}

}  // namespace jarvis::runtime
