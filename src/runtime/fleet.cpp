#include "runtime/fleet.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "rl/iot_env.h"
#include "runtime/inference_batcher.h"
#include "sim/anomaly.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace jarvis::runtime {

namespace {

// Sub-stream indices under a tenant's derived seed. Every seeded component
// of a tenant pipeline draws a distinct DeriveSeed stream so components
// never share (or partially overlap) generator state.
enum TenantStream : std::uint64_t {
  kSplStream = 1,
  kDqnStream = 2,
  kResidentStream = 3,
  kScenarioStream = 4,
  kAnomalyStream = 5,
  kCheckpointStream = 6,  // jitter for checkpoint-write retries
};

core::JarvisConfig MakeTenantConfig(const core::JarvisConfig& base,
                                    std::uint64_t tenant_seed) {
  core::JarvisConfig config = base;
  config.seed = tenant_seed;
  config.spl.seed = util::DeriveSeed(tenant_seed, kSplStream);
  config.dqn.seed = util::DeriveSeed(tenant_seed, kDqnStream);
  return config;
}

}  // namespace

WorkloadFactory SimulatedWorkloadFactory(const fsm::EnvironmentFsm& home,
                                         SimulatedWorkloadOptions options) {
  if (options.learning_days < 1) {
    throw std::invalid_argument(
        "SimulatedWorkloadFactory: need at least 1 learning day");
  }
  return [&home, options](std::size_t /*tenant_index*/,
                          std::uint64_t tenant_seed) {
    sim::ResidentSimulator resident(
        home, sim::ThermalConfig{},
        util::DeriveSeed(tenant_seed, kResidentStream));
    const sim::ScenarioGenerator generator(
        {}, {}, {}, util::DeriveSeed(tenant_seed, kScenarioStream));
    // learning_days of natural behavior for Algorithm 1, plus one more
    // contiguous day to optimize; states carry across midnights so the
    // parser sees one gap-free stream.
    auto traces =
        resident.SimulateDays(generator, 0, options.learning_days + 1);

    TenantWorkload workload;
    workload.initial_state = resident.OvernightState();
    workload.start = util::SimTime(0);
    workload.weights = options.weights;
    workload.day = std::move(traces.back());
    traces.pop_back();

    std::vector<fsm::Episode> episodes;
    episodes.reserve(traces.size());
    for (auto& trace : traces) {
      for (const auto& event : trace.events) {
        workload.events.push_back(event);
      }
      episodes.push_back(std::move(trace.episode));
    }
    sim::AnomalyGenerator anomalies(
        home, util::DeriveSeed(tenant_seed, kAnomalyStream));
    workload.labeled = anomalies.BuildTrainingSet(
        fsm::ExtractTriggerActions(episodes),
        options.benign_anomaly_samples);
    return workload;
  };
}

Fleet::Fleet(const fsm::EnvironmentFsm& home, FleetConfig config)
    : home_(home), config_(std::move(config)) {
  if (config_.tenants == 0) {
    throw std::invalid_argument("Fleet: at least one tenant");
  }
  util::MutexLock lock(mutex_);
  shards_.resize(config_.tenants);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].seed =
        util::DeriveSeed(config_.fleet_seed, static_cast<std::uint64_t>(i));
    shards_[i].suggest_mutex = std::make_unique<util::Mutex>();
  }
}

void Fleet::RunTenant(std::size_t index, const WorkloadFactory& factory,
                      TenantResult& result) {
  std::uint64_t seed = 0;
  std::unique_ptr<core::Jarvis> warm;
  std::shared_ptr<AggregationService> run_aggregator;
  {
    // Touch the shard only at job start (seed + quarantine flag + staged
    // warm-start pipeline) and job end (store the trained pipeline): the
    // tenant pipeline itself runs on locals, so the fleet lock never
    // serializes tenant work.
    util::MutexLock lock(mutex_);
    TenantShard& shard = shards_[index];
    seed = shard.seed;
    result.tenant = index;
    result.seed = seed;
    if (shard.removed) {
      result.removed = true;
      return;
    }
    if (shard.quarantined) {
      result.quarantined = true;
      result.error = "quarantined by a previous run";
      return;
    }
    warm = std::move(shard.warm_start);
    run_aggregator = aggregator_;
  }
  obs::ScopedSpan tenant_span(&tracer_, "tenant." + std::to_string(index));
  try {
    const TenantWorkload workload = [&] {
      obs::ScopedSpan span(&tracer_, "workload");
      return factory(index, seed);
    }();
    // A staged pipeline (checkpoint restore / warm-start template) replaces
    // the cold construction. If its policies restored, the learning phase
    // is skipped entirely — the warm-start payoff; if the restore failed
    // per-section, the pipeline cold-start learns below while its health
    // still carries the failed-section accounting.
    std::shared_ptr<core::Jarvis> jarvis =
        warm != nullptr ? std::move(warm)
                        : std::make_unique<core::Jarvis>(
                              home_, MakeTenantConfig(config_.tenant_config,
                                                      seed));
    // Streaming republish: when a policy is configured and the funnel is
    // attached, the trainer snapshots the live network through
    // PublishWeights mid-run — serving rides a policy at most N episodes
    // old instead of waiting for this whole job. The hook runs on this
    // job's thread (the network's single writer, quiescent for the call)
    // and draws no RNG, so tenant results are identical either way. The
    // captured service stays alive through the shared_ptr even if
    // EnableAggregation replaces it mid-run; the replacement gets this
    // tenant's weights at job end below.
    if (run_aggregator != nullptr &&
        config_.tenant_config.trainer.republish.enabled()) {
      std::shared_ptr<AggregationService> stream = run_aggregator;
      obs::Counter* republished = registry_.GetCounter(
          "runtime.agg.republish.published", obs::Determinism::kTiming);
      jarvis->SetLearningHook(
          [index, stream, republished](const rl::EpisodeProgress&,
                                       const neural::Network& network) {
            stream->PublishWeights(index, network);
            republished->Increment();
          });
    }
    if (jarvis->learned()) {
      result.warm_started = true;
    } else {
      obs::ScopedSpan span(&tracer_, "learn");
      result.learning_episodes =
          jarvis->LearnFromEvents(workload.events, workload.initial_state,
                                  workload.start, workload.labeled);
    }
    {
      obs::ScopedSpan span(&tracer_, "optimize");
      result.plan = jarvis->OptimizeDay(workload.day, workload.weights);
    }
    // Drop the streaming hook before storing the pipeline: it holds a
    // reference to the service this run started with, and the stored
    // pipeline (which never trains again — a re-Run builds a fresh one)
    // must not pin a replaced service alive for its whole lifetime.
    jarvis->SetLearningHook(nullptr);
    result.health = jarvis->Health();
    result.completed = true;
    std::shared_ptr<AggregationService> aggregator;
    {
      util::MutexLock lock(mutex_);
      shards_[index].jarvis = jarvis;
      aggregator = aggregator_;
    }
    // Publish this tenant's freshly trained weights to the serving funnel
    // (outside the fleet lock — the clone walks every parameter). The
    // local shared_ptr keeps the pipeline alive across the publish even if
    // a concurrent RemoveTenant resets the shard slot mid-clone (the
    // dangling-`stored` fix); publishing for a just-removed tenant is
    // harmless — SuggestMinutes throws before consulting the funnel. This
    // job is the only writer of the tenant's pipeline, so the source
    // network is quiescent here. Deterministically a no-op for tenant
    // results: the snapshot is an exact parameter copy and draws no RNG.
    if (aggregator != nullptr && jarvis->agent() != nullptr) {
      aggregator->PublishWeights(index, jarvis->agent()->network());
    }
  } catch (const std::exception& error) {
    // Quarantine, never tear down: the shard keeps its slot (and its
    // error) while the rest of the fleet proceeds.
    result.quarantined = true;
    result.error = error.what();
    util::MutexLock lock(mutex_);
    TenantShard& shard = shards_[index];
    shard.quarantined = true;
    shard.jarvis.reset();
  }
}

void Fleet::ForEachTenant(const std::function<void(std::size_t)>& fn) {
  const std::size_t count = tenant_count();
  if (config_.jobs <= 1) {
    // Sequential mode: no pool, no second thread — the determinism oracle
    // parallel runs are tested against.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(config_.jobs, config_.queue_capacity, &registry_);
  for (std::size_t i = 0; i < count; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  // Drain + join: establishes the happens-before edge that makes every
  // result slot safely readable below.
  pool.Shutdown();
}

FleetReport Fleet::Run(const WorkloadFactory& factory) {
  if (!factory) throw std::invalid_argument("Fleet::Run: null factory");
  FleetReport report;
  report.tenants.assign(tenant_count(), TenantResult{});
  // Each job writes only its own pre-allocated slot; no cross-tenant
  // synchronization beyond the pool join.
  ForEachTenant([this, &factory, &report](std::size_t i) {
    RunTenant(i, factory, report.tenants[i]);
  });

  for (const TenantResult& tenant : report.tenants) {
    if (tenant.removed) ++report.removed;
    if (tenant.quarantined) ++report.quarantined;
    if (!tenant.completed) continue;
    ++report.completed;
    if (tenant.warm_started) ++report.warm_started;
    if (tenant.health.degraded()) ++report.degraded;
    report.total_energy_kwh += tenant.plan.optimized_metrics.energy_kwh;
    report.total_cost_usd += tenant.plan.optimized_metrics.cost_usd;
    report.total_violations += tenant.plan.violations;
  }
  registry_.GetCounter("runtime.fleet.runs")->Increment();
  registry_.GetCounter("runtime.fleet.tenants_run")
      ->Increment(report.tenants.size());
  registry_.GetCounter("runtime.fleet.tenants_completed")
      ->Increment(report.completed);
  registry_.GetCounter("runtime.fleet.tenants_quarantined")
      ->Increment(report.quarantined);
  {
    util::MutexLock lock(mutex_);
    report_ = report;
  }
  return report;
}

FleetReport Fleet::report() const {
  util::MutexLock lock(mutex_);
  return report_;
}

std::size_t Fleet::tenant_count() const {
  util::MutexLock lock(mutex_);
  return shards_.size();
}

obs::MetricsSnapshot Fleet::TenantMetrics(std::size_t index) const {
  // Pin the pipeline under the lock, snapshot outside it: the tenant's
  // registry is internally synchronized, and the shared_ptr keeps the
  // object alive against a concurrent RemoveTenant / re-Run.
  std::shared_ptr<core::Jarvis> jarvis;
  {
    util::MutexLock lock(mutex_);
    if (index >= shards_.size()) {
      throw std::out_of_range("Fleet::TenantMetrics: no such tenant");
    }
    jarvis = shards_[index].jarvis;
  }
  if (jarvis == nullptr) {
    throw std::logic_error("Fleet::TenantMetrics: tenant has not run");
  }
  return jarvis->TakeMetricsSnapshot();
}

obs::MetricsSnapshot Fleet::AggregateTenantMetrics() const {
  std::vector<std::shared_ptr<core::Jarvis>> tenants;
  {
    util::MutexLock lock(mutex_);
    tenants.reserve(shards_.size());
    for (const TenantShard& shard : shards_) {
      if (shard.jarvis != nullptr) tenants.push_back(shard.jarvis);
    }
  }
  std::vector<obs::MetricsSnapshot> parts;
  parts.reserve(tenants.size());
  for (const auto& jarvis : tenants) {
    parts.push_back(jarvis->TakeMetricsSnapshot());
  }
  return obs::MetricsSnapshot::Merge(parts);
}

std::vector<fsm::ActionVector> Fleet::SuggestMinutes(
    std::size_t tenant, const fsm::StateVector& state,
    const std::vector<int>& minutes) const {
  // Pin the pipeline for the whole call: a concurrent RemoveTenant or
  // re-Run resets the shard slot but cannot destroy the object under us.
  std::shared_ptr<core::Jarvis> jarvis;
  util::Mutex* suggest_mutex = nullptr;
  std::shared_ptr<AggregationService> aggregator;
  {
    util::MutexLock lock(mutex_);
    if (tenant >= shards_.size()) {
      throw std::out_of_range("Fleet::SuggestMinutes: no such tenant");
    }
    jarvis = shards_[tenant].jarvis;
    suggest_mutex = shards_[tenant].suggest_mutex.get();
    aggregator = aggregator_;
  }
  if (jarvis == nullptr) {
    throw std::logic_error("Fleet::SuggestMinutes: tenant has not run");
  }
  const rl::DqnAgent* agent = jarvis->agent();
  const rl::IoTEnv* env = jarvis->policy_env();
  if (agent == nullptr || env == nullptr) {
    throw std::logic_error("Fleet::SuggestMinutes: tenant has no policy");
  }
  std::vector<std::vector<double>> features;
  std::vector<std::vector<bool>> masks;
  features.reserve(minutes.size());
  masks.reserve(minutes.size());
  for (int minute : minutes) {
    features.push_back(env->FeaturesFor(state, minute));
    masks.push_back(env->SafeSlotMaskFor(state, minute));
  }
  if (minutes.empty()) return {};

  std::vector<fsm::ActionVector> actions;
  actions.reserve(minutes.size());

  // Aggregated route: Q-rows from the cross-tenant funnel, computed on the
  // tenant's published weight version — an exact parameter copy, and
  // PredictBatch rows are row-independent, so the decoded actions are
  // bit-identical to the direct route below. A rejection (queue full,
  // shutdown, nothing published yet) falls through to the direct route.
  if (aggregator != nullptr && aggregator->weight_version(tenant) != 0) {
    std::optional<AggregatedResult> result =
        aggregator->Infer(tenant, features);
    if (result.has_value()) {
      for (std::size_t i = 0; i < minutes.size(); ++i) {
        actions.push_back(
            agent->GreedyActionFromQ(result->rows[i], masks[i]));
      }
      return actions;
    }
  }

  // Direct route: one batched forward through the tenant's live network,
  // serialized per tenant (one batcher per network is the documented safe
  // scope — concurrent callers for one tenant must not overlap here).
  util::MutexLock suggest_lock(*suggest_mutex);
  InferenceBatcher batcher(agent->network());
  for (std::vector<double>& row : features) {
    batcher.Enqueue(std::move(row));
  }
  batcher.Flush();
  for (std::size_t i = 0; i < minutes.size(); ++i) {
    actions.push_back(agent->GreedyActionFromQ(batcher.Result(i), masks[i]));
  }
  return actions;
}

void Fleet::EnableAggregation(AggregationConfig config) {
  auto service = std::make_shared<AggregationService>(config, &registry_);
  // Collect the publish set and swap the service in ONE critical section.
  // The old code collected, published, and only then swapped in a second
  // lock hold — a tenant finishing in the gap published to the old (or
  // null) service AND was missed by the collection, so it served stale (or
  // no) weights until its next run. Now a tenant job observes either the
  // old service (it is in `trained` below and gets published here) or the
  // new one (its job-end publish lands there itself); a tenant in both
  // sets publishes twice, which just mints two bit-identical versions.
  std::vector<std::pair<std::size_t, std::shared_ptr<core::Jarvis>>> trained;
  {
    util::MutexLock lock(mutex_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].jarvis != nullptr && !shards_[i].removed) {
        trained.emplace_back(i, shards_[i].jarvis);
      }
    }
    aggregator_ = service;
  }
  // Clone outside the lock — the snapshot walks every parameter. The
  // shared_ptr ownership tokens keep each pipeline alive across its clone
  // (a concurrent RemoveTenant or re-Run only resets the shard slot), and
  // stored pipelines are never mutated in place — a re-Run trains a fresh
  // pipeline on locals and swaps it in — so the source networks are
  // quiescent here.
  for (const auto& [index, jarvis] : trained) {
    if (jarvis->agent() != nullptr) {
      service->PublishWeights(index, jarvis->agent()->network());
    }
  }
}

std::shared_ptr<AggregationService> Fleet::aggregator() const {
  util::MutexLock lock(mutex_);
  return aggregator_;
}

const core::Jarvis* Fleet::tenant(std::size_t index) const {
  util::MutexLock lock(mutex_);
  if (index >= shards_.size()) return nullptr;
  return shards_[index].jarvis.get();
}

std::uint64_t Fleet::tenant_seed(std::size_t index) const {
  util::MutexLock lock(mutex_);
  if (index >= shards_.size()) {
    throw std::out_of_range("Fleet::tenant_seed");
  }
  return shards_[index].seed;
}

std::size_t Fleet::AddTenant() {
  util::MutexLock lock(mutex_);
  TenantShard shard;
  // Same derivation as construction: tenant i's seed is a pure function of
  // (fleet_seed, i) whether it joined at construction or dynamically.
  shard.seed = util::DeriveSeed(config_.fleet_seed,
                                static_cast<std::uint64_t>(shards_.size()));
  shard.suggest_mutex = std::make_unique<util::Mutex>();
  shards_.push_back(std::move(shard));
  return shards_.size() - 1;
}

std::size_t Fleet::AddTenant(const persist::Checkpoint& warm_start_template) {
  const std::size_t index = AddTenant();
  std::uint64_t seed = 0;
  {
    util::MutexLock lock(mutex_);
    seed = shards_[index].seed;
  }
  // Seed the new tenant's pipeline from the template home's learnt
  // policies. RestoreFrom never throws on corrupt/foreign content: a
  // rejected template degrades to a cold start whose health records the
  // failed sections, surfaced at the tenant's first Run.
  auto jarvis = std::make_unique<core::Jarvis>(
      home_, MakeTenantConfig(config_.tenant_config, seed));
  jarvis->RestoreFrom(warm_start_template);
  util::MutexLock lock(mutex_);
  shards_[index].warm_start = std::move(jarvis);
  return index;
}

void Fleet::RemoveTenant(std::size_t index) {
  util::MutexLock lock(mutex_);
  if (index >= shards_.size()) {
    throw std::out_of_range("Fleet::RemoveTenant: no such tenant");
  }
  TenantShard& shard = shards_[index];
  shard.removed = true;
  shard.jarvis.reset();
  shard.warm_start.reset();
}

std::string Fleet::TenantCheckpointPath(const std::string& dir,
                                        std::size_t tenant) {
  return dir + "/tenant-" + std::to_string(tenant) + ".ckpt";
}

FleetCheckpointReport Fleet::SaveCheckpoints(
    const std::string& dir, util::io::WriteInterceptor* interceptor) {
  util::io::CreateDirectories(dir);
  FleetCheckpointReport report;
  report.tenants.assign(tenant_count(), TenantCheckpointResult{});
  for (std::size_t i = 0; i < report.tenants.size(); ++i) {
    TenantCheckpointResult& result = report.tenants[i];
    result.tenant = i;
    // Pinned across the (retried) write: RemoveTenant mid-save only
    // tombstones the slot, it cannot free the pipeline being serialized.
    std::shared_ptr<const core::Jarvis> jarvis;
    std::uint64_t seed = 0;
    bool removed = false;
    {
      util::MutexLock lock(mutex_);
      const TenantShard& shard = shards_[i];
      jarvis = shard.jarvis;
      seed = shard.seed;
      removed = shard.removed;
    }
    if (removed || jarvis == nullptr) {
      ++report.skipped;
      continue;
    }
    result.attempted = true;
    // Per-tenant jitter stream: decorrelates the fleet's retries against a
    // shared failing store while keeping each tenant's backoff sequence a
    // pure function of the fleet seed.
    util::RetryPolicy policy = config_.checkpoint_retry;
    policy.jitter_seed = util::DeriveSeed(seed, kCheckpointStream);
    std::string error;
    const util::RetryResult retry = util::Retry(policy, [&] {
      try {
        jarvis->SaveCheckpoint(TenantCheckpointPath(dir, i), nullptr,
                               interceptor);
        return true;
      } catch (const util::io::IoError& io_error) {
        error = io_error.what();
        return false;
      }
    });
    result.write_attempts = retry.attempts;
    if (retry.succeeded) {
      result.succeeded = true;
      ++report.succeeded;
    } else {
      result.error = error;
      ++report.failed;
    }
  }
  return report;
}

FleetCheckpointReport Fleet::RestoreCheckpoints(const std::string& dir) {
  FleetCheckpointReport report;
  report.tenants.assign(tenant_count(), TenantCheckpointResult{});
  for (std::size_t i = 0; i < report.tenants.size(); ++i) {
    TenantCheckpointResult& result = report.tenants[i];
    result.tenant = i;
    std::uint64_t seed = 0;
    bool removed = false;
    {
      util::MutexLock lock(mutex_);
      seed = shards_[i].seed;
      removed = shards_[i].removed;
    }
    if (removed || !util::io::FileExists(TenantCheckpointPath(dir, i))) {
      ++report.skipped;
      continue;
    }
    result.attempted = true;
    auto jarvis = std::make_unique<core::Jarvis>(
        home_, MakeTenantConfig(config_.tenant_config, seed));
    result.restore = jarvis->LoadCheckpoint(TenantCheckpointPath(dir, i));
    if (result.restore.spl_restored) {
      result.succeeded = true;
      ++report.succeeded;
    } else {
      result.error = persist::FormatIssues(result.restore.issues);
      ++report.failed;
    }
    // Stage even on failure: the pipeline carries the failed-restore
    // health accounting, and its next Run cold-start learns.
    util::MutexLock lock(mutex_);
    shards_[i].warm_start = std::move(jarvis);
    shards_[i].quarantined = false;
  }
  return report;
}

}  // namespace jarvis::runtime
