// Coalesces mini-action Q-value queries into batched forward passes.
//
// The paper's factored Q-head (Section V-A-7) maps one observation row to
// one row of per-slot Q-values through dense layers only, so rows are
// mutually independent: a Tensor holding many tenants' feature rows runs
// the layer stack ONCE and yields, per row, bit-for-bit the values a
// per-row PredictOne would produce (neural::Network::PredictBatch
// documents the op-order argument; runtime_batcher_test pins it). That
// exact-equality invariant is what lets the fleet batch inference without
// perturbing any tenant's decisions — batching is a pure throughput
// optimization, invisible to determinism contracts.
//
// Scope: one batcher serves one network (one parameter set). Queries from
// different fleet tenants can share a forward only when the tenants share
// policy parameters (e.g. a fleet-wide warm-start policy); tenants with
// individually trained networks each get their own batch, which still
// collapses a day's worth of SuggestAction calls into one pass
// (Fleet::SuggestMinutes).
//
// Thread safety (DESIGN.md §13): thread-safe — one util::Mutex guards the
// ticket buffers AND the batched forward itself. Holding the lock across
// PredictBatchScratch is deliberate: the underlying Network routes const
// inference through mutable network-owned scratch (DESIGN.md §12), so the
// batcher's lock is what makes a shared network safe — provided ALL
// threads reach that network through this batcher (one batcher per
// network, the documented scope). This is the concurrency groundwork for
// cross-tenant batched inference on a shared warm-start policy (ROADMAP);
// today's fleet tenants each own their network and batcher.
#pragma once

#include <cstddef>
#include <vector>

#include "neural/network.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jarvis::runtime {

class InferenceBatcher {
 public:
  // `network` must outlive the batcher. Pending queries flush in chunks of
  // at most `max_batch_rows` (bounds the transient Tensor).
  explicit InferenceBatcher(const neural::Network& network,
                            std::size_t max_batch_rows = 256);

  // Queues one feature row (width must equal network.input_features()).
  // Returns the ticket to redeem with Result() after Flush().
  std::size_t Enqueue(std::vector<double> features) JARVIS_EXCLUDES(mutex_);

  // Runs every pending query through the network in batched forwards.
  // No-op when nothing is pending.
  void Flush() JARVIS_EXCLUDES(mutex_);

  // The Q-value row for a ticket (by value: a reference into the guarded
  // result buffer would dangle under Reset); the ticket must have been
  // flushed.
  std::vector<double> Result(std::size_t ticket) const
      JARVIS_EXCLUDES(mutex_);

  // Discards all tickets and results (start a fresh batching window).
  void Reset() JARVIS_EXCLUDES(mutex_);

  std::size_t pending() const JARVIS_EXCLUDES(mutex_);
  std::size_t ticket_count() const JARVIS_EXCLUDES(mutex_);
  // Forward passes actually run — the coalescing evidence a test or an
  // operator dashboard wants (queries answered per forward).
  std::size_t flush_batches() const JARVIS_EXCLUDES(mutex_);
  std::size_t rows_inferred() const JARVIS_EXCLUDES(mutex_);

 private:
  const neural::Network& network_;   // unguarded: accessed only under mutex_
  const std::size_t max_batch_rows_;  // unguarded: fixed at construction
  mutable util::Mutex mutex_;
  // Flush gather scratch, reused across flushes (capacity is bounded by
  // max_batch_rows_ x feature width).
  neural::Tensor batch_scratch_ JARVIS_GUARDED_BY(mutex_);
  std::vector<std::vector<double>> pending_ JARVIS_GUARDED_BY(mutex_);
  // Indexed by ticket.
  std::vector<std::vector<double>> results_ JARVIS_GUARDED_BY(mutex_);
  std::size_t flush_batches_ JARVIS_GUARDED_BY(mutex_) = 0;
  std::size_t rows_inferred_ JARVIS_GUARDED_BY(mutex_) = 0;
};

}  // namespace jarvis::runtime
