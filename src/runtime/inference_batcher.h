// Coalesces mini-action Q-value queries into batched forward passes.
//
// The paper's factored Q-head (Section V-A-7) maps one observation row to
// one row of per-slot Q-values through dense layers only, so rows are
// mutually independent: a Tensor holding many tenants' feature rows runs
// the layer stack ONCE and yields, per row, bit-for-bit the values a
// per-row PredictOne would produce (neural::Network::PredictBatch
// documents the op-order argument; runtime_batcher_test pins it). That
// exact-equality invariant is what lets the fleet batch inference without
// perturbing any tenant's decisions — batching is a pure throughput
// optimization, invisible to determinism contracts.
//
// Scope: one batcher serves one network (one parameter set). Queries from
// different fleet tenants can share a forward only when the tenants share
// policy parameters (e.g. a fleet-wide warm-start policy); tenants with
// individually trained networks each get their own batch, which still
// collapses a day's worth of SuggestAction calls into one pass
// (Fleet::SuggestMinutes).
//
// Thread safety: thread-compatible, not thread-safe — Enqueue/Flush mutate
// the pending buffer, and the underlying Network routes const inference
// through mutable network-owned scratch (DESIGN.md §12), so a Network must
// not be shared across threads either. One batcher per network per thread;
// fleet tenants each own their network, so this composes with the fleet's
// one-tenant-per-worker execution model.
#pragma once

#include <cstddef>
#include <vector>

#include "neural/network.h"

namespace jarvis::runtime {

class InferenceBatcher {
 public:
  // `network` must outlive the batcher. Pending queries flush in chunks of
  // at most `max_batch_rows` (bounds the transient Tensor).
  explicit InferenceBatcher(const neural::Network& network,
                            std::size_t max_batch_rows = 256);

  // Queues one feature row (width must equal network.input_features()).
  // Returns the ticket to redeem with Result() after Flush().
  std::size_t Enqueue(std::vector<double> features);

  // Runs every pending query through the network in batched forwards.
  // No-op when nothing is pending.
  void Flush();

  // The Q-value row for a ticket; the ticket must have been flushed.
  const std::vector<double>& Result(std::size_t ticket) const;

  // Discards all tickets and results (start a fresh batching window).
  void Reset();

  std::size_t pending() const { return pending_.size(); }
  std::size_t ticket_count() const { return results_.size() + pending_.size(); }
  // Forward passes actually run — the coalescing evidence a test or an
  // operator dashboard wants (queries answered per forward).
  std::size_t flush_batches() const { return flush_batches_; }
  std::size_t rows_inferred() const { return rows_inferred_; }

 private:
  const neural::Network& network_;
  std::size_t max_batch_rows_;
  // Flush gather scratch, reused across flushes (capacity is bounded by
  // max_batch_rows_ x feature width).
  neural::Tensor batch_scratch_;
  std::vector<std::vector<double>> pending_;
  std::vector<std::vector<double>> results_;  // indexed by ticket
  std::size_t flush_batches_ = 0;
  std::size_t rows_inferred_ = 0;
};

}  // namespace jarvis::runtime
