// Coalesces mini-action Q-value queries into batched forward passes.
//
// The paper's factored Q-head (Section V-A-7) maps one observation row to
// one row of per-slot Q-values through dense layers only, so rows are
// mutually independent: a Tensor holding many tenants' feature rows runs
// the layer stack ONCE and yields, per row, bit-for-bit the values a
// per-row PredictOne would produce (neural::Network::PredictBatch
// documents the op-order argument; runtime_batcher_test pins it). That
// exact-equality invariant is what lets the fleet batch inference without
// perturbing any tenant's decisions — batching is a pure throughput
// optimization, invisible to determinism contracts.
//
// Scope: one batcher serves one network (one parameter set). Cross-tenant
// coalescing — queries from tenants with DIFFERENT parameters sharing a
// GEMM budget — is the AggregationService's job (it groups by weight
// version and runs one batcher-shaped drain per version); this class stays
// the single-network building block Fleet::SuggestMinutes uses per call.
//
// Thread safety (DESIGN.md §13): thread-safe, with the lock scoped to the
// ticket-buffer handoff. Two locks with distinct jobs:
//   * `mutex_` guards the pending/result buffers and counters. It is held
//     only for queue/scatter bookkeeping — never across a forward — so
//     Enqueue and Result on one batcher stay wait-free relative to an
//     in-flight Flush, and two batchers (two tenants) overlap fully.
//   * `flush_mutex_` serializes the flush section: the gather scratch and
//     the network's mutable inference scratch (DESIGN.md §12). Only Flush
//     acquires it; it is what makes a shared network safe — provided ALL
//     threads reach that network through this batcher (one batcher per
//     network, the documented scope).
// Lock order: flush_mutex_ before mutex_.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "neural/network.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jarvis::runtime {

class InferenceBatcher {
 public:
  // `network` must outlive the batcher. Pending queries flush in chunks of
  // at most `max_batch_rows` (bounds the transient Tensor).
  explicit InferenceBatcher(const neural::Network& network,
                            std::size_t max_batch_rows = 256);

  // Queues one feature row (width must equal network.input_features()).
  // Returns the ticket to redeem with Result() after Flush(). Never blocks
  // on an in-flight Flush.
  std::size_t Enqueue(std::vector<double> features) JARVIS_EXCLUDES(mutex_);

  // Runs every pending query through the network in batched forwards.
  // No-op when nothing is pending. Rows enqueued while a Flush is in
  // flight belong to the NEXT flush window.
  void Flush() JARVIS_EXCLUDES(mutex_);

  // The Q-value row for a ticket (by value: a reference into the guarded
  // result buffer would dangle under Reset); the ticket must have been
  // flushed (std::logic_error otherwise, including mid-flight tickets).
  std::vector<double> Result(std::size_t ticket) const
      JARVIS_EXCLUDES(mutex_);

  // Discards all tickets and results (start a fresh batching window). An
  // in-flight Flush's results are discarded too — its window is gone.
  void Reset() JARVIS_EXCLUDES(mutex_);

  // Test-only seam: invoked by Flush after the handoff (pending rows
  // taken, locks released) and before the forwards. Lets a test park a
  // flush mid-section deterministically to prove Enqueue/Result — and
  // other batchers — are not serialized behind the GEMMs.
  void SetFlushHook(std::function<void()> hook) JARVIS_EXCLUDES(mutex_);

  std::size_t pending() const JARVIS_EXCLUDES(mutex_);
  std::size_t ticket_count() const JARVIS_EXCLUDES(mutex_);
  // Forward passes actually run — the coalescing evidence a test or an
  // operator dashboard wants (queries answered per forward).
  std::size_t flush_batches() const JARVIS_EXCLUDES(mutex_);
  std::size_t rows_inferred() const JARVIS_EXCLUDES(mutex_);

 private:
  const neural::Network& network_;   // unguarded: const topology/params API;
                                     // inference scratch under flush_mutex_
  const std::size_t max_batch_rows_;  // unguarded: fixed at construction

  mutable util::Mutex mutex_;
  std::vector<std::vector<double>> pending_ JARVIS_GUARDED_BY(mutex_);
  // Indexed by ticket. A flush pre-reserves its slots at handoff (so
  // concurrent Enqueues keep minting correct tickets) and fills them at
  // deposit; completed_ marks which slots are redeemable.
  std::vector<std::vector<double>> results_ JARVIS_GUARDED_BY(mutex_);
  std::vector<char> completed_ JARVIS_GUARDED_BY(mutex_);
  // Bumped by Reset so an in-flight flush knows its window was discarded
  // and must not deposit into the new one.
  std::uint64_t generation_ JARVIS_GUARDED_BY(mutex_) = 0;
  std::function<void()> flush_hook_ JARVIS_GUARDED_BY(mutex_);
  std::size_t flush_batches_ JARVIS_GUARDED_BY(mutex_) = 0;
  std::size_t rows_inferred_ JARVIS_GUARDED_BY(mutex_) = 0;

  // Serializes the flush section (gather scratch + network inference
  // scratch). See the header comment; lock order: before mutex_.
  mutable util::Mutex flush_mutex_;
  neural::Tensor batch_scratch_ JARVIS_GUARDED_BY(flush_mutex_);
};

}  // namespace jarvis::runtime
