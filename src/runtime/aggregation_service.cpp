#include "runtime/aggregation_service.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace jarvis::runtime {

namespace {

std::int64_t ElapsedUs(std::chrono::steady_clock::time_point since,
                       std::chrono::steady_clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::microseconds>(now - since)
      .count();
}

}  // namespace

AggregationService::AggregationService(AggregationConfig config,
                                       obs::Registry* registry)
    : config_(config) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("AggregationService: max_batch must be >= 1");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument(
        "AggregationService: queue_capacity must be >= 1");
  }
  if (config_.deadline_us < 0) {
    throw std::invalid_argument(
        "AggregationService: deadline_us must be >= 0");
  }
  if (config_.autotune) {
    if (config_.autotune_min_batch == 0 ||
        config_.autotune_min_batch > config_.autotune_max_batch) {
      throw std::invalid_argument(
          "AggregationService: need 1 <= autotune_min_batch <= "
          "autotune_max_batch");
    }
    if (config_.autotune_window == 0) {
      throw std::invalid_argument(
          "AggregationService: autotune_window must be >= 1");
    }
  }
  {
    util::MutexLock lock(mutex_);
    effective_max_batch_ = config_.max_batch;
    if (config_.autotune) {
      effective_max_batch_ =
          std::clamp(effective_max_batch_, config_.autotune_min_batch,
                     config_.autotune_max_batch);
    }
    stats_.current_max_batch = effective_max_batch_;
  }
  if (registry != nullptr) {
    batch_rows_hist_ =
        registry->GetHistogram("runtime.agg.batch_rows",
                               obs::DefaultBatchSizeBounds(),
                               obs::Determinism::kTiming);
    queue_wait_us_ = registry->GetTimerUs("runtime.agg.queue_wait_us");
    flush_reason_counters_[static_cast<int>(FlushReason::kMaxBatch)] =
        registry->GetCounter("runtime.agg.flush_max_batch",
                             obs::Determinism::kTiming);
    flush_reason_counters_[static_cast<int>(FlushReason::kDeadline)] =
        registry->GetCounter("runtime.agg.flush_deadline",
                             obs::Determinism::kTiming);
    flush_reason_counters_[static_cast<int>(FlushReason::kShutdown)] =
        registry->GetCounter("runtime.agg.flush_shutdown",
                             obs::Determinism::kTiming);
    flush_reason_counters_[static_cast<int>(FlushReason::kManual)] =
        registry->GetCounter("runtime.agg.flush_manual",
                             obs::Determinism::kTiming);
    rejected_counter_ =
        registry->GetCounter("runtime.agg.rejected", obs::Determinism::kTiming);
    publishes_counter_ = registry->GetCounter("runtime.agg.publishes",
                                              obs::Determinism::kTiming);
    staleness_gauge_ = registry->GetGauge("runtime.agg.staleness_us",
                                          obs::Determinism::kTiming);
    max_batch_gauge_ = registry->GetGauge("runtime.agg.max_batch",
                                          obs::Determinism::kTiming);
    max_batch_gauge_->Set(static_cast<double>(config_.max_batch));
  }
  if (!config_.manual) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

AggregationService::~AggregationService() { Shutdown(); }

std::uint64_t AggregationService::PublishWeights(
    std::size_t tenant, const neural::Network& network) {
  // Clone on the caller's thread (the tenant's trainer owns the source
  // network), then swap the pointer under the lock. In-flight queries keep
  // their pinned version alive through the shared_ptr.
  auto snapshot = std::make_shared<WeightVersion>();
  snapshot->tenant = tenant;
  snapshot->network = network.CloneForInference();
  snapshot->published_at = std::chrono::steady_clock::now();
  if (publishes_counter_ != nullptr) publishes_counter_->Increment();
  util::MutexLock lock(mutex_);
  const std::uint64_t version = ++next_version_;
  snapshot->version = version;
  versions_[tenant] = std::move(snapshot);
  ++stats_.weights_published;
  return version;
}

void AggregationService::SetTenantPriority(std::size_t tenant, int priority) {
  util::MutexLock lock(mutex_);
  priorities_[tenant] = priority;
}

void AggregationService::SetDrainHook(DrainHook hook) {
  util::MutexLock lock(mutex_);
  drain_hook_ = std::move(hook);
}

std::uint64_t AggregationService::weight_version(std::size_t tenant) const {
  util::MutexLock lock(mutex_);
  auto it = versions_.find(tenant);
  return it == versions_.end() ? 0 : it->second->version;
}

std::optional<std::uint64_t> AggregationService::Submit(
    std::size_t tenant, std::vector<std::vector<double>> rows) {
  if (rows.empty()) {
    throw std::invalid_argument("AggregationService::Submit: no rows");
  }
  std::uint64_t ticket = 0;
  bool drain_inline = false;
  {
    util::MutexLock lock(mutex_);
    ++stats_.submitted_queries;
    if (shutdown_) {
      ++stats_.rejected_queries;
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      return std::nullopt;
    }
    auto it = versions_.find(tenant);
    if (it == versions_.end()) {
      ++stats_.rejected_queries;
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      return std::nullopt;
    }
    const std::size_t width = it->second->network->input_features();
    for (const std::vector<double>& row : rows) {
      if (row.size() != width) {
        // Contract violation, not traffic — undo the attempt count so the
        // conservation law stays exact.
        --stats_.submitted_queries;
        throw std::invalid_argument(
            "AggregationService::Submit: feature width mismatch");
      }
    }
    if (queue_rows_ + rows.size() > config_.queue_capacity) {
      ++stats_.rejected_queries;
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      return std::nullopt;
    }
    ticket = next_ticket_++;
    PendingQuery query;
    query.ticket = ticket;
    query.tenant = tenant;
    query.version = it->second;
    query.rows = std::move(rows);
    query.enqueued = std::chrono::steady_clock::now();
    queue_rows_ += query.rows.size();
    stats_.submitted_rows += query.rows.size();
    queue_.push_back(std::move(query));
    outstanding_.insert(ticket);
    // Opportunistic inline drain: the submitter that completes a max_batch
    // cohort runs the drain itself instead of waking the flusher — two
    // context switches saved per cohort, which is most of the funnel's
    // overhead under load. The flusher still covers deadline/straggler
    // flushes (drains are idempotent, so racing one is harmless).
    drain_inline = !config_.manual && queue_rows_ >= effective_max_batch_;
    if (!drain_inline) queue_cv_.Signal();
  }
  if (drain_inline) DrainPending(FlushReason::kMaxBatch);
  return ticket;
}

AggregatedResult AggregationService::Wait(std::uint64_t ticket) {
  util::MutexLock lock(mutex_);
  if (results_.find(ticket) == results_.end() &&
      outstanding_.find(ticket) == outstanding_.end()) {
    throw std::logic_error(
        "AggregationService::Wait: unknown or already-consumed ticket");
  }
  result_cv_.Wait(mutex_,
                  [&] { return results_.find(ticket) != results_.end(); });
  auto node = results_.extract(ticket);
  return std::move(node.mapped());
}

std::optional<AggregatedResult> AggregationService::Infer(
    std::size_t tenant, std::vector<std::vector<double>> rows) {
  const std::optional<std::uint64_t> ticket = Submit(tenant, std::move(rows));
  if (!ticket.has_value()) return std::nullopt;
  return Wait(*ticket);
}

void AggregationService::FlushNow() { DrainPending(FlushReason::kManual); }

void AggregationService::Shutdown() {
  {
    util::MutexLock lock(mutex_);
    shutdown_ = true;
    queue_cv_.SignalAll();
  }
  if (flusher_.joinable()) flusher_.join();
  // Manual mode (or a Shutdown racing the flusher's exit): drain whatever
  // is still queued so every accepted query gets its answer.
  DrainPending(FlushReason::kShutdown);
}

AggregationStats AggregationService::stats() const {
  util::MutexLock lock(mutex_);
  AggregationStats snapshot = stats_;
  snapshot.current_max_batch = effective_max_batch_;
  return snapshot;
}

std::int64_t AggregationService::OldestAgeUsLocked() const {
  return ElapsedUs(queue_.front().enqueued, std::chrono::steady_clock::now());
}

void AggregationService::FlusherLoop() {
  for (;;) {
    FlushReason reason = FlushReason::kDeadline;
    bool exit_after_drain = false;
    {
      util::MutexLock lock(mutex_);
      for (;;) {
        if (shutdown_) {
          reason = FlushReason::kShutdown;
          exit_after_drain = true;
          break;
        }
        if (queue_rows_ >= effective_max_batch_) {
          reason = FlushReason::kMaxBatch;
          break;
        }
        if (!queue_.empty()) {
          const std::int64_t age = OldestAgeUsLocked();
          if (age >= config_.deadline_us) {
            reason = FlushReason::kDeadline;
            break;
          }
          queue_cv_.WaitFor(mutex_, config_.deadline_us - age);
        } else {
          queue_cv_.Wait(mutex_);
        }
      }
    }
    DrainPending(reason);
    if (exit_after_drain) return;
  }
}

void AggregationService::DrainPending(FlushReason reason) {
  // Lock order: flush_mutex_ first, mutex_ second (and never mutex_ held
  // across a forward — producers keep submitting during the GEMMs).
  util::MutexLock flush_lock(flush_mutex_);
  std::vector<PendingQuery> taken;
  std::size_t max_batch = 0;
  DrainHook hook;
  std::unordered_map<std::size_t, int> priorities;
  {
    util::MutexLock lock(mutex_);
    if (queue_.empty()) return;
    taken.swap(queue_);
    queue_rows_ = 0;
    max_batch = effective_max_batch_;
    hook = drain_hook_;
    if (config_.fairness == DrainFairness::kRoundRobin) {
      priorities = priorities_;
    }
    // Counted when the drain claims its cohort, not when it finishes:
    // answers become visible chunk by chunk below, and a waiter that
    // observes its answer must also observe its drain's reason tally.
    switch (reason) {
      case FlushReason::kMaxBatch:
        ++stats_.flushes_max_batch;
        break;
      case FlushReason::kDeadline:
        ++stats_.flushes_deadline;
        break;
      case FlushReason::kShutdown:
        ++stats_.flushes_shutdown;
        break;
      case FlushReason::kManual:
        ++stats_.flushes_manual;
        break;
    }
  }
  if (flush_reason_counters_[static_cast<int>(reason)] != nullptr) {
    flush_reason_counters_[static_cast<int>(reason)]->Increment();
  }

  // Group rows by pinned weight version, preserving submission order.
  // (query index, row index) pairs flatten each group for chunking.
  struct Group {
    const WeightVersion* version = nullptr;
    std::vector<std::pair<std::size_t, std::size_t>> cells;
  };
  std::map<std::uint64_t, Group> groups;
  std::vector<AggregatedResult> answers(taken.size());
  // Rows of each query still awaiting a GEMM; a query's answer is
  // deposited the moment this hits zero, so an early chunk's waiters
  // unblock while later chunks still compute.
  std::vector<std::size_t> remaining(taken.size(), 0);
  for (std::size_t q = 0; q < taken.size(); ++q) {
    const PendingQuery& query = taken[q];
    Group& group = groups[query.version->version];
    group.version = query.version.get();
    for (std::size_t r = 0; r < query.rows.size(); ++r) {
      group.cells.emplace_back(q, r);
    }
    answers[q].version = query.version->version;
    answers[q].rows.resize(query.rows.size());
    remaining[q] = query.rows.size();
  }

  // Policy staleness: the oldest weight version this drain answers on.
  // Published per drain (last-write-wins gauge) — the serving-side
  // evidence that streaming republish keeps answers fresh.
  if (staleness_gauge_ != nullptr) {
    const auto drain_start = std::chrono::steady_clock::now();
    std::int64_t oldest_us = 0;
    for (const auto& [version, group] : groups) {
      oldest_us = std::max(
          oldest_us, ElapsedUs(group.version->published_at, drain_start));
    }
    staleness_gauge_->Set(static_cast<double>(oldest_us));
  }

  // Chunk plan: each version group splits into ≤ max_batch chunks. Within
  // a tenant, versions are monotonic and pinned at submit, so the
  // version-ascending group walk is also that tenant's submission order.
  struct Chunk {
    const Group* group = nullptr;
    std::size_t offset = 0;
    std::size_t rows = 0;
  };
  std::vector<Chunk> ordered;
  if (config_.fairness == DrainFairness::kRoundRobin) {
    // Per-tenant chunk lists keyed by (-priority, tenant): round-robin
    // rounds walk this map, so higher priority runs earlier in each round
    // and ties break on tenant index. Within a tenant the list stays
    // version-ascending (the groups walk above).
    std::map<std::pair<long long, std::size_t>, std::vector<Chunk>>
        per_tenant;
    for (auto& [version, group] : groups) {
      const std::size_t tenant = group.version->tenant;
      long long priority = 0;
      if (auto it = priorities.find(tenant); it != priorities.end()) {
        priority = it->second;
      }
      auto& list = per_tenant[{-priority, tenant}];
      std::size_t offset = 0;
      while (offset < group.cells.size()) {
        const std::size_t rows =
            std::min(max_batch, group.cells.size() - offset);
        list.push_back(Chunk{&group, offset, rows});
        offset += rows;
      }
    }
    for (std::size_t round = 0;; ++round) {
      bool any = false;
      for (auto& [key, list] : per_tenant) {
        if (round < list.size()) {
          ordered.push_back(list[round]);
          any = true;
        }
      }
      if (!any) break;
    }
  } else {
    // kFifo: version-ascending (publish order) across the whole cohort, a
    // tenant's chunks contiguous — the pre-fairness behavior, exactly.
    for (auto& [version, group] : groups) {
      std::size_t offset = 0;
      while (offset < group.cells.size()) {
        const std::size_t rows =
            std::min(max_batch, group.cells.size() - offset);
        ordered.push_back(Chunk{&group, offset, rows});
        offset += rows;
      }
    }
  }

  std::vector<std::size_t> completed;  // query indices finished per chunk
  for (const Chunk& chunk : ordered) {
    const Group& group = *chunk.group;
    const neural::Network* network = group.version->network.get();
    const std::size_t width = network->input_features();
    gather_.Resize(chunk.rows, width);
    for (std::size_t r = 0; r < chunk.rows; ++r) {
      const auto& [q, qr] = group.cells[chunk.offset + r];
      gather_.SetRow(r, taken[q].rows[qr]);
    }
    const neural::Tensor& out = network->PredictBatchScratch(gather_);
    completed.clear();
    for (std::size_t r = 0; r < chunk.rows; ++r) {
      const auto& [q, qr] = group.cells[chunk.offset + r];
      answers[q].rows[qr] = out.RowVector(r);
      if (--remaining[q] == 0) completed.push_back(q);
    }
    if (batch_rows_hist_ != nullptr) {
      batch_rows_hist_->Observe(static_cast<double>(chunk.rows));
    }
    ++window_chunks_;
    if (chunk.rows >= max_batch) ++window_full_chunks_;
    window_max_rows_ = std::max(window_max_rows_, chunk.rows);
    if (hook) hook(group.version->tenant, chunk.rows);
    {
      // Deposit this chunk's completed queries and the GEMM it ran in one
      // critical section: a waiter that sees its answer must also see the
      // stats of every GEMM that contributed to it.
      const auto now = std::chrono::steady_clock::now();
      util::MutexLock lock(mutex_);
      for (const std::size_t q : completed) {
        if (queue_wait_us_ != nullptr) {
          queue_wait_us_->Observe(
              static_cast<double>(ElapsedUs(taken[q].enqueued, now)));
        }
        outstanding_.erase(taken[q].ticket);
        results_.emplace(taken[q].ticket, std::move(answers[q]));
      }
      stats_.answered_queries += completed.size();
      ++stats_.gemm_batches;
      stats_.rows_inferred += chunk.rows;
      stats_.max_gemm_rows =
          std::max<std::uint64_t>(stats_.max_gemm_rows, chunk.rows);
      if (!completed.empty()) result_cv_.SignalAll();
    }
  }

  // Autotuner: decide once per window from the chunk-row distribution the
  // loop just recorded. A saturated window (half the chunks full) doubles
  // the threshold — the queue refills faster than it drains and bigger
  // GEMMs amortize better; a window whose largest chunk used at most a
  // quarter of the threshold halves it — waiting for a batch that never
  // arrives only adds deadline latency. Clamped to the configured bounds.
  if (config_.autotune && window_chunks_ >= config_.autotune_window) {
    std::size_t tuned = max_batch;
    if (window_full_chunks_ * 2 >= window_chunks_) {
      tuned = std::min(max_batch * 2, config_.autotune_max_batch);
    } else if (window_max_rows_ * 4 <= max_batch) {
      tuned = std::max(max_batch / 2, config_.autotune_min_batch);
    }
    window_chunks_ = 0;
    window_full_chunks_ = 0;
    window_max_rows_ = 0;
    if (tuned != max_batch) {
      util::MutexLock lock(mutex_);
      effective_max_batch_ = tuned;
      if (tuned > max_batch) {
        ++stats_.autotune_raises;
      } else {
        ++stats_.autotune_lowers;
      }
      if (max_batch_gauge_ != nullptr) {
        max_batch_gauge_->Set(static_cast<double>(tuned));
      }
    }
  }

  result_cv_.SignalAll();
}

}  // namespace jarvis::runtime
