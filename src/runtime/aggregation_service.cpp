#include "runtime/aggregation_service.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace jarvis::runtime {

namespace {

std::int64_t ElapsedUs(std::chrono::steady_clock::time_point since,
                       std::chrono::steady_clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::microseconds>(now - since)
      .count();
}

}  // namespace

AggregationService::AggregationService(AggregationConfig config,
                                       obs::Registry* registry)
    : config_(config) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("AggregationService: max_batch must be >= 1");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument(
        "AggregationService: queue_capacity must be >= 1");
  }
  if (config_.deadline_us < 0) {
    throw std::invalid_argument(
        "AggregationService: deadline_us must be >= 0");
  }
  if (registry != nullptr) {
    batch_rows_hist_ =
        registry->GetHistogram("runtime.agg.batch_rows",
                               obs::DefaultBatchSizeBounds(),
                               obs::Determinism::kTiming);
    queue_wait_us_ = registry->GetTimerUs("runtime.agg.queue_wait_us");
    flush_reason_counters_[static_cast<int>(FlushReason::kMaxBatch)] =
        registry->GetCounter("runtime.agg.flush_max_batch",
                             obs::Determinism::kTiming);
    flush_reason_counters_[static_cast<int>(FlushReason::kDeadline)] =
        registry->GetCounter("runtime.agg.flush_deadline",
                             obs::Determinism::kTiming);
    flush_reason_counters_[static_cast<int>(FlushReason::kShutdown)] =
        registry->GetCounter("runtime.agg.flush_shutdown",
                             obs::Determinism::kTiming);
    flush_reason_counters_[static_cast<int>(FlushReason::kManual)] =
        registry->GetCounter("runtime.agg.flush_manual",
                             obs::Determinism::kTiming);
    rejected_counter_ =
        registry->GetCounter("runtime.agg.rejected", obs::Determinism::kTiming);
  }
  if (!config_.manual) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

AggregationService::~AggregationService() { Shutdown(); }

std::uint64_t AggregationService::PublishWeights(
    std::size_t tenant, const neural::Network& network) {
  // Clone on the caller's thread (the tenant's trainer owns the source
  // network), then swap the pointer under the lock. In-flight queries keep
  // their pinned version alive through the shared_ptr.
  auto snapshot = std::make_shared<WeightVersion>();
  snapshot->network = network.CloneForInference();
  util::MutexLock lock(mutex_);
  const std::uint64_t version = ++next_version_;
  snapshot->version = version;
  versions_[tenant] = std::move(snapshot);
  return version;
}

std::uint64_t AggregationService::weight_version(std::size_t tenant) const {
  util::MutexLock lock(mutex_);
  auto it = versions_.find(tenant);
  return it == versions_.end() ? 0 : it->second->version;
}

std::optional<std::uint64_t> AggregationService::Submit(
    std::size_t tenant, std::vector<std::vector<double>> rows) {
  if (rows.empty()) {
    throw std::invalid_argument("AggregationService::Submit: no rows");
  }
  std::uint64_t ticket = 0;
  bool drain_inline = false;
  {
    util::MutexLock lock(mutex_);
    ++stats_.submitted_queries;
    if (shutdown_) {
      ++stats_.rejected_queries;
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      return std::nullopt;
    }
    auto it = versions_.find(tenant);
    if (it == versions_.end()) {
      ++stats_.rejected_queries;
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      return std::nullopt;
    }
    const std::size_t width = it->second->network->input_features();
    for (const std::vector<double>& row : rows) {
      if (row.size() != width) {
        // Contract violation, not traffic — undo the attempt count so the
        // conservation law stays exact.
        --stats_.submitted_queries;
        throw std::invalid_argument(
            "AggregationService::Submit: feature width mismatch");
      }
    }
    if (queue_rows_ + rows.size() > config_.queue_capacity) {
      ++stats_.rejected_queries;
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      return std::nullopt;
    }
    ticket = next_ticket_++;
    PendingQuery query;
    query.ticket = ticket;
    query.version = it->second;
    query.rows = std::move(rows);
    query.enqueued = std::chrono::steady_clock::now();
    queue_rows_ += query.rows.size();
    stats_.submitted_rows += query.rows.size();
    queue_.push_back(std::move(query));
    outstanding_.insert(ticket);
    // Opportunistic inline drain: the submitter that completes a max_batch
    // cohort runs the drain itself instead of waking the flusher — two
    // context switches saved per cohort, which is most of the funnel's
    // overhead under load. The flusher still covers deadline/straggler
    // flushes (drains are idempotent, so racing one is harmless).
    drain_inline = !config_.manual && queue_rows_ >= config_.max_batch;
    if (!drain_inline) queue_cv_.Signal();
  }
  if (drain_inline) DrainPending(FlushReason::kMaxBatch);
  return ticket;
}

AggregatedResult AggregationService::Wait(std::uint64_t ticket) {
  util::MutexLock lock(mutex_);
  if (results_.find(ticket) == results_.end() &&
      outstanding_.find(ticket) == outstanding_.end()) {
    throw std::logic_error(
        "AggregationService::Wait: unknown or already-consumed ticket");
  }
  result_cv_.Wait(mutex_,
                  [&] { return results_.find(ticket) != results_.end(); });
  auto node = results_.extract(ticket);
  return std::move(node.mapped());
}

std::optional<AggregatedResult> AggregationService::Infer(
    std::size_t tenant, std::vector<std::vector<double>> rows) {
  const std::optional<std::uint64_t> ticket = Submit(tenant, std::move(rows));
  if (!ticket.has_value()) return std::nullopt;
  return Wait(*ticket);
}

void AggregationService::FlushNow() { DrainPending(FlushReason::kManual); }

void AggregationService::Shutdown() {
  {
    util::MutexLock lock(mutex_);
    shutdown_ = true;
    queue_cv_.SignalAll();
  }
  if (flusher_.joinable()) flusher_.join();
  // Manual mode (or a Shutdown racing the flusher's exit): drain whatever
  // is still queued so every accepted query gets its answer.
  DrainPending(FlushReason::kShutdown);
}

AggregationStats AggregationService::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

std::int64_t AggregationService::OldestAgeUsLocked() const {
  return ElapsedUs(queue_.front().enqueued, std::chrono::steady_clock::now());
}

void AggregationService::FlusherLoop() {
  for (;;) {
    FlushReason reason = FlushReason::kDeadline;
    bool exit_after_drain = false;
    {
      util::MutexLock lock(mutex_);
      for (;;) {
        if (shutdown_) {
          reason = FlushReason::kShutdown;
          exit_after_drain = true;
          break;
        }
        if (queue_rows_ >= config_.max_batch) {
          reason = FlushReason::kMaxBatch;
          break;
        }
        if (!queue_.empty()) {
          const std::int64_t age = OldestAgeUsLocked();
          if (age >= config_.deadline_us) {
            reason = FlushReason::kDeadline;
            break;
          }
          queue_cv_.WaitFor(mutex_, config_.deadline_us - age);
        } else {
          queue_cv_.Wait(mutex_);
        }
      }
    }
    DrainPending(reason);
    if (exit_after_drain) return;
  }
}

void AggregationService::DrainPending(FlushReason reason) {
  // Lock order: flush_mutex_ first, mutex_ second (and never mutex_ held
  // across a forward — producers keep submitting during the GEMMs).
  util::MutexLock flush_lock(flush_mutex_);
  std::vector<PendingQuery> taken;
  {
    util::MutexLock lock(mutex_);
    if (queue_.empty()) return;
    taken.swap(queue_);
    queue_rows_ = 0;
  }

  // Group rows by pinned weight version, preserving submission order.
  // (query index, row index) pairs flatten each group for chunking.
  struct Group {
    const neural::Network* network = nullptr;
    std::vector<std::pair<std::size_t, std::size_t>> cells;
  };
  std::map<std::uint64_t, Group> groups;
  std::vector<AggregatedResult> answers(taken.size());
  for (std::size_t q = 0; q < taken.size(); ++q) {
    const PendingQuery& query = taken[q];
    Group& group = groups[query.version->version];
    group.network = query.version->network.get();
    for (std::size_t r = 0; r < query.rows.size(); ++r) {
      group.cells.emplace_back(q, r);
    }
    answers[q].version = query.version->version;
    answers[q].rows.resize(query.rows.size());
  }

  std::uint64_t gemm_batches = 0;
  std::uint64_t rows_inferred = 0;
  std::uint64_t max_gemm_rows = 0;
  for (auto& [version, group] : groups) {
    const std::size_t width = group.network->input_features();
    std::size_t offset = 0;
    while (offset < group.cells.size()) {
      const std::size_t rows =
          std::min(config_.max_batch, group.cells.size() - offset);
      gather_.Resize(rows, width);
      for (std::size_t r = 0; r < rows; ++r) {
        const auto& [q, qr] = group.cells[offset + r];
        gather_.SetRow(r, taken[q].rows[qr]);
      }
      const neural::Tensor& out = group.network->PredictBatchScratch(gather_);
      for (std::size_t r = 0; r < rows; ++r) {
        const auto& [q, qr] = group.cells[offset + r];
        answers[q].rows[qr] = out.RowVector(r);
      }
      ++gemm_batches;
      rows_inferred += rows;
      max_gemm_rows = std::max<std::uint64_t>(max_gemm_rows, rows);
      if (batch_rows_hist_ != nullptr) {
        batch_rows_hist_->Observe(static_cast<double>(rows));
      }
      offset += rows;
    }
  }

  const auto now = std::chrono::steady_clock::now();
  {
    util::MutexLock lock(mutex_);
    for (std::size_t q = 0; q < taken.size(); ++q) {
      if (queue_wait_us_ != nullptr) {
        queue_wait_us_->Observe(
            static_cast<double>(ElapsedUs(taken[q].enqueued, now)));
      }
      outstanding_.erase(taken[q].ticket);
      results_.emplace(taken[q].ticket, std::move(answers[q]));
    }
    stats_.answered_queries += taken.size();
    stats_.gemm_batches += gemm_batches;
    stats_.rows_inferred += rows_inferred;
    stats_.max_gemm_rows = std::max(stats_.max_gemm_rows, max_gemm_rows);
    switch (reason) {
      case FlushReason::kMaxBatch:
        ++stats_.flushes_max_batch;
        break;
      case FlushReason::kDeadline:
        ++stats_.flushes_deadline;
        break;
      case FlushReason::kShutdown:
        ++stats_.flushes_shutdown;
        break;
      case FlushReason::kManual:
        ++stats_.flushes_manual;
        break;
    }
  }
  if (flush_reason_counters_[static_cast<int>(reason)] != nullptr) {
    flush_reason_counters_[static_cast<int>(reason)]->Increment();
  }
  result_cv_.SignalAll();
}

}  // namespace jarvis::runtime
