// Cross-tenant inference aggregation: the fleet-level serving funnel that
// coalesces Q-value queries from MANY tenants into large PredictBatch GEMMs
// (ROADMAP item 1; the "millions of users on shared hardware" lever).
// BENCH_kernels shows forward throughput nearly doubling from batch 1 to
// batch 8+, but each tenant's own InferenceBatcher only ever sees that
// tenant's tiny batches — this service is where those batches merge.
//
// Architecture (DESIGN.md §16):
//   * MPSC submission queue. Producers call Submit() with one or more
//     feature rows and get back a ticket; Wait(ticket) blocks until a flush
//     answers it (Infer() is the synchronous pair). Submit rejects —
//     never blocks, never drops silently — when the queue is at capacity
//     or the service is shut down, so `submitted == answered + rejected`
//     holds as an exact conservation law.
//   * Double-buffered per-tenant weight versions. Training publishes a
//     snapshot via PublishWeights(), which clones the network's parameters
//     (Network::CloneForInference — bit-exact) into an immutable,
//     reference-counted version. Publishing swaps the tenant's current
//     pointer; queries pin the version AT SUBMIT TIME, so a query never
//     sees mixed versions even if training publishes mid-flight, and
//     training mutates only its own live network, never a serving snapshot.
//   * Deadline-based flush. The queue drains when pending rows reach
//     `max_batch` or the oldest query's age reaches `deadline_us`,
//     whichever first (deadline 0 = drain whenever rows are pending:
//     adaptive batching under load). The submitter that completes a
//     max_batch cohort drains inline — the combining optimization that
//     saves the flusher-thread roundtrip per cohort; the dedicated
//     flusher thread covers deadline and straggler flushes. Shutdown
//     drains everything queued, answering every accepted query exactly
//     once.
//   * Row→tenant scatter. A drain groups rows by weight version, runs one
//     PredictBatchScratch per ≤ max_batch chunk, and scatters result rows
//     back to their tickets.
//   * Fairness-aware drain order. Under kRoundRobin (the default) the
//     chunks of one drain interleave across tenants in priority rounds and
//     each query is answered the moment its last row computes, so a chatty
//     tenant's backlog cannot starve other tenants' queries behind its
//     GEMMs. Per-tenant chunking is unchanged — only cross-tenant order
//     and answer timing move (see DrainFairness).
//   * Batch-size autotuner (opt-in). The flush threshold follows the
//     observed chunk-row distribution — the same numbers the
//     runtime.agg.batch_rows histogram records: saturated windows double
//     it, near-empty windows halve it, clamped to the configured bounds.
//   * Streaming republish support. PublishWeights is cheap enough to call
//     per training episode (clone + pointer swap); the service counts
//     publishes (runtime.agg.publishes) and exports a policy-staleness
//     gauge (runtime.agg.staleness_us: age of the oldest weight version a
//     drain answered on), the evidence that online learning is actually
//     reaching the serving path.
//
// Exactness argument: PredictBatch rows are row-independent (same op order
// per row for any batch size — the runtime_batcher_test pin), and a
// published version holds exact parameter copies, so an aggregated answer
// is bit-identical to PredictOne on the source network at publish time.
// Aggregation is a pure throughput optimization, invisible to the jobs=1
// sequential oracle (runtime_aggregator_test pins this end to end).
//
// Thread safety (DESIGN.md §13): fully thread-safe. `mutex_` guards the
// queue, ticket results, version table, and counters; it is NEVER held
// across a forward pass. `flush_mutex_` serializes the drain section
// (gather scratch + the published networks' inference scratch) between the
// flusher thread and FlushNow() callers; producers never touch it. Lock
// order: flush_mutex_ before mutex_.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "neural/network.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jarvis::runtime {

// Order of the per-GEMM chunks inside one drain cohort.
//   * kFifo: version-ascending (publish order) — the pre-fairness
//     behavior; a tenant with many pending rows runs all of its chunks
//     before the next tenant's.
//   * kRoundRobin: chunks are interleaved across tenants in rounds
//     (priority-descending, then tenant-index order inside a round), and
//     each query's answer is deposited as soon as its last row computes —
//     so one chatty tenant's backlog cannot starve the other tenants'
//     single-row queries past the deadline. Within one tenant, chunks stay
//     version-ascending, so coalescing arithmetic (GEMM count, rows per
//     GEMM) is identical to kFifo; only cross-tenant chunk order and
//     answer-availability timing change.
enum class DrainFairness { kFifo, kRoundRobin };

struct AggregationConfig {
  // Flush as soon as this many rows are pending (also the per-GEMM chunk
  // bound, like InferenceBatcher's max_batch_rows). When the autotuner is
  // on this is only the starting point — see autotune below.
  std::size_t max_batch = 256;
  // Flush when the oldest pending query has waited this long. 0 = drain
  // whenever rows are pending (adaptive batching: the batch is whatever
  // accumulated during the previous drain).
  std::int64_t deadline_us = 200;
  // Row capacity of the submission queue; Submit() rejects past it.
  std::size_t queue_capacity = 4096;
  // Test mode: no flusher thread; drains happen only via FlushNow(). Lets
  // tests pin flush arithmetic and version cutover without timing races.
  bool manual = false;
  // Cross-tenant chunk ordering inside a drain (see DrainFairness).
  DrainFairness fairness = DrainFairness::kRoundRobin;
  // Batch-size autotuner, driven by the same per-chunk row counts the
  // runtime.agg.batch_rows histogram records. Every `autotune_window`
  // chunks: if at least half the window's chunks filled the current
  // max_batch, double it (the queue is saturating — bigger GEMMs amortize
  // better); if even the window's largest chunk used at most a quarter of
  // it, halve (smaller flush threshold = lower latency at no coalescing
  // loss). Off by default: tuning moves the flush threshold, which is
  // scheduling-visible, and the pinned-arithmetic tests want the fixed
  // bound.
  bool autotune = false;
  std::size_t autotune_min_batch = 8;
  std::size_t autotune_max_batch = 1024;
  std::size_t autotune_window = 32;
};

// Why a drain ran (each drain increments exactly one reason counter).
enum class FlushReason { kMaxBatch, kDeadline, kShutdown, kManual };

// The answer to one submitted query: one Q-row per submitted feature row,
// plus the weight version that produced them (a query is answered entirely
// by the version pinned at submit time — never a mix).
struct AggregatedResult {
  std::uint64_t version = 0;
  std::vector<std::vector<double>> rows;
};

// Monotonic counters, snapshotted atomically. Conservation law (pinned
// under TSan): after Shutdown, submitted_queries == answered_queries +
// rejected_queries.
struct AggregationStats {
  std::uint64_t submitted_queries = 0;
  std::uint64_t submitted_rows = 0;
  std::uint64_t answered_queries = 0;
  std::uint64_t rejected_queries = 0;
  std::uint64_t flushes_max_batch = 0;
  std::uint64_t flushes_deadline = 0;
  std::uint64_t flushes_shutdown = 0;
  std::uint64_t flushes_manual = 0;
  // GEMMs actually run and their row counts — the coalescing evidence
  // (max_gemm_rows > 1 means cross-query batching happened).
  std::uint64_t gemm_batches = 0;
  std::uint64_t rows_inferred = 0;
  std::uint64_t max_gemm_rows = 0;
  // PublishWeights calls accepted (completion publishes + streaming
  // republishes alike — every call mints a version).
  std::uint64_t weights_published = 0;
  // Autotuner decisions and the flush threshold currently in force
  // (== config.max_batch when the autotuner is off or undecided).
  std::uint64_t autotune_raises = 0;
  std::uint64_t autotune_lowers = 0;
  std::uint64_t current_max_batch = 0;
};

class AggregationService {
 public:
  // A non-null `registry` wires runtime.agg.* instruments (batch-size
  // histogram, flush-reason counters, queue-wait timer) — all kTiming:
  // batch composition is scheduling-shaped.
  explicit AggregationService(AggregationConfig config,
                              obs::Registry* registry = nullptr);
  // Joins the flusher after draining; equivalent to Shutdown().
  ~AggregationService();
  AggregationService(const AggregationService&) = delete;
  AggregationService& operator=(const AggregationService&) = delete;

  // Publishes an immutable, bit-exact parameter snapshot of `network` as
  // tenant's new current version; returns the assigned (globally
  // monotonic) version number. Queries already submitted keep the version
  // they pinned; only later submissions see the new one. Callable while
  // the service answers queries (the snapshot is cloned from `network` on
  // the calling thread — the caller must own `network`, i.e. be the
  // tenant's training thread or hold its pipeline quiescent).
  std::uint64_t PublishWeights(std::size_t tenant,
                               const neural::Network& network)
      JARVIS_EXCLUDES(mutex_);

  // Current version number for a tenant (0 = nothing published).
  std::uint64_t weight_version(std::size_t tenant) const
      JARVIS_EXCLUDES(mutex_);

  // Queues one query of one or more feature rows (width must match the
  // tenant's published network). Returns the ticket to redeem with Wait(),
  // or nullopt — counted rejected — when the tenant has no published
  // version, the queue is full, or the service is shut down. Never blocks
  // on capacity. Throws std::invalid_argument on empty/misshapen rows
  // (contract violation, not traffic: neither answered nor rejected).
  std::optional<std::uint64_t> Submit(std::size_t tenant,
                                      std::vector<std::vector<double>> rows)
      JARVIS_EXCLUDES(mutex_);

  // Blocks until the ticket's flush completes and consumes the answer
  // (one-shot: a second Wait on the same ticket throws std::logic_error,
  // as does a ticket Submit never returned). In manual mode nothing
  // flushes until FlushNow(), so order Wait after it.
  AggregatedResult Wait(std::uint64_t ticket) JARVIS_EXCLUDES(mutex_);

  // Submit + Wait. nullopt when the submission was rejected.
  std::optional<AggregatedResult> Infer(std::size_t tenant,
                                        std::vector<std::vector<double>> rows)
      JARVIS_EXCLUDES(mutex_);

  // Synchronously drains everything pending (reason kManual). The manual-
  // mode driver; harmless concurrently with the flusher thread.
  void FlushNow() JARVIS_EXCLUDES(mutex_);

  // Drains every queued query (each answered exactly once), then rejects
  // new submissions. Idempotent; answered tickets stay redeemable.
  void Shutdown() JARVIS_EXCLUDES(mutex_);

  AggregationStats stats() const JARVIS_EXCLUDES(mutex_);
  const AggregationConfig& config() const { return config_; }

  // Drain-order weight for kRoundRobin fairness: higher-priority tenants'
  // chunks run earlier in each round (default 0; ties break on tenant
  // index). Takes effect from the next drain. No-op under kFifo.
  void SetTenantPriority(std::size_t tenant, int priority)
      JARVIS_EXCLUDES(mutex_);

  // Test seam: invoked once per GEMM chunk, in drain order, with the
  // chunk's tenant and row count — lets tests pin the fairness interleave
  // without depending on wall-clock timing. Runs inside the drain section
  // (flush_mutex_ held, mutex_ not); must not call back into the service.
  using DrainHook = std::function<void(std::size_t tenant, std::size_t rows)>;
  void SetDrainHook(DrainHook hook) JARVIS_EXCLUDES(mutex_);

 private:
  // One published snapshot. Immutable after construction except for the
  // network's inference scratch, which only the drain section touches
  // (serialized by flush_mutex_).
  struct WeightVersion {
    std::uint64_t version = 0;
    std::size_t tenant = 0;
    // When this version was published — the minuend of the staleness
    // gauge: a drain answering on this version is serving a policy
    // (now - published_at) old.
    std::chrono::steady_clock::time_point published_at;
    std::unique_ptr<const neural::Network> network;
  };

  struct PendingQuery {
    std::uint64_t ticket = 0;
    std::size_t tenant = 0;
    std::shared_ptr<const WeightVersion> version;  // pinned at submit
    std::vector<std::vector<double>> rows;
    std::chrono::steady_clock::time_point enqueued;
  };

  void FlusherLoop() JARVIS_EXCLUDES(mutex_);
  // Takes everything pending, runs the grouped/chunked forwards, deposits
  // answers, signals waiters. No-op (no counter bump) when nothing pends.
  void DrainPending(FlushReason reason) JARVIS_EXCLUDES(mutex_);
  // Age of the oldest pending query, in microseconds.
  std::int64_t OldestAgeUsLocked() const JARVIS_REQUIRES(mutex_);

  const AggregationConfig config_;  // unguarded: fixed at construction

  mutable util::Mutex mutex_;
  util::CondVar queue_cv_;   // flusher wakeups (submissions, shutdown)
  util::CondVar result_cv_;  // ticket completion
  std::vector<PendingQuery> queue_ JARVIS_GUARDED_BY(mutex_);
  std::size_t queue_rows_ JARVIS_GUARDED_BY(mutex_) = 0;
  // Tickets accepted but not yet answered (queued or mid-drain); lets Wait
  // distinguish "in flight" from "never issued / already consumed".
  std::unordered_set<std::uint64_t> outstanding_ JARVIS_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, AggregatedResult> results_
      JARVIS_GUARDED_BY(mutex_);
  std::unordered_map<std::size_t, std::shared_ptr<const WeightVersion>>
      versions_ JARVIS_GUARDED_BY(mutex_);
  std::uint64_t next_ticket_ JARVIS_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_version_ JARVIS_GUARDED_BY(mutex_) = 0;
  bool shutdown_ JARVIS_GUARDED_BY(mutex_) = false;
  AggregationStats stats_ JARVIS_GUARDED_BY(mutex_);
  // Flush threshold currently in force: config_.max_batch until the
  // autotuner moves it (always within [autotune_min_batch,
  // autotune_max_batch]). Read by Submit's inline-drain check, the
  // flusher's wakeup predicate, and the drain's chunking.
  std::size_t effective_max_batch_ JARVIS_GUARDED_BY(mutex_) = 0;
  // kRoundRobin drain-order weights (absent = 0).
  std::unordered_map<std::size_t, int> priorities_ JARVIS_GUARDED_BY(mutex_);
  DrainHook drain_hook_ JARVIS_GUARDED_BY(mutex_);

  // Serializes the drain section (gather scratch + published networks'
  // inference scratch) between the flusher and FlushNow callers.
  util::Mutex flush_mutex_;
  neural::Tensor gather_ JARVIS_GUARDED_BY(flush_mutex_);
  // Autotuner window accumulators — per-chunk row counts since the last
  // decision. Only the drain section (flush_mutex_) observes chunks.
  std::size_t window_chunks_ JARVIS_GUARDED_BY(flush_mutex_) = 0;
  std::size_t window_full_chunks_ JARVIS_GUARDED_BY(flush_mutex_) = 0;
  std::size_t window_max_rows_ JARVIS_GUARDED_BY(flush_mutex_) = 0;

  // Instrument pointers wired once in the constructor; the instruments are
  // internally synchronized atomics. Null when no registry.
  obs::Histogram* batch_rows_hist_ = nullptr;  // unguarded: wired in ctor
  obs::Histogram* queue_wait_us_ = nullptr;    // unguarded: wired in ctor
  obs::Counter* flush_reason_counters_[4] = {};  // unguarded: wired in ctor
  obs::Counter* rejected_counter_ = nullptr;     // unguarded: wired in ctor
  obs::Counter* publishes_counter_ = nullptr;    // unguarded: wired in ctor
  obs::Gauge* staleness_gauge_ = nullptr;        // unguarded: wired in ctor
  obs::Gauge* max_batch_gauge_ = nullptr;        // unguarded: wired in ctor

  // Started last (after every field it reads), joined by Shutdown.
  std::thread flusher_;  // unguarded: started in ctor, joined in Shutdown
};

}  // namespace jarvis::runtime
