// Multi-tenant fleet runtime: N independent smart homes, each running its
// own core::Jarvis learn→optimize pipeline, scheduled across a
// runtime::ThreadPool. The paper frames Jarvis as one agent per
// environment (Section III-A), which is exactly the shape that shards: a
// tenant owns every piece of mutable state its pipeline touches and shares
// only the const fsm::EnvironmentFsm device model, so tenant jobs are
// embarrassingly parallel.
//
// Determinism contract (pinned by runtime_fleet_test):
//   * Every tenant's seed derives from the fleet seed via
//     util::DeriveSeed(fleet_seed, tenant_index) — never from scheduling.
//   * A tenant's whole pipeline runs inside one task on one worker; shards
//     never exchange data mid-run.
//   * Therefore per-tenant results are identical for ANY worker count, and
//     `jobs = 1` (run inline on the calling thread, no pool) is the
//     sequential oracle the parallel runs must reproduce bit-for-bit.
//
// Failure containment: a tenant whose pipeline throws is quarantined — its
// error is recorded in its TenantResult slot and it is skipped by later
// phases — and the fleet keeps serving the other tenants. A tenant failure
// must never tear down the process (ThreadPool's exception backstop
// guarantees that even for non-std::exception throwables).
//
// Thread safety (DESIGN.md §13): one fleet-level util::Mutex guards the
// shard table and the last report; tenant jobs touch their shard only at
// job start (read seed/quarantine flag) and job end (store the trained
// pipeline), so the lock never serializes the pipelines themselves.
// Accessors (report(), tenant_seed(), TenantMetrics(), SuggestMinutes())
// are safe to call concurrently with Run — report() used to hand out a
// reference into state Run was concurrently reassigning, a latent race the
// annotation pass surfaced; it now snapshots by value under the lock.
// Accessors that use a tenant's trained pipeline (SuggestMinutes,
// TenantMetrics, SaveCheckpoints, the end-of-run weight publish) pin it
// with a shared_ptr for the duration of the call, so a concurrent
// RemoveTenant or re-Run cannot destroy it under them. Caveat: tenant()
// still returns a raw pointer whose object the NEXT Run of that tenant
// replaces — don't hold it across a re-run.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/jarvis.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "persist/checkpoint.h"
#include "runtime/aggregation_service.h"
#include "runtime/thread_pool.h"
#include "util/io.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/thread_annotations.h"

namespace jarvis::runtime {

struct FleetConfig {
  std::size_t tenants = 1;
  // Worker threads for tenant jobs. 1 = sequential mode: jobs run inline
  // on the calling thread with no pool — the determinism oracle.
  std::size_t jobs = 1;
  // Root seed; tenant i's pipeline seeds derive from
  // DeriveSeed(fleet_seed, i).
  std::uint64_t fleet_seed = 1;
  // Per-tenant config template. The seed fields (spl.seed, dqn.seed, seed)
  // are overridden per tenant from the derived tenant seed; everything
  // else applies verbatim to every tenant.
  core::JarvisConfig tenant_config;
  // Backpressure bound on the scheduler queue.
  std::size_t queue_capacity = 256;
  // Retry policy for per-tenant checkpoint writes (SaveCheckpoints):
  // storage faults are often transient, and the jitter fields decorrelate
  // many tenants retrying against one failing store. Each tenant's jitter
  // stream is seeded from its tenant seed, so retry timing stays a pure
  // function of the fleet seed.
  util::RetryPolicy checkpoint_retry{};
};

// Everything one tenant's learn+optimize job consumes. Produced per tenant
// by a WorkloadFactory — deterministically from (tenant_index,
// tenant_seed), never from shared mutable state.
struct TenantWorkload {
  std::vector<events::Event> events;  // learning-phase device log
  fsm::StateVector initial_state;
  util::SimTime start{0};
  std::vector<sim::LabeledSample> labeled;  // ANN training set TD
  // The day to optimize (placeholder episode until the factory fills it;
  // fsm::Episode has no default constructor).
  sim::DayTrace day{{}, fsm::Episode{{1, 1}, util::SimTime(0), {0}}, {}, {},
                    {}};
  rl::RewardWeights weights;
};

// Must be safe to call concurrently for DISTINCT tenant indices (it runs
// inside the tenant's job). Throwing quarantines the tenant.
using WorkloadFactory =
    std::function<TenantWorkload(std::size_t tenant_index,
                                 std::uint64_t tenant_seed)>;

// Canned factory: simulates each tenant's home with a ResidentSimulator
// seeded from the tenant seed — `learning_days` of natural behavior for
// the learning phase plus one more day to optimize. This is what the CLI
// and bench run; tests inject custom factories.
struct SimulatedWorkloadOptions {
  int learning_days = 3;
  std::size_t benign_anomaly_samples = 500;
  rl::RewardWeights weights;
};
WorkloadFactory SimulatedWorkloadFactory(const fsm::EnvironmentFsm& home,
                                         SimulatedWorkloadOptions options);

// Outcome of one tenant's pipeline. Slot i of FleetReport::tenants is
// tenant i regardless of completion order.
struct TenantResult {
  std::size_t tenant = 0;
  std::uint64_t seed = 0;
  bool completed = false;
  bool quarantined = false;
  bool removed = false;  // tombstoned by RemoveTenant; skipped, not failed
  // This run reused restored policies (checkpoint restore or warm-start
  // template) instead of re-running the learning phase.
  bool warm_started = false;
  std::string error;  // what quarantined it
  std::size_t learning_episodes = 0;
  core::DayPlan plan;
  core::HealthReport health;
};

struct FleetReport {
  std::vector<TenantResult> tenants;
  std::size_t completed = 0;
  std::size_t quarantined = 0;
  std::size_t removed = 0;
  std::size_t warm_started = 0;
  std::size_t degraded = 0;  // completed tenants whose health degraded()
  // Aggregates over completed tenants (optimized day).
  double total_energy_kwh = 0.0;
  double total_cost_usd = 0.0;
  std::size_t total_violations = 0;
};

// Outcome of one tenant's checkpoint save or restore.
struct TenantCheckpointResult {
  std::size_t tenant = 0;
  bool attempted = false;  // false: no pipeline to save / no file / removed
  bool succeeded = false;
  int write_attempts = 0;  // save: tries the retry loop spent (0 if skipped)
  std::string error;
  core::Jarvis::RestoreReport restore;  // restore only
};

struct FleetCheckpointReport {
  std::vector<TenantCheckpointResult> tenants;
  std::size_t succeeded = 0;
  std::size_t failed = 0;   // attempted but not succeeded
  std::size_t skipped = 0;  // nothing to do for this tenant
};

class Fleet {
 public:
  // `home` is the shared const device model; it must outlive the fleet.
  Fleet(const fsm::EnvironmentFsm& home, FleetConfig config);

  // Runs LearnFromEvents + OptimizeDay for every tenant (workloads from
  // `factory`) across the pool and aggregates. Each tenant's trained
  // pipeline is retained for SuggestMinutes / tenant(). Calling Run again
  // re-runs every non-quarantined tenant. A tenant holding restored (or
  // warm-start template) policies skips LearnFromEvents and goes straight
  // to OptimizeDay (TenantResult::warm_started).
  FleetReport Run(const WorkloadFactory& factory) JARVIS_EXCLUDES(mutex_);

  // --- Tenant lifecycle ---------------------------------------------------

  // Adds a tenant (index-stable: existing tenants keep their indices and
  // seeds; the new tenant's pipeline seeds derive from
  // DeriveSeed(fleet_seed, new_index) like any other). Returns the new
  // index. The warm-start overload seeds the tenant from a serialized
  // "template home" checkpoint — e.g. one saved by an established tenant
  // of the same home model — so its first Run skips the learning phase;
  // a checkpoint that fails validation degrades to a cold start (the
  // restore report is folded into the tenant's health at its next Run).
  std::size_t AddTenant() JARVIS_EXCLUDES(mutex_);
  std::size_t AddTenant(const persist::Checkpoint& warm_start_template)
      JARVIS_EXCLUDES(mutex_);

  // Tombstones a tenant: it is skipped by Run and checkpointing, its
  // accessors behave as never-run, and its index is never reused (throws
  // std::out_of_range for an unknown index). Idempotent.
  void RemoveTenant(std::size_t index) JARVIS_EXCLUDES(mutex_);

  // --- Checkpoint lifecycle -----------------------------------------------

  // Writes one checkpoint per completed tenant into `dir`
  // (tenant-<i>.ckpt), each through the atomic write path under the
  // config's retry policy (per-tenant seeded jitter). The interceptor seam
  // injects storage faults in chaos tests. Tenants without a run pipeline
  // are skipped.
  FleetCheckpointReport SaveCheckpoints(
      const std::string& dir,
      util::io::WriteInterceptor* interceptor = nullptr)
      JARVIS_EXCLUDES(mutex_);

  // Restores per-tenant state from `dir`: each tenant with a readable,
  // valid checkpoint gets a freshly constructed pipeline loaded from it
  // and marked for warm start at its next Run. Corrupt/missing files are
  // reported per tenant (never thrown) and leave that tenant cold.
  FleetCheckpointReport RestoreCheckpoints(const std::string& dir)
      JARVIS_EXCLUDES(mutex_);

  // tenant-<i>.ckpt under `dir`.
  static std::string TenantCheckpointPath(const std::string& dir,
                                          std::size_t tenant);

  // Batched deployment-mode suggestion: greedy actions for one tenant at
  // each queried minute. Bit-identical to calling Jarvis::SuggestAction
  // per minute, by either route:
  //   * Aggregated (EnableAggregation called and the tenant has a
  //     published weight version): the Q-rows come from the cross-tenant
  //     AggregationService, so concurrent callers — same tenant or not —
  //     coalesce into shared GEMMs. If the service rejects (queue full,
  //     shut down), the call falls back to the direct route below, so
  //     serving never fails on backpressure.
  //   * Direct: a single batched forward through the tenant's own network
  //     (InferenceBatcher), serialized per tenant by the shard's suggest
  //     mutex — the lock that makes concurrent SuggestMinutes calls safe
  //     (one batcher per network is the documented safe scope).
  // Thread-safe either way; callers need no external locking.
  std::vector<fsm::ActionVector> SuggestMinutes(
      std::size_t tenant, const fsm::StateVector& state,
      const std::vector<int>& minutes) const JARVIS_EXCLUDES(mutex_);

  // --- Cross-tenant inference aggregation ---------------------------------

  // Attaches (or replaces) the fleet-level AggregationService and
  // publishes a weight version for every tenant that has a trained
  // pipeline; tenants publish automatically at the end of each later Run,
  // and — when tenant_config.trainer.republish is enabled — stream
  // mid-run snapshots through it at the policy's cadence, so calling this
  // BEFORE Run puts serving traffic on a policy at most N episodes old
  // while training is still in flight. From this point SuggestMinutes
  // routes through the aggregator. Safe concurrently with Run: the swap
  // and the publish set are decided in one critical section, so a tenant
  // finishing during the call publishes to the new service rather than
  // falling into a gap (a tenant may publish twice — two bit-identical
  // versions — which is harmless). A replace mid-traffic loses the old
  // service's stats; in-flight callers keep the old service alive.
  void EnableAggregation(AggregationConfig config) JARVIS_EXCLUDES(mutex_);

  // The attached service (null before EnableAggregation) — for stats and
  // tests. Shared ownership: the returned pointer stays valid across a
  // later EnableAggregation (which detaches the old service but cannot
  // destroy it under a holder — the re-enable-while-serving fix; a raw
  // pointer here was a use-after-free for any caller that cached it).
  std::shared_ptr<AggregationService> aggregator() const
      JARVIS_EXCLUDES(mutex_);

  // The tenant's facade (null for out-of-range), e.g. for audits. Stable
  // until that tenant's next Run (see the re-run caveat above).
  const core::Jarvis* tenant(std::size_t index) const JARVIS_EXCLUDES(mutex_);
  std::size_t tenant_count() const JARVIS_EXCLUDES(mutex_);
  std::uint64_t tenant_seed(std::size_t index) const JARVIS_EXCLUDES(mutex_);
  const FleetConfig& config() const { return config_; }
  // Snapshot of the last Run()'s report (empty before the first Run).
  FleetReport report() const JARVIS_EXCLUDES(mutex_);

  // --- Observability ------------------------------------------------------
  //
  // Two metric scopes, deliberately separate:
  //   * Fleet-level (this registry): runtime.fleet.* run counters plus the
  //     runtime.pool.* instruments of the scheduling pool. Mostly kTiming
  //     or scheduling-shaped — never compared across worker counts.
  //   * Tenant-level: each tenant Jarvis owns its OWN registry (wired when
  //     tenant_config.metrics_enabled), so per-tenant metrics are a pure
  //     function of the tenant seed and identical for any `jobs` — the
  //     deterministic snapshots the fleet parity tests compare.

  obs::Registry& Metrics() { return registry_; }
  obs::MetricsSnapshot TakeMetricsSnapshot() const {
    return registry_.TakeSnapshot();
  }
  // Snapshot of tenant `index`'s own registry (throws std::logic_error for
  // a tenant that has not completed a run).
  obs::MetricsSnapshot TenantMetrics(std::size_t index) const
      JARVIS_EXCLUDES(mutex_);
  // Element-wise sum of every completed tenant's snapshot — the fleet-wide
  // pipeline totals (events parsed, violations filtered, DQN steps, ...).
  obs::MetricsSnapshot AggregateTenantMetrics() const JARVIS_EXCLUDES(mutex_);
  // Per-tenant span trees recorded during Run ("tenant.N" roots with
  // workload/learn/optimize children); draining returns them sorted.
  std::vector<obs::SpanRecord> FlushSpans() { return tracer_.Flush(); }

 private:
  struct TenantShard {
    std::uint64_t seed = 0;
    // Shared, not unique: accessors (SuggestMinutes, TenantMetrics,
    // checkpoint saves) and the end-of-run publish pin the pipeline with
    // their own reference, so a concurrent RemoveTenant / re-Run resets
    // this slot without pulling the object out from under them.
    std::shared_ptr<core::Jarvis> jarvis;
    // Pipeline holding restored/template policies, staged by
    // RestoreCheckpoints or AddTenant(warm_start_template); consumed
    // (moved out) by the tenant's next Run.
    std::unique_ptr<core::Jarvis> warm_start;
    // Serializes this tenant's direct (non-aggregated) SuggestMinutes
    // inference — the per-tenant lock that used to live in the serve
    // Dispatcher, now owned where the batcher is built. Heap-allocated so
    // the shard stays movable (AddTenant grows the table).
    std::unique_ptr<util::Mutex> suggest_mutex;
    bool quarantined = false;
    bool removed = false;  // tombstone: skipped everywhere, index preserved
  };

  void RunTenant(std::size_t index, const WorkloadFactory& factory,
                 TenantResult& result) JARVIS_EXCLUDES(mutex_);
  // Schedules fn(i) for every tenant: inline when jobs <= 1, else across a
  // pool. Returns once all jobs finished.
  void ForEachTenant(const std::function<void(std::size_t)>& fn)
      JARVIS_EXCLUDES(mutex_);

  const fsm::EnvironmentFsm& home_;   // unguarded: shared const device model
  const FleetConfig config_;          // unguarded: fixed at construction
  // Declared before the shards so tenants (which never reference these —
  // they own their registries) and any cached instrument pointers die
  // first on destruction.
  obs::Registry registry_;  // unguarded: internally synchronized
  obs::Tracer tracer_;      // unguarded: internally synchronized
  mutable util::Mutex mutex_;
  // Shard table shape is fixed at construction; elements are written only
  // by their own tenant's job (start/end, under the lock).
  std::vector<TenantShard> shards_ JARVIS_GUARDED_BY(mutex_);
  FleetReport report_ JARVIS_GUARDED_BY(mutex_);
  // Cross-tenant inference funnel (null until EnableAggregation). Shared
  // so an in-flight SuggestMinutes outlives a concurrent replace.
  std::shared_ptr<AggregationService> aggregator_ JARVIS_GUARDED_BY(mutex_);
};

}  // namespace jarvis::runtime
