#include "runtime/inference_batcher.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace jarvis::runtime {

InferenceBatcher::InferenceBatcher(const neural::Network& network,
                                   std::size_t max_batch_rows)
    : network_(network),
      max_batch_rows_(std::max<std::size_t>(1, max_batch_rows)) {}

std::size_t InferenceBatcher::Enqueue(std::vector<double> features) {
  if (features.size() != network_.input_features()) {
    throw std::invalid_argument("InferenceBatcher::Enqueue: feature width");
  }
  util::MutexLock lock(mutex_);
  pending_.push_back(std::move(features));
  return results_.size() + pending_.size() - 1;
}

void InferenceBatcher::Flush() {
  // The lock is held across the forwards on purpose — it is what
  // serializes access to the network's mutable inference scratch (see the
  // header's thread-safety note).
  util::MutexLock lock(mutex_);
  std::size_t offset = 0;
  while (offset < pending_.size()) {
    const std::size_t rows =
        std::min(max_batch_rows_, pending_.size() - offset);
    batch_scratch_.Resize(rows, network_.input_features());
    for (std::size_t r = 0; r < rows; ++r) {
      batch_scratch_.SetRow(r, pending_[offset + r]);
    }
    const neural::Tensor& out = network_.PredictBatchScratch(batch_scratch_);
    for (std::size_t r = 0; r < rows; ++r) {
      results_.push_back(out.RowVector(r));
    }
    ++flush_batches_;
    rows_inferred_ += rows;
    offset += rows;
  }
  pending_.clear();
}

std::vector<double> InferenceBatcher::Result(std::size_t ticket) const {
  util::MutexLock lock(mutex_);
  if (ticket >= results_.size()) {
    throw std::logic_error(
        "InferenceBatcher::Result: ticket not flushed (call Flush() first)");
  }
  return results_[ticket];
}

void InferenceBatcher::Reset() {
  util::MutexLock lock(mutex_);
  pending_.clear();
  results_.clear();
}

std::size_t InferenceBatcher::pending() const {
  util::MutexLock lock(mutex_);
  return pending_.size();
}

std::size_t InferenceBatcher::ticket_count() const {
  util::MutexLock lock(mutex_);
  return results_.size() + pending_.size();
}

std::size_t InferenceBatcher::flush_batches() const {
  util::MutexLock lock(mutex_);
  return flush_batches_;
}

std::size_t InferenceBatcher::rows_inferred() const {
  util::MutexLock lock(mutex_);
  return rows_inferred_;
}

}  // namespace jarvis::runtime
