#include "runtime/inference_batcher.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace jarvis::runtime {

InferenceBatcher::InferenceBatcher(const neural::Network& network,
                                   std::size_t max_batch_rows)
    : network_(network),
      max_batch_rows_(std::max<std::size_t>(1, max_batch_rows)) {}

std::size_t InferenceBatcher::Enqueue(std::vector<double> features) {
  if (features.size() != network_.input_features()) {
    throw std::invalid_argument("InferenceBatcher::Enqueue: feature width");
  }
  util::MutexLock lock(mutex_);
  pending_.push_back(std::move(features));
  // results_ already counts any in-flight flush's reserved slots, so this
  // stays a dense 0-based ticket sequence even mid-flush.
  return results_.size() + pending_.size() - 1;
}

void InferenceBatcher::Flush() {
  // flush_mutex_ serializes the forwards (gather scratch + the network's
  // inference scratch); mutex_ is scoped to the two handoffs so Enqueue
  // and Result never block behind a GEMM.
  util::MutexLock flush_lock(flush_mutex_);
  std::vector<std::vector<double>> rows;
  std::size_t base = 0;
  std::uint64_t generation = 0;
  std::function<void()> hook;
  {
    util::MutexLock lock(mutex_);
    if (pending_.empty()) return;
    rows.swap(pending_);
    base = results_.size();
    results_.resize(base + rows.size());
    completed_.resize(base + rows.size(), 0);
    generation = generation_;
    hook = flush_hook_;
  }
  if (hook) hook();

  std::vector<std::vector<double>> outputs(rows.size());
  std::size_t batches = 0;
  std::size_t offset = 0;
  while (offset < rows.size()) {
    const std::size_t count = std::min(max_batch_rows_, rows.size() - offset);
    batch_scratch_.Resize(count, network_.input_features());
    for (std::size_t r = 0; r < count; ++r) {
      batch_scratch_.SetRow(r, rows[offset + r]);
    }
    const neural::Tensor& out = network_.PredictBatchScratch(batch_scratch_);
    for (std::size_t r = 0; r < count; ++r) {
      outputs[offset + r] = out.RowVector(r);
    }
    ++batches;
    offset += count;
  }

  util::MutexLock lock(mutex_);
  if (generation != generation_) return;  // Reset discarded this window
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    results_[base + i] = std::move(outputs[i]);
    completed_[base + i] = 1;
  }
  flush_batches_ += batches;
  rows_inferred_ += rows.size();
}

std::vector<double> InferenceBatcher::Result(std::size_t ticket) const {
  util::MutexLock lock(mutex_);
  if (ticket >= results_.size() || completed_[ticket] == 0) {
    throw std::logic_error(
        "InferenceBatcher::Result: ticket not flushed (call Flush() first)");
  }
  return results_[ticket];
}

void InferenceBatcher::Reset() {
  util::MutexLock lock(mutex_);
  ++generation_;
  pending_.clear();
  results_.clear();
  completed_.clear();
}

void InferenceBatcher::SetFlushHook(std::function<void()> hook) {
  util::MutexLock lock(mutex_);
  flush_hook_ = std::move(hook);
}

std::size_t InferenceBatcher::pending() const {
  util::MutexLock lock(mutex_);
  return pending_.size();
}

std::size_t InferenceBatcher::ticket_count() const {
  util::MutexLock lock(mutex_);
  return results_.size() + pending_.size();
}

std::size_t InferenceBatcher::flush_batches() const {
  util::MutexLock lock(mutex_);
  return flush_batches_;
}

std::size_t InferenceBatcher::rows_inferred() const {
  util::MutexLock lock(mutex_);
  return rows_inferred_;
}

}  // namespace jarvis::runtime
