// Fixed-size worker pool with a bounded work queue — the execution engine
// under runtime::Fleet. Design constraints, in order:
//
//   * No detached threads: every worker is joined in Shutdown() (and the
//     destructor), so no task outlives the pool and TSan sees a clean
//     happens-before edge from every task to the code after Shutdown().
//   * Bounded queue: Submit() blocks once `queue_capacity` tasks are
//     waiting, so a fast producer (the fleet scheduler enqueuing thousands
//     of tenants) cannot balloon memory; backpressure instead of OOM.
//   * Exception capture per task: a task that throws is caught, counted,
//     and its message retained — one bad tenant must never std::terminate
//     the process ("quarantined, not torn down"). Callers that need
//     per-task error detail (Fleet does) catch inside their own task body;
//     this layer is the backstop.
//
// Locking model (DESIGN.md §13): one util::Mutex guards every piece of
// mutable pool state — the annotations below make that machine-checked
// under the `thread-safety` preset, and tools/lint.py rule 9 insists every
// member is either guarded or explicitly justified. Shutdown is safe to
// race from any number of threads: exactly one caller swaps the workers
// out and joins them; the others block until the join completes, so the
// "all tasks finished" postcondition holds for every caller (a concurrent
// Shutdown/destructor pair used to double-join the same std::thread — a
// latent race the annotation pass surfaced).
//
// The pool is deliberately minimal: no futures, no priorities, no work
// stealing. Fleet jobs are coarse (a whole tenant pipeline), so a mutex +
// two condition variables saturate any core count the fleet can use.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jarvis::runtime {

class ThreadPool {
 public:
  // Starts `workers` threads (at least 1) sharing a queue that holds at
  // most `queue_capacity` waiting tasks (at least 1). A non-null
  // `registry` wires runtime.pool.* instruments: tasks_executed /
  // tasks_failed counters, a queue-depth gauge sampled at every
  // enqueue/dequeue, and a task-latency histogram (all but the executed
  // counter are kTiming — scheduling-dependent by nature).
  explicit ThreadPool(std::size_t workers, std::size_t queue_capacity = 256,
                      obs::Registry* registry = nullptr);

  // Drains and joins (Shutdown).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; blocks while the queue is at capacity. Returns false
  // (and drops the task) if the pool has been shut down.
  bool Submit(std::function<void()> task) JARVIS_EXCLUDES(mutex_);

  // Non-blocking admission control: enqueues only if the queue has room
  // RIGHT NOW; false at capacity or after shutdown, without ever waiting.
  // This is what lets a serving layer reject with an explicit overload
  // response instead of stacking blocked producers behind a full queue
  // (serve::Server; DESIGN.md §15).
  bool TrySubmit(std::function<void()> task) JARVIS_EXCLUDES(mutex_);

  // Blocks until every submitted task has finished executing (queue empty
  // and no worker mid-task). New Submits may still follow.
  void WaitIdle() JARVIS_EXCLUDES(mutex_);

  // Stops accepting work, runs everything already queued to completion,
  // and joins all workers. Idempotent and safe to call concurrently:
  // every caller returns only after the join has completed.
  void Shutdown() JARVIS_EXCLUDES(mutex_);

  // Fixed at construction (never the live thread count mid-shutdown, so
  // it is safe to read while another thread shuts the pool down).
  std::size_t worker_count() const { return worker_count_; }
  // Counters are stable snapshots once the producers are quiesced
  // (WaitIdle/Shutdown); they may lag mid-flight.
  std::size_t tasks_executed() const JARVIS_EXCLUDES(mutex_);
  // Tasks whose exception reached the pool layer (the backstop; Fleet
  // catches tenant failures before they get here).
  std::size_t tasks_failed() const JARVIS_EXCLUDES(mutex_);
  // Message of the first backstop-captured exception ("" when none).
  std::string first_error() const JARVIS_EXCLUDES(mutex_);

 private:
  void WorkerLoop() JARVIS_EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  util::CondVar not_empty_;      // workers wait for tasks
  util::CondVar not_full_;       // producers wait for queue room
  util::CondVar idle_;           // WaitIdle waits for quiescence
  util::CondVar shutdown_done_;  // losers of the shutdown race wait here
  std::deque<std::function<void()>> queue_ JARVIS_GUARDED_BY(mutex_);
  // Swapped out (not just cleared) by the single joining Shutdown caller,
  // so the std::thread objects are only ever joined once.
  std::vector<std::thread> workers_ JARVIS_GUARDED_BY(mutex_);
  const std::size_t worker_count_;    // unguarded: fixed at construction
  const std::size_t queue_capacity_;  // unguarded: fixed at construction
  std::size_t active_ JARVIS_GUARDED_BY(mutex_) = 0;  // tasks executing now
  std::size_t executed_ JARVIS_GUARDED_BY(mutex_) = 0;
  std::size_t failed_ JARVIS_GUARDED_BY(mutex_) = 0;
  std::string first_error_ JARVIS_GUARDED_BY(mutex_);
  bool shutting_down_ JARVIS_GUARDED_BY(mutex_) = false;
  bool joined_ JARVIS_GUARDED_BY(mutex_) = false;
  // Instrument pointers are wired once in the constructor (before any
  // worker starts) and read-only afterwards; the instruments themselves
  // are internally synchronized atomics.
  obs::Counter* executed_counter_ = nullptr;   // unguarded: wired in ctor
  obs::Counter* failed_counter_ = nullptr;     // unguarded: wired in ctor
  obs::Gauge* queue_depth_gauge_ = nullptr;    // unguarded: wired in ctor
  obs::Histogram* task_timer_ = nullptr;       // unguarded: wired in ctor
};

}  // namespace jarvis::runtime
