// Fixed-size worker pool with a bounded work queue — the execution engine
// under runtime::Fleet. Design constraints, in order:
//
//   * No detached threads: every worker is joined in Shutdown() (and the
//     destructor), so no task outlives the pool and TSan sees a clean
//     happens-before edge from every task to the code after Shutdown().
//   * Bounded queue: Submit() blocks once `queue_capacity` tasks are
//     waiting, so a fast producer (the fleet scheduler enqueuing thousands
//     of tenants) cannot balloon memory; backpressure instead of OOM.
//   * Exception capture per task: a task that throws is caught, counted,
//     and its message retained — one bad tenant must never std::terminate
//     the process ("quarantined, not torn down"). Callers that need
//     per-task error detail (Fleet does) catch inside their own task body;
//     this layer is the backstop.
//
// The pool is deliberately minimal: no futures, no priorities, no work
// stealing. Fleet jobs are coarse (a whole tenant pipeline), so a mutex +
// two condition variables saturate any core count the fleet can use.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace jarvis::runtime {

class ThreadPool {
 public:
  // Starts `workers` threads (at least 1) sharing a queue that holds at
  // most `queue_capacity` waiting tasks (at least 1). A non-null
  // `registry` wires runtime.pool.* instruments: tasks_executed /
  // tasks_failed counters, a queue-depth gauge sampled at every
  // enqueue/dequeue, and a task-latency histogram (all but the executed
  // counter are kTiming — scheduling-dependent by nature).
  explicit ThreadPool(std::size_t workers, std::size_t queue_capacity = 256,
                      obs::Registry* registry = nullptr);

  // Drains and joins (Shutdown).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; blocks while the queue is at capacity. Returns false
  // (and drops the task) if the pool has been shut down.
  bool Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing (queue empty
  // and no worker mid-task). New Submits may still follow.
  void WaitIdle();

  // Stops accepting work, runs everything already queued to completion,
  // and joins all workers. Idempotent.
  void Shutdown();

  std::size_t worker_count() const { return workers_.size(); }
  // Counters are stable snapshots once the producers are quiesced
  // (WaitIdle/Shutdown); they may lag mid-flight.
  std::size_t tasks_executed() const;
  // Tasks whose exception reached the pool layer (the backstop; Fleet
  // catches tenant failures before they get here).
  std::size_t tasks_failed() const;
  // Message of the first backstop-captured exception ("" when none).
  std::string first_error() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;   // workers wait for tasks
  std::condition_variable not_full_;    // producers wait for queue room
  std::condition_variable idle_;        // WaitIdle waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t queue_capacity_;
  std::size_t active_ = 0;              // tasks currently executing
  std::size_t executed_ = 0;
  std::size_t failed_ = 0;
  std::string first_error_;
  bool shutting_down_ = false;
  obs::Counter* executed_counter_ = nullptr;
  obs::Counter* failed_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Histogram* task_timer_ = nullptr;
};

}  // namespace jarvis::runtime
