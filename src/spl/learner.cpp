#include "spl/learner.h"

#include <algorithm>
#include <stdexcept>

namespace jarvis::spl {

std::string VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kSafe:
      return "safe";
    case Verdict::kBenignAnomaly:
      return "benign-anomaly";
    case Verdict::kViolation:
      return "violation";
  }
  throw std::logic_error("unknown verdict");
}

SafetyPolicyLearner::SafetyPolicyLearner(const fsm::EnvironmentFsm& fsm,
                                         SplConfig config)
    : fsm_(fsm),
      config_(config),
      table_(fsm, config.key_mode, config.count_threshold),
      filter_(fsm, config.ann, config.seed) {}

void SafetyPolicyLearner::SetMetrics(obs::Registry* registry) {
  if (registry == nullptr) {
    episodes_offered_counter_ = nullptr;
    episodes_used_counter_ = nullptr;
    episodes_skipped_counter_ = nullptr;
    observations_counter_ = nullptr;
    filtered_benign_counter_ = nullptr;
    ann_epochs_counter_ = nullptr;
    classify_safe_counter_ = nullptr;
    classify_benign_counter_ = nullptr;
    classify_violation_counter_ = nullptr;
    return;
  }
  episodes_offered_counter_ =
      registry->GetCounter("spl.learner.episodes_offered");
  episodes_used_counter_ = registry->GetCounter("spl.learner.episodes_used");
  episodes_skipped_counter_ =
      registry->GetCounter("spl.learner.episodes_skipped");
  observations_counter_ = registry->GetCounter("spl.learner.observations");
  filtered_benign_counter_ =
      registry->GetCounter("spl.learner.anomalies_filtered");
  ann_epochs_counter_ = registry->GetCounter("spl.learner.ann_epochs");
  classify_safe_counter_ = registry->GetCounter("spl.classify.safe");
  classify_benign_counter_ =
      registry->GetCounter("spl.classify.benign_anomaly");
  classify_violation_counter_ = registry->GetCounter("spl.classify.violation");
}

void SafetyPolicyLearner::Learn(
    const std::vector<fsm::Episode>& episodes,
    const std::vector<sim::LabeledSample>& labeled) {
  learn_report_ = {};
  learn_report_.episodes_offered = episodes.size();

  // Episode-gap tolerance: a degraded event stream may yield empty or
  // truncated episodes; they are skipped (and counted) rather than
  // poisoning or aborting the learning phase.
  std::vector<fsm::TriggerAction> observations;
  for (const auto& episode : episodes) {
    const auto min_steps = static_cast<std::size_t>(
        config_.min_episode_fraction *
        static_cast<double>(episode.config().StepsPerEpisode()));
    if (episode.size() == 0 || episode.size() < min_steps) {
      ++learn_report_.episodes_skipped;
      continue;
    }
    ++learn_report_.episodes_used;
    fsm::AppendTriggerActions(episode, &observations);
  }
  if (learn_report_.episodes_used == 0) {
    throw std::invalid_argument(
        "SafetyPolicyLearner::Learn: no usable episodes");
  }
  if (config_.use_ann_filter) {
    if (labeled.empty()) {
      throw std::invalid_argument(
          "SafetyPolicyLearner::Learn: ANN filter enabled but no labeled "
          "training data");
    }
    filter_.Train(labeled);
  }

  // Mem <- Filter_ANN(TD): drop transitions the filter regards as benign
  // anomalies so malfunctions observed during the learning week are not
  // whitelisted as habitual behavior.
  for (const auto& ta : observations) {
    if (config_.use_ann_filter && filter_.IsBenign(ta)) {
      ++learn_report_.filtered_benign;
      continue;
    }
    ++learn_report_.observations;
    table_.Observe(ta.trigger_state, ta.action, ta.minute_of_day);
  }
  table_.Finalize();
  learned_ = true;
  if (episodes_offered_counter_ != nullptr) {
    episodes_offered_counter_->Increment(learn_report_.episodes_offered);
    episodes_used_counter_->Increment(learn_report_.episodes_used);
    episodes_skipped_counter_->Increment(learn_report_.episodes_skipped);
    observations_counter_->Increment(learn_report_.observations);
    filtered_benign_counter_->Increment(learn_report_.filtered_benign);
    if (config_.use_ann_filter) {
      ann_epochs_counter_->Increment(config_.ann.epochs);
    }
  }
}

Verdict SafetyPolicyLearner::ClassifyMini(const fsm::StateVector& state,
                                          const fsm::MiniAction& mini,
                                          int minute_of_day) const {
  if (!learned_) {
    throw std::logic_error("SafetyPolicyLearner: not learned yet");
  }
  if (table_.IsMiniActionSafe(state, mini, minute_of_day)) {
    if (classify_safe_counter_ != nullptr) classify_safe_counter_->Increment();
    return Verdict::kSafe;
  }
  if (config_.use_ann_filter &&
      filter_.BenignScore(state, mini, minute_of_day) >=
          config_.ann.benign_threshold) {
    if (classify_benign_counter_ != nullptr) {
      classify_benign_counter_->Increment();
    }
    return Verdict::kBenignAnomaly;
  }
  if (classify_violation_counter_ != nullptr) {
    classify_violation_counter_->Increment();
  }
  return Verdict::kViolation;
}

Verdict SafetyPolicyLearner::Classify(const fsm::StateVector& state,
                                      const fsm::ActionVector& action,
                                      int minute_of_day) const {
  Verdict worst = Verdict::kSafe;
  for (const auto& mini : FeatureEncoder::SplitAction(action)) {
    const Verdict verdict = ClassifyMini(state, mini, minute_of_day);
    if (verdict == Verdict::kViolation) return Verdict::kViolation;
    if (verdict == Verdict::kBenignAnomaly) worst = Verdict::kBenignAnomaly;
  }
  return worst;
}

namespace {

// Learn-report counters are sizes: non-negative integers. Anything else in
// a restored document is corrupt or hostile.
std::size_t ReadCount(const util::JsonValue& stats, const char* key) {
  const std::int64_t value = stats.At(key).AsInt();
  if (value < 0) {
    throw util::JsonError(std::string("SafetyPolicyLearner::LoadJson: "
                                      "negative stat '") +
                          key + "'");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

util::JsonValue SafetyPolicyLearner::ToJson() const {
  util::JsonObject obj;
  obj["learned"] = util::JsonValue(learned_);
  obj["table"] = table_.ToJson();
  obj["filter"] = filter_.ToJson();
  util::JsonObject stats;
  stats["episodes_offered"] = util::JsonValue(
      static_cast<std::int64_t>(learn_report_.episodes_offered));
  stats["episodes_used"] =
      util::JsonValue(static_cast<std::int64_t>(learn_report_.episodes_used));
  stats["episodes_skipped"] = util::JsonValue(
      static_cast<std::int64_t>(learn_report_.episodes_skipped));
  stats["observations"] =
      util::JsonValue(static_cast<std::int64_t>(learn_report_.observations));
  stats["filtered_benign"] = util::JsonValue(
      static_cast<std::int64_t>(learn_report_.filtered_benign));
  obj["stats"] = util::JsonValue(std::move(stats));
  return util::JsonValue(std::move(obj));
}

void SafetyPolicyLearner::LoadJson(const util::JsonValue& doc) {
  // Fail-safe restore ordering: mark unlearned first so that an exception
  // mid-restore (hostile table/filter document) leaves the learner refusing
  // to classify — the deny path — rather than serving a half-replaced
  // whitelist.
  learned_ = false;
  table_.LoadJson(doc.At("table"));
  filter_.LoadJson(doc.At("filter"));
  learn_report_ = {};
  if (doc.AsObject().count("stats") != 0) {  // absent in legacy documents
    const util::JsonValue& stats = doc.At("stats");
    learn_report_.episodes_offered = ReadCount(stats, "episodes_offered");
    learn_report_.episodes_used = ReadCount(stats, "episodes_used");
    learn_report_.episodes_skipped = ReadCount(stats, "episodes_skipped");
    learn_report_.observations = ReadCount(stats, "observations");
    learn_report_.filtered_benign = ReadCount(stats, "filtered_benign");
  }
  learned_ = doc.At("learned").AsBool();
}

AuditResult SafetyPolicyLearner::AuditEpisode(
    const fsm::Episode& episode) const {
  AuditResult result;
  int step_index = 0;
  for (const auto& step : episode.steps()) {
    for (const auto& mini : FeatureEncoder::SplitAction(step.action)) {
      ++result.transitions_checked;
      const Verdict verdict =
          ClassifyMini(step.state, mini, step.time.minute_of_day());
      switch (verdict) {
        case Verdict::kSafe:
          ++result.safe;
          break;
        case Verdict::kBenignAnomaly:
          ++result.benign_anomalies;
          result.flags.push_back({step_index, mini, verdict});
          break;
        case Verdict::kViolation:
          ++result.violations;
          result.flags.push_back({step_index, mini, verdict});
          break;
      }
    }
    ++step_index;
  }
  return result;
}

}  // namespace jarvis::spl
