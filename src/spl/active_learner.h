// Active learning over the benefit spaces (Section VI-F): the SPL is
// deliberately biased toward safety, so some flagged behaviors are false
// positives or unsafe-but-acceptable actions with real functionality
// benefits. This component routes such flags to the user (an oracle
// callback), remembers every judgment, and feeds approvals back into
// P_safe — also covering the Section V-B-1 case of manually adding
// policies for rare-but-critical behavior (fire-alarm reactions) that the
// learning phase cannot observe.
#pragma once

#include <functional>
#include <set>
#include <tuple>

#include "spl/learner.h"

namespace jarvis::spl {

enum class UserJudgment { kApprove, kReject };

// The user's judgment of one flagged mini-action in context.
using UserOracle = std::function<UserJudgment(
    const fsm::StateVector& state, const fsm::MiniAction& mini,
    int minute_of_day)>;

struct ActiveLearningConfig {
  // Query budget per review session; flags beyond it are left as-is
  // (still blocked) rather than spamming the user.
  std::size_t max_queries_per_session = 20;
};

struct ActiveLearningReport {
  std::size_t flags_seen = 0;
  std::size_t queried = 0;
  std::size_t approved = 0;        // admitted into P_safe
  std::size_t rejected = 0;        // confirmed malicious
  std::size_t remembered = 0;      // previously judged, not re-asked
  std::size_t skipped_budget = 0;  // query budget exhausted
};

class ActiveLearner {
 public:
  ActiveLearner(SafetyPolicyLearner& learner, ActiveLearningConfig config);

  // Audits the episode and routes every kViolation flag through the
  // oracle. Approvals take effect immediately (the same behavior will
  // classify kSafe afterwards).
  ActiveLearningReport ReviewEpisode(const fsm::Episode& episode,
                                     const UserOracle& oracle);

  // Single-transition query path. Returns the resulting verdict after any
  // feedback is applied. Previously judged transitions are answered from
  // memory without consulting the oracle.
  Verdict ReviewTransition(const fsm::StateVector& state,
                           const fsm::MiniAction& mini, int minute_of_day,
                           const UserOracle& oracle);

  // Whether this exact (context, action, day-part) was already rejected by
  // the user in a previous session.
  bool IsConfirmedMalicious(const fsm::StateVector& state,
                            const fsm::MiniAction& mini,
                            int minute_of_day) const;

  std::size_t total_queries() const { return total_queries_; }
  std::size_t confirmed_malicious_count() const { return rejected_.size(); }

 private:
  // Judgment memory key: full context + slot + time bucket.
  using MemoryKey = std::tuple<std::uint64_t, std::size_t, int>;
  MemoryKey KeyFor(const fsm::StateVector& state, const fsm::MiniAction& mini,
                   int minute_of_day) const;

  SafetyPolicyLearner& learner_;
  ActiveLearningConfig config_;
  std::set<MemoryKey> approved_;
  std::set<MemoryKey> rejected_;
  std::size_t total_queries_ = 0;
};

}  // namespace jarvis::spl
