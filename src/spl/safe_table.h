// The safe state-transition table P_safe of Algorithm 1.
//
// The paper stores P_safe over exact composite state pairs [S, S']. For an
// 11-device home that representation never generalizes: every benign day
// visits composite states the learning week never produced (a different
// TV/washer combination), so exact matching floods the detector with false
// positives. We therefore support two key modes:
//
//  * kExactState — the paper's literal formulation, P_safe[S, S'].
//    Retained for unit tests, tiny environments, and the ablation bench
//    that demonstrates the generalization failure.
//  * kFactoredContext (default) — per mini-action keys
//      (device, action, device-state, safety-context, time bucket)
//    where the safety context is the joint state of the security-critical
//    devices (lock, door sensor, temperature sensor) and the time bucket
//    is a 3-hour slot. This keeps the whitelist sound (an action is only
//    admitted in contexts and day-parts where it was actually observed)
//    while generalizing across irrelevant appliance combinations.
//
// Both modes implement "count > Thresh_env then admit" exactly as in
// Algorithm 1.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fsm/environment.h"
#include "fsm/episode.h"
#include "util/json.h"

namespace jarvis::spl {

enum class KeyMode { kExactState, kFactoredContext };

inline constexpr int kTimeBucketMinutes = 3 * 60;

class SafeTransitionTable {
 public:
  SafeTransitionTable(const fsm::EnvironmentFsm& fsm, KeyMode mode,
                      int count_threshold);

  KeyMode mode() const { return mode_; }
  int count_threshold() const { return threshold_; }

  // Records one observation of (trigger state, action) at a minute of day.
  void Observe(const fsm::StateVector& state, const fsm::ActionVector& action,
               int minute_of_day);

  // Finalizes counts into the admit set (Algorithm 1's thresholding).
  // Until Finalize() is called, IsSafe() admits nothing.
  void Finalize();

  // True when every non-no-op mini-action of `action` was observed more
  // than Thresh times in this context. All-no-op actions are always safe
  // (doing nothing cannot create a new hazard).
  bool IsSafe(const fsm::StateVector& state, const fsm::ActionVector& action,
              int minute_of_day) const;

  // Per-mini-action check (the constrained-exploration hook).
  bool IsMiniActionSafe(const fsm::StateVector& state,
                        const fsm::MiniAction& mini, int minute_of_day) const;

  // Lists the mini-actions of `action` that are NOT admitted (the concrete
  // violations to report). Empty result == safe.
  std::vector<fsm::MiniAction> UnsafeMiniActions(
      const fsm::StateVector& state, const fsm::ActionVector& action,
      int minute_of_day) const;

  std::size_t observed_key_count() const { return counts_.size(); }
  std::size_t admitted_key_count() const { return admitted_.size(); }
  bool finalized() const { return finalized_; }

  // Manually admits one (context, mini-action) pattern regardless of the
  // observation count — the paper's manual policy escape hatch for rare
  // but safe behavior (fire-alarm reactions, Section V-B-1) and the write
  // path of the active-learning extension (Section VI-F). Takes effect
  // immediately, even before/without Finalize for other keys.
  void ForceAdmit(const fsm::StateVector& state, const fsm::MiniAction& mini,
                  int minute_of_day);

  // Serialization: observation counts plus forced admissions. Keys are the
  // stable internal hashes (recomputed identically by any build of this
  // library for the same home).
  util::JsonValue ToJson() const;
  // Restores counts/admissions saved by ToJson into this table (which must
  // be configured with the same mode/threshold/home) and finalizes.
  void LoadJson(const util::JsonValue& doc);

 private:
  std::uint64_t MakeKey(const fsm::StateVector& state,
                        const fsm::MiniAction& mini, int minute_of_day) const;

  const fsm::EnvironmentFsm& fsm_;
  KeyMode mode_;
  int threshold_;
  bool finalized_ = false;
  std::vector<fsm::DeviceId> context_devices_;
  fsm::DeviceId temp_sensor_ = -1;
  fsm::DeviceId thermostat_ = -1;
  fsm::StateIndex fire_state_ = -1;
  std::unordered_map<std::uint64_t, int> counts_;
  std::unordered_map<std::uint64_t, bool> admitted_;
  std::vector<std::uint64_t> forced_;
};

}  // namespace jarvis::spl
