// Featurization of trigger-action observations for the SPL's ANN filter:
// full composite-state one-hot, mini-action one-hot, and cyclic
// time-of-day features. One feature vector per mini-action, so joint
// actions touching several devices yield several classification instances.
#pragma once

#include <vector>

#include "fsm/environment.h"
#include "fsm/episode.h"

namespace jarvis::spl {

class FeatureEncoder {
 public:
  explicit FeatureEncoder(const fsm::EnvironmentFsm& fsm);

  std::size_t feature_width() const { return width_; }

  // Features for one mini-action in a trigger context at a minute of day.
  std::vector<double> Encode(const fsm::StateVector& trigger_state,
                             const fsm::MiniAction& mini,
                             int minute_of_day) const;

  // Splits a joint action into its constituent mini-actions (no-ops are
  // skipped: there is nothing to classify about leaving a device alone).
  static std::vector<fsm::MiniAction> SplitAction(
      const fsm::ActionVector& action);

 private:
  const fsm::EnvironmentFsm& fsm_;
  std::size_t width_;
};

}  // namespace jarvis::spl
