// The benign-anomaly filter of Algorithm 1: a feed-forward multi-layer
// perceptron with a single hidden layer, trained by back-propagation on
// user-labeled benign anomalous activities (Section V-A-3). Given a
// trigger-action observation it scores the probability that the behavior
// is a *benign* anomaly (device malfunction / human error) rather than
// either habitual behavior or a security violation.
#pragma once

#include <memory>
#include <vector>

#include "neural/network.h"
#include "neural/serialize.h"
#include "sim/anomaly.h"
#include "spl/features.h"

namespace jarvis::spl {

struct AnnFilterConfig {
  std::size_t hidden_units = 32;
  double learning_rate = 0.05;
  std::size_t epochs = 12;
  std::size_t batch_size = 64;
  double benign_threshold = 0.5;  // score above => benign anomaly
};

class AnnFilter {
 public:
  AnnFilter(const fsm::EnvironmentFsm& fsm, AnnFilterConfig config,
            std::uint64_t seed);

  // Trains on the labeled set (benign_anomaly == true is the positive
  // class). Returns the final epoch's mean training loss.
  double Train(const std::vector<sim::LabeledSample>& samples);

  // Probability that one mini-action observation is a benign anomaly.
  double BenignScore(const fsm::StateVector& trigger_state,
                     const fsm::MiniAction& mini, int minute_of_day) const;

  // Minimum benign score across the mini-actions of a joint action: a
  // joint action is only as benign as its most suspicious component.
  // Joint actions with no mini-action return 0.
  double BenignScore(const fsm::TriggerAction& ta) const;

  bool IsBenign(const fsm::TriggerAction& ta) const {
    return BenignScore(ta) >= config_.benign_threshold;
  }

  const AnnFilterConfig& config() const { return config_; }
  bool trained() const { return trained_; }

  // Accuracy of the benign/not-benign decision on a labeled holdout.
  double Evaluate(const std::vector<sim::LabeledSample>& samples) const;

  // Serialization of the trained network (topology + parameters).
  util::JsonValue ToJson() const;
  void LoadJson(const util::JsonValue& doc);

 private:
  const fsm::EnvironmentFsm& fsm_;
  FeatureEncoder encoder_;
  AnnFilterConfig config_;
  neural::Network network_;
  bool trained_ = false;
};

}  // namespace jarvis::spl
