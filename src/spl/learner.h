// The Security Policy Learner (SPL) component: Algorithm 1 end to end.
//
// Learning phase: train the ANN filter on user-labeled benign anomalies,
// pass the learning episodes' trigger-action behavior through the filter
// (Mem <- Filter_ANN(TD)), count surviving transitions, and admit those
// with Count > Thresh_env into P_safe.
//
// Deployment: every attempted transition is classified —
//   kSafe          in P_safe (natural, whitelisted behavior),
//   kBenignAnomaly off-whitelist but the ANN recognizes it as a benign
//                  malfunction / human error (filtered, not reported),
//   kViolation     off-whitelist and not benign: flagged as a safety or
//                  security violation and blocked in the RL environment.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/anomaly.h"
#include "spl/ann_filter.h"
#include "spl/safe_table.h"

namespace jarvis::spl {

enum class Verdict { kSafe, kBenignAnomaly, kViolation };

std::string VerdictName(Verdict verdict);

struct SplConfig {
  KeyMode key_mode = KeyMode::kFactoredContext;
  int count_threshold = 0;  // Thresh_env; 0 = any observation admits
  AnnFilterConfig ann;
  bool use_ann_filter = true;  // ablation hook
  // Learning episodes shorter than this fraction of their configured
  // period are skipped (and counted) instead of aborting the learning
  // phase — a degraded event stream may hand the learner gappy or partial
  // episodes, and losing a day of the learning week must not lose the
  // week. 0 keeps every non-empty episode.
  double min_episode_fraction = 0.0;
  std::uint64_t seed = 7;
};

// Degradation accounting for one learning phase: how many of the offered
// episodes actually contributed, and what the ANN filter removed. Feeds
// core::HealthReport.
struct LearnReport {
  std::size_t episodes_offered = 0;
  std::size_t episodes_used = 0;
  std::size_t episodes_skipped = 0;  // empty or below min_episode_fraction
  std::size_t observations = 0;      // surviving T/A observations
  std::size_t filtered_benign = 0;   // removed by Filter_ANN(TD)
};

// One flagged mini-action when auditing an episode.
struct Flag {
  int step_index;
  fsm::MiniAction mini;
  Verdict verdict;
};

struct AuditResult {
  std::size_t transitions_checked = 0;
  std::size_t safe = 0;
  std::size_t benign_anomalies = 0;
  std::size_t violations = 0;
  std::vector<Flag> flags;  // benign anomalies and violations only
};

class SafetyPolicyLearner {
 public:
  SafetyPolicyLearner(const fsm::EnvironmentFsm& fsm, SplConfig config);

  // Runs the learning phase. `labeled` is the training dataset TD
  // (learning-phase behavior labeled normal plus user-labeled benign
  // anomalies); `episodes` are the learning episodes whose surviving
  // transitions populate P_safe. Gappy input is tolerated: empty or
  // too-short episodes are skipped and counted in learn_report(); only a
  // stream with zero usable episodes aborts.
  void Learn(const std::vector<fsm::Episode>& episodes,
             const std::vector<sim::LabeledSample>& labeled);

  bool learned() const { return learned_; }
  const LearnReport& learn_report() const { return learn_report_; }

  // Classifies one joint transition attempt.
  Verdict Classify(const fsm::StateVector& state,
                   const fsm::ActionVector& action, int minute_of_day) const;
  // Classifies one mini-action.
  Verdict ClassifyMini(const fsm::StateVector& state,
                       const fsm::MiniAction& mini, int minute_of_day) const;

  // Replays an episode through the classifier.
  AuditResult AuditEpisode(const fsm::Episode& episode) const;

  // Raw benign-anomaly score for ROC construction (Fig. 5).
  double BenignScore(const fsm::TriggerAction& ta) const {
    return filter_.BenignScore(ta);
  }

  const SafeTransitionTable& table() const { return table_; }
  const AnnFilter& filter() const { return filter_; }
  const SplConfig& config() const { return config_; }
  const fsm::EnvironmentFsm& fsm() const { return fsm_; }

  // Manual-policy / active-learning write access (Sections V-B-1, VI-F):
  // admit a user-approved behavior that the learning phase could not
  // observe (e.g. fire-alarm reactions) or that user feedback reclassified
  // from the unsafe benefit space.
  SafeTransitionTable& mutable_table() { return table_; }

  // Wires spl.learner.* counters (episodes offered/used/skipped,
  // observations, anomalies filtered, ANN epochs) bumped per Learn call,
  // and spl.classify.* verdict counters bumped per ClassifyMini (the
  // deployment-phase detection statistic behind the paper's 214-violation
  // claim — includes the mask-construction probes IoTEnv issues while
  // training). Null disables.
  void SetMetrics(obs::Registry* registry);

  // Persistence: the learnt policies (whitelist + ANN parameters), so a
  // deployment reloads them without repeating the learning phase.
  util::JsonValue ToJson() const;
  std::string ToJsonString() const { return ToJson().Dump(); }
  // Restores into a learner configured identically for the same home.
  void LoadJson(const util::JsonValue& doc);
  void LoadJsonString(const std::string& text) {
    LoadJson(util::JsonValue::Parse(text));
  }

 private:
  const fsm::EnvironmentFsm& fsm_;
  SplConfig config_;
  SafeTransitionTable table_;
  AnnFilter filter_;
  LearnReport learn_report_;
  bool learned_ = false;
  obs::Counter* episodes_offered_counter_ = nullptr;
  obs::Counter* episodes_used_counter_ = nullptr;
  obs::Counter* episodes_skipped_counter_ = nullptr;
  obs::Counter* observations_counter_ = nullptr;
  obs::Counter* filtered_benign_counter_ = nullptr;
  obs::Counter* ann_epochs_counter_ = nullptr;
  obs::Counter* classify_safe_counter_ = nullptr;
  obs::Counter* classify_benign_counter_ = nullptr;
  obs::Counter* classify_violation_counter_ = nullptr;
};

}  // namespace jarvis::spl
