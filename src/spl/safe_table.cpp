#include "spl/safe_table.h"

#include "util/check.h"

namespace jarvis::spl {

namespace {

std::uint64_t Mix(std::uint64_t h, std::uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

}  // namespace

SafeTransitionTable::SafeTransitionTable(const fsm::EnvironmentFsm& fsm,
                                         KeyMode mode, int count_threshold)
    : fsm_(fsm), mode_(mode), threshold_(count_threshold) {
  JARVIS_CHECK_GE(count_threshold, 0,
                  "SafeTransitionTable: negative threshold");
  // The safety context: security-critical devices, when present. The
  // temperature sensor participates only in thermal-device keys (see
  // MakeKey): its state is safety-relevant for the thermostat ("heater cut
  // while cold") but merely fragments keys for lights and appliances.
  for (const char* label : {"lock", "door_sensor"}) {
    for (const auto& device : fsm_.devices()) {
      if (device.label() == label) {
        context_devices_.push_back(device.id());
        break;
      }
    }
  }
  for (const auto& device : fsm_.devices()) {
    if (device.label() == "temp_sensor") {
      temp_sensor_ = device.id();
      if (const auto fire = device.FindState("fire_alarm")) {
        fire_state_ = *fire;
      }
    }
    if (device.label() == "thermostat") {
      thermostat_ = device.id();
    }
  }
}

std::uint64_t SafeTransitionTable::MakeKey(const fsm::StateVector& state,
                                           const fsm::MiniAction& mini,
                                           int minute_of_day) const {
  std::uint64_t key = 0x51a3d70a5ULL;
  if (mode_ == KeyMode::kExactState) {
    key = Mix(key, fsm_.codec().Encode(state));
    key = Mix(key, fsm_.codec().MiniActionSlot(mini));
    return key;
  }
  key = Mix(key, static_cast<std::uint64_t>(mini.device));
  key = Mix(key, static_cast<std::uint64_t>(mini.action + 1));
  key = Mix(key, static_cast<std::uint64_t>(
                     state[static_cast<std::size_t>(mini.device)]));
  for (const fsm::DeviceId context : context_devices_) {
    key = Mix(key, static_cast<std::uint64_t>(
                       state[static_cast<std::size_t>(context)]));
  }
  // Temperature context only for thermal devices...
  if (temp_sensor_ >= 0 &&
      (mini.device == thermostat_ || mini.device == temp_sensor_)) {
    key = Mix(key, static_cast<std::uint64_t>(
                       state[static_cast<std::size_t>(temp_sensor_)]) +
                       0x1000);
  }
  // ...except for the emergency flag, which keys *every* device: behavior
  // appropriate during a fire alarm (unlock the doors, Section V-B-1's
  // manual policies) must never generalize to ordinary contexts or vice
  // versa.
  if (temp_sensor_ >= 0 && fire_state_ >= 0) {
    const bool emergency =
        state[static_cast<std::size_t>(temp_sensor_)] == fire_state_;
    key = Mix(key, emergency ? 0x2001 : 0x2000);
  }
  key = Mix(key, static_cast<std::uint64_t>(minute_of_day /
                                            kTimeBucketMinutes));
  return key;
}

void SafeTransitionTable::Observe(const fsm::StateVector& state,
                                  const fsm::ActionVector& action,
                                  int minute_of_day) {
  fsm_.ValidateState(state);
  fsm_.ValidateAction(action);
  for (std::size_t i = 0; i < action.size(); ++i) {
    if (action[i] == fsm::kNoAction) continue;
    const fsm::MiniAction mini{static_cast<fsm::DeviceId>(i), action[i]};
    ++counts_[MakeKey(state, mini, minute_of_day)];
  }
}

void SafeTransitionTable::Finalize() {
  admitted_.clear();
  for (const auto& [key, count] : counts_) {
    if (count > threshold_) admitted_.emplace(key, true);
  }
  for (const std::uint64_t key : forced_) admitted_.emplace(key, true);
  finalized_ = true;
}

void SafeTransitionTable::ForceAdmit(const fsm::StateVector& state,
                                     const fsm::MiniAction& mini,
                                     int minute_of_day) {
  fsm_.ValidateState(state);
  const std::uint64_t key = MakeKey(state, mini, minute_of_day);
  forced_.push_back(key);
  admitted_.emplace(key, true);
  finalized_ = true;  // a manual policy alone is a valid (tiny) whitelist
}

util::JsonValue SafeTransitionTable::ToJson() const {
  util::JsonObject obj;
  obj["mode"] = util::JsonValue(mode_ == KeyMode::kExactState
                                    ? std::string("exact")
                                    : std::string("factored"));
  obj["threshold"] = util::JsonValue(threshold_);
  util::JsonArray counts;
  for (const auto& [key, count] : counts_) {
    util::JsonArray entry;
    // uint64 keys exceed double precision; store as decimal strings.
    entry.emplace_back(std::to_string(key));
    entry.emplace_back(count);
    counts.push_back(util::JsonValue(std::move(entry)));
  }
  obj["counts"] = util::JsonValue(std::move(counts));
  util::JsonArray forced;
  for (const std::uint64_t key : forced_) {
    forced.emplace_back(std::to_string(key));
  }
  obj["forced"] = util::JsonValue(std::move(forced));
  return util::JsonValue(std::move(obj));
}

void SafeTransitionTable::LoadJson(const util::JsonValue& doc) {
  const std::string mode = doc.At("mode").AsString();
  JARVIS_CHECK((mode == "exact") == (mode_ == KeyMode::kExactState),
               "SafeTransitionTable::LoadJson: mode mismatch: ", mode);
  JARVIS_CHECK_EQ(doc.At("threshold").AsInt(), threshold_,
                  "SafeTransitionTable::LoadJson: threshold mismatch");
  counts_.clear();
  forced_.clear();
  for (const auto& entry : doc.At("counts").AsArray()) {
    const auto& pair = entry.AsArray();
    counts_[std::stoull(pair.at(0).AsString())] =
        static_cast<int>(pair.at(1).AsInt());
  }
  for (const auto& key : doc.At("forced").AsArray()) {
    forced_.push_back(std::stoull(key.AsString()));
  }
  Finalize();
}

bool SafeTransitionTable::IsMiniActionSafe(const fsm::StateVector& state,
                                           const fsm::MiniAction& mini,
                                           int minute_of_day) const {
  if (!finalized_) return false;
  if (mini.action == fsm::kNoAction) return true;
  return admitted_.count(MakeKey(state, mini, minute_of_day)) > 0;
}

bool SafeTransitionTable::IsSafe(const fsm::StateVector& state,
                                 const fsm::ActionVector& action,
                                 int minute_of_day) const {
  return UnsafeMiniActions(state, action, minute_of_day).empty();
}

std::vector<fsm::MiniAction> SafeTransitionTable::UnsafeMiniActions(
    const fsm::StateVector& state, const fsm::ActionVector& action,
    int minute_of_day) const {
  std::vector<fsm::MiniAction> unsafe;
  for (std::size_t i = 0; i < action.size(); ++i) {
    if (action[i] == fsm::kNoAction) continue;
    const fsm::MiniAction mini{static_cast<fsm::DeviceId>(i), action[i]};
    if (!IsMiniActionSafe(state, mini, minute_of_day)) unsafe.push_back(mini);
  }
  return unsafe;
}

}  // namespace jarvis::spl
