#include "spl/safe_table.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace jarvis::spl {

namespace {

// Strict decimal-u64 parse for serialized table keys. std::stoull would
// silently accept trailing garbage ("123abc" -> 123) and wrap negative
// input ("-1" -> 2^64-1) — exactly the hostile-JSON UB LoadJson must
// reject instead.
std::uint64_t ParseKey(const std::string& text) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  JARVIS_CHECK(!text.empty() && ec == std::errc() && ptr == end,
               "SafeTransitionTable::LoadJson: malformed key string: ", text);
  return value;
}

// A serialized observation count must be a non-negative integer that fits
// int; anything else (negative, fractional, absurd) is hostile input.
int ParseCount(const util::JsonValue& value) {
  const double count = value.AsNumber();
  JARVIS_CHECK(count >= 0.0 &&
                   count <= static_cast<double>(
                                std::numeric_limits<int>::max()) &&
                   count == std::floor(count),
               "SafeTransitionTable::LoadJson: count must be a non-negative "
               "integer, got ", count);
  return static_cast<int>(count);
}

std::uint64_t Mix(std::uint64_t h, std::uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

}  // namespace

SafeTransitionTable::SafeTransitionTable(const fsm::EnvironmentFsm& fsm,
                                         KeyMode mode, int count_threshold)
    : fsm_(fsm), mode_(mode), threshold_(count_threshold) {
  JARVIS_CHECK_GE(count_threshold, 0,
                  "SafeTransitionTable: negative threshold");
  // The safety context: security-critical devices, when present. The
  // temperature sensor participates only in thermal-device keys (see
  // MakeKey): its state is safety-relevant for the thermostat ("heater cut
  // while cold") but merely fragments keys for lights and appliances.
  for (const char* label : {"lock", "door_sensor"}) {
    for (const auto& device : fsm_.devices()) {
      if (device.label() == label) {
        context_devices_.push_back(device.id());
        break;
      }
    }
  }
  for (const auto& device : fsm_.devices()) {
    if (device.label() == "temp_sensor") {
      temp_sensor_ = device.id();
      if (const auto fire = device.FindState("fire_alarm")) {
        fire_state_ = *fire;
      }
    }
    if (device.label() == "thermostat") {
      thermostat_ = device.id();
    }
  }
}

std::uint64_t SafeTransitionTable::MakeKey(const fsm::StateVector& state,
                                           const fsm::MiniAction& mini,
                                           int minute_of_day) const {
  std::uint64_t key = 0x51a3d70a5ULL;
  if (mode_ == KeyMode::kExactState) {
    key = Mix(key, fsm_.codec().Encode(state));
    key = Mix(key, fsm_.codec().MiniActionSlot(mini));
    return key;
  }
  key = Mix(key, static_cast<std::uint64_t>(mini.device));
  key = Mix(key, static_cast<std::uint64_t>(mini.action + 1));
  key = Mix(key, static_cast<std::uint64_t>(
                     state[static_cast<std::size_t>(mini.device)]));
  for (const fsm::DeviceId context : context_devices_) {
    key = Mix(key, static_cast<std::uint64_t>(
                       state[static_cast<std::size_t>(context)]));
  }
  // Temperature context only for thermal devices...
  if (temp_sensor_ >= 0 &&
      (mini.device == thermostat_ || mini.device == temp_sensor_)) {
    key = Mix(key, static_cast<std::uint64_t>(
                       state[static_cast<std::size_t>(temp_sensor_)]) +
                       0x1000);
  }
  // ...except for the emergency flag, which keys *every* device: behavior
  // appropriate during a fire alarm (unlock the doors, Section V-B-1's
  // manual policies) must never generalize to ordinary contexts or vice
  // versa.
  if (temp_sensor_ >= 0 && fire_state_ >= 0) {
    const bool emergency =
        state[static_cast<std::size_t>(temp_sensor_)] == fire_state_;
    key = Mix(key, emergency ? 0x2001 : 0x2000);
  }
  key = Mix(key, static_cast<std::uint64_t>(minute_of_day /
                                            kTimeBucketMinutes));
  return key;
}

void SafeTransitionTable::Observe(const fsm::StateVector& state,
                                  const fsm::ActionVector& action,
                                  int minute_of_day) {
  fsm_.ValidateState(state);
  fsm_.ValidateAction(action);
  for (std::size_t i = 0; i < action.size(); ++i) {
    if (action[i] == fsm::kNoAction) continue;
    const fsm::MiniAction mini{static_cast<fsm::DeviceId>(i), action[i]};
    ++counts_[MakeKey(state, mini, minute_of_day)];
  }
}

void SafeTransitionTable::Finalize() {
  admitted_.clear();
  for (const auto& [key, count] : counts_) {
    if (count > threshold_) admitted_.emplace(key, true);
  }
  for (const std::uint64_t key : forced_) admitted_.emplace(key, true);
  finalized_ = true;
}

void SafeTransitionTable::ForceAdmit(const fsm::StateVector& state,
                                     const fsm::MiniAction& mini,
                                     int minute_of_day) {
  fsm_.ValidateState(state);
  const std::uint64_t key = MakeKey(state, mini, minute_of_day);
  forced_.push_back(key);
  admitted_.emplace(key, true);
  finalized_ = true;  // a manual policy alone is a valid (tiny) whitelist
}

util::JsonValue SafeTransitionTable::ToJson() const {
  util::JsonObject obj;
  obj["mode"] = util::JsonValue(mode_ == KeyMode::kExactState
                                    ? std::string("exact")
                                    : std::string("factored"));
  obj["threshold"] = util::JsonValue(threshold_);
  // Canonical (sorted) key order: two tables holding the same admissions
  // must serialize to identical bytes, regardless of hash-map iteration or
  // observation order — checkpoint payloads feed content checksums and
  // byte-compare in recovery tests.
  std::vector<std::pair<std::uint64_t, int>> sorted_counts(counts_.begin(),
                                                           counts_.end());
  std::sort(sorted_counts.begin(), sorted_counts.end());
  util::JsonArray counts;
  for (const auto& [key, count] : sorted_counts) {
    util::JsonArray entry;
    // uint64 keys exceed double precision; store as decimal strings.
    entry.emplace_back(std::to_string(key));
    entry.emplace_back(count);
    counts.push_back(util::JsonValue(std::move(entry)));
  }
  obj["counts"] = util::JsonValue(std::move(counts));
  std::vector<std::uint64_t> sorted_forced(forced_.begin(), forced_.end());
  std::sort(sorted_forced.begin(), sorted_forced.end());
  util::JsonArray forced;
  for (const std::uint64_t key : sorted_forced) {
    forced.emplace_back(std::to_string(key));
  }
  obj["forced"] = util::JsonValue(std::move(forced));
  return util::JsonValue(std::move(obj));
}

void SafeTransitionTable::LoadJson(const util::JsonValue& doc) {
  const std::string mode = doc.At("mode").AsString();
  JARVIS_CHECK(mode == "exact" || mode == "factored",
               "SafeTransitionTable::LoadJson: unknown mode: ", mode);
  JARVIS_CHECK((mode == "exact") == (mode_ == KeyMode::kExactState),
               "SafeTransitionTable::LoadJson: mode mismatch: ", mode);
  JARVIS_CHECK_EQ(doc.At("threshold").AsInt(), threshold_,
                  "SafeTransitionTable::LoadJson: threshold mismatch");
  // Hostile-input hardening: parse and validate into locals, commit only
  // once the whole document checks out. A rejected load must leave the
  // table's previous (fail-safe) state untouched — never half-replaced.
  std::unordered_map<std::uint64_t, int> counts;
  std::vector<std::uint64_t> forced;
  std::unordered_set<std::uint64_t> forced_seen;
  for (const auto& entry : doc.At("counts").AsArray()) {
    const auto& pair = entry.AsArray();
    JARVIS_CHECK_EQ(pair.size(), std::size_t{2},
                    "SafeTransitionTable::LoadJson: counts entry is not a "
                    "[key, count] pair");
    const std::uint64_t key = ParseKey(pair[0].AsString());
    const int count = ParseCount(pair[1]);
    // Duplicate keys would make the admitted set depend on which entry
    // "wins" — an attacker-steerable ambiguity. Reject.
    JARVIS_CHECK(counts.emplace(key, count).second,
                 "SafeTransitionTable::LoadJson: duplicate count key: ", key);
  }
  for (const auto& key_doc : doc.At("forced").AsArray()) {
    const std::uint64_t key = ParseKey(key_doc.AsString());
    JARVIS_CHECK(forced_seen.insert(key).second,
                 "SafeTransitionTable::LoadJson: duplicate forced key: ", key);
    forced.push_back(key);
  }
  counts_ = std::move(counts);
  forced_ = std::move(forced);
  Finalize();
}

bool SafeTransitionTable::IsMiniActionSafe(const fsm::StateVector& state,
                                           const fsm::MiniAction& mini,
                                           int minute_of_day) const {
  if (!finalized_) return false;
  if (mini.action == fsm::kNoAction) return true;
  return admitted_.count(MakeKey(state, mini, minute_of_day)) > 0;
}

bool SafeTransitionTable::IsSafe(const fsm::StateVector& state,
                                 const fsm::ActionVector& action,
                                 int minute_of_day) const {
  return UnsafeMiniActions(state, action, minute_of_day).empty();
}

std::vector<fsm::MiniAction> SafeTransitionTable::UnsafeMiniActions(
    const fsm::StateVector& state, const fsm::ActionVector& action,
    int minute_of_day) const {
  std::vector<fsm::MiniAction> unsafe;
  for (std::size_t i = 0; i < action.size(); ++i) {
    if (action[i] == fsm::kNoAction) continue;
    const fsm::MiniAction mini{static_cast<fsm::DeviceId>(i), action[i]};
    if (!IsMiniActionSafe(state, mini, minute_of_day)) unsafe.push_back(mini);
  }
  return unsafe;
}

}  // namespace jarvis::spl
