#include "spl/ann_filter.h"

#include <algorithm>

namespace jarvis::spl {

namespace {

neural::Network BuildNetwork(std::size_t inputs, const AnnFilterConfig& config,
                             std::uint64_t seed) {
  // Single hidden layer + sigmoid output, trained with BCE by plain SGD
  // back-propagation — the paper's one-hidden-layer MLP.
  return neural::Network(
      inputs,
      {{config.hidden_units, neural::Activation::kRelu},
       {1, neural::Activation::kSigmoid}},
      neural::Loss::kBinaryCrossEntropy,
      std::make_unique<neural::Sgd>(config.learning_rate, 0.9),
      util::Rng(seed));
}

}  // namespace

AnnFilter::AnnFilter(const fsm::EnvironmentFsm& fsm, AnnFilterConfig config,
                     std::uint64_t seed)
    : fsm_(fsm),
      encoder_(fsm),
      config_(config),
      network_(BuildNetwork(encoder_.feature_width(), config, seed)) {}

double AnnFilter::Train(const std::vector<sim::LabeledSample>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("AnnFilter::Train: empty training set");
  }
  // Expand joint actions into one row per mini-action.
  std::vector<std::vector<double>> rows;
  std::vector<double> labels;
  for (const auto& sample : samples) {
    for (const auto& mini : FeatureEncoder::SplitAction(sample.ta.action)) {
      rows.push_back(encoder_.Encode(sample.ta.trigger_state, mini,
                                     sample.ta.minute_of_day));
      labels.push_back(sample.benign_anomaly ? 1.0 : 0.0);
    }
  }
  if (rows.empty()) {
    throw std::invalid_argument("AnnFilter::Train: no mini-actions");
  }

  // Class balance: anomaly datasets are heavily skewed (55k anomalies vs a
  // week of habitual transitions, or vice versa). Oversample the minority
  // class so the sigmoid output is not dominated by the prior.
  {
    std::vector<std::size_t> positive_rows, negative_rows;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      (labels[i] > 0.5 ? positive_rows : negative_rows).push_back(i);
    }
    if (!positive_rows.empty() && !negative_rows.empty()) {
      util::Rng balance_rng(0xba1a9ceULL);
      const auto& minority = positive_rows.size() < negative_rows.size()
                                 ? positive_rows
                                 : negative_rows;
      const std::size_t deficit =
          std::max(positive_rows.size(), negative_rows.size()) -
          minority.size();
      for (std::size_t i = 0; i < deficit; ++i) {
        const std::size_t source = minority[balance_rng.NextIndex(minority.size())];
        rows.push_back(rows[source]);
        labels.push_back(labels[source]);
      }
    }
  }
  neural::Tensor inputs(rows.size(), encoder_.feature_width());
  neural::Tensor targets(rows.size(), 1);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    inputs.SetRow(i, rows[i]);
    targets.At(i, 0) = labels[i];
  }
  double loss = 0.0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    loss = network_.TrainEpoch(inputs, targets, config_.batch_size);
  }
  trained_ = true;
  return loss;
}

double AnnFilter::BenignScore(const fsm::StateVector& trigger_state,
                              const fsm::MiniAction& mini,
                              int minute_of_day) const {
  return network_.PredictOne(
      encoder_.Encode(trigger_state, mini, minute_of_day))[0];
}

double AnnFilter::BenignScore(const fsm::TriggerAction& ta) const {
  const auto minis = FeatureEncoder::SplitAction(ta.action);
  if (minis.empty()) return 0.0;
  double score = 1.0;
  for (const auto& mini : minis) {
    score = std::min(score,
                     BenignScore(ta.trigger_state, mini, ta.minute_of_day));
  }
  return score;
}

util::JsonValue AnnFilter::ToJson() const {
  util::JsonObject obj;
  obj["trained"] = util::JsonValue(trained_);
  obj["network"] = neural::ToJson(network_);
  return util::JsonValue(std::move(obj));
}

void AnnFilter::LoadJson(const util::JsonValue& doc) {
  neural::Network restored = neural::FromJson(
      doc.At("network"), neural::Loss::kBinaryCrossEntropy,
      std::make_unique<neural::Sgd>(config_.learning_rate, 0.9),
      util::Rng(1));
  if (restored.input_features() != encoder_.feature_width()) {
    throw std::invalid_argument("AnnFilter::LoadJson: feature width mismatch");
  }
  if (restored.output_features() != 1) {
    // A benign-score network is a single-sigmoid head; any other width is
    // a corrupt or foreign document.
    throw std::invalid_argument("AnnFilter::LoadJson: output width mismatch");
  }
  network_ = std::move(restored);
  trained_ = doc.At("trained").AsBool();
}

double AnnFilter::Evaluate(
    const std::vector<sim::LabeledSample>& samples) const {
  if (samples.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& sample : samples) {
    const bool predicted = IsBenign(sample.ta);
    if (predicted == sample.benign_anomaly) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

}  // namespace jarvis::spl
