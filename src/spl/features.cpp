#include "spl/features.h"

#include <cmath>

namespace jarvis::spl {

FeatureEncoder::FeatureEncoder(const fsm::EnvironmentFsm& fsm)
    : fsm_(fsm),
      width_(fsm.codec().one_hot_width() + fsm.codec().mini_action_count() +
             2) {}

std::vector<double> FeatureEncoder::Encode(const fsm::StateVector& trigger_state,
                                           const fsm::MiniAction& mini,
                                           int minute_of_day) const {
  std::vector<double> features = fsm_.codec().OneHot(trigger_state);
  features.resize(width_, 0.0);

  const std::size_t action_offset = fsm_.codec().one_hot_width();
  features[action_offset + fsm_.codec().MiniActionSlot(mini)] = 1.0;

  const double phase = 2.0 * M_PI * static_cast<double>(minute_of_day) /
                       static_cast<double>(util::kMinutesPerDay);
  features[width_ - 2] = std::sin(phase);
  features[width_ - 1] = std::cos(phase);
  return features;
}

std::vector<fsm::MiniAction> FeatureEncoder::SplitAction(
    const fsm::ActionVector& action) {
  std::vector<fsm::MiniAction> minis;
  for (std::size_t i = 0; i < action.size(); ++i) {
    if (action[i] == fsm::kNoAction) continue;
    minis.push_back({static_cast<fsm::DeviceId>(i), action[i]});
  }
  return minis;
}

}  // namespace jarvis::spl
