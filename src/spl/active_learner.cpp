#include "spl/active_learner.h"

namespace jarvis::spl {

ActiveLearner::ActiveLearner(SafetyPolicyLearner& learner,
                             ActiveLearningConfig config)
    : learner_(learner), config_(config) {}

ActiveLearner::MemoryKey ActiveLearner::KeyFor(const fsm::StateVector& state,
                                               const fsm::MiniAction& mini,
                                               int minute_of_day) const {
  // Memory deliberately uses the same time granularity as the factored
  // P_safe keys, so one judgment covers the whole day-part.
  const auto& codec = learner_.fsm().codec();
  return {codec.Encode(state), codec.MiniActionSlot(mini),
          minute_of_day / kTimeBucketMinutes};
}

Verdict ActiveLearner::ReviewTransition(const fsm::StateVector& state,
                                        const fsm::MiniAction& mini,
                                        int minute_of_day,
                                        const UserOracle& oracle) {
  const Verdict current = learner_.ClassifyMini(state, mini, minute_of_day);
  if (current != Verdict::kViolation) return current;

  const MemoryKey key = KeyFor(state, mini, minute_of_day);
  if (approved_.count(key) > 0) {
    // Approved earlier but table not updated (should not happen; defensive).
    learner_.mutable_table().ForceAdmit(state, mini, minute_of_day);
    return Verdict::kSafe;
  }
  if (rejected_.count(key) > 0) return Verdict::kViolation;

  ++total_queries_;
  if (oracle(state, mini, minute_of_day) == UserJudgment::kApprove) {
    approved_.insert(key);
    learner_.mutable_table().ForceAdmit(state, mini, minute_of_day);
    return Verdict::kSafe;
  }
  rejected_.insert(key);
  return Verdict::kViolation;
}

bool ActiveLearner::IsConfirmedMalicious(const fsm::StateVector& state,
                                         const fsm::MiniAction& mini,
                                         int minute_of_day) const {
  return rejected_.count(KeyFor(state, mini, minute_of_day)) > 0;
}

ActiveLearningReport ActiveLearner::ReviewEpisode(const fsm::Episode& episode,
                                                  const UserOracle& oracle) {
  ActiveLearningReport report;
  const AuditResult audit = learner_.AuditEpisode(episode);
  for (const Flag& flag : audit.flags) {
    if (flag.verdict != Verdict::kViolation) continue;
    ++report.flags_seen;
    const auto& step =
        episode.steps()[static_cast<std::size_t>(flag.step_index)];
    const int minute = step.time.minute_of_day();
    const MemoryKey key = KeyFor(step.state, flag.mini, minute);
    if (approved_.count(key) > 0 || rejected_.count(key) > 0) {
      ++report.remembered;
      continue;
    }
    if (report.queried >= config_.max_queries_per_session) {
      ++report.skipped_budget;
      continue;
    }
    ++report.queried;
    ++total_queries_;
    if (oracle(step.state, flag.mini, minute) == UserJudgment::kApprove) {
      approved_.insert(key);
      learner_.mutable_table().ForceAdmit(step.state, flag.mini, minute);
      ++report.approved;
    } else {
      rejected_.insert(key);
      ++report.rejected;
    }
  }
  return report;
}

}  // namespace jarvis::spl
