#include "obs/tracer.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace jarvis::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::NowNs() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

Tracer::ThreadBuf& Tracer::BufForThisThread() {
  const std::thread::id self = std::this_thread::get_id();
  util::MutexLock lock(mutex_);
  auto it = buffers_.find(self);
  if (it == buffers_.end()) {
    auto buf = std::make_unique<ThreadBuf>();
    buf->thread_index = buffers_.size();
    it = buffers_.emplace(self, std::move(buf)).first;
  }
  return *it->second;
}

std::vector<SpanRecord> Tracer::Flush() {
  std::vector<SpanRecord> out;
  {
    util::MutexLock lock(mutex_);
    for (auto& [id, buf] : buffers_) {
      util::MutexLock buf_lock(buf->mutex);
      out.insert(out.end(), std::make_move_iterator(buf->records.begin()),
                 std::make_move_iterator(buf->records.end()));
      buf->records.clear();
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return std::tie(a.start_ns, a.thread_index, a.depth) <
                     std::tie(b.start_ns, b.thread_index, b.depth);
            });
  return out;
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name)
    : tracer_(tracer), name_(std::move(name)) {
  if (tracer_ == nullptr) return;
  buf_ = &tracer_->BufForThisThread();
  depth_ = buf_->depth;
  ++buf_->depth;
  start_ns_ = tracer_->NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end_ns = tracer_->NowNs();
  SpanRecord record;
  record.name = std::move(name_);
  record.thread_index = buf_->thread_index;
  record.depth = depth_;
  record.start_ns = start_ns_;
  record.duration_ns = end_ns - start_ns_;
  --buf_->depth;
  util::MutexLock lock(buf_->mutex);
  buf_->records.push_back(std::move(record));
}

util::JsonValue SpansToJson(const std::vector<SpanRecord>& spans) {
  util::JsonArray rows;
  rows.reserve(spans.size());
  for (const SpanRecord& span : spans) {
    util::JsonObject row;
    row["name"] = util::JsonValue(span.name);
    row["thread"] =
        util::JsonValue(static_cast<std::int64_t>(span.thread_index));
    row["depth"] = util::JsonValue(static_cast<std::int64_t>(span.depth));
    row["start_ns"] = util::JsonValue(static_cast<std::int64_t>(span.start_ns));
    row["duration_ns"] =
        util::JsonValue(static_cast<std::int64_t>(span.duration_ns));
    rows.emplace_back(std::move(row));
  }
  return util::JsonValue(std::move(rows));
}

}  // namespace jarvis::obs
