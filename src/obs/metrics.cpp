#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jarvis::obs {

namespace {

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds, Determinism determinism)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1),
      determinism_(determinism) {
  if (upper_bounds_.empty()) {
    throw std::invalid_argument(
        "obs::Histogram: need at least one finite bucket bound");
  }
  if (!std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()) ||
      std::adjacent_find(upper_bounds_.begin(), upper_bounds_.end()) !=
          upper_bounds_.end()) {
    throw std::invalid_argument(
        "obs::Histogram: bucket bounds must be strictly increasing");
  }
  for (double bound : upper_bounds_) {
    if (!std::isfinite(bound)) {
      throw std::invalid_argument(
          "obs::Histogram: bucket bounds must be finite (the +inf bucket is "
          "implicit)");
    }
  }
  // vector's value-initialization of std::atomic elements is not reliably
  // zeroing pre-P0883 library implementations; zero explicitly so buckets
  // never start from reused heap garbage.
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) {
    nan_ignored_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // First bucket whose upper bound is >= value; past-the-end = +inf bucket.
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const auto index =
      static_cast<std::size_t>(it - upper_bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double> kBounds = {
      10.0,     25.0,     50.0,     100.0,    250.0,    500.0,
      1000.0,   2500.0,   5000.0,   10000.0,  25000.0,  50000.0,
      100000.0, 250000.0, 500000.0, 1000000.0};
  return kBounds;
}

const std::vector<double>& DefaultBatchSizeBounds() {
  static const std::vector<double> kBounds = {1.0,  2.0,  4.0,   8.0,  16.0,
                                              32.0, 64.0, 128.0, 256.0};
  return kBounds;
}

Counter* Registry::GetCounter(const std::string& name,
                              Determinism determinism) {
  util::WriterMutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(
                                     determinism))).first;
  } else if (it->second->determinism_ != determinism) {
    throw std::invalid_argument("obs::Registry: counter '" + name +
                                "' re-registered with a different "
                                "determinism class");
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name, Determinism determinism) {
  util::WriterMutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(determinism)))
             .first;
  } else if (it->second->determinism_ != determinism) {
    throw std::invalid_argument("obs::Registry: gauge '" + name +
                                "' re-registered with a different "
                                "determinism class");
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> upper_bounds,
                                  Determinism determinism) {
  util::WriterMutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(
                                std::move(upper_bounds), determinism)))
             .first;
  } else if (it->second->determinism_ != determinism ||
             it->second->upper_bounds_ != upper_bounds) {
    throw std::invalid_argument("obs::Registry: histogram '" + name +
                                "' re-registered with different bounds or "
                                "determinism class");
  }
  return it->second.get();
}

Histogram* Registry::GetTimerUs(const std::string& name) {
  return GetHistogram(name, DefaultLatencyBoundsUs(), Determinism::kTiming);
}

MetricsSnapshot Registry::TakeSnapshot() const {
  util::ReaderMutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back(
        {name, counter->Value(),
         counter->determinism_ == Determinism::kStable});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back(
        {name, gauge->Value(), gauge->determinism_ == Determinism::kStable});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.upper_bounds = histogram->upper_bounds_;
    sample.bucket_counts.reserve(histogram->buckets_.size());
    for (const auto& bucket : histogram->buckets_) {
      sample.bucket_counts.push_back(bucket.load(std::memory_order_relaxed));
    }
    sample.count = histogram->count_.load(std::memory_order_relaxed);
    sample.sum = histogram->sum_.load(std::memory_order_relaxed);
    sample.nan_ignored =
        histogram->nan_ignored_.load(std::memory_order_relaxed);
    sample.deterministic = histogram->determinism_ == Determinism::kStable;
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

}  // namespace jarvis::obs
