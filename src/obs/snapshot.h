// Point-in-time export of an obs::Registry: plain-data samples of every
// registered counter, gauge, and histogram, with JSON and CSV writers
// reusing util::json / util::csv. Snapshots are value types — they can be
// compared (the golden-determinism tests do), filtered down to the
// deterministic subset, and merged across registries (fleet aggregation
// sums per-tenant snapshots).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace jarvis::obs {

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  // True when the value is a pure function of the seeded computation;
  // false for wall-clock / scheduling dependent instruments (timers,
  // queue depths). See Determinism in obs/metrics.h.
  bool deterministic = true;

  bool operator==(const CounterSample&) const = default;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
  bool deterministic = true;

  bool operator==(const GaugeSample&) const = default;
};

struct HistogramSample {
  std::string name;
  // Finite bucket upper bounds (inclusive), strictly increasing; an
  // implicit +inf bucket follows, so bucket_counts has one more entry.
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;      // observations binned (NaN excluded)
  double sum = 0.0;             // sum of binned observations
  std::uint64_t nan_ignored = 0;
  bool deterministic = true;

  bool operator==(const HistogramSample&) const = default;
};

struct MetricsSnapshot {
  // Each vector is sorted by name (the registry iterates a std::map).
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // The subset whose values must be bit-identical across reruns of the
  // same seeded workload — what determinism tests compare. Timing-derived
  // instruments are excluded.
  MetricsSnapshot DeterministicOnly() const;

  // Lookup helpers; throw std::out_of_range when the name is absent.
  std::uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  const HistogramSample& FindHistogram(const std::string& name) const;
  bool HasCounter(const std::string& name) const;

  // Element-wise sum across snapshots: counters/gauges/histogram buckets
  // add by name (union of names); histograms sharing a name must share
  // bucket bounds (std::invalid_argument otherwise). A metric that is
  // nondeterministic in any part is nondeterministic in the merge.
  static MetricsSnapshot Merge(const std::vector<MetricsSnapshot>& parts);

  // {"counters": [...], "gauges": [...], "histograms": [...]}.
  util::JsonValue ToJson() const;
  // Rows of name,kind,le,value,deterministic; histograms expand into
  // hist_count / hist_sum / hist_bucket rows (le = bucket upper bound).
  std::string ToCsv() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

}  // namespace jarvis::obs
