// Thread-safe, low-overhead metrics: a Registry of named counters, gauges,
// and fixed-bucket histograms. Registration (name -> instrument) takes a
// mutex; the hot path — Increment / Set / Observe — is pure atomics, no
// locks, so instrumented inner loops (DQN replay, batched inference) pay a
// few relaxed atomic RMWs at most.
//
// Ownership and lifetime: instruments are owned by the Registry and live
// until it is destroyed; Get* returns stable raw pointers that components
// cache at wiring time (SetMetrics). There is deliberately no global
// default registry — tools/lint.py bans mutable static state repo-wide —
// so every pipeline owner (core::Jarvis, runtime::Fleet, tests, benches)
// holds its own instance and threads pointers down. A null instrument
// pointer means "not wired": all cached-pointer call sites null-check, so
// an unwired component runs the exact uninstrumented code path.
//
// Determinism: every instrument declares whether its value is a pure
// function of the seeded computation (kStable: event counts, loss
// histograms) or depends on wall clock / scheduling (kTiming: latency
// timers, queue depths). MetricsSnapshot::DeterministicOnly() filters on
// this flag, which is what lets golden-snapshot tests compare reruns
// exactly while timing instruments keep ticking.
//
// Compile-out: building with -DJARVIS_OBS_OFF makes JARVIS_OBS_ONLY(...)
// expand to nothing, deleting hot-loop instrumentation statements at
// preprocessing time. bench_obs measures the runtime (null-pointer) path
// against an uninstrumented baseline to pin the enabled overhead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/snapshot.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

#ifdef JARVIS_OBS_OFF
#define JARVIS_OBS_ONLY(...)
#else
#define JARVIS_OBS_ONLY(...) __VA_ARGS__
#endif

namespace jarvis::obs {

// Whether an instrument's value is reproducible across reruns of the same
// seeded workload. See the header comment and DESIGN.md §11.
enum class Determinism {
  kStable,  // pure function of the seeded computation
  kTiming,  // wall-clock or scheduling dependent
};

// Monotonic event count. Increment is a relaxed fetch_add — safe from any
// thread, never a lock.
class Counter {
 public:
  void Increment(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Counter(Determinism determinism) : determinism_(determinism) {}

  std::atomic<std::uint64_t> value_{0};
  Determinism determinism_;
};

// Last-write-wins double (Set) with an additive mode (Add). Add uses a CAS
// loop rather than C++20 atomic<double>::fetch_add for toolchain
// portability; contention on gauges is negligible (they are set at stage
// boundaries, not in inner loops).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Gauge(Determinism determinism) : determinism_(determinism) {}

  std::atomic<double> value_{0.0};
  Determinism determinism_;
};

// Fixed-bucket histogram: bucket i counts observations x <= upper_bounds[i]
// (Prometheus "le" convention), with an implicit +inf bucket last. Bounds
// are fixed at registration — the bucket array is never resized, so
// Observe is bounds lookup + two relaxed atomic RMWs (bucket count, total
// count) + one CAS-add (sum). NaN observations are counted separately and
// excluded from count/sum — they would otherwise poison the sum and make
// bucket choice undefined.
class Histogram {
 public:
  void Observe(double value);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

 private:
  friend class Registry;
  Histogram(std::vector<double> upper_bounds, Determinism determinism);

  std::vector<double> upper_bounds_;
  // One atomic per finite bound plus the +inf overflow bucket.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> nan_ignored_{0};
  std::atomic<double> sum_{0.0};
  Determinism determinism_;
};

// Default bucket bounds for microsecond latency timers: 10µs .. 1s.
const std::vector<double>& DefaultLatencyBoundsUs();

// Default bucket bounds for batch-size histograms (rows per coalesced
// forward pass): powers of two, 1 .. 256. Shared by every batched-inference
// instrument (neural.predict_batch.rows, runtime.agg.batch_rows) so the
// fleet's amortization statistics are comparable across layers.
const std::vector<double>& DefaultBatchSizeBounds();

// Named-instrument registry. Get* registers on first use and returns the
// existing instrument afterwards (the Determinism flag and bounds must
// match on re-lookup; std::invalid_argument otherwise — two call sites
// disagreeing about one name is a wiring bug). Get* takes the registry
// mutex and is meant for wiring time; cache the returned pointer for hot
// paths. TakeSnapshot is safe concurrently with increments — it reads the
// atomics relaxed, so a snapshot taken mid-update is a valid point-in-time
// sample of each instrument independently.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name,
                      Determinism determinism = Determinism::kStable)
      JARVIS_EXCLUDES(mutex_);
  Gauge* GetGauge(const std::string& name,
                  Determinism determinism = Determinism::kStable)
      JARVIS_EXCLUDES(mutex_);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds,
                          Determinism determinism = Determinism::kStable)
      JARVIS_EXCLUDES(mutex_);
  // Microsecond latency histogram with DefaultLatencyBoundsUs(), always
  // kTiming (a wall-clock measurement is never deterministic).
  Histogram* GetTimerUs(const std::string& name) JARVIS_EXCLUDES(mutex_);

  MetricsSnapshot TakeSnapshot() const JARVIS_EXCLUDES(mutex_);

 private:
  // Reader/writer split: registration (Get*) is exclusive, snapshotting is
  // shared — concurrent TakeSnapshot callers never serialize each other,
  // and the instrument atomics themselves are read lock-free either way.
  mutable util::SharedMutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      JARVIS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      JARVIS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      JARVIS_GUARDED_BY(mutex_);
};

// RAII wall-clock timer feeding a (nullable) histogram in microseconds.
// Null histogram → no clock read at all, so unwired call sites cost one
// pointer test. Used via JARVIS_OBS_ONLY in hot loops so the OFF build
// compiles the timer out entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->Observe(
          std::chrono::duration<double, std::micro>(elapsed).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace jarvis::obs
