// Span tracing: nested, named wall-clock intervals recorded from any
// thread, merged into one ordered list at flush. The shape of a fleet run
// ("tenant.3" > "workload" > "learn" > ...) falls out of RAII ScopedSpans
// opened down the call stack.
//
// Per-thread buffers: each recording thread gets its own buffer (created on
// first use, found via a mutex-protected map keyed by std::this_thread ——
// NOT thread_local, which tools/lint.py bans as mutable static state).
// Appends touch only the owning thread's buffer under that buffer's own
// mutex, so recording threads never contend with each other; Flush locks
// each buffer in turn, drains it, and merges by start time. Span depth is
// tracked per buffer and only ever touched by the owning thread.
//
// Determinism: spans are wall-clock measurements — inherently kTiming.
// Golden tests compare span *structure* (names, nesting, counts), never
// durations. Like the Registry, a null Tracer* is the disabled state: a
// ScopedSpan constructed with nullptr does nothing, not even a clock read.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jarvis::obs {

// One completed span. start_ns is relative to the Tracer's construction
// (steady clock), so records from one tracer are mutually comparable.
struct SpanRecord {
  std::string name;
  // Dense per-tracer index of the recording thread (order of first use),
  // stable across a run — used for grouping, not identification.
  std::size_t thread_index = 0;
  // Nesting depth at open: 0 for a root span, 1 for its children, ...
  std::size_t depth = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

class ScopedSpan;

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Drains every thread's buffer and returns all completed spans sorted by
  // (start_ns, thread_index, depth). Call between phases or at shutdown —
  // concurrent recording during a flush is safe but a span completing
  // mid-flush may land in the next flush.
  std::vector<SpanRecord> Flush() JARVIS_EXCLUDES(mutex_);

 private:
  friend class ScopedSpan;

  struct ThreadBuf {
    util::Mutex mutex;
    // Dense index and open-span nesting: thread_index is fixed at
    // creation; depth is touched only by the owning thread, read/written
    // without the buffer mutex (never looked at by Flush).
    std::size_t thread_index = 0;
    std::size_t depth = 0;
    std::vector<SpanRecord> records JARVIS_GUARDED_BY(mutex);
  };

  // Buffer for the calling thread, created on first use. The returned
  // reference outlives the lock: buffers are heap-allocated and never
  // erased while the tracer lives.
  ThreadBuf& BufForThisThread() JARVIS_EXCLUDES(mutex_);
  std::uint64_t NowNs() const;

  const std::chrono::steady_clock::time_point epoch_;  // unguarded: fixed at construction
  // Guards the buffers_ map shape, not buffer contents. Lock order when
  // both are held (Flush only): mutex_ first, then each buffer's mutex.
  mutable util::Mutex mutex_;
  std::map<std::thread::id, std::unique_ptr<ThreadBuf>> buffers_
      JARVIS_GUARDED_BY(mutex_);
};

// Opens a span on construction, records it on destruction. Null tracer →
// fully inert. Non-copyable, non-movable: a span belongs to one scope on
// one thread.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  Tracer::ThreadBuf* buf_ = nullptr;
  std::string name_;
  std::size_t depth_ = 0;
  std::uint64_t start_ns_ = 0;
};

// [{"name": ..., "thread": ..., "depth": ..., "start_ns": ...,
//   "duration_ns": ...}, ...] — for the CLI / debugging dumps.
util::JsonValue SpansToJson(const std::vector<SpanRecord>& spans);

}  // namespace jarvis::obs
