#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "util/csv.h"

namespace jarvis::obs {

namespace {

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::DeterministicOnly() const {
  MetricsSnapshot out;
  for (const auto& sample : counters) {
    if (sample.deterministic) out.counters.push_back(sample);
  }
  for (const auto& sample : gauges) {
    if (sample.deterministic) out.gauges.push_back(sample);
  }
  for (const auto& sample : histograms) {
    if (sample.deterministic) out.histograms.push_back(sample);
  }
  return out;
}

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& sample : counters) {
    if (sample.name == name) return sample.value;
  }
  throw std::out_of_range("MetricsSnapshot: no counter named " + name);
}

bool MetricsSnapshot::HasCounter(const std::string& name) const {
  return std::any_of(
      counters.begin(), counters.end(),
      [&name](const CounterSample& sample) { return sample.name == name; });
}

double MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& sample : gauges) {
    if (sample.name == name) return sample.value;
  }
  throw std::out_of_range("MetricsSnapshot: no gauge named " + name);
}

const HistogramSample& MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& sample : histograms) {
    if (sample.name == name) return sample;
  }
  throw std::out_of_range("MetricsSnapshot: no histogram named " + name);
}

MetricsSnapshot MetricsSnapshot::Merge(
    const std::vector<MetricsSnapshot>& parts) {
  std::map<std::string, CounterSample> counters;
  std::map<std::string, GaugeSample> gauges;
  std::map<std::string, HistogramSample> histograms;
  for (const auto& part : parts) {
    for (const auto& sample : part.counters) {
      auto [it, inserted] = counters.emplace(sample.name, sample);
      if (inserted) continue;
      it->second.value += sample.value;
      it->second.deterministic &= sample.deterministic;
    }
    for (const auto& sample : part.gauges) {
      auto [it, inserted] = gauges.emplace(sample.name, sample);
      if (inserted) continue;
      it->second.value += sample.value;
      it->second.deterministic &= sample.deterministic;
    }
    for (const auto& sample : part.histograms) {
      auto [it, inserted] = histograms.emplace(sample.name, sample);
      if (inserted) continue;
      HistogramSample& merged = it->second;
      if (merged.upper_bounds != sample.upper_bounds) {
        throw std::invalid_argument(
            "MetricsSnapshot::Merge: histogram '" + sample.name +
            "' has mismatched bucket bounds across parts");
      }
      for (std::size_t i = 0; i < merged.bucket_counts.size(); ++i) {
        merged.bucket_counts[i] += sample.bucket_counts[i];
      }
      merged.count += sample.count;
      merged.sum += sample.sum;
      merged.nan_ignored += sample.nan_ignored;
      merged.deterministic &= sample.deterministic;
    }
  }
  MetricsSnapshot out;
  for (auto& [name, sample] : counters) out.counters.push_back(sample);
  for (auto& [name, sample] : gauges) out.gauges.push_back(sample);
  for (auto& [name, sample] : histograms) out.histograms.push_back(sample);
  return out;
}

util::JsonValue MetricsSnapshot::ToJson() const {
  util::JsonArray counter_rows;
  for (const auto& sample : counters) {
    util::JsonObject row;
    row["name"] = util::JsonValue(sample.name);
    row["value"] = util::JsonValue(static_cast<std::int64_t>(sample.value));
    row["deterministic"] = util::JsonValue(sample.deterministic);
    counter_rows.emplace_back(std::move(row));
  }
  util::JsonArray gauge_rows;
  for (const auto& sample : gauges) {
    util::JsonObject row;
    row["name"] = util::JsonValue(sample.name);
    row["value"] = util::JsonValue(sample.value);
    row["deterministic"] = util::JsonValue(sample.deterministic);
    gauge_rows.emplace_back(std::move(row));
  }
  util::JsonArray histogram_rows;
  for (const auto& sample : histograms) {
    util::JsonObject row;
    row["name"] = util::JsonValue(sample.name);
    row["deterministic"] = util::JsonValue(sample.deterministic);
    row["count"] = util::JsonValue(static_cast<std::int64_t>(sample.count));
    row["sum"] = util::JsonValue(sample.sum);
    row["nan_ignored"] =
        util::JsonValue(static_cast<std::int64_t>(sample.nan_ignored));
    util::JsonArray bounds;
    for (double bound : sample.upper_bounds) {
      bounds.emplace_back(bound);
    }
    row["upper_bounds"] = util::JsonValue(std::move(bounds));
    util::JsonArray buckets;
    for (std::uint64_t bucket : sample.bucket_counts) {
      buckets.emplace_back(static_cast<std::int64_t>(bucket));
    }
    row["bucket_counts"] = util::JsonValue(std::move(buckets));
    histogram_rows.emplace_back(std::move(row));
  }
  util::JsonObject doc;
  doc["counters"] = util::JsonValue(std::move(counter_rows));
  doc["gauges"] = util::JsonValue(std::move(gauge_rows));
  doc["histograms"] = util::JsonValue(std::move(histogram_rows));
  return util::JsonValue(std::move(doc));
}

std::string MetricsSnapshot::ToCsv() const {
  util::CsvWriter writer({"name", "kind", "le", "value", "deterministic"});
  const auto det = [](bool deterministic) {
    return std::string(deterministic ? "1" : "0");
  };
  for (const auto& sample : counters) {
    writer.AddRow({sample.name, "counter", "", std::to_string(sample.value),
                   det(sample.deterministic)});
  }
  for (const auto& sample : gauges) {
    writer.AddRow({sample.name, "gauge", "", FormatDouble(sample.value),
                   det(sample.deterministic)});
  }
  for (const auto& sample : histograms) {
    writer.AddRow({sample.name, "hist_count", "", std::to_string(sample.count),
                   det(sample.deterministic)});
    writer.AddRow({sample.name, "hist_sum", "", FormatDouble(sample.sum),
                   det(sample.deterministic)});
    for (std::size_t i = 0; i < sample.bucket_counts.size(); ++i) {
      const std::string le = i < sample.upper_bounds.size()
                                 ? FormatDouble(sample.upper_bounds[i])
                                 : "+inf";
      writer.AddRow({sample.name, "hist_bucket", le,
                     std::to_string(sample.bucket_counts[i]),
                     det(sample.deterministic)});
    }
  }
  return writer.ToString();
}

}  // namespace jarvis::obs
