// Benefit-space analyses behind the paper's evaluation figures:
//
//   * FunctionalitySweep — Figs. 6/7/8: for each weight f_j in [0.1, 0.9],
//     compare normal user behavior against the Jarvis-optimized policy on
//     sampled days, per functionality (energy kWh, cost $, temperature
//     error). The span between the two curves is the safe benefit space.
//   * ExplorationComparison — Fig. 9: constrained vs unconstrained
//     exploration — episode rewards and safety violations per episode; the
//     violation-bearing surplus is the unsafe benefit space.
#pragma once

#include <string>
#include <vector>

#include "core/jarvis.h"
#include "sim/smartstar.h"

namespace jarvis::core {

struct SweepPoint {
  double f_value = 0.0;       // the focused functionality weight
  double normal_mean = 0.0;   // metric under normal behavior (mean over days)
  double jarvis_mean = 0.0;   // metric under Jarvis (mean over days)
  double normal_stddev = 0.0;
  double jarvis_stddev = 0.0;
  std::size_t violations = 0; // total across days (0 expected: constrained)
};

struct SweepConfig {
  std::string focus = "energy";       // "energy" | "cost" | "temp"
  std::vector<double> f_values = {0.1, 0.3, 0.5, 0.7, 0.9};
  int days = 5;                        // days sampled per point
  std::uint64_t day_sample_seed = 77;
};

// Runs the sweep on days drawn from the Smart*-style dataset. `jarvis`
// must already have completed its learning phase.
std::vector<SweepPoint> FunctionalitySweep(Jarvis& jarvis,
                                           const sim::SmartStarDataset& data,
                                           const SweepConfig& config);

// Extracts the compared metric for a day by focus name.
double MetricFor(const std::string& focus, const sim::DayMetrics& metrics);

struct ExplorationPoint {
  int episode = 0;
  double constrained_reward = 0.0;
  double unconstrained_reward = 0.0;
  std::size_t unconstrained_violations = 0;
  std::size_t constrained_violations = 0;  // 0 by construction
};

struct ExplorationConfig {
  int episodes = 12;
  rl::RewardWeights weights;
  std::uint64_t seed = 5150;
};

// Trains one constrained and one unconstrained agent on the same day and
// reports per-episode rewards and violations (Fig. 9's two regions).
std::vector<ExplorationPoint> ExplorationComparison(
    const fsm::EnvironmentFsm& fsm, const spl::SafetyPolicyLearner& learner,
    const sim::DayTrace& natural, const JarvisConfig& config,
    const ExplorationConfig& exploration);

}  // namespace jarvis::core
