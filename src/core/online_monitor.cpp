#include "core/online_monitor.h"

#include <stdexcept>

#include "util/json.h"

namespace jarvis::core {

namespace {

std::size_t MonitorCount(const util::JsonValue& counters, const char* key) {
  const std::int64_t value = counters.At(key).AsInt();
  if (value < 0) {
    throw util::JsonError(std::string("OnlineMonitor::LoadJson: negative "
                                      "counter '") +
                          key + "'");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

OnlineMonitor::OnlineMonitor(const fsm::EnvironmentFsm& fsm,
                             const spl::SafetyPolicyLearner& learner,
                             fsm::StateVector initial_state,
                             MonitorConfig config)
    : fsm_(fsm),
      learner_(learner),
      state_(std::move(initial_state)),
      config_(config),
      last_seen_(fsm.device_count()),
      state_known_(fsm.device_count(), true),
      stale_flagged_(fsm.device_count(), false) {
  fsm_.ValidateState(state_);
  if (!learner_.learned()) {
    throw std::invalid_argument("OnlineMonitor: learner not learned");
  }
}

void OnlineMonitor::SetMetrics(obs::Registry* registry) {
  if (registry == nullptr) {
    decisions_counter_ = nullptr;
    allowed_counter_ = nullptr;
    denied_counter_ = nullptr;
    benign_counter_ = nullptr;
    failsafe_counter_ = nullptr;
    unknown_events_counter_ = nullptr;
    staleness_counter_ = nullptr;
    return;
  }
  decisions_counter_ = registry->GetCounter("core.monitor.decisions");
  allowed_counter_ = registry->GetCounter("core.monitor.allowed");
  denied_counter_ = registry->GetCounter("core.monitor.denied");
  benign_counter_ = registry->GetCounter("core.monitor.benign_anomalies");
  failsafe_counter_ = registry->GetCounter("core.monitor.failsafe_denials");
  unknown_events_counter_ =
      registry->GetCounter("core.monitor.unknown_events");
  staleness_counter_ =
      registry->GetCounter("core.monitor.staleness_transitions");
}

void OnlineMonitor::MarkStateUnknown(std::size_t device_index) {
  if (device_index < state_known_.size()) {
    if (state_known_[device_index] && staleness_counter_ != nullptr) {
      staleness_counter_->Increment();
    }
    state_known_[device_index] = false;
  }
}

void OnlineMonitor::MarkAllStatesUnknown() {
  for (std::size_t i = 0; i < state_known_.size(); ++i) MarkStateUnknown(i);
}

util::JsonValue OnlineMonitor::ToJson() const {
  util::JsonObject obj;
  util::JsonArray state;
  state.reserve(state_.size());
  for (const int value : state_) state.emplace_back(std::int64_t{value});
  obj["state"] = util::JsonValue(std::move(state));
  util::JsonArray last_seen;
  last_seen.reserve(last_seen_.size());
  for (const auto& seen : last_seen_) {
    // null = no accepted event yet (the constructor-supplied state is
    // still the trusted baseline).
    last_seen.push_back(seen ? util::JsonValue(seen->minutes())
                             : util::JsonValue());
  }
  obj["last_seen"] = util::JsonValue(std::move(last_seen));
  util::JsonArray known;
  known.reserve(state_known_.size());
  for (const bool bit : state_known_) known.emplace_back(bit);
  obj["state_known"] = util::JsonValue(std::move(known));
  util::JsonObject counters;
  counters["events_consumed"] =
      util::JsonValue(static_cast<std::int64_t>(events_consumed_));
  counters["commands_classified"] =
      util::JsonValue(static_cast<std::int64_t>(commands_classified_));
  counters["violations"] =
      util::JsonValue(static_cast<std::int64_t>(violations_));
  counters["benign_anomalies"] =
      util::JsonValue(static_cast<std::int64_t>(benign_anomalies_));
  counters["unknown_events"] =
      util::JsonValue(static_cast<std::int64_t>(unknown_events_));
  counters["stale_denials"] =
      util::JsonValue(static_cast<std::int64_t>(stale_denials_));
  counters["unknown_state_denials"] =
      util::JsonValue(static_cast<std::int64_t>(unknown_state_denials_));
  obj["counters"] = util::JsonValue(std::move(counters));
  return util::JsonValue(std::move(obj));
}

void OnlineMonitor::LoadJson(const util::JsonValue& doc) {
  const auto& state_doc = doc.At("state").AsArray();
  const auto& seen_doc = doc.At("last_seen").AsArray();
  const auto& known_doc = doc.At("state_known").AsArray();
  if (state_doc.size() != fsm_.device_count() ||
      seen_doc.size() != fsm_.device_count() ||
      known_doc.size() != fsm_.device_count()) {
    throw util::JsonError(
        "OnlineMonitor::LoadJson: device count does not match this home");
  }
  // Stage everything, then commit: a hostile document must not leave the
  // monitor with a half-replaced tracked state.
  fsm::StateVector state;
  state.reserve(state_doc.size());
  for (const auto& value : state_doc) {
    state.push_back(static_cast<int>(value.AsInt()));
  }
  fsm_.ValidateState(state);  // CheckError on out-of-range device states
  std::vector<std::optional<util::SimTime>> last_seen;
  last_seen.reserve(seen_doc.size());
  for (const auto& value : seen_doc) {
    if (value.is_null()) {
      last_seen.emplace_back(std::nullopt);
    } else {
      last_seen.emplace_back(util::SimTime(value.AsInt()));
    }
  }
  std::vector<bool> known;
  known.reserve(known_doc.size());
  for (const auto& bit : known_doc) known.push_back(bit.AsBool());
  const util::JsonValue& counters = doc.At("counters");
  const std::size_t events_consumed = MonitorCount(counters, "events_consumed");
  const std::size_t commands_classified =
      MonitorCount(counters, "commands_classified");
  const std::size_t violations = MonitorCount(counters, "violations");
  const std::size_t benign_anomalies =
      MonitorCount(counters, "benign_anomalies");
  const std::size_t unknown_events = MonitorCount(counters, "unknown_events");
  const std::size_t stale_denials = MonitorCount(counters, "stale_denials");
  const std::size_t unknown_state_denials =
      MonitorCount(counters, "unknown_state_denials");
  state_ = std::move(state);
  last_seen_ = std::move(last_seen);
  state_known_ = std::move(known);
  stale_flagged_.assign(fsm_.device_count(), false);
  events_consumed_ = events_consumed;
  commands_classified_ = commands_classified;
  violations_ = violations;
  benign_anomalies_ = benign_anomalies;
  unknown_events_ = unknown_events;
  stale_denials_ = stale_denials;
  unknown_state_denials_ = unknown_state_denials;
}

bool OnlineMonitor::StateUntrusted(std::size_t device_index,
                                   util::SimTime now) const {
  if (!config_.fail_safe) return false;
  if (!state_known_[device_index]) return true;
  if (config_.staleness_limit_minutes > 0 && last_seen_[device_index] &&
      now - *last_seen_[device_index] > config_.staleness_limit_minutes) {
    return true;
  }
  return false;
}

std::optional<spl::Verdict> OnlineMonitor::Consume(const events::Event& event) {
  ++events_consumed_;

  const fsm::Device* device = nullptr;
  std::size_t device_index = 0;
  for (std::size_t i = 0; i < fsm_.device_count(); ++i) {
    if (fsm_.devices()[i].label() == event.device_label) {
      device = &fsm_.devices()[i];
      device_index = i;
      break;
    }
  }
  if (device == nullptr) {
    ++unknown_events_;
    if (unknown_events_counter_ != nullptr) {
      unknown_events_counter_->Increment();
    }
    return std::nullopt;
  }

  if (event.command.empty()) {
    // Sensor reading: update the tracked state.
    const auto new_state = device->FindState(event.attribute_value);
    if (!new_state) {
      ++unknown_events_;
      if (unknown_events_counter_ != nullptr) {
        unknown_events_counter_->Increment();
      }
      // A report arrived but is undecodable (e.g. corrupted in transit):
      // under fail-safe the device's tracked state can no longer be
      // trusted until the next good report.
      if (config_.fail_safe) {
        if (state_known_[device_index] && staleness_counter_ != nullptr) {
          staleness_counter_->Increment();
        }
        state_known_[device_index] = false;
      }
      return std::nullopt;
    }
    state_[device_index] = *new_state;
    state_known_[device_index] = true;
    stale_flagged_[device_index] = false;
    last_seen_[device_index] = event.date;
    return std::nullopt;
  }

  const auto action = device->FindAction(event.command);
  if (!action) {
    ++unknown_events_;
    if (unknown_events_counter_ != nullptr) {
      unknown_events_counter_->Increment();
    }
    return std::nullopt;
  }

  const fsm::MiniAction mini{static_cast<fsm::DeviceId>(device_index),
                             *action};

  // Fail-safe: deny-unsafe-by-default. A command on a device whose tracked
  // state is unknown or stale cannot be classified against a trusted
  // context — report it as a violation but count it separately: it is a
  // trust failure, not a learner classification.
  if (StateUntrusted(device_index, event.date)) {
    if (!state_known_[device_index]) {
      ++unknown_state_denials_;
    } else {
      ++stale_denials_;
      // The staleness clock just expired on a still-decodable state: that
      // is a trust transition, counted once per trust period.
      if (!stale_flagged_[device_index]) {
        stale_flagged_[device_index] = true;
        if (staleness_counter_ != nullptr) staleness_counter_->Increment();
      }
    }
    if (decisions_counter_ != nullptr) {
      decisions_counter_->Increment();
      denied_counter_->Increment();
      failsafe_counter_->Increment();
    }
    if (callback_) {
      callback_({event.date, mini, spl::Verdict::kViolation, device->label(),
                 device->action_name(*action)});
    }
    return spl::Verdict::kViolation;
  }

  const spl::Verdict verdict =
      learner_.ClassifyMini(state_, mini, event.date.minute_of_day());
  ++commands_classified_;
  if (verdict != spl::Verdict::kSafe && callback_) {
    callback_({event.date, mini, verdict, device->label(),
               device->action_name(*action)});
  }
  switch (verdict) {
    case spl::Verdict::kViolation:
      ++violations_;
      break;
    case spl::Verdict::kBenignAnomaly:
      ++benign_anomalies_;
      break;
    case spl::Verdict::kSafe:
      break;
  }
  if (decisions_counter_ != nullptr) {
    decisions_counter_->Increment();
    switch (verdict) {
      case spl::Verdict::kSafe:
        allowed_counter_->Increment();
        break;
      case spl::Verdict::kBenignAnomaly:
        benign_counter_->Increment();
        break;
      case spl::Verdict::kViolation:
        denied_counter_->Increment();
        break;
    }
  }

  // Track the state transition the command causes (whether or not it was
  // flagged: the monitor observes, enforcement is the RL environment's
  // job).
  state_[device_index] = device->Transition(state_[device_index], *action);
  last_seen_[device_index] = event.date;
  return verdict;
}

events::SubscriptionId OnlineMonitor::Attach(events::EventBus& bus,
                                             AlertCallback callback) {
  callback_ = std::move(callback);
  return bus.Subscribe("", "",
                       [this](const events::Event& event) { Consume(event); });
}

}  // namespace jarvis::core
