#include "core/online_monitor.h"

#include <stdexcept>

namespace jarvis::core {

OnlineMonitor::OnlineMonitor(const fsm::EnvironmentFsm& fsm,
                             const spl::SafetyPolicyLearner& learner,
                             fsm::StateVector initial_state,
                             MonitorConfig config)
    : fsm_(fsm),
      learner_(learner),
      state_(std::move(initial_state)),
      config_(config),
      last_seen_(fsm.device_count()),
      state_known_(fsm.device_count(), true) {
  fsm_.ValidateState(state_);
  if (!learner_.learned()) {
    throw std::invalid_argument("OnlineMonitor: learner not learned");
  }
}

void OnlineMonitor::MarkStateUnknown(std::size_t device_index) {
  if (device_index < state_known_.size()) {
    state_known_[device_index] = false;
  }
}

bool OnlineMonitor::StateUntrusted(std::size_t device_index,
                                   util::SimTime now) const {
  if (!config_.fail_safe) return false;
  if (!state_known_[device_index]) return true;
  if (config_.staleness_limit_minutes > 0 && last_seen_[device_index] &&
      now - *last_seen_[device_index] > config_.staleness_limit_minutes) {
    return true;
  }
  return false;
}

std::optional<spl::Verdict> OnlineMonitor::Consume(const events::Event& event) {
  ++events_consumed_;

  const fsm::Device* device = nullptr;
  std::size_t device_index = 0;
  for (std::size_t i = 0; i < fsm_.device_count(); ++i) {
    if (fsm_.devices()[i].label() == event.device_label) {
      device = &fsm_.devices()[i];
      device_index = i;
      break;
    }
  }
  if (device == nullptr) {
    ++unknown_events_;
    return std::nullopt;
  }

  if (event.command.empty()) {
    // Sensor reading: update the tracked state.
    const auto new_state = device->FindState(event.attribute_value);
    if (!new_state) {
      ++unknown_events_;
      // A report arrived but is undecodable (e.g. corrupted in transit):
      // under fail-safe the device's tracked state can no longer be
      // trusted until the next good report.
      if (config_.fail_safe) state_known_[device_index] = false;
      return std::nullopt;
    }
    state_[device_index] = *new_state;
    state_known_[device_index] = true;
    last_seen_[device_index] = event.date;
    return std::nullopt;
  }

  const auto action = device->FindAction(event.command);
  if (!action) {
    ++unknown_events_;
    return std::nullopt;
  }

  const fsm::MiniAction mini{static_cast<fsm::DeviceId>(device_index),
                             *action};

  // Fail-safe: deny-unsafe-by-default. A command on a device whose tracked
  // state is unknown or stale cannot be classified against a trusted
  // context — report it as a violation but count it separately: it is a
  // trust failure, not a learner classification.
  if (StateUntrusted(device_index, event.date)) {
    if (!state_known_[device_index]) {
      ++unknown_state_denials_;
    } else {
      ++stale_denials_;
    }
    if (callback_) {
      callback_({event.date, mini, spl::Verdict::kViolation, device->label(),
                 device->action_name(*action)});
    }
    return spl::Verdict::kViolation;
  }

  const spl::Verdict verdict =
      learner_.ClassifyMini(state_, mini, event.date.minute_of_day());
  ++commands_classified_;
  if (verdict != spl::Verdict::kSafe && callback_) {
    callback_({event.date, mini, verdict, device->label(),
               device->action_name(*action)});
  }
  switch (verdict) {
    case spl::Verdict::kViolation:
      ++violations_;
      break;
    case spl::Verdict::kBenignAnomaly:
      ++benign_anomalies_;
      break;
    case spl::Verdict::kSafe:
      break;
  }

  // Track the state transition the command causes (whether or not it was
  // flagged: the monitor observes, enforcement is the RL environment's
  // job).
  state_[device_index] = device->Transition(state_[device_index], *action);
  last_seen_[device_index] = event.date;
  return verdict;
}

events::SubscriptionId OnlineMonitor::Attach(events::EventBus& bus,
                                             AlertCallback callback) {
  callback_ = std::move(callback);
  return bus.Subscribe("", "",
                       [this](const events::Event& event) { Consume(event); });
}

}  // namespace jarvis::core
