// The Jarvis facade: the library's primary public API, wiring the paper's
// pipeline together (Fig. 3):
//
//   1. Logging — device events flow through the pub/sub bus into the
//      logger app (events::).
//   2. Parsing — logs normalize into the FSM state model and cut into
//      learning episodes (events::LogParser).
//   3. Security policy learning — Algorithm 1 builds P_safe with the ANN
//      benign-anomaly filter (spl::SafetyPolicyLearner).
//   4. Optimization — Algorithm 2 trains a constrained DQN per upcoming
//      episode against R_smart (rl::).
//
// Typical use:
//
//   jarvis::core::Jarvis jarvis(home, config);
//   jarvis.LearnFromEvents(log_events, initial_state, start_time, labeled);
//   auto plan = jarvis.OptimizeDay(todays_natural_trace, weights);
//   auto action = jarvis.SuggestAction();   // best safe action now
//
// Concurrency contract (audited for the fleet runtime; see DESIGN.md §10):
// a Jarvis instance owns all of its mutable state — learner, health
// counters, trained agent — and shares only the const EnvironmentFsm& it
// was constructed with. The class keeps no static or global mutable state
// (tools/lint.py enforces this repo-wide), so distinct instances may run
// their full learn→optimize pipelines concurrently with no locking. One
// instance is single-writer: LearnFromEvents / OptimizeDay must not race
// each other, while const members (SuggestAction, Audit, Health) are safe
// to call concurrently between mutations.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/health.h"
#include "core/online_monitor.h"
#include "events/logger_app.h"
#include "events/parser.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "persist/checkpoint.h"
#include "rl/trainer.h"
#include "sim/resident.h"
#include "spl/learner.h"
#include "util/io.h"

namespace jarvis::core {

struct JarvisConfig {
  spl::SplConfig spl;
  rl::IoTEnvConfig env;
  rl::DqnConfig dqn;
  rl::TrainerConfig trainer;
  sim::ThermalConfig thermal;
  fsm::EpisodeConfig episode;  // {T = 1 day, I = 1 min} by default
  // Independent training restarts per OptimizeDay; the best greedy policy
  // wins. Sustained-control tasks (deep-winter heating) have a do-nothing
  // local optimum that a single epsilon-greedy run falls into on some
  // seeds; restarts make the day plan robust at 2x training cost.
  int restarts = 2;
  // Graceful-degradation budget for LearnFromEvents: the parser may drop
  // up to this fraction of the incoming events (unknown vocabulary,
  // conflicts, stragglers) before the facade refuses to learn from the
  // remainder — learning from a mostly-lost stream silently whitelists a
  // distorted picture of the home.
  double parse_drop_budget = 0.25;
  // Wires the instance's obs::Registry through every pipeline stage it
  // owns (parser, learner, trainer, agent, network). Observational only:
  // results are bit-identical either way (the fleet parity test pins
  // this); disable to get the exact uninstrumented code path.
  bool metrics_enabled = true;
  // When a restored checkpoint carried a trained DQN, seed OptimizeDay's
  // restart 0 from it instead of a cold network. Off by default: warm
  // starts change the training trajectory, and the fleet's deterministic
  // parity contract (restored run == uninterrupted jobs=1 oracle) holds
  // only on the cold path.
  bool warm_start_dqn = false;
  std::uint64_t seed = 1;
};

// Result of optimizing one day: the trained policy's evaluation episode
// plus the normal-behavior yardstick.
struct DayPlan {
  rl::TrainResult train;
  sim::DayMetrics normal_metrics;
  sim::DayMetrics optimized_metrics;
  std::size_t violations = 0;  // committed by the optimized policy
};

class Jarvis {
 public:
  // `fsm` must outlive the Jarvis instance.
  Jarvis(const fsm::EnvironmentFsm& fsm, JarvisConfig config);

  // --- Learning phase -----------------------------------------------------

  // Learns safety policies directly from parsed learning episodes plus the
  // user-labeled benign anomalies (training set TD).
  void LearnPolicies(const std::vector<fsm::Episode>& learning_episodes,
                     const std::vector<sim::LabeledSample>& labeled);

  // Full pipeline variant: normalized events -> parser -> episodes ->
  // Algorithm 1. Returns the number of learning episodes parsed.
  std::size_t LearnFromEvents(const std::vector<events::Event>& events,
                              const fsm::StateVector& initial_state,
                              util::SimTime start,
                              const std::vector<sim::LabeledSample>& labeled);

  // Restores previously learnt policies (spl::SafetyPolicyLearner JSON),
  // skipping the learning phase entirely.
  void LoadPolicies(const std::string& json) {
    learner_.LoadJsonString(json);
  }

  bool learned() const { return learner_.learned(); }
  const spl::SafetyPolicyLearner& learner() const { return learner_; }
  // Mutable access for manual policies / active learning.
  spl::SafetyPolicyLearner& mutable_learner() { return learner_; }

  // --- Optimization phase ---------------------------------------------—--

  // Trains a constrained DQN for the day of `natural` under the given
  // functionality weights and evaluates it against normal behavior. The
  // trained agent is retained for SuggestAction().
  DayPlan OptimizeDay(const sim::DayTrace& natural,
                      rl::RewardWeights weights);

  // Best safe joint action for an arbitrary observation, from the most
  // recently trained policy. Requires a prior OptimizeDay on a scenario
  // with the same home. The paper's deployment mode: the user may take
  // some actions manually and rely on Jarvis for the rest; Jarvis suggests
  // from whatever state the environment reached. Const and genuinely
  // read-only: concurrent SuggestAction calls on one instance (or across
  // fleet tenants) mutate nothing — the greedy decode goes through
  // rl::DqnAgent::GreedyActionFromQ, bypassing SelectAction's
  // sticky-exploration memory.
  fsm::ActionVector SuggestAction(const fsm::StateVector& state,
                                  int minute) const;

  // Read-only access to the trained policy and its featurizer for the
  // batched inference path (runtime::InferenceBatcher collects Q-value
  // queries from many tenants and answers each tenant's batch with one
  // forward). Null before the first OptimizeDay.
  const rl::DqnAgent* agent() const { return agent_.get(); }
  const rl::IoTEnv* policy_env() const { return last_env_.get(); }

  // Streaming-republish seam: when set (and config.trainer.republish is
  // enabled), OptimizeDay hands each restart's live network to this hook
  // at the policy's cadence, with EpisodeProgress::restart filled in — the
  // online-learning path that lets a serving funnel ride fresh weights
  // mid-run (runtime::Fleet wires it to AggregationService::
  // PublishWeights). Single-writer contract as for the mutators above:
  // call it before OptimizeDay, never concurrently with it. The hook runs
  // on the OptimizeDay caller's thread and must not throw; it draws no RNG,
  // so results are bit-identical with or without it. Mid-run publishes can
  // come from a restart that ultimately loses — that is fine for serving
  // (fresher is the point; every snapshot is a policy the trainer was
  // willing to act on) and the winner is what completion-time publishing
  // ships.
  void SetLearningHook(rl::RepublishHook hook) {
    learning_hook_ = std::move(hook);
  }

  // Audits any episode against the learnt policies (detection pipeline).
  spl::AuditResult Audit(const fsm::Episode& episode) const;

  // --- Checkpoint lifecycle -----------------------------------------------

  // Per-section outcome of a checkpoint restore. Recovery is per-section:
  // a corrupt or rejected section is dropped (the component keeps its
  // cold-start, fail-safe state) while valid sections are still restored.
  struct RestoreReport {
    bool file_found = false;        // false: cold start, nothing to restore
    bool meta_valid = false;        // false: nothing was trusted
    bool spl_restored = false;      // P_safe + ANN filter reloaded
    bool dqn_staged = false;        // warm-start DQN doc staged (see below)
    bool monitor_restored = false;  // tracked state + counters reloaded
    std::size_t sections_restored = 0;
    std::size_t sections_failed = 0;
    // File- and section-level diagnostics from the container parser plus
    // validation rejections; persist::FormatIssues renders them.
    std::vector<persist::CheckpointIssue> issues;
  };

  // Captures the instance's learnt state as a versioned, checksummed
  // checkpoint: "meta" (home-compatibility guard), "spl" (whitelist + ANN,
  // when learned), "dqn" (trained agent + optimizer state, when present),
  // and "monitor" (tracked FSM state, when a monitor is passed).
  persist::Checkpoint MakeCheckpoint(const OnlineMonitor* monitor = nullptr,
                                     bool include_replay = false) const;
  // MakeCheckpoint + atomic durable write (util::io::AtomicWriteFile; the
  // interceptor seam is for storage-fault injection in chaos tests).
  void SaveCheckpoint(const std::string& path,
                      const OnlineMonitor* monitor = nullptr,
                      util::io::WriteInterceptor* interceptor = nullptr) const;

  // Restores per-section with fail-safe fallback; never throws on corrupt
  // or hostile content (missing/unreadable files and checksum-failed or
  // malformed sections are reported in the result and counted in
  // Health()). The "meta" section must validate against this home or
  // nothing is trusted. A restored "dqn" section is staged, not applied:
  // OptimizeDay's restart 0 warm-starts from it when
  // config.warm_start_dqn is set. A restored monitor is put in deny-unsafe
  // mode (MarkAllStatesUnknown) until every device reports again — events
  // may have occurred between the checkpoint and the crash.
  RestoreReport RestoreFrom(const persist::Checkpoint& checkpoint,
                            OnlineMonitor* monitor = nullptr);
  RestoreReport LoadCheckpoint(const std::string& path,
                               OnlineMonitor* monitor = nullptr);

  // --- Degradation telemetry ----------------------------------------------

  // Aggregated counters from every stage run so far on this instance:
  // LearnFromEvents fills the parse/learn sections, OptimizeDay accumulates
  // the trainer's divergence recoveries, and the Note* calls fold in
  // externally-observed degradation.
  const HealthReport& Health() const { return health_; }
  void ResetHealth() { health_ = {}; }

  // Records what a fault injector actually injected into the streams this
  // instance consumed (chaos tests compare these against stage counters).
  void NoteInjectedFaults(const faults::FaultCounters& counters) {
    health_.injected += counters;
  }

  // Snapshots a monitor's fail-safe and unknown-event counters into the
  // health report (replaces the previous snapshot of the same monitor).
  void NoteMonitor(const OnlineMonitor& monitor) {
    health_.monitor_failsafe_denials = monitor.failsafe_denials();
    health_.monitor_unknown_events = monitor.unknown_events();
  }

  // --- Observability ------------------------------------------------------

  // The instance's metrics registry (core.jarvis.*, events.parser.*,
  // spl.*, rl.* instruments accumulate here across calls when
  // config.metrics_enabled). Each instance owns its own registry — there
  // is no global one — so fleet tenants never share metric state. The
  // registry accepts registrations/snapshots even when metrics_enabled is
  // false; the pipeline just never writes to it.
  obs::Registry& Metrics() { return registry_; }
  obs::MetricsSnapshot TakeMetricsSnapshot() const {
    return registry_.TakeSnapshot();
  }
  // Span tree of the pipeline phases run so far (learn.parse, learn.spl,
  // optimize.restart.N, ...); FlushSpans drains it.
  obs::Tracer& SpanTracer() { return tracer_; }
  std::vector<obs::SpanRecord> FlushSpans() { return tracer_.Flush(); }

  const JarvisConfig& config() const { return config_; }
  const fsm::EnvironmentFsm& fsm() const { return fsm_; }

 private:
  obs::Registry* MetricsOrNull() {
    return config_.metrics_enabled ? &registry_ : nullptr;
  }
  obs::Tracer* TracerOrNull() {
    return config_.metrics_enabled ? &tracer_ : nullptr;
  }

  const fsm::EnvironmentFsm& fsm_;
  JarvisConfig config_;
  // Declared before every component that may cache instrument pointers
  // into it, so those components are destroyed first.
  obs::Registry registry_;
  obs::Tracer tracer_;
  spl::SafetyPolicyLearner learner_;
  HealthReport health_;
  std::unique_ptr<rl::DqnAgent> agent_;
  // The optimized day, owned here because last_env_ references it and both
  // outlive OptimizeDay's caller-provided trace. Declared before last_env_
  // so reverse destruction tears the env down first.
  std::unique_ptr<sim::DayTrace> last_day_;
  std::unique_ptr<rl::IoTEnv> last_env_;  // featurizer for SuggestAction
  // Staged warm-start DQN document from the last successful checkpoint
  // restore; consumed by OptimizeDay restart 0 when config_.warm_start_dqn.
  std::unique_ptr<util::JsonValue> warm_dqn_doc_;
  // Streaming-republish hook (SetLearningHook); wrapped per restart by
  // OptimizeDay to stamp EpisodeProgress::restart.
  rl::RepublishHook learning_hook_;
  // Facade-level counters, cached at construction (null when metrics are
  // disabled). suggest_counter_ is bumped from const SuggestAction —
  // Counter::Increment is a relaxed atomic, safe under the concurrent
  // const-call contract above.
  obs::Counter* learn_counter_ = nullptr;
  obs::Counter* optimize_counter_ = nullptr;
  obs::Counter* suggest_counter_ = nullptr;
};

}  // namespace jarvis::core
