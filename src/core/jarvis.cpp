#include "core/jarvis.h"

#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace jarvis::core {

Jarvis::Jarvis(const fsm::EnvironmentFsm& fsm, JarvisConfig config)
    : fsm_(fsm), config_(config), learner_(fsm, config.spl) {
  if (config_.metrics_enabled) {
    learner_.SetMetrics(&registry_);
    learn_counter_ = registry_.GetCounter("core.jarvis.learn_calls");
    optimize_counter_ = registry_.GetCounter("core.jarvis.optimize_calls");
    suggest_counter_ = registry_.GetCounter("core.jarvis.suggest_calls");
  }
}

void Jarvis::LearnPolicies(const std::vector<fsm::Episode>& learning_episodes,
                           const std::vector<sim::LabeledSample>& labeled) {
  obs::ScopedSpan span(TracerOrNull(), "learn.spl");
  learner_.Learn(learning_episodes, labeled);
  health_.learn = learner_.learn_report();
  if (learn_counter_ != nullptr) learn_counter_->Increment();
}

std::size_t Jarvis::LearnFromEvents(
    const std::vector<events::Event>& events,
    const fsm::StateVector& initial_state, util::SimTime start,
    const std::vector<sim::LabeledSample>& labeled) {
  obs::ScopedSpan span(TracerOrNull(), "learn");
  events::LogParser parser(fsm_, config_.episode, config_.parse_drop_budget);
  parser.SetMetrics(MetricsOrNull());
  const auto episodes = [&] {
    obs::ScopedSpan parse_span(TracerOrNull(), "learn.parse");
    return parser.Parse(events, initial_state, start);
  }();
  health_.parse = parser.report();
  if (!health_.parse.WithinBudget()) {
    throw std::runtime_error(
        "Jarvis::LearnFromEvents: parse drop budget exceeded — event stream "
        "too degraded to learn from");
  }
  if (episodes.empty()) {
    throw std::invalid_argument(
        "Jarvis::LearnFromEvents: no complete learning episodes in log");
  }
  LearnPolicies(episodes, labeled);
  return episodes.size();
}

DayPlan Jarvis::OptimizeDay(const sim::DayTrace& natural,
                            rl::RewardWeights weights) {
  if (!learner_.learned()) {
    throw std::logic_error("Jarvis::OptimizeDay: learning phase not done");
  }
  obs::ScopedSpan span(TracerOrNull(), "optimize");
  if (optimize_counter_ != nullptr) optimize_counter_->Increment();
  rl::IoTEnvConfig env_config = config_.env;
  env_config.weights = weights;
  env_config.constrained = true;

  // IoTEnv holds the day trace by reference, and the env is retained for
  // SuggestAction long after this call returns — so retain our own copy of
  // the trace; the caller's may die with its scope (fleet tenant workloads
  // do exactly that). Old env is replaced before the old day it references
  // is released.
  auto day = std::make_unique<sim::DayTrace>(natural);
  last_env_ = std::make_unique<rl::IoTEnv>(fsm_, *day, config_.thermal,
                                           &learner_, env_config);
  last_day_ = std::move(day);

  DayPlan plan;
  const int restarts = std::max(1, config_.restarts);
  for (int restart = 0; restart < restarts; ++restart) {
    rl::DqnConfig dqn = config_.dqn;
    // Restart 0 keeps the configured seed (so single-restart runs are
    // directly comparable to a bare DqnAgent with the same config); later
    // restarts draw decorrelated streams from it.
    dqn.seed = restart == 0
                   ? config_.dqn.seed
                   : util::DeriveSeed(config_.dqn.seed,
                                      static_cast<std::uint64_t>(restart));
    auto agent = std::make_unique<rl::DqnAgent>(last_env_->feature_width(),
                                                fsm_.codec(), dqn);
    // Warm start (restart 0 only): seed the network from the checkpoint's
    // staged DQN doc. Validation happens here, where the agent's widths are
    // known; a rejected doc falls back to the cold network just built —
    // LoadJson commits nothing on failure — and counts as a failed section.
    if (restart == 0 && config_.warm_start_dqn && warm_dqn_doc_ != nullptr) {
      try {
        agent->LoadJson(*warm_dqn_doc_);
      } catch (const std::exception&) {
        ++health_.checkpoint_sections_failed;
      }
    }
    obs::ScopedSpan restart_span(
        TracerOrNull(), "optimize.restart." + std::to_string(restart));
    // Streaming republish rides the restart loop: the wrapper stamps which
    // restart is publishing so downstream consumers can tell a losing
    // restart's snapshot from the eventual winner's if they care.
    rl::RepublishHook hook;
    if (learning_hook_) {
      hook = [this, restart](const rl::EpisodeProgress& progress,
                             const neural::Network& network) {
        rl::EpisodeProgress stamped = progress;
        stamped.restart = restart;
        learning_hook_(stamped, network);
      };
    }
    rl::TrainResult result = rl::Train(*last_env_, *agent, config_.trainer,
                                       MetricsOrNull(), std::move(hook));
    // Health accumulates across every restart, not just the winner: a
    // divergence in a losing restart is still a divergence this instance
    // survived.
    health_.train_divergence_recoveries += result.divergence_recoveries;
    health_.train_poisoned_purged += result.poisoned_experiences_purged;
    if (restart == 0 || result.greedy_reward > plan.train.greedy_reward) {
      plan.train = std::move(result);
      agent_ = std::move(agent);
    }
  }
  plan.normal_metrics = natural.metrics;
  plan.optimized_metrics = plan.train.greedy_metrics;
  plan.violations = plan.train.greedy_violations;
  return plan;
}

namespace {

// Section names of the checkpoint container. "meta" gates everything; the
// rest restore independently.
constexpr char kMetaSection[] = "meta";
constexpr char kSplSection[] = "spl";
constexpr char kDqnSection[] = "dqn";
constexpr char kMonitorSection[] = "monitor";
constexpr std::int64_t kCheckpointMetaVersion = 1;

}  // namespace

persist::Checkpoint Jarvis::MakeCheckpoint(const OnlineMonitor* monitor,
                                           bool include_replay) const {
  persist::Checkpoint checkpoint;
  util::JsonObject meta;
  meta["format_version"] = util::JsonValue(kCheckpointMetaVersion);
  meta["devices"] =
      util::JsonValue(static_cast<std::int64_t>(fsm_.device_count()));
  meta["mini_actions"] = util::JsonValue(
      static_cast<std::int64_t>(fsm_.codec().mini_action_count()));
  checkpoint.AddSection(kMetaSection, util::JsonValue(std::move(meta)).Dump());
  if (learner_.learned()) {
    checkpoint.AddSection(kSplSection, learner_.ToJsonString());
  }
  if (agent_ != nullptr) {
    rl::AgentSerializeOptions options;
    options.include_replay = include_replay;
    checkpoint.AddSection(kDqnSection, agent_->ToJson(options).Dump());
  }
  if (monitor != nullptr) {
    checkpoint.AddSection(kMonitorSection, monitor->ToJson().Dump());
  }
  return checkpoint;
}

void Jarvis::SaveCheckpoint(const std::string& path,
                            const OnlineMonitor* monitor,
                            util::io::WriteInterceptor* interceptor) const {
  MakeCheckpoint(monitor).WriteFile(path, interceptor);
}

Jarvis::RestoreReport Jarvis::RestoreFrom(const persist::Checkpoint& checkpoint,
                                          OnlineMonitor* monitor) {
  RestoreReport report;
  report.file_found = true;

  // Meta gate: a checkpoint for a differently-shaped home (or a future
  // format) must not be trusted at all — a whitelist keyed on a different
  // device set would admit arbitrary transitions here.
  const std::string* meta_text = checkpoint.FindSection(kMetaSection);
  if (meta_text == nullptr) {
    report.issues.push_back({kMetaSection, "section missing; nothing trusted"});
  } else {
    try {
      const util::JsonValue meta = util::JsonValue::Parse(*meta_text);
      const std::int64_t version = meta.At("format_version").AsInt();
      if (version != kCheckpointMetaVersion) {
        throw util::JsonError("meta format version " +
                              std::to_string(version) + " unsupported");
      }
      if (meta.At("devices").AsInt() !=
              static_cast<std::int64_t>(fsm_.device_count()) ||
          meta.At("mini_actions").AsInt() !=
              static_cast<std::int64_t>(fsm_.codec().mini_action_count())) {
        throw util::JsonError("checkpoint is for a different home");
      }
      report.meta_valid = true;
    } catch (const std::exception& error) {
      report.issues.push_back({kMetaSection, error.what()});
    }
  }
  if (!report.meta_valid) {
    // Count every data section present as lost: valid payloads under an
    // untrusted meta are still untrusted.
    for (const char* name : {kSplSection, kDqnSection, kMonitorSection}) {
      if (checkpoint.HasSection(name)) ++report.sections_failed;
    }
    health_.checkpoint_sections_failed += report.sections_failed;
    return report;
  }

  const auto restore_section = [&](const char* name,
                                   const std::function<void(
                                       const std::string&)>& apply) -> bool {
    const std::string* text = checkpoint.FindSection(name);
    if (text == nullptr) return false;
    try {
      apply(*text);
      ++report.sections_restored;
      return true;
    } catch (const std::exception& error) {
      report.issues.push_back({name, error.what()});
      ++report.sections_failed;
      return false;
    }
  };

  // Per-section salvage. Each failure leaves that component cold-started:
  // a rejected SPL leaves the learner unlearned (its LoadJson is fail-safe
  // ordered), a rejected DQN doc simply isn't staged, a rejected monitor
  // doc leaves the live tracked state alone.
  report.spl_restored = restore_section(
      kSplSection, [&](const std::string& text) {
        learner_.LoadJsonString(text);
        health_.learn = learner_.learn_report();
      });
  report.dqn_staged = restore_section(
      kDqnSection, [&](const std::string& text) {
        // Parse + structural sanity now; full width/shape validation runs
        // at warm-start time in DqnAgent::LoadJson, once the agent exists.
        auto doc = std::make_unique<util::JsonValue>(
            util::JsonValue::Parse(text));
        doc->At("network");  // throws JsonError when absent
        warm_dqn_doc_ = std::move(doc);
      });
  if (monitor != nullptr) {
    report.monitor_restored = restore_section(
        kMonitorSection, [&](const std::string& text) {
          monitor->LoadJson(util::JsonValue::Parse(text));
          // Deny-unsafe until re-established: events may have occurred
          // between the checkpoint and the crash, so the restored tracked
          // state is not assumed current.
          monitor->MarkAllStatesUnknown();
        });
  }

  health_.checkpoint_sections_restored += report.sections_restored;
  health_.checkpoint_sections_failed += report.sections_failed;
  return report;
}

Jarvis::RestoreReport Jarvis::LoadCheckpoint(const std::string& path,
                                             OnlineMonitor* monitor) {
  std::vector<persist::CheckpointIssue> issues;
  persist::Checkpoint checkpoint;
  try {
    checkpoint = persist::Checkpoint::ReadFile(path, &issues);
  } catch (const util::io::IoError& error) {
    // Missing/unreadable file: a cold start, reported but never thrown —
    // recovery proceeds with nothing restored.
    RestoreReport report;
    report.issues.push_back({"", error.what()});
    return report;
  }
  RestoreReport report = RestoreFrom(checkpoint, monitor);
  // Prepend container-level diagnostics (bad magic, version skew,
  // truncation, CRC drops) so the report carries the full story.
  report.issues.insert(report.issues.begin(), issues.begin(), issues.end());
  if (!issues.empty()) {
    health_.checkpoint_sections_failed += issues.size();
    report.sections_failed += issues.size();
  }
  return report;
}

fsm::ActionVector Jarvis::SuggestAction(const fsm::StateVector& state,
                                        int minute) const {
  if (!agent_ || !last_env_) {
    throw std::logic_error("Jarvis::SuggestAction: no trained policy");
  }
  if (suggest_counter_ != nullptr) suggest_counter_->Increment();
  const auto features = last_env_->FeaturesFor(state, minute);
  const auto mask = last_env_->SafeSlotMaskFor(state, minute);
  return agent_->GreedyActionFromQ(agent_->QValues(features), mask);
}

spl::AuditResult Jarvis::Audit(const fsm::Episode& episode) const {
  if (!learner_.learned()) {
    throw std::logic_error("Jarvis::Audit: learning phase not done");
  }
  return learner_.AuditEpisode(episode);
}

}  // namespace jarvis::core
