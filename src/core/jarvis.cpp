#include "core/jarvis.h"

#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace jarvis::core {

Jarvis::Jarvis(const fsm::EnvironmentFsm& fsm, JarvisConfig config)
    : fsm_(fsm), config_(config), learner_(fsm, config.spl) {
  if (config_.metrics_enabled) {
    learner_.SetMetrics(&registry_);
    learn_counter_ = registry_.GetCounter("core.jarvis.learn_calls");
    optimize_counter_ = registry_.GetCounter("core.jarvis.optimize_calls");
    suggest_counter_ = registry_.GetCounter("core.jarvis.suggest_calls");
  }
}

void Jarvis::LearnPolicies(const std::vector<fsm::Episode>& learning_episodes,
                           const std::vector<sim::LabeledSample>& labeled) {
  obs::ScopedSpan span(TracerOrNull(), "learn.spl");
  learner_.Learn(learning_episodes, labeled);
  health_.learn = learner_.learn_report();
  if (learn_counter_ != nullptr) learn_counter_->Increment();
}

std::size_t Jarvis::LearnFromEvents(
    const std::vector<events::Event>& events,
    const fsm::StateVector& initial_state, util::SimTime start,
    const std::vector<sim::LabeledSample>& labeled) {
  obs::ScopedSpan span(TracerOrNull(), "learn");
  events::LogParser parser(fsm_, config_.episode, config_.parse_drop_budget);
  parser.SetMetrics(MetricsOrNull());
  const auto episodes = [&] {
    obs::ScopedSpan parse_span(TracerOrNull(), "learn.parse");
    return parser.Parse(events, initial_state, start);
  }();
  health_.parse = parser.report();
  if (!health_.parse.WithinBudget()) {
    throw std::runtime_error(
        "Jarvis::LearnFromEvents: parse drop budget exceeded — event stream "
        "too degraded to learn from");
  }
  if (episodes.empty()) {
    throw std::invalid_argument(
        "Jarvis::LearnFromEvents: no complete learning episodes in log");
  }
  LearnPolicies(episodes, labeled);
  return episodes.size();
}

DayPlan Jarvis::OptimizeDay(const sim::DayTrace& natural,
                            rl::RewardWeights weights) {
  if (!learner_.learned()) {
    throw std::logic_error("Jarvis::OptimizeDay: learning phase not done");
  }
  obs::ScopedSpan span(TracerOrNull(), "optimize");
  if (optimize_counter_ != nullptr) optimize_counter_->Increment();
  rl::IoTEnvConfig env_config = config_.env;
  env_config.weights = weights;
  env_config.constrained = true;

  // IoTEnv holds the day trace by reference, and the env is retained for
  // SuggestAction long after this call returns — so retain our own copy of
  // the trace; the caller's may die with its scope (fleet tenant workloads
  // do exactly that). Old env is replaced before the old day it references
  // is released.
  auto day = std::make_unique<sim::DayTrace>(natural);
  last_env_ = std::make_unique<rl::IoTEnv>(fsm_, *day, config_.thermal,
                                           &learner_, env_config);
  last_day_ = std::move(day);

  DayPlan plan;
  const int restarts = std::max(1, config_.restarts);
  for (int restart = 0; restart < restarts; ++restart) {
    rl::DqnConfig dqn = config_.dqn;
    // Restart 0 keeps the configured seed (so single-restart runs are
    // directly comparable to a bare DqnAgent with the same config); later
    // restarts draw decorrelated streams from it.
    dqn.seed = restart == 0
                   ? config_.dqn.seed
                   : util::DeriveSeed(config_.dqn.seed,
                                      static_cast<std::uint64_t>(restart));
    auto agent = std::make_unique<rl::DqnAgent>(last_env_->feature_width(),
                                                fsm_.codec(), dqn);
    obs::ScopedSpan restart_span(
        TracerOrNull(), "optimize.restart." + std::to_string(restart));
    rl::TrainResult result =
        rl::Train(*last_env_, *agent, config_.trainer, MetricsOrNull());
    // Health accumulates across every restart, not just the winner: a
    // divergence in a losing restart is still a divergence this instance
    // survived.
    health_.train_divergence_recoveries += result.divergence_recoveries;
    health_.train_poisoned_purged += result.poisoned_experiences_purged;
    if (restart == 0 || result.greedy_reward > plan.train.greedy_reward) {
      plan.train = std::move(result);
      agent_ = std::move(agent);
    }
  }
  plan.normal_metrics = natural.metrics;
  plan.optimized_metrics = plan.train.greedy_metrics;
  plan.violations = plan.train.greedy_violations;
  return plan;
}

fsm::ActionVector Jarvis::SuggestAction(const fsm::StateVector& state,
                                        int minute) const {
  if (!agent_ || !last_env_) {
    throw std::logic_error("Jarvis::SuggestAction: no trained policy");
  }
  if (suggest_counter_ != nullptr) suggest_counter_->Increment();
  const auto features = last_env_->FeaturesFor(state, minute);
  const auto mask = last_env_->SafeSlotMaskFor(state, minute);
  return agent_->GreedyActionFromQ(agent_->QValues(features), mask);
}

spl::AuditResult Jarvis::Audit(const fsm::Episode& episode) const {
  if (!learner_.learned()) {
    throw std::logic_error("Jarvis::Audit: learning phase not done");
  }
  return learner_.AuditEpisode(episode);
}

}  // namespace jarvis::core
