// Streaming detection: the deployment-facing counterpart of the batch
// Audit. The monitor consumes normalized events one at a time (e.g.
// subscribed to the live event bus), maintains the composite FSM state,
// and classifies every command event the moment it arrives — the paper's
// "intelligent monitoring system with a global view" (Section I) running
// online rather than over recorded episodes.
#pragma once

#include <functional>
#include <optional>

#include "events/bus.h"
#include "events/event.h"
#include "spl/learner.h"

namespace jarvis::core {

// One streaming detection result.
struct MonitorAlert {
  util::SimTime time;
  fsm::MiniAction mini;
  spl::Verdict verdict;  // kBenignAnomaly or kViolation only
  std::string device_label;
  std::string action_name;
};

class OnlineMonitor {
 public:
  using AlertCallback = std::function<void(const MonitorAlert&)>;

  // `learner` must be past its learning phase. The monitor starts from
  // `initial_state` and tracks every event it consumes.
  OnlineMonitor(const fsm::EnvironmentFsm& fsm,
                const spl::SafetyPolicyLearner& learner,
                fsm::StateVector initial_state);

  // Consumes one event: sensor (command-less) events update the tracked
  // state; command events are classified against it. Returns the verdict
  // for command events, nullopt otherwise. Unknown devices/vocabulary are
  // counted and skipped.
  std::optional<spl::Verdict> Consume(const events::Event& event);

  // Subscribes the monitor to everything on a bus; alerts (benign
  // anomalies and violations) flow to the callback. Returns the
  // subscription id (the caller owns unsubscription).
  events::SubscriptionId Attach(events::EventBus& bus, AlertCallback callback);

  const fsm::StateVector& state() const { return state_; }
  std::size_t events_consumed() const { return events_consumed_; }
  std::size_t commands_classified() const { return commands_classified_; }
  std::size_t violations() const { return violations_; }
  std::size_t benign_anomalies() const { return benign_anomalies_; }
  std::size_t unknown_events() const { return unknown_events_; }

 private:
  const fsm::EnvironmentFsm& fsm_;
  const spl::SafetyPolicyLearner& learner_;
  fsm::StateVector state_;
  AlertCallback callback_;
  std::size_t events_consumed_ = 0;
  std::size_t commands_classified_ = 0;
  std::size_t violations_ = 0;
  std::size_t benign_anomalies_ = 0;
  std::size_t unknown_events_ = 0;
};

}  // namespace jarvis::core
