// Streaming detection: the deployment-facing counterpart of the batch
// Audit. The monitor consumes normalized events one at a time (e.g.
// subscribed to the live event bus), maintains the composite FSM state,
// and classifies every command event the moment it arrives — the paper's
// "intelligent monitoring system with a global view" (Section I) running
// online rather than over recorded episodes.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "events/bus.h"
#include "events/event.h"
#include "obs/metrics.h"
#include "spl/learner.h"

namespace jarvis::core {

// One streaming detection result.
struct MonitorAlert {
  util::SimTime time;
  fsm::MiniAction mini;
  spl::Verdict verdict;  // kBenignAnomaly or kViolation only
  std::string device_label;
  std::string action_name;
};

// Fail-safe behavior for degraded telemetry (deny-unsafe-by-default): a
// command touching a device whose tracked state is unknown or stale is
// denied (reported as kViolation) instead of classified against a context
// the monitor no longer trusts. See DESIGN.md "Fault model & degradation
// behavior".
struct MonitorConfig {
  bool fail_safe = true;
  // Staleness clock: a device whose last accepted event is older than this
  // many minutes has untrusted state. 0 disables the clock (unknown-state
  // denial still applies while fail_safe is on). The clock starts at a
  // device's first accepted event; until then the constructor-supplied
  // initial state is trusted.
  int staleness_limit_minutes = 0;
};

class OnlineMonitor {
 public:
  using AlertCallback = std::function<void(const MonitorAlert&)>;

  // `learner` must be past its learning phase. The monitor starts from
  // `initial_state` and tracks every event it consumes.
  OnlineMonitor(const fsm::EnvironmentFsm& fsm,
                const spl::SafetyPolicyLearner& learner,
                fsm::StateVector initial_state, MonitorConfig config = {});

  // Consumes one event: sensor (command-less) events update the tracked
  // state; command events are classified against it. Returns the verdict
  // for command events, nullopt otherwise. Unknown devices/vocabulary are
  // counted and skipped; in fail-safe mode an unparseable sensor value
  // additionally marks the device's state unknown until the next good
  // report.
  std::optional<spl::Verdict> Consume(const events::Event& event);

  // Externally marks a device's tracked state untrusted (e.g. a health
  // system observed the device offline); fail-safe denial applies to its
  // commands until a decodable report arrives.
  void MarkStateUnknown(std::size_t device_index);

  // Restore-gap fail-safe: distrust every device at once. Used after a
  // checkpoint restore — events may have occurred between the checkpoint
  // and the crash, so the restored tracked state cannot be assumed current;
  // deny-unsafe applies until each device reports again.
  void MarkAllStatesUnknown();

  // Persistence of the monitor's FSM tracking (tracked state, per-device
  // trust, counters) for checkpointing. LoadJson validates the document
  // against this monitor's home (device count, state ranges) and throws
  // util::JsonError / util::CheckError on mismatch or hostile input,
  // leaving the monitor untouched. The alert callback and metrics wiring
  // are not serialized.
  util::JsonValue ToJson() const;
  void LoadJson(const util::JsonValue& doc);

  // Subscribes the monitor to everything on a bus; alerts (benign
  // anomalies and violations) flow to the callback. Returns the
  // subscription id (the caller owns unsubscription).
  events::SubscriptionId Attach(events::EventBus& bus, AlertCallback callback);

  const fsm::StateVector& state() const { return state_; }
  const MonitorConfig& config() const { return config_; }
  std::size_t events_consumed() const { return events_consumed_; }
  std::size_t commands_classified() const { return commands_classified_; }
  std::size_t violations() const { return violations_; }
  std::size_t benign_anomalies() const { return benign_anomalies_; }
  std::size_t unknown_events() const { return unknown_events_; }
  // Fail-safe denials, by reason. Denied commands are reported as
  // kViolation but counted here rather than in violations() — they are
  // trust failures, not learner classifications.
  std::size_t stale_denials() const { return stale_denials_; }
  std::size_t unknown_state_denials() const { return unknown_state_denials_; }
  std::size_t failsafe_denials() const {
    return stale_denials_ + unknown_state_denials_;
  }

  // Wires core.monitor.* counters, bumped per Consume. `decisions` counts
  // every command verdict — learner classifications AND fail-safe denials
  // — so decisions == allowed + denied + benign_anomalies holds by
  // construction (`denied` folds learner violations and fail-safe denials
  // together; they are separable via failsafe_denials).
  // `staleness_transitions` counts trusted→untrusted flips of a device's
  // tracked state (undecodable report, external MarkStateUnknown, or the
  // staleness clock expiring). Null disables.
  void SetMetrics(obs::Registry* registry);

 private:
  // True when fail-safe must deny commands on this device at `now`.
  bool StateUntrusted(std::size_t device_index, util::SimTime now) const;

  const fsm::EnvironmentFsm& fsm_;
  const spl::SafetyPolicyLearner& learner_;
  fsm::StateVector state_;
  MonitorConfig config_;
  AlertCallback callback_;
  // Per-device trust tracking: last accepted event time (nullopt until the
  // first one; the initial state is trusted until then) and whether the
  // tracked state is currently decodable.
  std::vector<std::optional<util::SimTime>> last_seen_;
  std::vector<bool> state_known_;
  // Metrics-only memory: whether a stale denial has already been counted
  // as a staleness transition for this device since its last good report.
  std::vector<bool> stale_flagged_;
  std::size_t events_consumed_ = 0;
  std::size_t commands_classified_ = 0;
  std::size_t violations_ = 0;
  std::size_t benign_anomalies_ = 0;
  std::size_t unknown_events_ = 0;
  std::size_t stale_denials_ = 0;
  std::size_t unknown_state_denials_ = 0;
  obs::Counter* decisions_counter_ = nullptr;
  obs::Counter* allowed_counter_ = nullptr;
  obs::Counter* denied_counter_ = nullptr;
  obs::Counter* benign_counter_ = nullptr;
  obs::Counter* failsafe_counter_ = nullptr;
  obs::Counter* unknown_events_counter_ = nullptr;
  obs::Counter* staleness_counter_ = nullptr;
};

}  // namespace jarvis::core
