#include "core/benefit_space.h"

#include <stdexcept>

#include "util/stats.h"

namespace jarvis::core {

double MetricFor(const std::string& focus, const sim::DayMetrics& metrics) {
  if (focus == "energy") return metrics.energy_kwh;
  if (focus == "cost") return metrics.cost_usd;
  if (focus == "temp") return metrics.comfort_error_c_min;
  throw std::invalid_argument("MetricFor: unknown focus " + focus);
}

std::vector<SweepPoint> FunctionalitySweep(Jarvis& jarvis,
                                           const sim::SmartStarDataset& data,
                                           const SweepConfig& config) {
  if (!jarvis.learned()) {
    throw std::logic_error("FunctionalitySweep: Jarvis has not learned");
  }
  // Small samples are stratified across the year so every run sees winter,
  // summer, and shoulder seasons (a uniform 4-day draw can land entirely
  // on mild days and make the comfort comparison vacuous); larger samples
  // use the dataset's uniform random draw like the paper's 30 random days.
  std::vector<int> day_indices;
  if (config.days < 10) {
    const int offset =
        static_cast<int>(config.day_sample_seed % 30);
    for (int i = 0; i < config.days; ++i) {
      day_indices.push_back((offset + i * 365 / config.days) % 365);
    }
  } else {
    day_indices = data.SampleDays(config.days, config.day_sample_seed);
  }

  std::vector<SweepPoint> points;
  for (double f : config.f_values) {
    const rl::RewardWeights weights = rl::RewardWeights::Sweep(config.focus, f);
    util::OnlineStats normal_stats;
    util::OnlineStats jarvis_stats;
    std::size_t violations = 0;
    for (int day : day_indices) {
      const sim::DayTrace natural = data.Day(day);
      DayPlan plan = jarvis.OptimizeDay(natural, weights);
      normal_stats.Add(MetricFor(config.focus, plan.normal_metrics));
      jarvis_stats.Add(MetricFor(config.focus, plan.optimized_metrics));
      violations += plan.violations;
    }
    points.push_back({f, normal_stats.mean(), jarvis_stats.mean(),
                      normal_stats.stddev(), jarvis_stats.stddev(),
                      violations});
  }
  return points;
}

std::vector<ExplorationPoint> ExplorationComparison(
    const fsm::EnvironmentFsm& fsm, const spl::SafetyPolicyLearner& learner,
    const sim::DayTrace& natural, const JarvisConfig& config,
    const ExplorationConfig& exploration) {
  rl::IoTEnvConfig constrained_config = config.env;
  constrained_config.weights = exploration.weights;
  constrained_config.constrained = true;
  rl::IoTEnvConfig unconstrained_config = constrained_config;
  unconstrained_config.constrained = false;

  rl::IoTEnv constrained_env(fsm, natural, config.thermal, &learner,
                             constrained_config);
  rl::IoTEnv unconstrained_env(fsm, natural, config.thermal, &learner,
                               unconstrained_config);

  rl::DqnConfig dqn = config.dqn;
  dqn.seed = exploration.seed;
  // The comparison wants both agents near convergence by the later
  // episodes (the paper's Fig. 9 contrasts the *promised* rewards, not
  // random flailing), so exploration anneals aggressively: a lenient loss
  // gate and a faster decay.
  dqn.preferable_loss = 3.0;
  dqn.epsilon_decay = 0.95;
  rl::DqnAgent constrained_agent(constrained_env.feature_width(), fsm.codec(),
                                 dqn);
  dqn.seed = exploration.seed ^ 0xffULL;
  rl::DqnAgent unconstrained_agent(unconstrained_env.feature_width(),
                                   fsm.codec(), dqn);

  std::vector<ExplorationPoint> points;
  for (int ep = 0; ep < exploration.episodes; ++ep) {
    ExplorationPoint point;
    point.episode = ep;

    for (auto* pair : {&constrained_env, &unconstrained_env}) {
      rl::DqnAgent& agent = pair == &constrained_env ? constrained_agent
                                                     : unconstrained_agent;
      rl::IoTEnv& env = *pair;
      env.Reset();
      while (!env.done()) {
        const auto features = env.Features();
        const auto mask = env.SafeSlotMask();
        const auto action = agent.SelectAction(features, mask, false);
        const rl::StepResult step = env.Step(action);
        rl::Experience experience;
        experience.features = features;
        experience.taken_slots = fsm.codec().ActionToSlots(action);
        experience.reward = step.reward;
        experience.done = step.done;
        if (!step.done) {
          experience.next_features = env.Features();
          experience.next_mask = env.SafeSlotMask();
        } else {
          experience.next_features.assign(features.size(), 0.0);
          experience.next_mask.assign(fsm.codec().mini_action_count(), false);
        }
        agent.Remember(std::move(experience));
        agent.Replay();
      }
    }
    point.constrained_reward = constrained_env.cumulative_reward();
    point.unconstrained_reward = unconstrained_env.cumulative_reward();
    point.constrained_violations = constrained_env.violations();
    point.unconstrained_violations = unconstrained_env.violations();
    points.push_back(point);

    // Common annealing schedule: the unconstrained action space is far
    // larger, so its replay loss settles later; a per-episode decay keeps
    // the two exploration schedules comparable.
    for (int i = 0; i < 3; ++i) {
      constrained_agent.DecayEpsilonOnce();
      unconstrained_agent.DecayEpsilonOnce();
    }
  }
  return points;
}

}  // namespace jarvis::core
