#include "serve/frame.h"

#include <cstring>

#include "util/check.h"
#include "util/io.h"

namespace jarvis::serve {

namespace {

void AppendU32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

std::uint32_t ReadU32(const char* data) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(data[i]);
  }
  return value;
}

}  // namespace

std::string EncodeFrame(const std::string& payload) {
  JARVIS_CHECK(payload.size() <= kMaxFramePayloadBytes,
               "EncodeFrame: payload of ", payload.size(),
               " bytes exceeds the ", kMaxFramePayloadBytes, "-byte cap");
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  AppendU32(frame, static_cast<std::uint32_t>(payload.size()));
  AppendU32(frame, util::io::Crc32(payload));
  frame.append(payload);
  return frame;
}

void FrameDecoder::Feed(const char* data, std::size_t size) {
  // Compact the consumed prefix before growing: the buffer never holds
  // more than one partial frame plus whatever was just fed.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
  Decode();
}

bool FrameDecoder::Next(FrameEvent* event) {
  if (events_.empty()) return false;
  *event = std::move(events_.front());
  events_.pop_front();
  return true;
}

void FrameDecoder::EmitMalformed(const std::string& detail) {
  ++malformed_frames_;
  events_.push_back({FrameEvent::Type::kMalformed, detail});
}

void FrameDecoder::Decode() {
  for (;;) {
    const std::size_t available = buffer_.size() - consumed_;
    if (scanning_) {
      // Lost sync: silently look for the next magic (the episode that got
      // us here was already counted). Keep sizeof(magic)-1 tail bytes in
      // case the magic straddles a feed boundary.
      const char* base = buffer_.data() + consumed_;
      const void* hit = available > 0
                            ? std::memchr(base, kFrameMagic[0], available)
                            : nullptr;
      std::size_t offset = available;  // default: nothing promising yet
      while (hit != nullptr) {
        offset = static_cast<std::size_t>(static_cast<const char*>(hit) -
                                          base);
        if (available - offset < sizeof(kFrameMagic)) break;  // partial tail
        if (std::memcmp(base + offset, kFrameMagic, sizeof(kFrameMagic)) ==
            0) {
          scanning_ = false;
          break;
        }
        hit = std::memchr(base + offset + 1, kFrameMagic[0],
                          available - offset - 1);
        if (hit == nullptr) offset = available;
      }
      if (scanning_) {
        // Drop everything before the candidate (or all scanned bytes).
        consumed_ += hit == nullptr ? available : offset;
        return;  // need more bytes
      }
      consumed_ += offset;
      continue;
    }

    if (available < kFrameHeaderBytes) return;  // partial header: wait
    const char* header = buffer_.data() + consumed_;
    if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
      EmitMalformed("bad frame magic");
      scanning_ = true;
      ++consumed_;  // step past the bad byte before rescanning
      continue;
    }
    const std::uint32_t length = ReadU32(header + 4);
    if (length > kMaxFramePayloadBytes) {
      EmitMalformed("oversized length prefix (" + std::to_string(length) +
                    " bytes)");
      scanning_ = true;
      ++consumed_;
      continue;
    }
    if (available < kFrameHeaderBytes + length) return;  // partial: wait
    const std::uint32_t expected_crc = ReadU32(header + 8);
    const char* payload = header + kFrameHeaderBytes;
    if (util::io::Crc32(payload, length) != expected_crc) {
      // The header framed the payload, so skip the frame whole: one
      // corrupt payload is one error, and the next frame decodes cleanly.
      EmitMalformed("payload CRC mismatch");
      consumed_ += kFrameHeaderBytes + length;
      continue;
    }
    events_.push_back(
        {FrameEvent::Type::kPayload, std::string(payload, length)});
    consumed_ += kFrameHeaderBytes + length;
  }
}

}  // namespace jarvis::serve
