// Request/response model of the serving protocol (DESIGN.md §15).
//
// Every frame payload is one JSON document. Requests carry an integer
// `id` (echoed verbatim in the response so clients can correlate
// out-of-order completions), a string `type` from the catalog below, and
// type-specific fields. Responses carry the echoed `id`, `ok`, and either
// result fields (ok) or `error` (a stable machine-readable code) plus
// `detail` (human-readable).
//
// ParseRequest follows the hostile-input discipline: it NEVER throws.
// Garbage JSON, a missing type, or an unknown type come back as a parse
// failure the server answers with one error response — decode problems are
// data, not exceptions, and must never kill the daemon.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/json.h"

namespace jarvis::serve {

inline constexpr int kProtocolVersion = 1;

// The request catalog. Order is stable (counters index by it).
enum class RequestType {
  kPing,            // liveness + protocol version
  kIngest,          // append device-event log lines to a tenant's buffer
  kSuggestAction,   // best safe joint action for (tenant, state, minute)
  kSuggestMinutes,  // batched suggestions for many minutes in one forward
  kMetrics,         // fleet + aggregated tenant metrics snapshot
  kCheckpoint,      // trigger a durable fleet checkpoint now
  kHealth,          // serving counters + fleet shape
  kShutdown,        // begin graceful drain
  kStall,           // test/bench-only: park a worker until released
};
inline constexpr std::size_t kRequestTypeCount = 9;

// Stable wire name ("ping", "ingest", ...).
const char* RequestTypeName(RequestType type);
// Null for a name outside the catalog.
std::optional<RequestType> RequestTypeFromName(const std::string& name);

// Stable error codes (the `error` field of a failed response).
inline constexpr char kErrMalformedFrame[] = "malformed_frame";
inline constexpr char kErrBadRequest[] = "bad_request";
inline constexpr char kErrOverloaded[] = "overloaded";
inline constexpr char kErrDraining[] = "draining";
inline constexpr char kErrUnknownTenant[] = "unknown_tenant";
inline constexpr char kErrNoPolicy[] = "no_policy";
inline constexpr char kErrHandlerFailed[] = "handler_failed";

struct Request {
  std::int64_t id = 0;
  RequestType type = RequestType::kPing;
  util::JsonValue body;  // the full request document
};

// Decodes a frame payload into a Request. Returns nullopt (and a
// diagnostic in `error`) for anything that is not a JSON object with an
// integer-free-or-present id and a known `type`. Never throws.
std::optional<Request> ParseRequest(const std::string& payload,
                                    std::string* error);

// Best-effort id recovery from a payload ParseRequest rejected (e.g. an
// unknown type that still carried an id): echoing it lets the client
// correlate the error response. 0 when nothing salvageable. Never throws.
std::int64_t SalvageRequestId(const std::string& payload);

// Response builders (compact JSON, ready to frame).
std::string MakeOkResponse(std::int64_t id, util::JsonObject fields);
std::string MakeErrorResponse(std::int64_t id, const std::string& code,
                              const std::string& detail);

// Client-side response accessors (also used by tests); tolerate only what
// MakeOkResponse/MakeErrorResponse produce. Throw util::JsonError on a
// document that is not a response.
bool ResponseOk(const util::JsonValue& response);
std::int64_t ResponseId(const util::JsonValue& response);

}  // namespace jarvis::serve
