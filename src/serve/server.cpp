#include "serve/server.h"

#include <chrono>
#include <utility>

#include "serve/protocol.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jarvis::serve {

namespace {

// Tracks this connection's tasks still running on the pool. Lives on
// Serve's stack: Serve blocks on AwaitZero before returning, which is what
// makes the workers' captured transport reference safe.
struct Inflight {
  util::Mutex mutex;
  util::CondVar zero;
  std::size_t pending JARVIS_GUARDED_BY(mutex) = 0;

  void Add() JARVIS_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    ++pending;
  }
  void Remove() JARVIS_EXCLUDES(mutex) {
    // Signal WHILE holding the mutex: this object lives on Serve's stack,
    // and AwaitZero's waiter destroys it as soon as it re-acquires and
    // sees pending == 0. Signaling after the unlock leaves a window where
    // the notify touches a destroyed condvar; under the lock, the notify
    // completes before the waiter can get past its re-acquire.
    util::MutexLock lock(mutex);
    --pending;
    zero.Signal();
  }
  void AwaitZero() JARVIS_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    while (pending > 0) {
      zero.Wait(mutex);
    }
  }
};

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Server::Server(Dispatcher& dispatcher, ServerConfig config,
               obs::Registry* registry)
    : dispatcher_(dispatcher),
      config_(config),
      pool_(config.workers, config.queue_capacity, registry) {
  if (registry != nullptr) {
    accepted_ = registry->GetCounter("serve.accepted");
    rejected_overload_ = registry->GetCounter("serve.rejected_overload");
    draining_refused_ = registry->GetCounter("serve.draining_refused");
    malformed_frames_ = registry->GetCounter("serve.malformed_frames");
    bad_requests_ = registry->GetCounter("serve.bad_requests");
    responses_dropped_ = registry->GetCounter("serve.responses_dropped");
    e2e_timer_ = registry->GetTimerUs("serve.e2e_us");
  }
  dispatcher_.SetShutdownCallback([this] { RequestDrain(); });
}

Server::~Server() { pool_.Shutdown(); }

void Server::WriteErrorNow(FramedTransport& transport, std::int64_t id,
                           const char* code, const std::string& detail) {
  if (!transport.WritePayload(MakeErrorResponse(id, code, detail)) &&
      responses_dropped_ != nullptr) {
    responses_dropped_->Increment();
  }
}

ConnectionStats Server::Serve(FramedTransport& transport) {
  ConnectionStats stats;
  Inflight inflight;
  std::string payload;
  for (;;) {
    const FramedTransport::ReadResult result = transport.ReadPayload(&payload);
    if (result == FramedTransport::ReadResult::kClosed) break;

    if (result == FramedTransport::ReadResult::kMalformed) {
      // One desync episode → one error response + one counter; the decoder
      // has already resynced, so the next well-formed frame serves fine.
      ++stats.malformed_frames;
      if (malformed_frames_ != nullptr) malformed_frames_->Increment();
      WriteErrorNow(transport, 0, kErrMalformedFrame, payload);
      continue;
    }

    std::string parse_error;
    auto request = ParseRequest(payload, &parse_error);
    if (!request.has_value()) {
      ++stats.bad_requests;
      if (bad_requests_ != nullptr) bad_requests_->Increment();
      WriteErrorNow(transport, SalvageRequestId(payload), kErrBadRequest,
                    parse_error);
      continue;
    }

    if (draining()) {
      // Refused explicitly, never silently dropped: a draining daemon
      // still answers, it just answers "draining".
      ++stats.draining_refused;
      if (draining_refused_ != nullptr) draining_refused_->Increment();
      WriteErrorNow(transport, request->id, kErrDraining,
                    "daemon is draining");
      continue;
    }

    const auto start = std::chrono::steady_clock::now();
    const std::int64_t request_id = request->id;  // survives the move below
    inflight.Add();
    const bool admitted = pool_.TrySubmit(
        [this, &transport, &inflight, start,
         request = std::move(*request)]() {
          const std::string response = dispatcher_.Dispatch(request);
          bool written = false;
          try {
            written = transport.WritePayload(response);
          } catch (...) {
            // An unframeable response (e.g. oversized) must not reach the
            // pool's exception backstop with the inflight count held.
          }
          if (!written && responses_dropped_ != nullptr) {
            responses_dropped_->Increment();
          }
          if (e2e_timer_ != nullptr) e2e_timer_->Observe(MicrosSince(start));
          inflight.Remove();
        });
    if (admitted) {
      ++stats.accepted;
      if (accepted_ != nullptr) accepted_->Increment();
    } else {
      inflight.Remove();
      ++stats.rejected_overload;
      if (rejected_overload_ != nullptr) rejected_overload_->Increment();
      WriteErrorNow(transport, request_id, kErrOverloaded,
                    "request queue is full");
    }
  }
  inflight.AwaitZero();
  return stats;
}

DrainFlushReport Server::Drain() {
  RequestDrain();
  pool_.WaitIdle();
  return dispatcher_.FlushForDrain();
}

}  // namespace jarvis::serve
