#include "serve/dispatcher.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/io.h"

namespace jarvis::serve {

namespace {

// Internal control flow only: a handler that cannot satisfy a request
// throws RequestError with a stable wire code; Dispatch converts it to the
// one error response. It never escapes Dispatch.
class RequestError : public std::runtime_error {
 public:
  RequestError(const char* code, const std::string& detail)
      : std::runtime_error(detail), code_(code) {}
  const char* code() const { return code_; }

 private:
  const char* code_;
};

const util::JsonValue* FindField(const util::JsonValue& body,
                                 const char* key) {
  const auto& object = body.AsObject();
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::int64_t RequireInt(const util::JsonValue& body, const char* key) {
  const util::JsonValue* field = FindField(body, key);
  if (field == nullptr || !field->is_number()) {
    throw RequestError(kErrBadRequest,
                       std::string("missing numeric '") + key + "'");
  }
  return field->AsInt();
}

util::JsonArray ActionToJson(const fsm::ActionVector& action) {
  util::JsonArray out;
  out.reserve(action.size());
  for (int slot : action) out.emplace_back(slot);
  return out;
}

}  // namespace

Dispatcher::Dispatcher(runtime::Fleet& fleet, DispatcherOptions options,
                       obs::Registry* registry)
    : fleet_(fleet),
      options_(std::move(options)),
      tenant_count_(fleet.tenant_count()) {
  ingest_.resize(tenant_count_);
  request_counters_.assign(kRequestTypeCount, nullptr);
  handle_timers_.assign(kRequestTypeCount, nullptr);
  if (registry != nullptr) {
    for (std::size_t i = 0; i < kRequestTypeCount; ++i) {
      const std::string name =
          RequestTypeName(static_cast<RequestType>(i));
      request_counters_[i] = registry->GetCounter("serve.req." + name);
      handle_timers_[i] = registry->GetTimerUs("serve.handle_us." + name);
    }
    responses_ok_ = registry->GetCounter("serve.responses_ok");
    responses_error_ = registry->GetCounter("serve.responses_error");
    bad_requests_ = registry->GetCounter("serve.bad_request");
  }
}

std::string Dispatcher::HandlePayload(const std::string& payload) {
  std::string parse_error;
  const auto request = ParseRequest(payload, &parse_error);
  if (!request.has_value()) {
    if (bad_requests_ != nullptr) bad_requests_->Increment();
    if (responses_error_ != nullptr) responses_error_->Increment();
    return MakeErrorResponse(SalvageRequestId(payload), kErrBadRequest,
                             parse_error);
  }
  return Dispatch(*request);
}

std::string Dispatcher::Dispatch(const Request& request) {
  const auto type_index = static_cast<std::size_t>(request.type);
  if (request_counters_[type_index] != nullptr) {
    request_counters_[type_index]->Increment();
  }
  obs::ScopedTimer timer(handle_timers_[type_index]);
  try {
    util::JsonObject fields;
    switch (request.type) {
      case RequestType::kPing:
        fields = HandlePing();
        break;
      case RequestType::kIngest:
        fields = HandleIngest(request.body);
        break;
      case RequestType::kSuggestAction:
        fields = HandleSuggestAction(request.body);
        break;
      case RequestType::kSuggestMinutes:
        fields = HandleSuggestMinutes(request.body);
        break;
      case RequestType::kMetrics:
        fields = HandleMetrics();
        break;
      case RequestType::kCheckpoint:
        fields = HandleCheckpoint(request.body);
        break;
      case RequestType::kHealth:
        fields = HandleHealth();
        break;
      case RequestType::kShutdown:
        fields = HandleShutdown();
        break;
      case RequestType::kStall:
        fields = HandleStall();
        break;
    }
    if (responses_ok_ != nullptr) responses_ok_->Increment();
    return MakeOkResponse(request.id, std::move(fields));
  } catch (const RequestError& e) {
    if (responses_error_ != nullptr) responses_error_->Increment();
    return MakeErrorResponse(request.id, e.code(), e.what());
  } catch (const std::exception& e) {
    // A handler tripping a Fleet contract (CheckError and friends) is a
    // serving failure for THIS request, never for the daemon.
    if (responses_error_ != nullptr) responses_error_->Increment();
    return MakeErrorResponse(request.id, kErrHandlerFailed, e.what());
  } catch (...) {
    if (responses_error_ != nullptr) responses_error_->Increment();
    return MakeErrorResponse(request.id, kErrHandlerFailed,
                             "non-standard exception");
  }
}

void Dispatcher::SetShutdownCallback(std::function<void()> callback) {
  util::MutexLock lock(mutex_);
  shutdown_callback_ = std::move(callback);
}

// --- Handlers ----------------------------------------------------------------

util::JsonObject Dispatcher::HandlePing() {
  util::JsonObject fields;
  fields["protocol"] = kProtocolVersion;
  return fields;
}

util::JsonObject Dispatcher::HandleHealth() {
  const runtime::FleetReport report = fleet_.report();
  std::size_t buffered = 0;
  {
    util::MutexLock lock(mutex_);
    for (const auto& buffer : ingest_) buffered += buffer.size();
  }
  util::JsonObject fields;
  fields["protocol"] = kProtocolVersion;
  fields["tenants"] = static_cast<std::int64_t>(fleet_.tenant_count());
  fields["completed"] = static_cast<std::int64_t>(report.completed);
  fields["quarantined"] = static_cast<std::int64_t>(report.quarantined);
  fields["buffered_events"] = static_cast<std::int64_t>(buffered);
  // Aggregation funnel evidence, when attached. The shared_ptr pins the
  // service for the duration of the snapshot — a concurrent
  // EnableAggregation replace cannot free it under us.
  const std::shared_ptr<runtime::AggregationService> aggregator =
      fleet_.aggregator();
  if (aggregator != nullptr) {
    const runtime::AggregationStats stats = aggregator->stats();
    util::JsonObject agg;
    agg["submitted"] = static_cast<std::int64_t>(stats.submitted_queries);
    agg["answered"] = static_cast<std::int64_t>(stats.answered_queries);
    agg["rejected"] = static_cast<std::int64_t>(stats.rejected_queries);
    agg["gemm_batches"] = static_cast<std::int64_t>(stats.gemm_batches);
    agg["rows_inferred"] = static_cast<std::int64_t>(stats.rows_inferred);
    agg["max_gemm_rows"] = static_cast<std::int64_t>(stats.max_gemm_rows);
    agg["weights_published"] =
        static_cast<std::int64_t>(stats.weights_published);
    agg["max_batch"] = static_cast<std::int64_t>(stats.current_max_batch);
    agg["autotune_raises"] =
        static_cast<std::int64_t>(stats.autotune_raises);
    agg["autotune_lowers"] =
        static_cast<std::int64_t>(stats.autotune_lowers);
    fields["aggregation"] = std::move(agg);
  }
  return fields;
}

util::JsonObject Dispatcher::HandleIngest(const util::JsonValue& body) {
  const std::size_t tenant = ParseTenant(body);
  const util::JsonValue* lines = FindField(body, "lines");
  if (lines == nullptr || !lines->is_array()) {
    throw RequestError(kErrBadRequest, "missing array 'lines'");
  }
  std::vector<events::Event> parsed;
  parsed.reserve(lines->AsArray().size());
  std::size_t rejected = 0;
  for (const util::JsonValue& line : lines->AsArray()) {
    if (!line.is_string()) {
      ++rejected;
      continue;
    }
    // One bad log line poisons that line only: the hostile-input rule
    // applied per event, so a corrupted shard of a device log still
    // delivers its intact records.
    try {
      parsed.push_back(events::Event::FromLogLine(line.AsString()));
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  std::size_t accepted = 0;
  std::size_t buffered = 0;
  {
    util::MutexLock lock(mutex_);
    auto& buffer = ingest_[tenant];
    for (auto& event : parsed) {
      if (buffer.size() >= options_.max_ingest_events) {
        ++rejected;  // bounded memory: past the cap is refused, not queued
        continue;
      }
      buffer.push_back(std::move(event));
      ++accepted;
    }
    buffered = buffer.size();
  }
  util::JsonObject fields;
  fields["accepted"] = static_cast<std::int64_t>(accepted);
  fields["rejected"] = static_cast<std::int64_t>(rejected);
  fields["buffered"] = static_cast<std::int64_t>(buffered);
  return fields;
}

util::JsonObject Dispatcher::HandleSuggestAction(const util::JsonValue& body) {
  const std::size_t tenant = ParseTenant(body);
  const int minute = static_cast<int>(RequireInt(body, "minute"));
  const fsm::StateVector state = ParseState(body);
  std::vector<fsm::ActionVector> actions;
  try {
    // Fleet::SuggestMinutes is thread-safe: it serializes per tenant on the
    // direct route and coalesces concurrent callers through the
    // AggregationService when the fleet has one attached.
    actions = fleet_.SuggestMinutes(tenant, state, {minute});
  } catch (const util::CheckError& e) {
    throw RequestError(kErrBadRequest, e.what());
  } catch (const std::logic_error& e) {
    throw RequestError(kErrNoPolicy, e.what());
  }
  util::JsonObject fields;
  fields["tenant"] = static_cast<std::int64_t>(tenant);
  fields["minute"] = minute;
  fields["action"] = util::JsonValue(ActionToJson(actions.at(0)));
  return fields;
}

util::JsonObject Dispatcher::HandleSuggestMinutes(
    const util::JsonValue& body) {
  const std::size_t tenant = ParseTenant(body);
  const util::JsonValue* minutes_field = FindField(body, "minutes");
  if (minutes_field == nullptr || !minutes_field->is_array()) {
    throw RequestError(kErrBadRequest, "missing array 'minutes'");
  }
  std::vector<int> minutes;
  minutes.reserve(minutes_field->AsArray().size());
  for (const util::JsonValue& minute : minutes_field->AsArray()) {
    if (!minute.is_number()) {
      throw RequestError(kErrBadRequest, "'minutes' entries must be numbers");
    }
    minutes.push_back(static_cast<int>(minute.AsInt()));
  }
  const fsm::StateVector state = ParseState(body);
  std::vector<fsm::ActionVector> actions;
  try {
    actions = fleet_.SuggestMinutes(tenant, state, minutes);  // thread-safe
  } catch (const util::CheckError& e) {
    throw RequestError(kErrBadRequest, e.what());
  } catch (const std::logic_error& e) {
    throw RequestError(kErrNoPolicy, e.what());
  }
  util::JsonArray encoded;
  encoded.reserve(actions.size());
  for (const fsm::ActionVector& action : actions) {
    encoded.emplace_back(ActionToJson(action));
  }
  util::JsonObject fields;
  fields["tenant"] = static_cast<std::int64_t>(tenant);
  fields["actions"] = util::JsonValue(std::move(encoded));
  return fields;
}

util::JsonObject Dispatcher::HandleMetrics() {
  util::JsonObject fields;
  fields["fleet"] = fleet_.TakeMetricsSnapshot().ToJson();
  fields["tenants"] = fleet_.AggregateTenantMetrics().ToJson();
  return fields;
}

util::JsonObject Dispatcher::HandleCheckpoint(const util::JsonValue& body) {
  std::string dir = options_.checkpoint_dir;
  const util::JsonValue* dir_field = FindField(body, "dir");
  if (dir_field != nullptr) {
    if (!dir_field->is_string()) {
      throw RequestError(kErrBadRequest, "'dir' must be a string");
    }
    dir = dir_field->AsString();
  }
  if (dir.empty()) {
    throw RequestError(kErrBadRequest,
                       "no 'dir' and the daemon has no checkpoint dir");
  }
  const runtime::FleetCheckpointReport report = fleet_.SaveCheckpoints(dir);
  util::JsonObject fields;
  fields["dir"] = dir;
  fields["saved"] = static_cast<std::int64_t>(report.succeeded);
  fields["failed"] = static_cast<std::int64_t>(report.failed);
  fields["skipped"] = static_cast<std::int64_t>(report.skipped);
  return fields;
}

util::JsonObject Dispatcher::HandleShutdown() {
  std::function<void()> callback;
  {
    util::MutexLock lock(mutex_);
    if (!shutdown_fired_) {
      shutdown_fired_ = true;
      callback = shutdown_callback_;
    }
  }
  if (callback) callback();  // outside the lock: it flips the Server's flag
  util::JsonObject fields;
  fields["draining"] = true;
  return fields;
}

util::JsonObject Dispatcher::HandleStall() {
  if (!options_.allow_stall) {
    throw RequestError(kErrBadRequest, "stall is not enabled");
  }
  {
    util::MutexLock lock(mutex_);
    ++stalled_;
    while (!stalls_released_) {
      stall_gate_.Wait(mutex_);
    }
    --stalled_;
  }
  util::JsonObject fields;
  fields["stalled"] = true;
  return fields;
}

void Dispatcher::ReleaseStalls() {
  {
    util::MutexLock lock(mutex_);
    stalls_released_ = true;
  }
  stall_gate_.SignalAll();
}

std::size_t Dispatcher::stalled_now() const {
  util::MutexLock lock(mutex_);
  return stalled_;
}

std::size_t Dispatcher::ingested_events(std::size_t tenant) const {
  util::MutexLock lock(mutex_);
  return tenant < ingest_.size() ? ingest_[tenant].size() : 0;
}

// --- Drain flush -------------------------------------------------------------

DrainFlushReport Dispatcher::FlushForDrain() {
  DrainFlushReport report;
  if (options_.checkpoint_dir.empty()) return report;
  try {
    util::io::CreateDirectories(options_.checkpoint_dir);
  } catch (const util::io::IoError&) {
    // An uncreatable destination degrades every write below individually.
  }

  // Buffered ingest first: grab the buffers under the lock, write outside
  // it (AtomicWriteFile can retry-sleep; holding mutex_ across that would
  // stall any late stall/ingest bookkeeping for no reason).
  std::vector<std::vector<events::Event>> drained;
  {
    util::MutexLock lock(mutex_);
    drained.swap(ingest_);
    ingest_.resize(drained.size());
  }
  for (std::size_t tenant = 0; tenant < drained.size(); ++tenant) {
    if (drained[tenant].empty()) continue;
    std::string payload;
    for (const events::Event& event : drained[tenant]) {
      payload += event.ToLogLine();
      payload += '\n';
    }
    try {
      util::io::AtomicWriteFile(options_.checkpoint_dir + "/ingest-tenant-" +
                                    std::to_string(tenant) + ".log",
                                payload);
      ++report.ingest_files_written;
      report.ingest_events_flushed += drained[tenant].size();
    } catch (const util::io::IoError&) {
      // Drain must finish even on a sick disk; the checkpoint report below
      // carries the durable-state verdict.
    }
  }

  const runtime::FleetCheckpointReport checkpoints =
      fleet_.SaveCheckpoints(options_.checkpoint_dir);
  report.checkpoints_saved = checkpoints.succeeded;
  report.checkpoints_failed = checkpoints.failed;
  return report;
}

// --- Field parsing helpers ---------------------------------------------------

std::size_t Dispatcher::ParseTenant(const util::JsonValue& body) const {
  const std::int64_t tenant = RequireInt(body, "tenant");
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= tenant_count_) {
    throw RequestError(kErrUnknownTenant,
                       "tenant " + std::to_string(tenant) +
                           " outside the serving catalog of " +
                           std::to_string(tenant_count_));
  }
  return static_cast<std::size_t>(tenant);
}

fsm::StateVector Dispatcher::ParseState(const util::JsonValue& body) const {
  const util::JsonValue* state_field = FindField(body, "state");
  if (state_field == nullptr) {
    if (options_.default_state.empty()) {
      throw RequestError(kErrBadRequest,
                         "no 'state' and the daemon has no default state");
    }
    return options_.default_state;
  }
  if (!state_field->is_array()) {
    throw RequestError(kErrBadRequest, "'state' must be an array");
  }
  fsm::StateVector state;
  state.reserve(state_field->AsArray().size());
  for (const util::JsonValue& entry : state_field->AsArray()) {
    if (!entry.is_number()) {
      throw RequestError(kErrBadRequest, "'state' entries must be numbers");
    }
    state.push_back(static_cast<int>(entry.AsInt()));
  }
  return state;
}

}  // namespace jarvis::serve
