#include "serve/protocol.h"

#include <array>

namespace jarvis::serve {

namespace {

constexpr std::array<const char*, kRequestTypeCount> kTypeNames = {
    "ping",           "ingest",     "suggest_action",
    "suggest_minutes", "metrics",   "checkpoint",
    "health",         "shutdown",   "stall",
};

}  // namespace

const char* RequestTypeName(RequestType type) {
  return kTypeNames[static_cast<std::size_t>(type)];
}

std::optional<RequestType> RequestTypeFromName(const std::string& name) {
  for (std::size_t i = 0; i < kTypeNames.size(); ++i) {
    if (name == kTypeNames[i]) return static_cast<RequestType>(i);
  }
  return std::nullopt;
}

std::optional<Request> ParseRequest(const std::string& payload,
                                    std::string* error) {
  util::JsonValue doc;
  try {
    doc = util::JsonValue::Parse(payload);
  } catch (const util::JsonError& e) {
    if (error != nullptr) *error = std::string("not JSON: ") + e.what();
    return std::nullopt;
  }
  if (!doc.is_object()) {
    if (error != nullptr) *error = "request is not a JSON object";
    return std::nullopt;
  }
  Request request;
  const auto& object = doc.AsObject();
  const auto id_it = object.find("id");
  if (id_it != object.end()) {
    if (!id_it->second.is_number()) {
      if (error != nullptr) *error = "'id' is not a number";
      return std::nullopt;
    }
    request.id = id_it->second.AsInt();
  }
  const auto type_it = object.find("type");
  if (type_it == object.end() || !type_it->second.is_string()) {
    if (error != nullptr) *error = "missing string 'type'";
    return std::nullopt;
  }
  const auto type = RequestTypeFromName(type_it->second.AsString());
  if (!type.has_value()) {
    if (error != nullptr) {
      *error = "unknown request type '" + type_it->second.AsString() + "'";
    }
    return std::nullopt;
  }
  request.type = *type;
  request.body = std::move(doc);
  return request;
}

std::int64_t SalvageRequestId(const std::string& payload) {
  try {
    const util::JsonValue doc = util::JsonValue::Parse(payload);
    if (doc.is_object()) {
      return static_cast<std::int64_t>(doc.GetNumber("id", 0.0));
    }
  } catch (const util::JsonError&) {
  }
  return 0;
}

std::string MakeOkResponse(std::int64_t id, util::JsonObject fields) {
  fields["id"] = id;
  fields["ok"] = true;
  return util::JsonValue(std::move(fields)).Dump();
}

std::string MakeErrorResponse(std::int64_t id, const std::string& code,
                              const std::string& detail) {
  util::JsonObject fields;
  fields["id"] = id;
  fields["ok"] = false;
  fields["error"] = code;
  fields["detail"] = detail;
  return util::JsonValue(std::move(fields)).Dump();
}

bool ResponseOk(const util::JsonValue& response) {
  return response.At("ok").AsBool();
}

std::int64_t ResponseId(const util::JsonValue& response) {
  return response.At("id").AsInt();
}

}  // namespace jarvis::serve
