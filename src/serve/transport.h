// Transports for the serving daemon: framing + byte I/O, NOTHING else.
//
// The strict transport/handler split (DESIGN.md §15): a FramedTransport
// moves verified frame payloads in and out of a byte stream; it never
// looks inside a payload. Request decoding, Fleet calls, and response
// encoding belong to serve::Dispatcher, which is why every handler is
// unit-testable with no sockets in sight.
//
// This header pair is the ONLY src/ location allowed to perform raw
// socket/fd I/O (tools/lint.py rule 11; util/io.* keeps its rule-10 role
// as the durable-write layer). Everything above it — Server, Dispatcher,
// the handlers — speaks FramedTransport.
//
// Concurrency: one connection has ONE reader (the serve loop calling
// ReadPayload) and MANY writers (pool workers writing responses as they
// finish). The write path is therefore serialized under write_mutex_, and
// a frame is always written whole — interleaved partial frames from two
// workers would be self-inflicted corruption. The read path owns the
// decoder without a lock by the single-reader contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "serve/frame.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jarvis::serve {

class FramedTransport {
 public:
  enum class ReadResult {
    kPayload,    // one CRC-verified payload delivered
    kMalformed,  // one malformed-frame episode (detail delivered)
    kClosed,     // stream ended (EOF or read error); no more payloads
  };

  virtual ~FramedTransport() = default;

  // Blocks until the next frame event or stream end. Single reader only.
  ReadResult ReadPayload(std::string* payload_or_detail);

  // Frames and writes `payload` atomically with respect to other writers.
  // False when the peer is gone (connection drop mid-response) — callers
  // count the dropped response and carry on; a dead peer must never kill
  // the daemon.
  bool WritePayload(const std::string& payload) JARVIS_EXCLUDES(write_mutex_);

  // Total malformed episodes the decoder has seen on this connection.
  std::size_t malformed_frames() const { return decoder_.malformed_frames(); }
  // True when the stream closed mid-frame (truncated tail).
  bool truncated_tail() const {
    return closed_ && decoder_.pending_bytes() > 0;
  }

 protected:
  // Raw byte layer implemented by concrete transports. ReadRaw blocks for
  // at least one byte; returns 0 on EOF and -1 on error. WriteRaw writes
  // the whole buffer or reports failure.
  virtual std::ptrdiff_t ReadRaw(char* buffer, std::size_t capacity) = 0;
  virtual bool WriteRaw(const char* data, std::size_t size) = 0;

 private:
  FrameDecoder decoder_;  // unguarded: single-reader contract (see above)
  bool closed_ = false;   // unguarded: written/read by the single reader
  util::Mutex write_mutex_;
};

// Transport over a pair of file descriptors (stdio: 0/1; a socket: fd/fd).
// With `owns_fds`, the descriptors are closed on destruction (dup'd fds or
// an accepted socket); stdio passes false.
class FdTransport : public FramedTransport {
 public:
  FdTransport(int read_fd, int write_fd, bool owns_fds);
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

 protected:
  std::ptrdiff_t ReadRaw(char* buffer, std::size_t capacity) override;
  bool WriteRaw(const char* data, std::size_t size) override;

 private:
  const int read_fd_;
  const int write_fd_;
  const bool owns_fds_;
};

// In-memory bidirectional pipe: two FramedTransport endpoints joined by
// byte queues. The test/bench transport — hostile-input suites write raw
// garbage with WriteRawBytes, drain tests run real concurrency through it,
// and no kernel object is involved, so it also runs under TSan cheaply.
class LoopbackTransport;
struct LoopbackPair {
  std::unique_ptr<LoopbackTransport> client;
  std::unique_ptr<LoopbackTransport> server;
};
LoopbackPair MakeLoopbackPair();

class LoopbackTransport : public FramedTransport {
 public:
  ~LoopbackTransport() override;

  // Closes this endpoint's outbound direction: the peer's reader sees EOF
  // once it drains what was already written (a client hanging up).
  void CloseWrite();

  // Injects raw UNFRAMED bytes into the peer's read stream — the hostile
  // byte-level seam frame tests use (WritePayload is the honest path).
  void WriteRawBytes(const std::string& bytes);

 protected:
  std::ptrdiff_t ReadRaw(char* buffer, std::size_t capacity) override;
  bool WriteRaw(const char* data, std::size_t size) override;

 private:
  friend LoopbackPair MakeLoopbackPair();
  struct Direction;  // one byte queue + closed flag
  LoopbackTransport(std::shared_ptr<Direction> in,
                    std::shared_ptr<Direction> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  std::shared_ptr<Direction> in_;   // unguarded: Direction locks itself
  std::shared_ptr<Direction> out_;  // unguarded: Direction locks itself
};

// Listening TCP socket on 127.0.0.1 (the daemon is a local serving
// endpoint; remote exposure is a deployment's reverse-proxy problem).
// Port 0 binds an ephemeral port; port() reports the real one.
class TcpListener {
 public:
  // Throws util::io::IoError when bind/listen fails.
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Waits up to `timeout_ms` for a connection; null on timeout (the accept
  // loop uses the timeout to poll its drain flag). Throws util::io::IoError
  // on a hard accept failure.
  std::unique_ptr<FramedTransport> Accept(int timeout_ms);

  std::uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

// Connects to a listening daemon; null (with a diagnostic in `error`) when
// the connection is refused — the client's problem to report, not throw.
std::unique_ptr<FramedTransport> ConnectTcp(const std::string& host,
                                            std::uint16_t port,
                                            std::string* error);

}  // namespace jarvis::serve
