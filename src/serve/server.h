// The serving loop: admission control + connection I/O around a Dispatcher.
//
// One Server owns a bounded runtime::ThreadPool. Serve(transport) is the
// per-connection read loop: it parses each frame's envelope, then admits
// the request with ThreadPool::TrySubmit — a full queue means an explicit
// `overloaded` error response NOW, never an unbounded backlog (ISSUE
// admission-control requirement). Workers run Dispatcher::Dispatch and
// write the response themselves, so responses may complete out of order;
// the echoed request id is the client's correlation key.
//
// Every frame gets exactly one outcome, which is what the drain test pins:
//   malformed frame   → one malformed_frame error response + one counter
//   unparseable req   → one bad_request error response
//   draining          → one draining error response (refused, not dropped)
//   queue full        → one overloaded error response
//   admitted          → the handler's response (written by the worker)
//
// Graceful drain (DESIGN.md §15): a shutdown request (or the owner calling
// RequestDrain, e.g. on SIGINT) flips draining(). The accept loop stops
// taking connections, serve loops refuse NEW payloads, and Drain() waits
// for every admitted request to finish (pool WaitIdle), then flushes
// durable state via Dispatcher::FlushForDrain. Exit 0 follows.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "serve/dispatcher.h"
#include "serve/transport.h"

namespace jarvis::serve {

struct ServerConfig {
  // Handler workers. Suggestions for one tenant serialize inside the
  // Dispatcher, so extra workers pay off with many tenants or mixed
  // request types, not for one hot tenant.
  std::size_t workers = 2;
  // Admission bound: requests in flight beyond workers. TrySubmit rejects
  // past this — the overload knob the bench sweeps.
  std::size_t queue_capacity = 8;
};

// Per-connection outcome counts, returned by Serve (the smoke test's
// ground truth for one connection).
struct ConnectionStats {
  std::size_t accepted = 0;          // admitted to the pool
  std::size_t rejected_overload = 0; // refused: queue full
  std::size_t draining_refused = 0;  // refused: drain in progress
  std::size_t malformed_frames = 0;  // framing-level episodes
  std::size_t bad_requests = 0;      // framed fine, not a valid request
};

class Server {
 public:
  // `dispatcher` must outlive the server. A non-null `registry` wires the
  // serve.* admission counters and the end-to-end latency timer.
  Server(Dispatcher& dispatcher, ServerConfig config,
         obs::Registry* registry);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Reads frames from `transport` until the peer closes, admitting each
  // request per the header table. Responses are written by pool workers
  // (out of order; the id correlates) — but Serve returns only after every
  // task it admitted has finished, so the caller may destroy the transport
  // the moment Serve is back. Safe to call from several accept threads
  // with distinct transports.
  ConnectionStats Serve(FramedTransport& transport);

  // Flips the drain flag (idempotent). Wired as the Dispatcher's shutdown
  // callback; owners also call it directly on SIGINT.
  void RequestDrain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // Completes the drain: waits until every admitted request has executed
  // (and therefore written its response), then flushes checkpoints and
  // buffered ingest through the Dispatcher. Call after the accept loop has
  // stopped handing new transports to Serve.
  DrainFlushReport Drain();

  runtime::ThreadPool& pool() { return pool_; }

 private:
  // Answers `request` on `transport` inline (admission refusals and decode
  // errors — cheap, no pool round trip).
  void WriteErrorNow(FramedTransport& transport, std::int64_t id,
                     const char* code, const std::string& detail);

  Dispatcher& dispatcher_;     // unguarded: internally synchronized
  const ServerConfig config_;  // unguarded: fixed at construction
  std::atomic<bool> draining_{false};  // unguarded: atomic
  runtime::ThreadPool pool_;   // unguarded: internally synchronized
  // Instrument pointers wired once in the constructor; instruments are
  // internally synchronized atomics.
  obs::Counter* accepted_ = nullptr;           // unguarded: wired in ctor
  obs::Counter* rejected_overload_ = nullptr;  // unguarded: wired in ctor
  obs::Counter* draining_refused_ = nullptr;   // unguarded: wired in ctor
  obs::Counter* malformed_frames_ = nullptr;   // unguarded: wired in ctor
  obs::Counter* bad_requests_ = nullptr;       // unguarded: wired in ctor
  obs::Counter* responses_dropped_ = nullptr;  // unguarded: wired in ctor
  obs::Histogram* e2e_timer_ = nullptr;        // unguarded: wired in ctor
};

}  // namespace jarvis::serve
