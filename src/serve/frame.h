// Length-prefixed wire framing for the serving daemon (DESIGN.md §15).
//
// Layout of one frame (all integers little-endian):
//
//   magic   "JVSF"                     4 bytes
//   u32     payload length             capped at kMaxFramePayloadBytes
//   u32     CRC-32 of the payload      util::io::Crc32
//   payload bytes                      (a JSON request/response document)
//
// The framing layer follows the persist::Checkpoint discipline: hostile
// bytes are DATA, not a programming error. FrameDecoder never throws and
// never loses sync permanently —
//
//   * bad magic / garbage run        -> ONE malformed event, then a silent
//                                       scan to the next magic (a kilobyte
//                                       of noise is one error, not a
//                                       thousand);
//   * oversized length prefix        -> the header is untrusted; one
//                                       malformed event + resync scan;
//   * CRC mismatch (payload bit rot) -> one malformed event; the frame is
//                                       skipped whole (its header framed it);
//   * truncated frame / partial read -> not an error: the decoder waits for
//                                       more bytes. A partial frame still
//                                       pending when the stream closes is
//                                       the "truncated tail" the transport
//                                       reports.
//
// Events come out of Next() in stream order, so a server can answer every
// malformed episode with exactly one error response in the right place
// between the well-formed ones (the hostile-input suite pins counter ==
// ground truth).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

namespace jarvis::serve {

inline constexpr char kFrameMagic[4] = {'J', 'V', 'S', 'F'};
inline constexpr std::size_t kFrameHeaderBytes = 12;  // magic + len + crc
// Upper bound a decoder will believe from a length prefix. Anything larger
// is treated as a corrupt header, not an allocation request — the cap is
// what makes a hostile 0xFFFFFFFF prefix harmless.
inline constexpr std::size_t kMaxFramePayloadBytes = 1u << 20;

// Wraps `payload` in a frame. Throws util::CheckError (programming
// contract) when the payload exceeds kMaxFramePayloadBytes — outbound
// frames are produced by our own encoder, so an oversized one is a bug,
// unlike inbound hostility.
std::string EncodeFrame(const std::string& payload);

// One decoded item from the byte stream, in order.
struct FrameEvent {
  enum class Type {
    kPayload,    // `data` is a CRC-verified payload
    kMalformed,  // `data` is a human-readable description of the damage
  };
  Type type = Type::kPayload;
  std::string data;
};

// Incremental, resyncing decoder over an arbitrary chunking of the byte
// stream (feed it single bytes or megabytes; the cut points never change
// the event sequence). Single-threaded by design: each transport
// connection owns one decoder behind its own lock.
class FrameDecoder {
 public:
  // Appends raw bytes from the stream.
  void Feed(const char* data, std::size_t size);
  void Feed(const std::string& bytes) { Feed(bytes.data(), bytes.size()); }

  // Pops the next event (payload or malformed episode). False when
  // everything fed so far has been consumed or is an incomplete tail.
  bool Next(FrameEvent* event);

  // Total malformed episodes detected so far.
  std::size_t malformed_frames() const { return malformed_frames_; }
  // Bytes of an incomplete frame (or unscanned garbage) still buffered —
  // nonzero at stream close means a truncated tail.
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  void Decode();  // advances the state machine, emitting into events_
  void EmitMalformed(const std::string& detail);

  std::string buffer_;        // undecoded stream bytes
  std::size_t consumed_ = 0;  // prefix of buffer_ already decoded
  // When true, we lost sync and are scanning for the next magic without
  // emitting further malformed events (the episode was already counted).
  bool scanning_ = false;
  std::deque<FrameEvent> events_;
  std::size_t malformed_frames_ = 0;
};

}  // namespace jarvis::serve
