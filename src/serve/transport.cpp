#include "serve/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/io.h"

namespace jarvis::serve {

namespace {

constexpr std::size_t kReadChunkBytes = 64 * 1024;

[[noreturn]] void ThrowIo(const char* what) {
  throw util::io::IoError(std::string(what) + ": " +
                          std::strerror(errno));
}

}  // namespace

// --- FramedTransport (framing over the raw byte layer) ----------------------

FramedTransport::ReadResult FramedTransport::ReadPayload(
    std::string* payload_or_detail) {
  for (;;) {
    FrameEvent event;
    if (decoder_.Next(&event)) {
      *payload_or_detail = std::move(event.data);
      return event.type == FrameEvent::Type::kPayload ? ReadResult::kPayload
                                                      : ReadResult::kMalformed;
    }
    if (closed_) return ReadResult::kClosed;
    char chunk[kReadChunkBytes];
    const std::ptrdiff_t n = ReadRaw(chunk, sizeof(chunk));
    if (n <= 0) {
      // EOF and read error close alike: either way no further payload can
      // arrive, and whatever half-frame is pending is the truncated tail.
      closed_ = true;
      continue;  // drain events the final bytes may have completed
    }
    decoder_.Feed(chunk, static_cast<std::size_t>(n));
  }
}

bool FramedTransport::WritePayload(const std::string& payload) {
  const std::string frame = EncodeFrame(payload);
  util::MutexLock lock(write_mutex_);
  return WriteRaw(frame.data(), frame.size());
}

// --- FdTransport -------------------------------------------------------------

FdTransport::FdTransport(int read_fd, int write_fd, bool owns_fds)
    : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds) {}

FdTransport::~FdTransport() {
  if (owns_fds_) {
    ::close(read_fd_);
    if (write_fd_ != read_fd_) ::close(write_fd_);
  }
}

std::ptrdiff_t FdTransport::ReadRaw(char* buffer, std::size_t capacity) {
  for (;;) {
    const ::ssize_t n = ::read(read_fd_, buffer, capacity);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool FdTransport::WriteRaw(const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL would only cover sockets; the daemon ignores SIGPIPE
    // instead so pipes (stdio mode) behave the same, and a failed write
    // reports false rather than raising a signal.
    const ::ssize_t n = ::write(write_fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

// --- LoopbackTransport -------------------------------------------------------

struct LoopbackTransport::Direction {
  util::Mutex mutex;
  util::CondVar readable;
  std::string bytes JARVIS_GUARDED_BY(mutex);
  bool closed JARVIS_GUARDED_BY(mutex) = false;
};

LoopbackPair MakeLoopbackPair() {
  auto client_to_server = std::make_shared<LoopbackTransport::Direction>();
  auto server_to_client = std::make_shared<LoopbackTransport::Direction>();
  LoopbackPair pair;
  pair.client.reset(
      new LoopbackTransport(server_to_client, client_to_server));
  pair.server.reset(
      new LoopbackTransport(client_to_server, server_to_client));
  return pair;
}

LoopbackTransport::~LoopbackTransport() { CloseWrite(); }

void LoopbackTransport::CloseWrite() {
  {
    util::MutexLock lock(out_->mutex);
    out_->closed = true;
  }
  out_->readable.SignalAll();
}

void LoopbackTransport::WriteRawBytes(const std::string& bytes) {
  {
    util::MutexLock lock(out_->mutex);
    out_->bytes.append(bytes);
  }
  out_->readable.Signal();
}

std::ptrdiff_t LoopbackTransport::ReadRaw(char* buffer, std::size_t capacity) {
  util::MutexLock lock(in_->mutex);
  while (in_->bytes.empty() && !in_->closed) {
    in_->readable.Wait(in_->mutex);
  }
  if (in_->bytes.empty()) return 0;  // closed and drained: EOF
  const std::size_t n = std::min(capacity, in_->bytes.size());
  std::memcpy(buffer, in_->bytes.data(), n);
  in_->bytes.erase(0, n);
  return static_cast<std::ptrdiff_t>(n);
}

bool LoopbackTransport::WriteRaw(const char* data, std::size_t size) {
  {
    util::MutexLock lock(out_->mutex);
    if (out_->closed) return false;
    out_->bytes.append(data, size);
  }
  out_->readable.Signal();
  return true;
}

// --- TCP ---------------------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) ThrowIo("socket");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<::sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ThrowIo("bind");
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ThrowIo("listen");
  }
  ::socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<::sockaddr*>(&addr), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ThrowIo("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::unique_ptr<FramedTransport> TcpListener::Accept(int timeout_ms) {
  ::pollfd pfd{};
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return nullptr;  // timeout: caller polls its drain flag
    if (ready < 0) {
      if (errno == EINTR) return nullptr;  // let the caller re-check flags
      ThrowIo("poll");
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      ThrowIo("accept");
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    return std::make_unique<FdTransport>(fd, fd, /*owns_fds=*/true);
  }
}

std::unique_ptr<FramedTransport> ConnectTcp(const std::string& host,
                                            std::uint16_t port,
                                            std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return nullptr;
  }
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    if (error != nullptr) *error = "invalid IPv4 address '" + host + "'";
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return std::make_unique<FdTransport>(fd, fd, /*owns_fds=*/true);
}

}  // namespace jarvis::serve
