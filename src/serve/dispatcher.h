// Request dispatch for the serving daemon: decode → Fleet call → encode.
//
// The Dispatcher is the handler half of the transport/handler split
// (DESIGN.md §15): it consumes frame PAYLOADS (strings) and produces
// response payloads, with no knowledge of sockets, fds, or framing — which
// is exactly what makes every handler unit-testable against an in-memory
// Fleet. The Server owns admission and I/O; this class owns semantics.
//
// Failure discipline (the persist::Checkpoint rule applied to requests):
// Dispatch NEVER throws and never kills the daemon. Hostile payloads
// (garbage JSON, unknown types, wrong field shapes, out-of-range tenants,
// invalid states) each produce one error response with a stable error code
// and one counter increment; a handler that throws internally (e.g. a
// Fleet contract check) is caught and reported as handler_failed.
//
// Concurrency: Dispatch runs on ThreadPool workers, many at once.
//   * Suggestion handlers call Fleet::SuggestMinutes concurrently — it is
//     thread-safe on its own: the fleet serializes per tenant on the
//     direct inference route and, with an AggregationService attached
//     (Fleet::EnableAggregation), coalesces concurrent suggestions —
//     across tenants — into shared batched GEMMs, which is what makes
//     many-tenant daemon traffic amortize (DESIGN.md §16).
//   * Ingest buffers and stall bookkeeping sit under mutex_.
//   * Metrics/health/checkpoint ride the Fleet's own thread-safe API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "events/event.h"
#include "obs/metrics.h"
#include "runtime/fleet.h"
#include "serve/protocol.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jarvis::serve {

struct DispatcherOptions {
  // Default observation for suggestion requests that omit "state" (the
  // daemon owner knows the home model; thin clients often don't). Empty =
  // state is required on the wire.
  fsm::StateVector default_state;
  // Where `checkpoint` requests without a "dir" field and the final drain
  // flush write (empty = checkpoint requests must carry "dir" and drain
  // flushes nothing).
  std::string checkpoint_dir;
  // Per-tenant cap on buffered ingested events; events past the cap are
  // rejected (counted), not queued — bounded memory under a log flood.
  std::size_t max_ingest_events = 100000;
  // Enables the `stall` request (parks the handling worker until
  // ReleaseStalls). Test/bench-only: it exists to create deterministic
  // overload and drain-under-load scenarios; production daemons leave it
  // off and answer stall with bad_request.
  bool allow_stall = false;
};

// What the final drain flush wrote (DESIGN.md §15 drain state machine).
struct DrainFlushReport {
  std::size_t checkpoints_saved = 0;
  std::size_t checkpoints_failed = 0;
  std::size_t ingest_files_written = 0;
  std::size_t ingest_events_flushed = 0;
};

class Dispatcher {
 public:
  // `fleet` must outlive the dispatcher; its tenants should have completed
  // a Run (suggestion handlers answer no_policy otherwise). A non-null
  // `registry` wires serve.req.* counters and per-type handler latency.
  Dispatcher(runtime::Fleet& fleet, DispatcherOptions options,
             obs::Registry* registry);

  // Full path: parse payload → route → encode. Never throws.
  std::string HandlePayload(const std::string& payload);
  // Routes an already-parsed request. Never throws.
  std::string Dispatch(const Request& request);

  // Invoked (at most once) when a shutdown request is accepted; the Server
  // wires this to its drain flag.
  void SetShutdownCallback(std::function<void()> callback)
      JARVIS_EXCLUDES(mutex_);

  // Final durable flush for graceful drain: per-tenant fleet checkpoints
  // plus buffered ingest events, all through util::io's atomic path into
  // options.checkpoint_dir. Call only after the pool is idle.
  DrainFlushReport FlushForDrain() JARVIS_EXCLUDES(mutex_);

  // Releases every parked stall request (see DispatcherOptions.allow_stall).
  void ReleaseStalls() JARVIS_EXCLUDES(mutex_);
  // Stall requests currently parked on workers (the bench polls this to
  // make its overload sweep deterministic).
  std::size_t stalled_now() const JARVIS_EXCLUDES(mutex_);

  // Buffered ingested events for one tenant (tests).
  std::size_t ingested_events(std::size_t tenant) const
      JARVIS_EXCLUDES(mutex_);

 private:
  util::JsonObject HandlePing();
  util::JsonObject HandleHealth() JARVIS_EXCLUDES(mutex_);
  util::JsonObject HandleIngest(const util::JsonValue& body)
      JARVIS_EXCLUDES(mutex_);
  util::JsonObject HandleSuggestAction(const util::JsonValue& body);
  util::JsonObject HandleSuggestMinutes(const util::JsonValue& body);
  util::JsonObject HandleMetrics();
  util::JsonObject HandleCheckpoint(const util::JsonValue& body);
  util::JsonObject HandleShutdown() JARVIS_EXCLUDES(mutex_);
  util::JsonObject HandleStall() JARVIS_EXCLUDES(mutex_);

  // Throws std::invalid_argument (→ bad_request) on shape errors; the
  // tenant must be < tenant_count_ (→ unknown_tenant via a tagged throw in
  // the helper).
  std::size_t ParseTenant(const util::JsonValue& body) const;
  fsm::StateVector ParseState(const util::JsonValue& body) const;

  runtime::Fleet& fleet_;          // unguarded: internally synchronized
  const DispatcherOptions options_;  // unguarded: fixed at construction
  // The serving catalog covers the tenants present when the daemon
  // started.
  const std::size_t tenant_count_;  // unguarded: fixed at construction
  mutable util::Mutex mutex_;
  std::vector<std::vector<events::Event>> ingest_ JARVIS_GUARDED_BY(mutex_);
  std::function<void()> shutdown_callback_ JARVIS_GUARDED_BY(mutex_);
  bool shutdown_fired_ JARVIS_GUARDED_BY(mutex_) = false;
  std::size_t stalled_ JARVIS_GUARDED_BY(mutex_) = 0;
  bool stalls_released_ JARVIS_GUARDED_BY(mutex_) = false;
  util::CondVar stall_gate_;
  // Instrument pointers wired once in the constructor; the instruments are
  // internally synchronized atomics.
  std::vector<obs::Counter*> request_counters_;  // unguarded: wired in ctor
  std::vector<obs::Histogram*> handle_timers_;   // unguarded: wired in ctor
  obs::Counter* responses_ok_ = nullptr;         // unguarded: wired in ctor
  obs::Counter* responses_error_ = nullptr;      // unguarded: wired in ctor
  obs::Counter* bad_requests_ = nullptr;         // unguarded: wired in ctor
};

}  // namespace jarvis::serve
