// JSON (de)serialization of network parameters, so a trained SPL filter or
// Q-network can be saved after the learning phase and reloaded at
// deployment, as the paper's offline-learning workflow implies.
//
// Format versions: v1 documents carry topology + parameters only; v2 (the
// current writer) additionally carries an optional "optimizer" object
// (kind + moment/velocity state) when serialized with include_optimizer,
// so a restored network resumes training mid-schedule instead of with a
// cold optimizer. FromJson reads both.
//
// Non-finite policy: serialization REJECTS NaN/Inf parameters with
// util::CheckError, and deserialization rejects them with util::JsonError.
// A diverged network must fail loudly at the save/restore boundary — the
// JSON writer's "%.17g" would emit unparseable tokens, and silently
// persisting a poisoned policy is exactly the failure mode the checkpoint
// layer exists to prevent.
#pragma once

#include <string>

#include "neural/network.h"
#include "util/json.h"

namespace jarvis::neural {

// Tensor <-> JSON ({rows, cols, data}), shared by the network and
// optimizer-state serializers. TensorToJson throws util::CheckError on
// non-finite values; TensorFromJson throws util::JsonError on malformed
// shape, size mismatch, or non-finite data.
jarvis::util::JsonValue TensorToJson(const Tensor& t);
Tensor TensorFromJson(const jarvis::util::JsonValue& doc);

struct SerializeOptions {
  // Persist the optimizer's state (Adam moments / SGD velocities, step
  // count) alongside the parameters. Off by default: inference-only
  // reloads don't pay for it, and v1 readers stay compatible.
  bool include_optimizer = false;
};

// Serializes topology + parameters (+ optimizer state when requested).
jarvis::util::JsonValue ToJson(const Network& network,
                               const SerializeOptions& options = {});
std::string ToJsonString(const Network& network,
                         const SerializeOptions& options = {});

// Rebuilds a network from ToJson output with the given loss/optimizer.
// When the document carries optimizer state, it is imported into
// `optimizer` — whose kind must match the recorded one (util::JsonError
// otherwise); without it the network resumes with the optimizer as given.
Network FromJson(const jarvis::util::JsonValue& doc, Loss loss,
                 std::unique_ptr<Optimizer> optimizer,
                 jarvis::util::Rng rng);
Network FromJsonString(const std::string& text, Loss loss,
                       std::unique_ptr<Optimizer> optimizer,
                       jarvis::util::Rng rng);

}  // namespace jarvis::neural
