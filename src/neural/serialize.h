// JSON (de)serialization of network parameters, so a trained SPL filter or
// Q-network can be saved after the learning phase and reloaded at
// deployment, as the paper's offline-learning workflow implies.
#pragma once

#include <string>

#include "neural/network.h"
#include "util/json.h"

namespace jarvis::neural {

// Serializes topology + parameters. The optimizer state is not saved; a
// reloaded network resumes with a fresh optimizer.
jarvis::util::JsonValue ToJson(const Network& network);
std::string ToJsonString(const Network& network);

// Rebuilds a network from ToJson output with the given loss/optimizer.
Network FromJson(const jarvis::util::JsonValue& doc, Loss loss,
                 std::unique_ptr<Optimizer> optimizer,
                 jarvis::util::Rng rng);
Network FromJsonString(const std::string& text, Loss loss,
                       std::unique_ptr<Optimizer> optimizer,
                       jarvis::util::Rng rng);

}  // namespace jarvis::neural
