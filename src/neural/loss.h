// Loss functions: MSE for the DQN regression head, binary cross-entropy for
// the anomaly-filter ANN. Both report the mean loss over the batch and the
// gradient with respect to the prediction.
#pragma once

#include <string>

#include "neural/tensor.h"

namespace jarvis::neural {

enum class Loss {
  kMeanSquaredError,
  kBinaryCrossEntropy,
};

std::string LossName(Loss loss);

// Mean loss over all elements of the batch.
double ComputeLoss(Loss loss, const Tensor& prediction, const Tensor& target);

// dLoss/dPrediction, same shape as prediction, already averaged over the
// batch element count (so optimizer steps are batch-size invariant).
Tensor LossGradient(Loss loss, const Tensor& prediction, const Tensor& target);
// Scratch-tensor variant: writes into `grad` (resized; allocation-free once
// the shape has been seen). `grad` must not alias prediction or target.
void LossGradientInto(Loss loss, const Tensor& prediction,
                      const Tensor& target, Tensor& grad);

// Per-element mask variant of MSE: positions where mask == 0 contribute no
// loss and no gradient. The DQN uses this to train only the Q output for the
// mini-action actually taken (Section V-A-7) while leaving other heads
// untouched.
double MaskedMseLoss(const Tensor& prediction, const Tensor& target,
                     const Tensor& mask);
Tensor MaskedMseGradient(const Tensor& prediction, const Tensor& target,
                         const Tensor& mask);
// Scratch-tensor variant (see LossGradientInto).
void MaskedMseGradientInto(const Tensor& prediction, const Tensor& target,
                           const Tensor& mask, Tensor& grad);

}  // namespace jarvis::neural
