// Activation functions and their derivatives for the ANN filter and DQN.
#pragma once

#include <string>

#include "neural/tensor.h"

namespace jarvis::neural {

enum class Activation {
  kIdentity,  // linear output head (Q-values are unbounded)
  kRelu,      // hidden layers of the DQN
  kSigmoid,   // binary output of the anomaly-filter ANN
  kTanh,
};

std::string ActivationName(Activation act);
Activation ActivationFromName(const std::string& name);

// Applies the activation elementwise.
Tensor Apply(Activation act, const Tensor& pre_activation);

// Derivative with respect to the pre-activation, expressed in terms of the
// *activated* output (all four supported activations admit this form, which
// avoids recomputing the forward pass during backprop).
Tensor DerivativeFromOutput(Activation act, const Tensor& activated);

// Row-wise softmax (used by tests and by policy summaries; not part of the
// Q-value head itself).
Tensor Softmax(const Tensor& logits);

}  // namespace jarvis::neural
