// Activation functions and their derivatives for the ANN filter and DQN.
#pragma once

#include <string>

#include "neural/tensor.h"

namespace jarvis::neural {

enum class Activation {
  kIdentity,  // linear output head (Q-values are unbounded)
  kRelu,      // hidden layers of the DQN
  kSigmoid,   // binary output of the anomaly-filter ANN
  kTanh,
};

std::string ActivationName(Activation act);
Activation ActivationFromName(const std::string& name);

// Applies the activation elementwise.
Tensor Apply(Activation act, const Tensor& pre_activation);

// In-place, statically dispatched activation kernel: one switch per tensor,
// then a tight loop with the scalar function inlined — no std::function
// indirection per element. The hot-path entry point (DenseLayer forward).
void ApplyInPlace(Activation act, Tensor& tensor);

// Derivative with respect to the pre-activation, expressed in terms of the
// *activated* output (all four supported activations admit this form, which
// avoids recomputing the forward pass during backprop).
Tensor DerivativeFromOutput(Activation act, const Tensor& activated);

// Statically dispatched derivative kernel writing into a caller-owned
// scratch tensor (resized; no allocation once `out` has seen the shape).
// `out` must not alias `activated`.
void DerivativeFromOutputInto(Activation act, const Tensor& activated,
                              Tensor& out);

// Row-wise softmax (used by tests and by policy summaries; not part of the
// Q-value head itself).
Tensor Softmax(const Tensor& logits);

}  // namespace jarvis::neural
