#include "neural/optimizer.h"

#include <cmath>

#include "neural/serialize.h"
#include "util/check.h"

namespace jarvis::neural {

namespace {

util::JsonValue TensorsToJson(const std::vector<Tensor>& tensors) {
  util::JsonArray arr;
  arr.reserve(tensors.size());
  for (const Tensor& t : tensors) arr.push_back(TensorToJson(t));
  return util::JsonValue(std::move(arr));
}

std::vector<Tensor> TensorsFromJson(const util::JsonValue& doc) {
  std::vector<Tensor> tensors;
  const auto& arr = doc.AsArray();
  tensors.reserve(arr.size());
  for (const auto& entry : arr) tensors.push_back(TensorFromJson(entry));
  return tensors;
}

// Restored moment/velocity tensors must mirror the layer parameter shapes
// exactly; Step indexes them by the parameter sizes, so a mismatch
// admitted here would read out of bounds there.
void CheckStateShapes(const std::string& what,
                      const std::vector<DenseLayer>& layers,
                      const std::vector<Tensor>& weight_like,
                      const std::vector<Tensor>& bias_like) {
  if (weight_like.size() != layers.size() ||
      bias_like.size() != layers.size()) {
    throw util::JsonError(what + ": optimizer state layer count mismatch");
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (weight_like[i].rows() != layers[i].weights().rows() ||
        weight_like[i].cols() != layers[i].weights().cols() ||
        bias_like[i].rows() != 1 ||
        bias_like[i].cols() != layers[i].biases().cols()) {
      throw util::JsonError(what + ": optimizer state shape mismatch at layer " +
                            std::to_string(i));
    }
  }
}

// In-place p[i] -= g[i] * lr. The product is rounded into a named temporary
// before the subtraction, so the result is bit-identical to the historical
// materialize-a-scaled-tensor-then-subtract formulation (and immune to FMA
// contraction).
void ApplyScaledGradient(Tensor& param, const Tensor& grad, double lr) {
  auto& p = param.mutable_data();
  const auto& g = grad.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double scaled = g[i] * lr;
    p[i] -= scaled;
  }
}

// In-place v[i] = v[i]*momentum + g[i]*lr; p[i] -= v[i]. Each product is
// rounded separately, matching the historical tensor-expression sequence
// (v *= momentum; v += g*lr; p -= v) bit-for-bit.
void ApplyMomentumStep(Tensor& param, const Tensor& grad, Tensor& velocity,
                       double momentum, double lr) {
  auto& p = param.mutable_data();
  auto& v = velocity.mutable_data();
  const auto& g = grad.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double decayed = v[i] * momentum;
    const double scaled = g[i] * lr;
    v[i] = decayed + scaled;
    p[i] -= v[i];
  }
}

}  // namespace

Sgd::Sgd(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {
  JARVIS_CHECK_GT(learning_rate, 0.0, "Sgd: lr <= 0");
  JARVIS_CHECK(momentum >= 0.0 && momentum < 1.0, "Sgd: momentum out of [0,1)");
}

void Sgd::Step(std::vector<DenseLayer>& layers) {
  if (weight_velocity_.size() != layers.size()) {
    weight_velocity_.clear();
    bias_velocity_.clear();
    for (const auto& layer : layers) {
      weight_velocity_.emplace_back(layer.weights().rows(),
                                    layer.weights().cols());
      bias_velocity_.emplace_back(1, layer.biases().cols());
    }
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    auto& layer = layers[i];
    if (momentum_ > 0.0) {
      ApplyMomentumStep(layer.weights(), layer.weight_gradients(),
                        weight_velocity_[i], momentum_, learning_rate_);
      ApplyMomentumStep(layer.biases(), layer.bias_gradients(),
                        bias_velocity_[i], momentum_, learning_rate_);
    } else {
      ApplyScaledGradient(layer.weights(), layer.weight_gradients(),
                          learning_rate_);
      ApplyScaledGradient(layer.biases(), layer.bias_gradients(),
                          learning_rate_);
    }
    layer.ZeroGradients();
  }
}

util::JsonValue Sgd::StateToJson() const {
  util::JsonObject obj;
  obj["velocity_weights"] = TensorsToJson(weight_velocity_);
  obj["velocity_biases"] = TensorsToJson(bias_velocity_);
  return util::JsonValue(std::move(obj));
}

void Sgd::StateFromJson(const util::JsonValue& doc,
                        const std::vector<DenseLayer>& layers) {
  auto weights = TensorsFromJson(doc.At("velocity_weights"));
  auto biases = TensorsFromJson(doc.At("velocity_biases"));
  // Empty state (saved before the first Step) is valid and restores the
  // lazy-init condition; anything else must match the layers exactly.
  if (!weights.empty() || !biases.empty()) {
    CheckStateShapes("Sgd::StateFromJson", layers, weights, biases);
  }
  weight_velocity_ = std::move(weights);
  bias_velocity_ = std::move(biases);
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  JARVIS_CHECK_GT(learning_rate, 0.0, "Adam: lr <= 0");
}

util::JsonValue Adam::StateToJson() const {
  util::JsonObject obj;
  obj["step_count"] = util::JsonValue(static_cast<std::int64_t>(step_count_));
  obj["m_weights"] = TensorsToJson(m_weights_);
  obj["v_weights"] = TensorsToJson(v_weights_);
  obj["m_biases"] = TensorsToJson(m_biases_);
  obj["v_biases"] = TensorsToJson(v_biases_);
  return util::JsonValue(std::move(obj));
}

void Adam::StateFromJson(const util::JsonValue& doc,
                         const std::vector<DenseLayer>& layers) {
  const std::int64_t steps = doc.At("step_count").AsInt();
  if (steps < 0) {
    throw util::JsonError("Adam::StateFromJson: negative step count");
  }
  auto mw = TensorsFromJson(doc.At("m_weights"));
  auto vw = TensorsFromJson(doc.At("v_weights"));
  auto mb = TensorsFromJson(doc.At("m_biases"));
  auto vb = TensorsFromJson(doc.At("v_biases"));
  const bool empty = mw.empty() && vw.empty() && mb.empty() && vb.empty();
  if (!empty) {
    CheckStateShapes("Adam::StateFromJson", layers, mw, mb);
    CheckStateShapes("Adam::StateFromJson", layers, vw, vb);
  } else if (steps != 0) {
    // step_count without moments would skew the bias correction of every
    // future step; reject the inconsistent state.
    throw util::JsonError(
        "Adam::StateFromJson: step count without moment tensors");
  }
  step_count_ = static_cast<long>(steps);
  m_weights_ = std::move(mw);
  v_weights_ = std::move(vw);
  m_biases_ = std::move(mb);
  v_biases_ = std::move(vb);
}

void Adam::Step(std::vector<DenseLayer>& layers) {
  if (m_weights_.size() != layers.size()) {
    m_weights_.clear();
    v_weights_.clear();
    m_biases_.clear();
    v_biases_.clear();
    for (const auto& layer : layers) {
      m_weights_.emplace_back(layer.weights().rows(), layer.weights().cols());
      v_weights_.emplace_back(layer.weights().rows(), layer.weights().cols());
      m_biases_.emplace_back(1, layer.biases().cols());
      v_biases_.emplace_back(1, layer.biases().cols());
    }
  }
  ++step_count_;
  const double bias_correction1 =
      1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias_correction2 =
      1.0 - std::pow(beta2_, static_cast<double>(step_count_));

  auto apply = [&](Tensor& param, const Tensor& grad, Tensor& m, Tensor& v) {
    auto& m_data = m.mutable_data();
    auto& v_data = v.mutable_data();
    auto& p_data = param.mutable_data();
    const auto& g_data = grad.data();
    for (std::size_t i = 0; i < p_data.size(); ++i) {
      m_data[i] = beta1_ * m_data[i] + (1.0 - beta1_) * g_data[i];
      v_data[i] = beta2_ * v_data[i] + (1.0 - beta2_) * g_data[i] * g_data[i];
      const double m_hat = m_data[i] / bias_correction1;
      const double v_hat = v_data[i] / bias_correction2;
      p_data[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  };

  for (std::size_t i = 0; i < layers.size(); ++i) {
    auto& layer = layers[i];
    apply(layer.weights(), layer.weight_gradients(), m_weights_[i],
          v_weights_[i]);
    apply(layer.biases(), layer.bias_gradients(), m_biases_[i], v_biases_[i]);
    layer.ZeroGradients();
  }
}

}  // namespace jarvis::neural
