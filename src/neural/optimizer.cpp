#include "neural/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace jarvis::neural {

Sgd::Sgd(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {
  if (learning_rate <= 0.0) throw std::invalid_argument("Sgd: lr <= 0");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("Sgd: momentum out of [0,1)");
  }
}

void Sgd::Step(std::vector<DenseLayer>& layers) {
  if (weight_velocity_.size() != layers.size()) {
    weight_velocity_.clear();
    bias_velocity_.clear();
    for (const auto& layer : layers) {
      weight_velocity_.emplace_back(layer.weights().rows(),
                                    layer.weights().cols());
      bias_velocity_.emplace_back(1, layer.biases().cols());
    }
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    auto& layer = layers[i];
    if (momentum_ > 0.0) {
      weight_velocity_[i] *= momentum_;
      weight_velocity_[i] += layer.weight_gradients() * learning_rate_;
      bias_velocity_[i] *= momentum_;
      bias_velocity_[i] += layer.bias_gradients() * learning_rate_;
      layer.weights() -= weight_velocity_[i];
      layer.biases() -= bias_velocity_[i];
    } else {
      layer.weights() -= layer.weight_gradients() * learning_rate_;
      layer.biases() -= layer.bias_gradients() * learning_rate_;
    }
    layer.ZeroGradients();
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  if (learning_rate <= 0.0) throw std::invalid_argument("Adam: lr <= 0");
}

void Adam::Step(std::vector<DenseLayer>& layers) {
  if (m_weights_.size() != layers.size()) {
    m_weights_.clear();
    v_weights_.clear();
    m_biases_.clear();
    v_biases_.clear();
    for (const auto& layer : layers) {
      m_weights_.emplace_back(layer.weights().rows(), layer.weights().cols());
      v_weights_.emplace_back(layer.weights().rows(), layer.weights().cols());
      m_biases_.emplace_back(1, layer.biases().cols());
      v_biases_.emplace_back(1, layer.biases().cols());
    }
  }
  ++step_count_;
  const double bias_correction1 =
      1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias_correction2 =
      1.0 - std::pow(beta2_, static_cast<double>(step_count_));

  auto apply = [&](Tensor& param, const Tensor& grad, Tensor& m, Tensor& v) {
    auto& m_data = m.mutable_data();
    auto& v_data = v.mutable_data();
    auto& p_data = param.mutable_data();
    const auto& g_data = grad.data();
    for (std::size_t i = 0; i < p_data.size(); ++i) {
      m_data[i] = beta1_ * m_data[i] + (1.0 - beta1_) * g_data[i];
      v_data[i] = beta2_ * v_data[i] + (1.0 - beta2_) * g_data[i] * g_data[i];
      const double m_hat = m_data[i] / bias_correction1;
      const double v_hat = v_data[i] / bias_correction2;
      p_data[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  };

  for (std::size_t i = 0; i < layers.size(); ++i) {
    auto& layer = layers[i];
    apply(layer.weights(), layer.weight_gradients(), m_weights_[i],
          v_weights_[i]);
    apply(layer.biases(), layer.bias_gradients(), m_biases_[i], v_biases_[i]);
    layer.ZeroGradients();
  }
}

}  // namespace jarvis::neural
