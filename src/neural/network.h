// A feed-forward multilayer perceptron assembled from DenseLayers, with
// training by back-propagation. This single class covers both networks in
// the paper: the one-hidden-layer ANN anomaly filter (sigmoid output + BCE)
// and the two-hidden-layer DQN Q-function approximator (linear output + MSE,
// optionally masked to the taken mini-action).
#pragma once

#include <memory>
#include <vector>

#include "neural/loss.h"
#include "neural/optimizer.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace jarvis::neural {

// Describes one layer of the network to build.
struct LayerSpec {
  std::size_t units;
  Activation activation;
};

class Network {
 public:
  // `input_features` is the width of the input; `layers` lists hidden and
  // output layers in order. The optimizer is owned by the network.
  // Argument validation is enforced with JARVIS_CHECK (throws
  // util::CheckError).
  Network(std::size_t input_features, const std::vector<LayerSpec>& layers,
          Loss loss, std::unique_ptr<Optimizer> optimizer,
          jarvis::util::Rng rng);

  // Forward pass for inference, returning a fresh tensor. Inference routes
  // through mutable network-owned scratch (zero steady-state allocations
  // beyond the returned copy), so a Network is thread-compatible, not
  // thread-safe: each fleet tenant owns its network and runs on one worker
  // (DESIGN.md §10/§12); nothing may share one Network across threads.
  Tensor Predict(const Tensor& input) const;
  // Allocation-free variant: returns a reference to network-owned scratch
  // holding the prediction. Invalidated by the next Predict*/forward call
  // on this network; `input` must not alias network scratch (i.e. must not
  // itself be a reference previously returned by this method).
  const Tensor& PredictScratch(const Tensor& input) const;
  // Convenience: single-sample prediction.
  std::vector<double> PredictOne(const std::vector<double>& input) const;
  // Allocation-free single-sample variant (steady state: `out` is resized
  // once and overwritten thereafter).
  void PredictOneInto(const std::vector<double>& input,
                      std::vector<double>& out) const;

  // Batched inference over `inputs` (rows are independent samples; width
  // must equal input_features()). Row i of the result is *bit-identical*
  // to PredictOne(row i): every layer op — MatMul accumulation, bias
  // broadcast, activation — iterates each output row independently in the
  // same order regardless of how many rows share the tensor, so batching
  // queries from many tenants through one forward (runtime::
  // InferenceBatcher) cannot perturb any tenant's Q-values. The batched
  // parity test (runtime_batcher_test) pins this invariant.
  Tensor PredictBatch(const Tensor& inputs) const;
  // Allocation-free PredictBatch: same contract (width check, metrics
  // observation, per-row bit-identity with PredictOne), returning a
  // reference into network scratch, valid until the next Predict*/forward
  // call on this network.
  const Tensor& PredictBatchScratch(const Tensor& inputs) const;

  // One optimization step on a batch; returns the batch loss before the
  // update.
  double TrainBatch(const Tensor& input, const Tensor& target);

  // Masked variant (MSE only): elements with mask==0 receive no gradient.
  double TrainBatchMasked(const Tensor& input, const Tensor& target,
                          const Tensor& mask);

  // Replay fast path, in two halves. ForwardForTraining runs one cached
  // forward over `input` and returns the prediction (a reference into
  // layer scratch, valid until the next forward/train call on this
  // network; PredictScratch and PredictOneInto use separate inference
  // scratch and do NOT invalidate it). TrainCachedMasked then trains
  // against that cached forward without recomputing it — bit-identical to
  // TrainBatchMasked(input, target, mask), minus one redundant forward
  // pass. DqnAgent::Replay uses the pair to derive its targets from the
  // same forward it trains on.
  const Tensor& ForwardForTraining(const Tensor& input);
  double TrainCachedMasked(const Tensor& target, const Tensor& mask);

  // Repeats TrainBatch over the whole dataset in shuffled mini-batches for
  // one epoch; returns the mean batch loss.
  double TrainEpoch(const Tensor& inputs, const Tensor& targets,
                    std::size_t batch_size);

  std::size_t input_features() const { return input_features_; }
  std::size_t output_features() const { return layers_.back().out_features(); }
  std::size_t parameter_count() const;
  Loss loss() const { return loss_; }

  const std::vector<DenseLayer>& layers() const { return layers_; }
  std::vector<DenseLayer>& mutable_layers() { return layers_; }

  // The owned optimizer; checkpoint state export/import goes through
  // neural/serialize.h's include_optimizer flag.
  const Optimizer& optimizer() const { return *optimizer_; }
  Optimizer& optimizer() { return *optimizer_; }

  // Copies weights/biases from another network with identical topology
  // (used for DQN target-network style ablations).
  void CopyParametersFrom(const Network& other);

  // Inference-only snapshot: a new Network with identical topology and an
  // exact (bit-for-bit) copy of this network's parameters, behind a dummy
  // optimizer. Because Predict* is a pure function of (parameters, input)
  // and the copies are exact Tensor copies, the clone's forwards are
  // bit-identical to this network's — which is what lets a serving-side
  // weight version (runtime::AggregationService::PublishWeights) answer
  // queries while training keeps mutating the source network. The clone
  // shares no state with the source, so each side's mutable inference
  // scratch is private (thread-compatibility per network, DESIGN.md §12).
  std::unique_ptr<Network> CloneForInference() const;

  // Raw parameter snapshot/restore (weights, biases) per layer — cheap
  // checkpointing for best-policy tracking during RL training.
  std::vector<std::pair<Tensor, Tensor>> ExportParameters() const;
  void ImportParameters(const std::vector<std::pair<Tensor, Tensor>>& params);

  // Wires neural.predict_batch.rows (batch-size distribution of the
  // batched-inference entry point — the fleet amortization statistic).
  // Null disables. Observation only: PredictBatch output stays
  // bit-identical per row regardless of wiring.
  void SetMetrics(obs::Registry* registry);

 private:
  const Tensor& ForwardCached(const Tensor& input);
  void BackwardAndStep(const Tensor& grad_output);

  std::size_t input_features_;
  Loss loss_;
  std::vector<DenseLayer> layers_;
  std::unique_ptr<Optimizer> optimizer_;
  mutable jarvis::util::Rng rng_;
  // Inference scratch: ping-pong activation buffers plus a 1-row staging
  // tensor for PredictOne. Mutable so const Predict stays allocation-free;
  // this is what makes the network thread-compatible rather than
  // thread-safe (see Predict).
  mutable Tensor infer_ping_;
  mutable Tensor infer_pong_;
  mutable Tensor infer_row_;
  // Training scratch: loss gradient and mini-batch gather buffers.
  Tensor loss_grad_;
  Tensor batch_in_;
  Tensor batch_target_;
  std::vector<std::size_t> epoch_order_;
  obs::Histogram* batch_rows_histogram_ = nullptr;
};

}  // namespace jarvis::neural
