// A feed-forward multilayer perceptron assembled from DenseLayers, with
// training by back-propagation. This single class covers both networks in
// the paper: the one-hidden-layer ANN anomaly filter (sigmoid output + BCE)
// and the two-hidden-layer DQN Q-function approximator (linear output + MSE,
// optionally masked to the taken mini-action).
#pragma once

#include <memory>
#include <vector>

#include "neural/loss.h"
#include "neural/optimizer.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace jarvis::neural {

// Describes one layer of the network to build.
struct LayerSpec {
  std::size_t units;
  Activation activation;
};

class Network {
 public:
  // `input_features` is the width of the input; `layers` lists hidden and
  // output layers in order. The optimizer is owned by the network.
  Network(std::size_t input_features, const std::vector<LayerSpec>& layers,
          Loss loss, std::unique_ptr<Optimizer> optimizer,
          jarvis::util::Rng rng);

  // Forward pass for inference (no caches mutated beyond layer scratch).
  Tensor Predict(const Tensor& input) const;
  // Convenience: single-sample prediction.
  std::vector<double> PredictOne(const std::vector<double>& input) const;

  // Batched inference over `inputs` (rows are independent samples; width
  // must equal input_features()). Row i of the result is *bit-identical*
  // to PredictOne(row i): every layer op — MatMul accumulation, bias
  // broadcast, activation — iterates each output row independently in the
  // same order regardless of how many rows share the tensor, so batching
  // queries from many tenants through one forward (runtime::
  // InferenceBatcher) cannot perturb any tenant's Q-values. The batched
  // parity test (runtime_batcher_test) pins this invariant.
  Tensor PredictBatch(const Tensor& inputs) const;

  // One optimization step on a batch; returns the batch loss before the
  // update.
  double TrainBatch(const Tensor& input, const Tensor& target);

  // Masked variant (MSE only): elements with mask==0 receive no gradient.
  double TrainBatchMasked(const Tensor& input, const Tensor& target,
                          const Tensor& mask);

  // Repeats TrainBatch over the whole dataset in shuffled mini-batches for
  // one epoch; returns the mean batch loss.
  double TrainEpoch(const Tensor& inputs, const Tensor& targets,
                    std::size_t batch_size);

  std::size_t input_features() const { return input_features_; }
  std::size_t output_features() const { return layers_.back().out_features(); }
  std::size_t parameter_count() const;
  Loss loss() const { return loss_; }

  const std::vector<DenseLayer>& layers() const { return layers_; }
  std::vector<DenseLayer>& mutable_layers() { return layers_; }

  // Copies weights/biases from another network with identical topology
  // (used for DQN target-network style ablations).
  void CopyParametersFrom(const Network& other);

  // Raw parameter snapshot/restore (weights, biases) per layer — cheap
  // checkpointing for best-policy tracking during RL training.
  std::vector<std::pair<Tensor, Tensor>> ExportParameters() const;
  void ImportParameters(const std::vector<std::pair<Tensor, Tensor>>& params);

  // Wires neural.predict_batch.rows (batch-size distribution of the
  // batched-inference entry point — the fleet amortization statistic).
  // Null disables. Observation only: PredictBatch output stays
  // bit-identical per row regardless of wiring.
  void SetMetrics(obs::Registry* registry);

 private:
  Tensor ForwardCached(const Tensor& input);
  void BackwardAndStep(const Tensor& grad_output);

  std::size_t input_features_;
  Loss loss_;
  std::vector<DenseLayer> layers_;
  std::unique_ptr<Optimizer> optimizer_;
  mutable jarvis::util::Rng rng_;
  obs::Histogram* batch_rows_histogram_ = nullptr;
};

}  // namespace jarvis::neural
