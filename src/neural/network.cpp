#include "neural/network.h"

#include <stdexcept>

namespace jarvis::neural {

Network::Network(std::size_t input_features,
                 const std::vector<LayerSpec>& layers, Loss loss,
                 std::unique_ptr<Optimizer> optimizer, jarvis::util::Rng rng)
    : input_features_(input_features),
      loss_(loss),
      optimizer_(std::move(optimizer)),
      rng_(rng) {
  if (layers.empty()) throw std::invalid_argument("Network: no layers");
  if (!optimizer_) throw std::invalid_argument("Network: null optimizer");
  std::size_t width = input_features;
  for (const auto& spec : layers) {
    layers_.emplace_back(width, spec.units, spec.activation, rng_);
    width = spec.units;
  }
}

Tensor Network::Predict(const Tensor& input) const {
  Tensor activation = input;
  for (const auto& layer : layers_) activation = layer.Infer(activation);
  return activation;
}

std::vector<double> Network::PredictOne(const std::vector<double>& input) const {
  return Predict(Tensor::Row(input)).RowVector(0);
}

Tensor Network::PredictBatch(const Tensor& inputs) const {
  if (inputs.cols() != input_features_) {
    throw std::invalid_argument("Network::PredictBatch: input width mismatch");
  }
  JARVIS_OBS_ONLY(if (batch_rows_histogram_ != nullptr) {
    batch_rows_histogram_->Observe(static_cast<double>(inputs.rows()));
  })
  if (inputs.rows() == 0) return Tensor(0, output_features());
  return Predict(inputs);
}

void Network::SetMetrics(obs::Registry* registry) {
  if (registry == nullptr) {
    batch_rows_histogram_ = nullptr;
    return;
  }
  batch_rows_histogram_ = registry->GetHistogram(
      "neural.predict_batch.rows",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
}

Tensor Network::ForwardCached(const Tensor& input) {
  Tensor activation = input;
  for (auto& layer : layers_) activation = layer.Forward(activation);
  return activation;
}

void Network::BackwardAndStep(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = it->Backward(grad);
  }
  optimizer_->Step(layers_);
}

double Network::TrainBatch(const Tensor& input, const Tensor& target) {
  const Tensor prediction = ForwardCached(input);
  const double batch_loss = ComputeLoss(loss_, prediction, target);
  BackwardAndStep(LossGradient(loss_, prediction, target));
  return batch_loss;
}

double Network::TrainBatchMasked(const Tensor& input, const Tensor& target,
                                 const Tensor& mask) {
  if (loss_ != Loss::kMeanSquaredError) {
    throw std::logic_error("TrainBatchMasked requires MSE loss");
  }
  const Tensor prediction = ForwardCached(input);
  const double batch_loss = MaskedMseLoss(prediction, target, mask);
  BackwardAndStep(MaskedMseGradient(prediction, target, mask));
  return batch_loss;
}

double Network::TrainEpoch(const Tensor& inputs, const Tensor& targets,
                           std::size_t batch_size) {
  if (inputs.rows() != targets.rows()) {
    throw std::invalid_argument("TrainEpoch: sample count mismatch");
  }
  if (batch_size == 0) throw std::invalid_argument("TrainEpoch: batch 0");
  std::vector<std::size_t> order(inputs.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.Shuffle(order);

  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < order.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, order.size());
    Tensor batch_in(end - start, inputs.cols());
    Tensor batch_target(end - start, targets.cols());
    for (std::size_t i = start; i < end; ++i) {
      batch_in.SetRow(i - start, inputs.RowVector(order[i]));
      batch_target.SetRow(i - start, targets.RowVector(order[i]));
    }
    total_loss += TrainBatch(batch_in, batch_target);
    ++batches;
  }
  return batches > 0 ? total_loss / static_cast<double>(batches) : 0.0;
}

std::size_t Network::parameter_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.parameter_count();
  return total;
}

std::vector<std::pair<Tensor, Tensor>> Network::ExportParameters() const {
  std::vector<std::pair<Tensor, Tensor>> params;
  params.reserve(layers_.size());
  for (const auto& layer : layers_) {
    params.emplace_back(layer.weights(), layer.biases());
  }
  return params;
}

void Network::ImportParameters(
    const std::vector<std::pair<Tensor, Tensor>>& params) {
  if (params.size() != layers_.size()) {
    throw std::invalid_argument("ImportParameters: layer count mismatch");
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!params[i].first.SameShape(layers_[i].weights()) ||
        !params[i].second.SameShape(layers_[i].biases())) {
      throw std::invalid_argument("ImportParameters: shape mismatch");
    }
    layers_[i].weights() = params[i].first;
    layers_[i].biases() = params[i].second;
  }
}

void Network::CopyParametersFrom(const Network& other) {
  if (other.layers_.size() != layers_.size()) {
    throw std::invalid_argument("CopyParametersFrom: topology mismatch");
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!layers_[i].weights().SameShape(other.layers_[i].weights())) {
      throw std::invalid_argument("CopyParametersFrom: layer shape mismatch");
    }
    layers_[i].weights() = other.layers_[i].weights();
    layers_[i].biases() = other.layers_[i].biases();
  }
}

}  // namespace jarvis::neural
