#include "neural/network.h"

#include "util/check.h"

namespace jarvis::neural {

Network::Network(std::size_t input_features,
                 const std::vector<LayerSpec>& layers, Loss loss,
                 std::unique_ptr<Optimizer> optimizer, jarvis::util::Rng rng)
    : input_features_(input_features),
      loss_(loss),
      optimizer_(std::move(optimizer)),
      rng_(rng) {
  JARVIS_CHECK(!layers.empty(), "Network: no layers");
  JARVIS_CHECK(optimizer_ != nullptr, "Network: null optimizer");
  std::size_t width = input_features;
  for (const auto& spec : layers) {
    layers_.emplace_back(width, spec.units, spec.activation, rng_);
    width = spec.units;
  }
}

const Tensor& Network::PredictScratch(const Tensor& input) const {
  const Tensor* activation = &input;
  bool into_ping = true;
  for (const auto& layer : layers_) {
    Tensor& out = into_ping ? infer_ping_ : infer_pong_;
    layer.InferInto(*activation, out);
    activation = &out;
    into_ping = !into_ping;
  }
  return *activation;
}

Tensor Network::Predict(const Tensor& input) const {
  return PredictScratch(input);
}

std::vector<double> Network::PredictOne(const std::vector<double>& input) const {
  std::vector<double> out;
  PredictOneInto(input, out);
  return out;
}

void Network::PredictOneInto(const std::vector<double>& input,
                             std::vector<double>& out) const {
  infer_row_.Resize(1, input.size());
  infer_row_.SetRow(0, input);
  const Tensor& prediction = PredictScratch(infer_row_);
  out.resize(prediction.cols());
  const auto& data = prediction.data();
  std::copy(data.begin(), data.end(), out.begin());
}

Tensor Network::PredictBatch(const Tensor& inputs) const {
  return PredictBatchScratch(inputs);
}

const Tensor& Network::PredictBatchScratch(const Tensor& inputs) const {
  JARVIS_CHECK_EQ(inputs.cols(), input_features_,
                  "Network::PredictBatch: input width mismatch");
  JARVIS_OBS_ONLY(if (batch_rows_histogram_ != nullptr) {
    batch_rows_histogram_->Observe(static_cast<double>(inputs.rows()));
  })
  return PredictScratch(inputs);
}

void Network::SetMetrics(obs::Registry* registry) {
  if (registry == nullptr) {
    batch_rows_histogram_ = nullptr;
    return;
  }
  batch_rows_histogram_ = registry->GetHistogram(
      "neural.predict_batch.rows", obs::DefaultBatchSizeBounds());
}

const Tensor& Network::ForwardCached(const Tensor& input) {
  const Tensor* activation = &input;
  for (auto& layer : layers_) activation = &layer.Forward(*activation);
  return *activation;
}

void Network::BackwardAndStep(const Tensor& grad_output) {
  // Gradient references walk backward through layer-owned scratch: layer N's
  // dInput is layer N-1's dOutput, with no intermediate copies.
  const Tensor* grad = &grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = &it->Backward(*grad);
  }
  optimizer_->Step(layers_);
}

double Network::TrainBatch(const Tensor& input, const Tensor& target) {
  const Tensor& prediction = ForwardCached(input);
  const double batch_loss = ComputeLoss(loss_, prediction, target);
  LossGradientInto(loss_, prediction, target, loss_grad_);
  BackwardAndStep(loss_grad_);
  return batch_loss;
}

double Network::TrainBatchMasked(const Tensor& input, const Tensor& target,
                                 const Tensor& mask) {
  JARVIS_CHECK(loss_ == Loss::kMeanSquaredError,
               "TrainBatchMasked requires MSE loss");
  const Tensor& prediction = ForwardCached(input);
  const double batch_loss = MaskedMseLoss(prediction, target, mask);
  MaskedMseGradientInto(prediction, target, mask, loss_grad_);
  BackwardAndStep(loss_grad_);
  return batch_loss;
}

const Tensor& Network::ForwardForTraining(const Tensor& input) {
  JARVIS_CHECK_EQ(input.cols(), input_features_,
                  "Network::ForwardForTraining: input width mismatch");
  return ForwardCached(input);
}

double Network::TrainCachedMasked(const Tensor& target, const Tensor& mask) {
  JARVIS_CHECK(loss_ == Loss::kMeanSquaredError,
               "TrainCachedMasked requires MSE loss");
  JARVIS_CHECK(layers_.back().has_cache(),
               "TrainCachedMasked without a preceding ForwardForTraining");
  const Tensor& prediction = layers_.back().cached_output();
  const double batch_loss = MaskedMseLoss(prediction, target, mask);
  MaskedMseGradientInto(prediction, target, mask, loss_grad_);
  BackwardAndStep(loss_grad_);
  return batch_loss;
}

double Network::TrainEpoch(const Tensor& inputs, const Tensor& targets,
                           std::size_t batch_size) {
  JARVIS_CHECK_EQ(inputs.rows(), targets.rows(),
                  "TrainEpoch: sample count mismatch");
  JARVIS_CHECK_GT(batch_size, std::size_t{0}, "TrainEpoch: batch 0");
  epoch_order_.resize(inputs.rows());
  for (std::size_t i = 0; i < epoch_order_.size(); ++i) epoch_order_[i] = i;
  rng_.Shuffle(epoch_order_);

  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < epoch_order_.size();
       start += batch_size) {
    const std::size_t end =
        std::min(start + batch_size, epoch_order_.size());
    // Gather rows into reusable scratch: the only per-epoch allocations are
    // the first-time growth of the two batch buffers.
    batch_in_.Resize(end - start, inputs.cols());
    batch_target_.Resize(end - start, targets.cols());
    for (std::size_t i = start; i < end; ++i) {
      batch_in_.CopyRowFrom(i - start, inputs, epoch_order_[i]);
      batch_target_.CopyRowFrom(i - start, targets, epoch_order_[i]);
    }
    total_loss += TrainBatch(batch_in_, batch_target_);
    ++batches;
  }
  return batches > 0 ? total_loss / static_cast<double>(batches) : 0.0;
}

std::size_t Network::parameter_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.parameter_count();
  return total;
}

std::vector<std::pair<Tensor, Tensor>> Network::ExportParameters() const {
  std::vector<std::pair<Tensor, Tensor>> params;
  params.reserve(layers_.size());
  for (const auto& layer : layers_) {
    params.emplace_back(layer.weights(), layer.biases());
  }
  return params;
}

void Network::ImportParameters(
    const std::vector<std::pair<Tensor, Tensor>>& params) {
  JARVIS_CHECK_EQ(params.size(), layers_.size(),
                  "ImportParameters: layer count mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    JARVIS_CHECK(params[i].first.SameShape(layers_[i].weights()) &&
                     params[i].second.SameShape(layers_[i].biases()),
                 "ImportParameters: shape mismatch");
    layers_[i].weights() = params[i].first;
    layers_[i].biases() = params[i].second;
  }
}

void Network::CopyParametersFrom(const Network& other) {
  JARVIS_CHECK_EQ(other.layers_.size(), layers_.size(),
                  "CopyParametersFrom: topology mismatch");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    JARVIS_CHECK(layers_[i].weights().SameShape(other.layers_[i].weights()),
                 "CopyParametersFrom: layer shape mismatch");
    layers_[i].weights() = other.layers_[i].weights();
    layers_[i].biases() = other.layers_[i].biases();
  }
}

std::unique_ptr<Network> Network::CloneForInference() const {
  std::vector<LayerSpec> specs;
  specs.reserve(layers_.size());
  for (const DenseLayer& layer : layers_) {
    specs.push_back({layer.out_features(), layer.activation()});
  }
  // The random initialization (any seed) and the optimizer choice are both
  // dead weight here: CopyParametersFrom overwrites every parameter with an
  // exact copy, and a clone is never trained.
  auto clone = std::make_unique<Network>(
      input_features_, specs, loss_,
      std::make_unique<Sgd>(optimizer_->learning_rate()), util::Rng(0));
  clone->CopyParametersFrom(*this);
  return clone;
}

}  // namespace jarvis::neural
