#include "neural/serialize.h"

namespace jarvis::neural {

using jarvis::util::JsonArray;
using jarvis::util::JsonObject;
using jarvis::util::JsonValue;

namespace {

JsonValue TensorToJson(const Tensor& t) {
  JsonObject obj;
  obj["rows"] = JsonValue(static_cast<std::int64_t>(t.rows()));
  obj["cols"] = JsonValue(static_cast<std::int64_t>(t.cols()));
  JsonArray data;
  data.reserve(t.size());
  for (double v : t.data()) data.emplace_back(v);
  obj["data"] = JsonValue(std::move(data));
  return JsonValue(std::move(obj));
}

Tensor TensorFromJson(const JsonValue& doc) {
  const auto rows = static_cast<std::size_t>(doc.At("rows").AsInt());
  const auto cols = static_cast<std::size_t>(doc.At("cols").AsInt());
  const auto& data = doc.At("data").AsArray();
  if (data.size() != rows * cols) {
    throw jarvis::util::JsonError("tensor data size mismatch");
  }
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < data.size(); ++i) {
    t.mutable_data()[i] = data[i].AsNumber();
  }
  return t;
}

}  // namespace

JsonValue ToJson(const Network& network) {
  JsonObject obj;
  obj["input_features"] =
      JsonValue(static_cast<std::int64_t>(network.input_features()));
  JsonArray layers;
  for (const auto& layer : network.layers()) {
    JsonObject layer_obj;
    layer_obj["activation"] = JsonValue(ActivationName(layer.activation()));
    layer_obj["weights"] = TensorToJson(layer.weights());
    layer_obj["biases"] = TensorToJson(layer.biases());
    layers.push_back(JsonValue(std::move(layer_obj)));
  }
  obj["layers"] = JsonValue(std::move(layers));
  return JsonValue(std::move(obj));
}

std::string ToJsonString(const Network& network) {
  return ToJson(network).Dump();
}

Network FromJson(const JsonValue& doc, Loss loss,
                 std::unique_ptr<Optimizer> optimizer, jarvis::util::Rng rng) {
  const auto input_features =
      static_cast<std::size_t>(doc.At("input_features").AsInt());
  const auto& layer_docs = doc.At("layers").AsArray();
  std::vector<LayerSpec> specs;
  specs.reserve(layer_docs.size());
  for (const auto& layer_doc : layer_docs) {
    specs.push_back(
        {static_cast<std::size_t>(layer_doc.At("weights").At("cols").AsInt()),
         ActivationFromName(layer_doc.At("activation").AsString())});
  }
  Network network(input_features, specs, loss, std::move(optimizer), rng);
  for (std::size_t i = 0; i < layer_docs.size(); ++i) {
    network.mutable_layers()[i].weights() =
        TensorFromJson(layer_docs[i].At("weights"));
    network.mutable_layers()[i].biases() =
        TensorFromJson(layer_docs[i].At("biases"));
  }
  return network;
}

Network FromJsonString(const std::string& text, Loss loss,
                       std::unique_ptr<Optimizer> optimizer,
                       jarvis::util::Rng rng) {
  return FromJson(JsonValue::Parse(text), loss, std::move(optimizer), rng);
}

}  // namespace jarvis::neural
