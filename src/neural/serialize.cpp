#include "neural/serialize.h"

#include <cmath>

#include "util/check.h"

namespace jarvis::neural {

using jarvis::util::JsonArray;
using jarvis::util::JsonObject;
using jarvis::util::JsonValue;

namespace {

// v1: topology + parameters. v2: + optional optimizer state. The writer
// stamps v2; the reader accepts both and rejects anything newer.
constexpr std::int64_t kFormatVersion = 2;

}  // namespace

JsonValue TensorToJson(const Tensor& t) {
  JsonObject obj;
  obj["rows"] = JsonValue(static_cast<std::int64_t>(t.rows()));
  obj["cols"] = JsonValue(static_cast<std::int64_t>(t.cols()));
  JsonArray data;
  data.reserve(t.size());
  for (double v : t.data()) {
    JARVIS_CHECK(std::isfinite(v),
                 "TensorToJson: refusing to serialize non-finite value "
                 "(diverged parameters must not be persisted)");
    data.emplace_back(v);
  }
  obj["data"] = JsonValue(std::move(data));
  return JsonValue(std::move(obj));
}

Tensor TensorFromJson(const JsonValue& doc) {
  const std::int64_t rows = doc.At("rows").AsInt();
  const std::int64_t cols = doc.At("cols").AsInt();
  if (rows < 0 || cols < 0) {
    throw jarvis::util::JsonError("tensor shape negative");
  }
  const auto& data = doc.At("data").AsArray();
  if (data.size() != static_cast<std::size_t>(rows) *
                         static_cast<std::size_t>(cols)) {
    throw jarvis::util::JsonError("tensor data size mismatch");
  }
  Tensor t(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double v = data[i].AsNumber();
    if (!std::isfinite(v)) {
      throw jarvis::util::JsonError("tensor data non-finite");
    }
    t.mutable_data()[i] = v;
  }
  return t;
}

JsonValue ToJson(const Network& network, const SerializeOptions& options) {
  JsonObject obj;
  obj["format_version"] = JsonValue(kFormatVersion);
  obj["input_features"] =
      JsonValue(static_cast<std::int64_t>(network.input_features()));
  JsonArray layers;
  for (const auto& layer : network.layers()) {
    JsonObject layer_obj;
    layer_obj["activation"] = JsonValue(ActivationName(layer.activation()));
    layer_obj["weights"] = TensorToJson(layer.weights());
    layer_obj["biases"] = TensorToJson(layer.biases());
    layers.push_back(JsonValue(std::move(layer_obj)));
  }
  obj["layers"] = JsonValue(std::move(layers));
  if (options.include_optimizer) {
    JsonObject opt;
    opt["name"] = JsonValue(network.optimizer().name());
    opt["state"] = network.optimizer().StateToJson();
    obj["optimizer"] = JsonValue(std::move(opt));
  }
  return JsonValue(std::move(obj));
}

std::string ToJsonString(const Network& network,
                         const SerializeOptions& options) {
  return ToJson(network, options).Dump();
}

Network FromJson(const JsonValue& doc, Loss loss,
                 std::unique_ptr<Optimizer> optimizer, jarvis::util::Rng rng) {
  if (doc.AsObject().count("format_version") != 0) {
    const std::int64_t version = doc.At("format_version").AsInt();
    if (version < 1 || version > kFormatVersion) {
      throw jarvis::util::JsonError(
          "network document format version " + std::to_string(version) +
          " unsupported (library writes v" + std::to_string(kFormatVersion) +
          ")");
    }
  }
  const auto input_features =
      static_cast<std::size_t>(doc.At("input_features").AsInt());
  const auto& layer_docs = doc.At("layers").AsArray();
  std::vector<LayerSpec> specs;
  specs.reserve(layer_docs.size());
  for (const auto& layer_doc : layer_docs) {
    specs.push_back(
        {static_cast<std::size_t>(layer_doc.At("weights").At("cols").AsInt()),
         ActivationFromName(layer_doc.At("activation").AsString())});
  }
  Network network(input_features, specs, loss, std::move(optimizer), rng);
  for (std::size_t i = 0; i < layer_docs.size(); ++i) {
    network.mutable_layers()[i].weights() =
        TensorFromJson(layer_docs[i].At("weights"));
    network.mutable_layers()[i].biases() =
        TensorFromJson(layer_docs[i].At("biases"));
  }
  if (doc.AsObject().count("optimizer") != 0) {
    const JsonValue& opt_doc = doc.At("optimizer");
    const std::string& recorded = opt_doc.At("name").AsString();
    if (recorded != network.optimizer().name()) {
      throw jarvis::util::JsonError(
          "optimizer state is '" + recorded + "' but the network was given '" +
          network.optimizer().name() + "' — state never imports across kinds");
    }
    network.optimizer().StateFromJson(opt_doc.At("state"), network.layers());
  }
  return network;
}

Network FromJsonString(const std::string& text, Loss loss,
                       std::unique_ptr<Optimizer> optimizer,
                       jarvis::util::Rng rng) {
  return FromJson(JsonValue::Parse(text), loss, std::move(optimizer), rng);
}

}  // namespace jarvis::neural
