// First-order gradient optimizers. The paper trains its DQN with
// "first-order gradient-based optimization" and learning rate 0.001
// (Section V-A-6); Adam with lr=0.001 is the canonical instantiation. Plain
// SGD (with optional momentum) is provided for the ANN filter and ablations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "neural/layer.h"
#include "util/json.h"

namespace jarvis::neural {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies the accumulated gradients of every layer and zeroes them.
  virtual void Step(std::vector<DenseLayer>& layers) = 0;

  virtual double learning_rate() const = 0;

  // Checkpoint support (neural/serialize.h's include_optimizer flag).
  // name() keys the state on restore — state never imports across
  // optimizer kinds. StateFromJson validates every tensor against the
  // layer shapes before committing (throws util::JsonError on malformed
  // or mismatched state), so a restored optimizer can never feed Step
  // moment tensors of the wrong size.
  virtual std::string name() const = 0;
  virtual util::JsonValue StateToJson() const = 0;
  virtual void StateFromJson(const util::JsonValue& doc,
                             const std::vector<DenseLayer>& layers) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);
  void Step(std::vector<DenseLayer>& layers) override;
  double learning_rate() const override { return learning_rate_; }
  std::string name() const override { return "sgd"; }
  util::JsonValue StateToJson() const override;
  void StateFromJson(const util::JsonValue& doc,
                     const std::vector<DenseLayer>& layers) override;

 private:
  double learning_rate_;
  double momentum_;
  // One velocity tensor pair per layer, lazily sized on first step.
  std::vector<Tensor> weight_velocity_;
  std::vector<Tensor> bias_velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double learning_rate = 0.001, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8);
  void Step(std::vector<DenseLayer>& layers) override;
  double learning_rate() const override { return learning_rate_; }
  std::string name() const override { return "adam"; }
  util::JsonValue StateToJson() const override;
  void StateFromJson(const util::JsonValue& doc,
                     const std::vector<DenseLayer>& layers) override;

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  long step_count_ = 0;
  std::vector<Tensor> m_weights_, v_weights_, m_biases_, v_biases_;
};

}  // namespace jarvis::neural
