#include "neural/layer.h"

#include <cmath>

#include "util/check.h"

namespace jarvis::neural {

DenseLayer::DenseLayer(std::size_t in_features, std::size_t out_features,
                       Activation activation, jarvis::util::Rng& rng)
    : activation_(activation),
      weights_(in_features, out_features),
      biases_(1, out_features),
      grad_weights_(in_features, out_features),
      grad_biases_(1, out_features) {
  JARVIS_CHECK(in_features > 0 && out_features > 0,
               "DenseLayer: zero-sized layer (", in_features, "x",
               out_features, ")");
  const double fan_in = static_cast<double>(in_features);
  const double limit = activation == Activation::kRelu
                           ? std::sqrt(6.0 / fan_in)  // He-uniform
                           : std::sqrt(6.0 / (fan_in + static_cast<double>(
                                                           out_features)));
  for (double& w : weights_.mutable_data()) {
    w = rng.NextUniform(-limit, limit);
  }
}

Tensor DenseLayer::Forward(const Tensor& input) {
  cached_input_ = input;
  cached_output_ =
      Apply(activation_, input.MatMul(weights_).AddRowBroadcast(biases_));
  has_cache_ = true;
  return cached_output_;
}

Tensor DenseLayer::Infer(const Tensor& input) const {
  return Apply(activation_, input.MatMul(weights_).AddRowBroadcast(biases_));
}

Tensor DenseLayer::Backward(const Tensor& grad_output) {
  JARVIS_CHECK(has_cache_, "DenseLayer::Backward without Forward");
  // dL/dz = dL/dy * act'(z), expressed via the cached activated output.
  const Tensor grad_pre =
      grad_output.Hadamard(DerivativeFromOutput(activation_, cached_output_));
  grad_weights_ += cached_input_.Transposed().MatMul(grad_pre);
  grad_biases_ += grad_pre.SumRows();
  return grad_pre.MatMul(weights_.Transposed());
}

void DenseLayer::ZeroGradients() {
  grad_weights_.Fill(0.0);
  grad_biases_.Fill(0.0);
}

}  // namespace jarvis::neural
