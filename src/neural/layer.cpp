#include "neural/layer.h"

#include <cmath>

#include "util/check.h"

namespace jarvis::neural {

DenseLayer::DenseLayer(std::size_t in_features, std::size_t out_features,
                       Activation activation, jarvis::util::Rng& rng)
    : activation_(activation),
      weights_(in_features, out_features),
      biases_(1, out_features),
      grad_weights_(in_features, out_features),
      grad_biases_(1, out_features) {
  JARVIS_CHECK(in_features > 0 && out_features > 0,
               "DenseLayer: zero-sized layer (", in_features, "x",
               out_features, ")");
  const double fan_in = static_cast<double>(in_features);
  const double limit = activation == Activation::kRelu
                           ? std::sqrt(6.0 / fan_in)  // He-uniform
                           : std::sqrt(6.0 / (fan_in + static_cast<double>(
                                                           out_features)));
  for (double& w : weights_.mutable_data()) {
    w = rng.NextUniform(-limit, limit);
  }
}

const Tensor& DenseLayer::Forward(const Tensor& input) {
  cached_input_ = input;  // copy-assign reuses capacity: no steady-state alloc
  input.MatMulInto(weights_, cached_output_);
  cached_output_.AddRowBroadcastInPlace(biases_);
  ApplyInPlace(activation_, cached_output_);
  has_cache_ = true;
  return cached_output_;
}

void DenseLayer::InferInto(const Tensor& input, Tensor& out) const {
  input.MatMulInto(weights_, out);
  out.AddRowBroadcastInPlace(biases_);
  ApplyInPlace(activation_, out);
}

const Tensor& DenseLayer::Backward(const Tensor& grad_output) {
  JARVIS_CHECK(has_cache_, "DenseLayer::Backward without Forward");
  // dL/dz = dL/dy * act'(z), expressed via the cached activated output.
  // (deriv * grad and grad * deriv round identically, so computing the
  // derivative in place and scaling by grad_output matches the historical
  // Hadamard order bit-for-bit.)
  DerivativeFromOutputInto(activation_, cached_output_, grad_pre_);
  grad_pre_.HadamardInPlace(grad_output);
  // Gradients are zero on entry (the optimizer zeroes them each step), so
  // accumulating products directly is bit-identical to materializing the
  // transposed products and adding.
  cached_input_.TransposedMatMulAccumulate(grad_pre_, grad_weights_);
  grad_pre_.SumRowsAccumulate(grad_biases_);
  grad_pre_.MatMulTransposedInto(weights_, grad_input_);
  return grad_input_;
}

void DenseLayer::ZeroGradients() {
  grad_weights_.Fill(0.0);
  grad_biases_.Fill(0.0);
}

}  // namespace jarvis::neural
