// Fully-connected layer with activation. Holds weights, biases, and the
// gradients produced by the most recent backward pass; the optimizer applies
// them to the parameters.
//
// Memory model (DESIGN.md §12): Forward/Backward return references into
// layer-owned scratch tensors that are reused across calls, so steady-state
// training performs zero allocations. The returned references are
// invalidated by the next Forward/Backward call on the same layer. A layer
// is therefore thread-compatible, not thread-safe — each fleet tenant owns
// its own network (DESIGN.md §10), so nothing shares layers across threads.
#pragma once

#include "neural/activation.h"
#include "neural/tensor.h"
#include "util/rng.h"

namespace jarvis::neural {

class DenseLayer {
 public:
  // Weights are initialized He-uniform for ReLU and Xavier-uniform for
  // saturating activations; biases start at zero.
  DenseLayer(std::size_t in_features, std::size_t out_features,
             Activation activation, jarvis::util::Rng& rng);

  // Forward pass over a batch (rows are samples). Caches the input and
  // output for the subsequent backward pass. Returns a reference to the
  // cached output (valid until the next Forward on this layer).
  const Tensor& Forward(const Tensor& input);

  // Forward pass without touching the backward caches, writing into a
  // caller-owned scratch tensor (resized; allocation-free once `out` has
  // seen the shape). `out` must not alias `input`.
  void InferInto(const Tensor& input, Tensor& out) const;

  // Consumes dLoss/dOutput, accumulates parameter gradients on top of
  // their current contents (zeroed by the optimizer step or by
  // ZeroGradients — callers driving Backward by hand must zero first), and
  // returns
  // dLoss/dInput for the upstream layer (a reference into layer scratch,
  // valid until the next Backward on this layer). Must follow a Forward
  // call; `grad_output` must not alias this layer's scratch.
  const Tensor& Backward(const Tensor& grad_output);

  void ZeroGradients();

  std::size_t in_features() const { return weights_.rows(); }
  std::size_t out_features() const { return weights_.cols(); }
  Activation activation() const { return activation_; }

  // Most recent Forward output (post-activation), for callers that train
  // against the same forward they just ran (Network::TrainCachedMasked).
  bool has_cache() const { return has_cache_; }
  const Tensor& cached_output() const { return cached_output_; }

  Tensor& weights() { return weights_; }
  Tensor& biases() { return biases_; }
  const Tensor& weights() const { return weights_; }
  const Tensor& biases() const { return biases_; }
  const Tensor& weight_gradients() const { return grad_weights_; }
  const Tensor& bias_gradients() const { return grad_biases_; }
  Tensor& mutable_weight_gradients() { return grad_weights_; }
  Tensor& mutable_bias_gradients() { return grad_biases_; }

  std::size_t parameter_count() const {
    return weights_.size() + biases_.size();
  }

 private:
  Activation activation_;
  Tensor weights_;       // in x out
  Tensor biases_;        // 1 x out
  Tensor grad_weights_;  // in x out
  Tensor grad_biases_;   // 1 x out
  Tensor cached_input_;  // batch x in
  Tensor cached_output_; // batch x out (post-activation)
  // Backward scratch, reused across calls (zero steady-state allocations).
  Tensor grad_pre_;      // batch x out (dLoss/dPreActivation)
  Tensor grad_input_;    // batch x in  (dLoss/dInput, the return value)
  bool has_cache_ = false;
};

}  // namespace jarvis::neural
