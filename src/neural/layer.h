// Fully-connected layer with activation. Holds weights, biases, and the
// gradients produced by the most recent backward pass; the optimizer applies
// them to the parameters.
#pragma once

#include "neural/activation.h"
#include "neural/tensor.h"
#include "util/rng.h"

namespace jarvis::neural {

class DenseLayer {
 public:
  // Weights are initialized He-uniform for ReLU and Xavier-uniform for
  // saturating activations; biases start at zero.
  DenseLayer(std::size_t in_features, std::size_t out_features,
             Activation activation, jarvis::util::Rng& rng);

  // Forward pass over a batch (rows are samples). Caches the input and
  // output for the subsequent backward pass.
  Tensor Forward(const Tensor& input);

  // Forward pass without caching (inference only; safe to call concurrently
  // with no pending backward).
  Tensor Infer(const Tensor& input) const;

  // Consumes dLoss/dOutput, accumulates parameter gradients, and returns
  // dLoss/dInput for the upstream layer. Must follow a Forward call.
  Tensor Backward(const Tensor& grad_output);

  void ZeroGradients();

  std::size_t in_features() const { return weights_.rows(); }
  std::size_t out_features() const { return weights_.cols(); }
  Activation activation() const { return activation_; }

  Tensor& weights() { return weights_; }
  Tensor& biases() { return biases_; }
  const Tensor& weights() const { return weights_; }
  const Tensor& biases() const { return biases_; }
  const Tensor& weight_gradients() const { return grad_weights_; }
  const Tensor& bias_gradients() const { return grad_biases_; }
  Tensor& mutable_weight_gradients() { return grad_weights_; }
  Tensor& mutable_bias_gradients() { return grad_biases_; }

  std::size_t parameter_count() const {
    return weights_.size() + biases_.size();
  }

 private:
  Activation activation_;
  Tensor weights_;       // in x out
  Tensor biases_;        // 1 x out
  Tensor grad_weights_;  // in x out
  Tensor grad_biases_;   // 1 x out
  Tensor cached_input_;  // batch x in
  Tensor cached_output_; // batch x out (post-activation)
  bool has_cache_ = false;
};

}  // namespace jarvis::neural
