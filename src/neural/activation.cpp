#include "neural/activation.h"

#include <cmath>
#include <stdexcept>

namespace jarvis::neural {

std::string ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  throw std::logic_error("unknown activation");
}

Activation ActivationFromName(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  throw std::invalid_argument("unknown activation name: " + name);
}

Tensor Apply(Activation act, const Tensor& pre_activation) {
  Tensor out = pre_activation;
  ApplyInPlace(act, out);
  return out;
}

void ApplyInPlace(Activation act, Tensor& tensor) {
  auto& data = tensor.mutable_data();
  // One switch per tensor, then a tight loop per case with the scalar math
  // inlined: same element order and same expressions as the historical
  // Map(std::function) path, so outputs are bit-identical — only the
  // per-element indirect call is gone.
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (double& x : data) x = x > 0.0 ? x : 0.0;
      return;
    case Activation::kSigmoid:
      for (double& x : data) x = 1.0 / (1.0 + std::exp(-x));
      return;
    case Activation::kTanh:
      for (double& x : data) x = std::tanh(x);
      return;
  }
  throw std::logic_error("unknown activation");
}

Tensor DerivativeFromOutput(Activation act, const Tensor& activated) {
  Tensor out;
  DerivativeFromOutputInto(act, activated, out);
  return out;
}

void DerivativeFromOutputInto(Activation act, const Tensor& activated,
                              Tensor& out) {
  out.Resize(activated.rows(), activated.cols());
  const auto& in = activated.data();
  auto& dst = out.mutable_data();
  switch (act) {
    case Activation::kIdentity:
      out.Fill(1.0);
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = in[i] > 0.0 ? 1.0 : 0.0;
      }
      return;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = in[i] * (1.0 - in[i]);
      }
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = 1.0 - in[i] * in[i];
      }
      return;
  }
  throw std::logic_error("unknown activation");
}

Tensor Softmax(const Tensor& logits) {
  Tensor out = logits;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    double row_max = logits.At(r, 0);
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      row_max = std::max(row_max, logits.At(r, c));
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double e = std::exp(logits.At(r, c) - row_max);
      out.At(r, c) = e;
      denom += e;
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) out.At(r, c) /= denom;
  }
  return out;
}

}  // namespace jarvis::neural
