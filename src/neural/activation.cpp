#include "neural/activation.h"

#include <cmath>
#include <stdexcept>

namespace jarvis::neural {

std::string ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  throw std::logic_error("unknown activation");
}

Activation ActivationFromName(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  throw std::invalid_argument("unknown activation name: " + name);
}

Tensor Apply(Activation act, const Tensor& pre_activation) {
  switch (act) {
    case Activation::kIdentity:
      return pre_activation;
    case Activation::kRelu:
      return pre_activation.Map([](double x) { return x > 0.0 ? x : 0.0; });
    case Activation::kSigmoid:
      return pre_activation.Map(
          [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
    case Activation::kTanh:
      return pre_activation.Map([](double x) { return std::tanh(x); });
  }
  throw std::logic_error("unknown activation");
}

Tensor DerivativeFromOutput(Activation act, const Tensor& activated) {
  switch (act) {
    case Activation::kIdentity:
      return Tensor(activated.rows(), activated.cols(), 1.0);
    case Activation::kRelu:
      return activated.Map([](double y) { return y > 0.0 ? 1.0 : 0.0; });
    case Activation::kSigmoid:
      return activated.Map([](double y) { return y * (1.0 - y); });
    case Activation::kTanh:
      return activated.Map([](double y) { return 1.0 - y * y; });
  }
  throw std::logic_error("unknown activation");
}

Tensor Softmax(const Tensor& logits) {
  Tensor out = logits;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    double row_max = logits.At(r, 0);
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      row_max = std::max(row_max, logits.At(r, c));
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double e = std::exp(logits.At(r, c) - row_max);
      out.At(r, c) = e;
      denom += e;
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) out.At(r, c) /= denom;
  }
  return out;
}

}  // namespace jarvis::neural
