#include "neural/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jarvis::neural {

namespace {
constexpr double kEpsilon = 1e-12;
}

std::string LossName(Loss loss) {
  switch (loss) {
    case Loss::kMeanSquaredError:
      return "mse";
    case Loss::kBinaryCrossEntropy:
      return "bce";
  }
  throw std::logic_error("unknown loss");
}

double ComputeLoss(Loss loss, const Tensor& prediction, const Tensor& target) {
  if (!prediction.SameShape(target)) {
    throw std::invalid_argument("ComputeLoss: shape mismatch");
  }
  const auto& p = prediction.data();
  const auto& t = target.data();
  double total = 0.0;
  switch (loss) {
    case Loss::kMeanSquaredError:
      for (std::size_t i = 0; i < p.size(); ++i) {
        const double d = p[i] - t[i];
        total += d * d;
      }
      break;
    case Loss::kBinaryCrossEntropy:
      for (std::size_t i = 0; i < p.size(); ++i) {
        const double clamped = std::clamp(p[i], kEpsilon, 1.0 - kEpsilon);
        total += -(t[i] * std::log(clamped) +
                   (1.0 - t[i]) * std::log(1.0 - clamped));
      }
      break;
  }
  return total / static_cast<double>(p.size());
}

Tensor LossGradient(Loss loss, const Tensor& prediction, const Tensor& target) {
  Tensor grad;
  LossGradientInto(loss, prediction, target, grad);
  return grad;
}

void LossGradientInto(Loss loss, const Tensor& prediction,
                      const Tensor& target, Tensor& grad) {
  if (!prediction.SameShape(target)) {
    throw std::invalid_argument("LossGradient: shape mismatch");
  }
  grad.Resize(prediction.rows(), prediction.cols());
  const auto& p = prediction.data();
  const auto& t = target.data();
  auto& g = grad.mutable_data();
  const double scale = 1.0 / static_cast<double>(p.size());
  switch (loss) {
    case Loss::kMeanSquaredError:
      for (std::size_t i = 0; i < p.size(); ++i) {
        g[i] = 2.0 * (p[i] - t[i]) * scale;
      }
      break;
    case Loss::kBinaryCrossEntropy:
      for (std::size_t i = 0; i < p.size(); ++i) {
        const double clamped = std::clamp(p[i], kEpsilon, 1.0 - kEpsilon);
        g[i] = (clamped - t[i]) / (clamped * (1.0 - clamped)) * scale;
      }
      break;
  }
}

double MaskedMseLoss(const Tensor& prediction, const Tensor& target,
                     const Tensor& mask) {
  if (!prediction.SameShape(target) || !prediction.SameShape(mask)) {
    throw std::invalid_argument("MaskedMseLoss: shape mismatch");
  }
  const auto& p = prediction.data();
  const auto& t = target.data();
  const auto& m = mask.data();
  double total = 0.0;
  double active = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (m[i] == 0.0) continue;
    const double d = p[i] - t[i];
    total += d * d;
    active += 1.0;
  }
  return active > 0.0 ? total / active : 0.0;
}

Tensor MaskedMseGradient(const Tensor& prediction, const Tensor& target,
                         const Tensor& mask) {
  Tensor grad;
  MaskedMseGradientInto(prediction, target, mask, grad);
  return grad;
}

void MaskedMseGradientInto(const Tensor& prediction, const Tensor& target,
                           const Tensor& mask, Tensor& grad) {
  if (!prediction.SameShape(target) || !prediction.SameShape(mask)) {
    throw std::invalid_argument("MaskedMseGradient: shape mismatch");
  }
  grad.Resize(prediction.rows(), prediction.cols());
  grad.Fill(0.0);
  const auto& p = prediction.data();
  const auto& t = target.data();
  const auto& m = mask.data();
  auto& g = grad.mutable_data();
  double active = 0.0;
  for (double v : m) active += (v != 0.0) ? 1.0 : 0.0;
  if (active == 0.0) return;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (m[i] == 0.0) continue;
    g[i] = 2.0 * (p[i] - t[i]) / active;
  }
}

}  // namespace jarvis::neural
