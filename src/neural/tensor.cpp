#include "neural/tensor.h"

#include <algorithm>

#include "util/check.h"

namespace jarvis::neural {

Tensor::Tensor(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor::Tensor(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    JARVIS_CHECK_EQ(row.size(), cols_, "Tensor: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Tensor Tensor::Row(const std::vector<double>& values) {
  Tensor t(1, values.size());
  t.data_ = values;
  return t;
}

Tensor Tensor::Generate(std::size_t rows, std::size_t cols,
                        const std::function<double()>& gen) {
  Tensor t(rows, cols);
  for (double& x : t.data_) x = gen();
  return t;
}

std::vector<double> Tensor::RowVector(std::size_t r) const {
  JARVIS_CHECK_LT(r, rows_, "Tensor::RowVector");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

void Tensor::SetRow(std::size_t r, const std::vector<double>& values) {
  JARVIS_CHECK_LT(r, rows_, "Tensor::SetRow");
  JARVIS_CHECK_EQ(values.size(), cols_, "Tensor::SetRow: width mismatch");
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Tensor::CopyRowFrom(std::size_t dst_row, const Tensor& src,
                         std::size_t src_row) {
  JARVIS_DCHECK_LT(dst_row, rows_, "Tensor::CopyRowFrom: dst row");
  JARVIS_DCHECK_LT(src_row, src.rows_, "Tensor::CopyRowFrom: src row");
  JARVIS_CHECK_EQ(src.cols_, cols_, "Tensor::CopyRowFrom: width mismatch");
  std::copy(src.data_.begin() + static_cast<std::ptrdiff_t>(src_row * cols_),
            src.data_.begin() +
                static_cast<std::ptrdiff_t>((src_row + 1) * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(dst_row * cols_));
}

void Tensor::Resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // vector::resize never shrinks capacity, so cycling between previously
  // seen shapes is allocation-free.
  data_.resize(rows * cols);
}

void Tensor::CheckShape(const Tensor& other, const char* op) const {
  JARVIS_CHECK(SameShape(other), "Tensor shape mismatch in ", op, ": ",
               ShapeString(), " vs ", other.ShapeString());
}

Tensor& Tensor::operator+=(const Tensor& other) {
  CheckShape(other, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  CheckShape(other, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out = *this;
  out += other;
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor out = *this;
  out -= other;
  return out;
}

Tensor Tensor::operator*(double scalar) const {
  Tensor out = *this;
  out *= scalar;
  return out;
}

Tensor Tensor::Hadamard(const Tensor& other) const {
  CheckShape(other, "Hadamard");
  Tensor out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Tensor Tensor::MatMul(const Tensor& other) const {
  Tensor out;
  MatMulInto(other, out);
  return out;
}

void Tensor::MatMulInto(const Tensor& other, Tensor& out) const {
  JARVIS_CHECK_EQ(cols_, other.rows_, "Tensor::MatMulInto: inner dims ",
                  ShapeString(), " vs ", other.ShapeString());
  JARVIS_DCHECK(&out != this && &out != &other,
                "Tensor::MatMulInto: out aliases an operand");
  out.Resize(rows_, other.cols_);
  out.Fill(0.0);
  // i-k-j order: the inner loop streams both the rhs row and the out row
  // contiguously, and each out element still receives its k-products in
  // ascending-k order (the bit-identity invariant). No zero-operand skip:
  // 0 * inf and 0 * NaN must propagate NaN per IEEE 754 so divergence is
  // visible downstream (the poisoned-replay detector relies on it).
  // __restrict matches the alias DCHECK above and lets the lane-wise
  // vectorizer run without runtime alias versioning.
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* __restrict lhs_row = &data_[i * cols_];
    double* __restrict out_row = &out.data_[i * other.cols_];
    for (std::size_t k = 0; k < cols_; ++k) {
      const double lhs = lhs_row[k];
      const double* __restrict rhs_row = &other.data_[k * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += lhs * rhs_row[j];
      }
    }
  }
}

void Tensor::MatMulTransposedInto(const Tensor& other, Tensor& out) const {
  JARVIS_CHECK_EQ(cols_, other.cols_, "Tensor::MatMulTransposedInto: inner ",
                  "dims ", ShapeString(), " vs ", other.ShapeString());
  JARVIS_DCHECK(&out != this && &out != &other,
                "Tensor::MatMulTransposedInto: out aliases an operand");
  out.Resize(rows_, other.rows_);
  // i-j-k order: both operands stream row-contiguously and element (i, j)
  // accumulates this(i, k) * other(j, k) in ascending-k order — the same
  // per-element order Transposed()-then-MatMul produced. The j-loop is
  // blocked four wide: each of the four accumulators is still its own
  // ascending-k chain from +0.0 (bit-identical), but the four independent
  // chains break the add-latency dependence that made the plain reduction
  // serial.
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* __restrict lhs_row = &data_[i * cols_];
    double* __restrict out_row = &out.data_[i * other.rows_];
    std::size_t j = 0;
    for (; j + 4 <= other.rows_; j += 4) {
      const double* __restrict rhs0 = &other.data_[j * other.cols_];
      const double* __restrict rhs1 = &other.data_[(j + 1) * other.cols_];
      const double* __restrict rhs2 = &other.data_[(j + 2) * other.cols_];
      const double* __restrict rhs3 = &other.data_[(j + 3) * other.cols_];
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) {
        const double lhs = lhs_row[k];
        acc0 += lhs * rhs0[k];
        acc1 += lhs * rhs1[k];
        acc2 += lhs * rhs2[k];
        acc3 += lhs * rhs3[k];
      }
      out_row[j] = acc0;
      out_row[j + 1] = acc1;
      out_row[j + 2] = acc2;
      out_row[j + 3] = acc3;
    }
    for (; j < other.rows_; ++j) {
      const double* __restrict rhs_row = &other.data_[j * other.cols_];
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) {
        acc += lhs_row[k] * rhs_row[k];
      }
      out_row[j] = acc;
    }
  }
}

void Tensor::TransposedMatMulAccumulate(const Tensor& other,
                                        Tensor& out) const {
  JARVIS_CHECK_EQ(rows_, other.rows_,
                  "Tensor::TransposedMatMulAccumulate: batch dims ",
                  ShapeString(), " vs ", other.ShapeString());
  JARVIS_CHECK(out.rows_ == cols_ && out.cols_ == other.cols_,
               "Tensor::TransposedMatMulAccumulate: out shape ",
               out.ShapeString(), " for ", ShapeString(), "^T x ",
               other.ShapeString());
  JARVIS_DCHECK(&out != this && &out != &other,
                "Tensor::TransposedMatMulAccumulate: out aliases an operand");
  // b-i-j order: element (i, j) accumulates this(b, i) * other(b, j) in
  // ascending-b order on top of out — with out zeroed this is bit-identical
  // to materializing the transpose, multiplying, and adding.
  for (std::size_t b = 0; b < rows_; ++b) {
    const double* __restrict lhs_row = &data_[b * cols_];
    const double* __restrict rhs_row = &other.data_[b * other.cols_];
    for (std::size_t i = 0; i < cols_; ++i) {
      const double lhs = lhs_row[i];
      double* __restrict out_row = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += lhs * rhs_row[j];
      }
    }
  }
}

Tensor Tensor::Transposed() const {
  Tensor out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
  return out;
}

Tensor Tensor::Map(const std::function<double(double)>& f) const {
  Tensor out = *this;
  out.MapInPlace(f);
  return out;
}

void Tensor::MapInPlace(const std::function<double(double)>& f) {
  for (double& x : data_) x = f(x);
}

Tensor Tensor::AddRowBroadcast(const Tensor& row) const {
  Tensor out = *this;
  out.AddRowBroadcastInPlace(row);
  return out;
}

void Tensor::AddRowBroadcastInPlace(const Tensor& row) {
  JARVIS_CHECK(row.rows_ == 1 && row.cols_ == cols_,
               "Tensor::AddRowBroadcastInPlace: shape mismatch: ",
               ShapeString(), " vs ", row.ShapeString());
  for (std::size_t r = 0; r < rows_; ++r) {
    double* out_row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) {
      out_row[c] += row.data_[c];
    }
  }
}

Tensor Tensor::SumRows() const {
  Tensor out(1, cols_);
  SumRowsAccumulate(out);
  return out;
}

void Tensor::SumRowsAccumulate(Tensor& out) const {
  JARVIS_CHECK(out.rows_ == 1 && out.cols_ == cols_,
               "Tensor::SumRowsAccumulate: out shape ", out.ShapeString(),
               " for ", ShapeString());
  JARVIS_DCHECK(&out != this, "Tensor::SumRowsAccumulate: out aliases");
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* in_row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) {
      out.data_[c] += in_row[c];
    }
  }
}

void Tensor::HadamardInPlace(const Tensor& other) {
  CheckShape(other, "HadamardInPlace");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

double Tensor::SumAll() const {
  double total = 0.0;
  for (double x : data_) total += x;
  return total;
}

double Tensor::MaxAll() const {
  JARVIS_CHECK(!data_.empty(), "Tensor::MaxAll on empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::ArgMaxRow(std::size_t r) const {
  JARVIS_CHECK(r < rows_ && cols_ > 0, "Tensor::ArgMaxRow: row ", r, " of ",
               ShapeString());
  const auto begin = data_.begin() + static_cast<std::ptrdiff_t>(r * cols_);
  return static_cast<std::size_t>(
      std::max_element(begin, begin + static_cast<std::ptrdiff_t>(cols_)) -
      begin);
}

void Tensor::Fill(double value) { std::fill(data_.begin(), data_.end(), value); }

std::string Tensor::ShapeString() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

}  // namespace jarvis::neural
