#include "neural/tensor.h"

#include <algorithm>

#include "util/check.h"

namespace jarvis::neural {

Tensor::Tensor(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor::Tensor(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    JARVIS_CHECK_EQ(row.size(), cols_, "Tensor: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Tensor Tensor::Row(const std::vector<double>& values) {
  Tensor t(1, values.size());
  t.data_ = values;
  return t;
}

Tensor Tensor::Generate(std::size_t rows, std::size_t cols,
                        const std::function<double()>& gen) {
  Tensor t(rows, cols);
  for (double& x : t.data_) x = gen();
  return t;
}

std::vector<double> Tensor::RowVector(std::size_t r) const {
  JARVIS_CHECK_LT(r, rows_, "Tensor::RowVector");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

void Tensor::SetRow(std::size_t r, const std::vector<double>& values) {
  JARVIS_CHECK_LT(r, rows_, "Tensor::SetRow");
  JARVIS_CHECK_EQ(values.size(), cols_, "Tensor::SetRow: width mismatch");
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Tensor::CheckShape(const Tensor& other, const char* op) const {
  JARVIS_CHECK(SameShape(other), "Tensor shape mismatch in ", op, ": ",
               ShapeString(), " vs ", other.ShapeString());
}

Tensor& Tensor::operator+=(const Tensor& other) {
  CheckShape(other, "+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  CheckShape(other, "-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out = *this;
  out += other;
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor out = *this;
  out -= other;
  return out;
}

Tensor Tensor::operator*(double scalar) const {
  Tensor out = *this;
  out *= scalar;
  return out;
}

Tensor Tensor::Hadamard(const Tensor& other) const {
  CheckShape(other, "Hadamard");
  Tensor out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Tensor Tensor::MatMul(const Tensor& other) const {
  JARVIS_CHECK_EQ(cols_, other.rows_, "Tensor::MatMul: inner dims ",
                  ShapeString(), " vs ", other.ShapeString());
  Tensor out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double lhs = data_[i * cols_ + k];
      if (lhs == 0.0) continue;
      const double* rhs_row = &other.data_[k * other.cols_];
      double* out_row = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += lhs * rhs_row[j];
      }
    }
  }
  return out;
}

Tensor Tensor::Transposed() const {
  Tensor out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
  return out;
}

Tensor Tensor::Map(const std::function<double(double)>& f) const {
  Tensor out = *this;
  out.MapInPlace(f);
  return out;
}

void Tensor::MapInPlace(const std::function<double(double)>& f) {
  for (double& x : data_) x = f(x);
}

Tensor Tensor::AddRowBroadcast(const Tensor& row) const {
  JARVIS_CHECK(row.rows_ == 1 && row.cols_ == cols_,
               "Tensor::AddRowBroadcast: shape mismatch: ", ShapeString(),
               " vs ", row.ShapeString());
  Tensor out = *this;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.data_[r * cols_ + c] += row.data_[c];
    }
  }
  return out;
}

Tensor Tensor::SumRows() const {
  Tensor out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.data_[c] += data_[r * cols_ + c];
    }
  }
  return out;
}

double Tensor::SumAll() const {
  double total = 0.0;
  for (double x : data_) total += x;
  return total;
}

double Tensor::MaxAll() const {
  JARVIS_CHECK(!data_.empty(), "Tensor::MaxAll on empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::ArgMaxRow(std::size_t r) const {
  JARVIS_CHECK(r < rows_ && cols_ > 0, "Tensor::ArgMaxRow: row ", r, " of ",
               ShapeString());
  const auto begin = data_.begin() + static_cast<std::ptrdiff_t>(r * cols_);
  return static_cast<std::size_t>(
      std::max_element(begin, begin + static_cast<std::ptrdiff_t>(cols_)) -
      begin);
}

void Tensor::Fill(double value) { std::fill(data_.begin(), data_.end(), value); }

std::string Tensor::ShapeString() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

}  // namespace jarvis::neural
