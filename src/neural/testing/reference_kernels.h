// Naive reference implementations of the neural forward/backward/update
// math, used as the oracle for kernel bit-parity tests
// (tests/neural_kernels_test.cpp) and for the old-vs-new A/B in
// bench/bench_kernels.cpp.
//
// These deliberately mirror the PRE-optimization code shape — textbook
// loop nests, std::function activation maps, fresh tensors everywhere —
// while preserving the one property that pins bit-identity: every output
// element receives its k-products in ascending-k order starting from +0.0.
// The production kernels (Tensor::MatMulInto and friends) restructure the
// loops for contiguous streaming but keep that per-element accumulation
// order, so reference and production results must match bit for bit with
// no #ifdef switching between code paths.
//
// Header-only and test/bench-scoped: nothing under src/ outside this
// directory may include it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "neural/activation.h"
#include "neural/network.h"
#include "neural/tensor.h"
#include "util/check.h"

namespace jarvis::neural::testing {

// Textbook i-j-k matrix multiply: ascending-k accumulation per element,
// with no zero-operand shortcut (0 * inf and 0 * NaN must yield NaN).
inline Tensor ReferenceMatMul(const Tensor& a, const Tensor& b) {
  JARVIS_CHECK_EQ(a.cols(), b.rows(), "ReferenceMatMul: inner dims");
  Tensor out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a.At(i, k) * b.At(k, j);
      }
      out.At(i, j) = acc;
    }
  }
  return out;
}

// Dynamically dispatched activation map — the historical std::function
// formulation the production ApplyInPlace switch replaced.
inline Tensor ReferenceApply(Activation act, const Tensor& values) {
  std::function<double(double)> f;
  switch (act) {
    case Activation::kIdentity:
      f = [](double x) { return x; };
      break;
    case Activation::kRelu:
      f = [](double x) { return x > 0.0 ? x : 0.0; };
      break;
    case Activation::kSigmoid:
      f = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
      break;
    case Activation::kTanh:
      f = [](double x) { return std::tanh(x); };
      break;
  }
  return values.Map(f);
}

inline Tensor ReferenceDerivativeFromOutput(Activation act,
                                            const Tensor& activated) {
  std::function<double(double)> f;
  switch (act) {
    case Activation::kIdentity:
      f = [](double) { return 1.0; };
      break;
    case Activation::kRelu:
      f = [](double y) { return y > 0.0 ? 1.0 : 0.0; };
      break;
    case Activation::kSigmoid:
      f = [](double y) { return y * (1.0 - y); };
      break;
    case Activation::kTanh:
      f = [](double y) { return 1.0 - y * y; };
      break;
  }
  return activated.Map(f);
}

// One dense layer of the reference model: parameters plus the forward
// caches the backward pass reads.
struct ReferenceLayer {
  Tensor weights;  // in x out
  Tensor biases;   // 1 x out
  Activation activation = Activation::kIdentity;
  Tensor cached_input;
  Tensor cached_output;
  Tensor grad_weights;
  Tensor grad_biases;

  Tensor Forward(const Tensor& input) {
    cached_input = input;
    cached_output =
        ReferenceApply(activation, ReferenceMatMul(input, weights)
                                       .AddRowBroadcast(biases));
    return cached_output;
  }

  // Returns dLoss/dInput; overwrites the parameter gradients (the single
  // forward/backward per step makes overwrite equal to accumulate-from-
  // zero, which is what the production accumulate-into kernels rely on).
  Tensor Backward(const Tensor& grad_output) {
    const Tensor grad_pre =
        ReferenceDerivativeFromOutput(activation, cached_output)
            .Hadamard(grad_output);
    grad_weights = ReferenceMatMul(cached_input.Transposed(), grad_pre);
    grad_biases = grad_pre.SumRows();
    return ReferenceMatMul(grad_pre, weights.Transposed());
  }
};

// SGD reference model (optional momentum). Seed it from a production
// Network built with neural::Sgd and the same loss, then drive both with
// the same batches: predictions and parameter trajectories must stay
// bit-identical.
struct ReferenceModel {
  std::vector<ReferenceLayer> layers;
  Loss loss = Loss::kMeanSquaredError;
  double learning_rate = 0.0;
  double momentum = 0.0;
  std::vector<Tensor> weight_velocity;
  std::vector<Tensor> bias_velocity;

  static ReferenceModel FromNetwork(const Network& network,
                                    double learning_rate,
                                    double momentum = 0.0) {
    ReferenceModel model;
    model.loss = network.loss();
    model.learning_rate = learning_rate;
    model.momentum = momentum;
    for (const auto& layer : network.layers()) {
      ReferenceLayer ref;
      ref.weights = layer.weights();
      ref.biases = layer.biases();
      ref.activation = layer.activation();
      model.layers.push_back(std::move(ref));
    }
    return model;
  }

  Tensor Predict(const Tensor& input) const {
    Tensor activation = input;
    for (const auto& layer : layers) {
      activation = ReferenceApply(
          layer.activation,
          ReferenceMatMul(activation, layer.weights)
              .AddRowBroadcast(layer.biases));
    }
    return activation;
  }

  // Mirrors Network::TrainBatch with the Sgd optimizer: full backward
  // sweep first (gradients of every layer computed against the current
  // parameters), then the update applied layer by layer.
  double TrainBatch(const Tensor& input, const Tensor& target) {
    Tensor prediction = input;
    for (auto& layer : layers) prediction = layer.Forward(prediction);
    const double batch_loss = ComputeLoss(loss, prediction, target);
    Tensor grad = LossGradient(loss, prediction, target);
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
      grad = it->Backward(grad);
    }
    Step();
    return batch_loss;
  }

  double TrainBatchMasked(const Tensor& input, const Tensor& target,
                          const Tensor& mask) {
    JARVIS_CHECK(loss == Loss::kMeanSquaredError,
                 "ReferenceModel::TrainBatchMasked requires MSE");
    Tensor prediction = input;
    for (auto& layer : layers) prediction = layer.Forward(prediction);
    const double batch_loss = MaskedMseLoss(prediction, target, mask);
    Tensor grad = MaskedMseGradient(prediction, target, mask);
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
      grad = it->Backward(grad);
    }
    Step();
    return batch_loss;
  }

 private:
  void Step() {
    if (momentum > 0.0 && weight_velocity.size() != layers.size()) {
      weight_velocity.clear();
      bias_velocity.clear();
      for (const auto& layer : layers) {
        weight_velocity.emplace_back(layer.weights.rows(),
                                     layer.weights.cols());
        bias_velocity.emplace_back(1, layer.biases.cols());
      }
    }
    for (std::size_t i = 0; i < layers.size(); ++i) {
      auto& layer = layers[i];
      if (momentum > 0.0) {
        // The historical tensor-expression sequence: decay, add the
        // rounded scaled gradient, subtract the velocity.
        weight_velocity[i] *= momentum;
        weight_velocity[i] += layer.grad_weights * learning_rate;
        bias_velocity[i] *= momentum;
        bias_velocity[i] += layer.grad_biases * learning_rate;
        layer.weights -= weight_velocity[i];
        layer.biases -= bias_velocity[i];
      } else {
        // p -= g * lr with the product rounded first — the historical
        // tensor-expression order (weights -= gradients * lr).
        layer.weights -= layer.grad_weights * learning_rate;
        layer.biases -= layer.grad_biases * learning_rate;
      }
    }
  }
};

}  // namespace jarvis::neural::testing
