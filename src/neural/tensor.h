// A dense row-major 2-D tensor (matrix) with the operations needed by the
// paper's networks: the single-hidden-layer ANN filter (Section IV-A) and
// the two-hidden-layer DQN (Section V-A-6). Vectors are 1xN or Nx1 matrices.
//
// Kernel & memory model (DESIGN.md §12): the hot-path entry points are the
// *Into / *InPlace / *Accumulate kernels, which write into caller-owned
// tensors so steady-state forward/backward passes allocate nothing. Every
// kernel preserves one numerical invariant: each output element accumulates
// its k-products in ascending-k order starting from +0.0, independently of
// every other output element. That per-row accumulation order is what makes
// batched inference bit-identical to per-row inference (Network::
// PredictBatch) and the refactored kernels bit-identical to the naive
// reference loops (tests/neural_kernels_test.cpp).
//
// IEEE semantics are honored: there is no zero-operand shortcut, so
// 0 * inf and 0 * NaN propagate NaN instead of silently contributing 0 —
// divergence in the DQN surfaces in its outputs rather than being masked.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace jarvis::neural {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, double fill = 0.0);
  Tensor(std::initializer_list<std::initializer_list<double>> rows);

  // A 1xN row vector from values.
  static Tensor Row(const std::vector<double>& values);
  // An NxM matrix with every element drawn from the callback.
  static Tensor Generate(std::size_t rows, std::size_t cols,
                         const std::function<double()>& gen);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Element access. Bounds are JARVIS_DCHECKed: debug (and any build with
  // JARVIS_DCHECK_ENABLED=1) verifies every access; release keeps the
  // unchecked fast path.
  double& At(std::size_t r, std::size_t c) {
    JARVIS_DCHECK(r < rows_ && c < cols_, "Tensor::At(", r, ", ", c,
                  ") out of bounds for ", rows_, "x", cols_);
    return data_[r * cols_ + c];
  }
  double At(std::size_t r, std::size_t c) const {
    JARVIS_DCHECK(r < rows_ && c < cols_, "Tensor::At(", r, ", ", c,
                  ") out of bounds for ", rows_, "x", cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) { return At(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return At(r, c); }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  // Extracts row r as a flat vector.
  std::vector<double> RowVector(std::size_t r) const;
  void SetRow(std::size_t r, const std::vector<double>& values);
  // Copies src's row src_row into this tensor's row dst_row (widths must
  // match). The allocation-free row gather used by mini-batch assembly.
  void CopyRowFrom(std::size_t dst_row, const Tensor& src,
                   std::size_t src_row);

  // Reshapes without shrinking capacity: repeated Resize cycles between
  // shapes seen before perform no allocation (the scratch-tensor contract).
  // Newly exposed elements are zero; surviving elements keep their values
  // only when cols is unchanged (row-major layout).
  void Resize(std::size_t rows, std::size_t cols);

  // Elementwise operations (shapes must match).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(double scalar);
  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  Tensor operator*(double scalar) const;
  // Hadamard (elementwise) product.
  Tensor Hadamard(const Tensor& other) const;

  // Matrix multiplication: (this->rows x other.cols).
  Tensor MatMul(const Tensor& other) const;
  Tensor Transposed() const;

  // out = this * other, written into a caller-owned tensor (resized, no
  // allocation once out has seen the shape). Contiguous inner loop over
  // out's columns; per output element the k-products accumulate in
  // ascending-k order from +0.0 — the bit-identity invariant.
  // `out` must not alias this or other.
  void MatMulInto(const Tensor& other, Tensor& out) const;

  // out = this * other^T without materializing the transpose: both operands
  // stream row-contiguously. Element (i, j) accumulates
  // this(i, k) * other(j, k) in ascending-k order — exactly the order
  // Transposed()-then-MatMul produced, so backprop's dInput stays
  // bit-identical. `out` must not alias this or other.
  void MatMulTransposedInto(const Tensor& other, Tensor& out) const;

  // out += this^T * other without materializing the transpose (the weight-
  // gradient kernel: this is the cached batch-major input, other the
  // batch-major upstream gradient). Element (i, j) accumulates
  // this(b, i) * other(b, j) in ascending-b order on top of out's current
  // value; with out zeroed this matches Transposed().MatMul() bit-for-bit.
  // out must already be (this->cols x other.cols) and not alias either
  // operand.
  void TransposedMatMulAccumulate(const Tensor& other, Tensor& out) const;

  // Applies f elementwise, returning a new tensor. std::function dispatch —
  // test/tooling convenience, not a hot-path kernel (activations use the
  // statically dispatched ApplyInPlace in neural/activation.h).
  Tensor Map(const std::function<double(double)>& f) const;
  void MapInPlace(const std::function<double(double)>& f);

  // Adds a 1xC row vector to every row (bias broadcast).
  Tensor AddRowBroadcast(const Tensor& row) const;
  void AddRowBroadcastInPlace(const Tensor& row);
  // Column-wise sum producing a 1xC row vector (bias gradient reduce).
  Tensor SumRows() const;
  // out += column-wise sums, accumulating rows in ascending order (the bias-
  // gradient kernel; matches SumRows-then-+= bit-for-bit when out is zero).
  void SumRowsAccumulate(Tensor& out) const;

  // this[i] *= other[i] elementwise (shapes must match).
  void HadamardInPlace(const Tensor& other);

  double SumAll() const;
  double MaxAll() const;
  // Index of the maximum element in a 1-row tensor.
  std::size_t ArgMaxRow(std::size_t r) const;

  void Fill(double value);
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ShapeString() const;

 private:
  void CheckShape(const Tensor& other, const char* op) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace jarvis::neural
