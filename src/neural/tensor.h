// A dense row-major 2-D tensor (matrix) with the operations needed by the
// paper's networks: the single-hidden-layer ANN filter (Section IV-A) and
// the two-hidden-layer DQN (Section V-A-6). Vectors are 1xN or Nx1 matrices.
//
// The networks here are tiny (tens of units), so the implementation favors
// clarity and correctness over blocking/vectorization tricks; the simple
// loops still saturate these sizes easily.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace jarvis::neural {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, double fill = 0.0);
  Tensor(std::initializer_list<std::initializer_list<double>> rows);

  // A 1xN row vector from values.
  static Tensor Row(const std::vector<double>& values);
  // An NxM matrix with every element drawn from the callback.
  static Tensor Generate(std::size_t rows, std::size_t cols,
                         const std::function<double()>& gen);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Element access. Bounds are JARVIS_DCHECKed: debug (and any build with
  // JARVIS_DCHECK_ENABLED=1) verifies every access; release keeps the
  // unchecked fast path.
  double& At(std::size_t r, std::size_t c) {
    JARVIS_DCHECK(r < rows_ && c < cols_, "Tensor::At(", r, ", ", c,
                  ") out of bounds for ", rows_, "x", cols_);
    return data_[r * cols_ + c];
  }
  double At(std::size_t r, std::size_t c) const {
    JARVIS_DCHECK(r < rows_ && c < cols_, "Tensor::At(", r, ", ", c,
                  ") out of bounds for ", rows_, "x", cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) { return At(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return At(r, c); }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  // Extracts row r as a flat vector.
  std::vector<double> RowVector(std::size_t r) const;
  void SetRow(std::size_t r, const std::vector<double>& values);

  // Elementwise operations (shapes must match).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(double scalar);
  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  Tensor operator*(double scalar) const;
  // Hadamard (elementwise) product.
  Tensor Hadamard(const Tensor& other) const;

  // Matrix multiplication: (this->rows x other.cols).
  Tensor MatMul(const Tensor& other) const;
  Tensor Transposed() const;

  // Applies f elementwise, returning a new tensor.
  Tensor Map(const std::function<double(double)>& f) const;
  void MapInPlace(const std::function<double(double)>& f);

  // Adds a 1xC row vector to every row (bias broadcast).
  Tensor AddRowBroadcast(const Tensor& row) const;
  // Column-wise sum producing a 1xC row vector (bias gradient reduce).
  Tensor SumRows() const;

  double SumAll() const;
  double MaxAll() const;
  // Index of the maximum element in a 1-row tensor.
  std::size_t ArgMaxRow(std::size_t r) const;

  void Fill(double value);
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ShapeString() const;

 private:
  void CheckShape(const Tensor& other, const char* op) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace jarvis::neural
