# Empty dependencies file for bench_ablation_miniaction.
# This may be replaced when dependencies are built.
