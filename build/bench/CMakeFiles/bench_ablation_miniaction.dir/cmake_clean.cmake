file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_miniaction.dir/bench_ablation_miniaction.cpp.o"
  "CMakeFiles/bench_ablation_miniaction.dir/bench_ablation_miniaction.cpp.o.d"
  "bench_ablation_miniaction"
  "bench_ablation_miniaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_miniaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
