# Empty compiler generated dependencies file for bench_fig8_temp.
# This may be replaced when dependencies are built.
