file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_temp.dir/bench_fig8_temp.cpp.o"
  "CMakeFiles/bench_fig8_temp.dir/bench_fig8_temp.cpp.o.d"
  "bench_fig8_temp"
  "bench_fig8_temp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_temp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
