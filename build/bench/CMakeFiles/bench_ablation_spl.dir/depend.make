# Empty dependencies file for bench_ablation_spl.
# This may be replaced when dependencies are built.
