file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spl.dir/bench_ablation_spl.cpp.o"
  "CMakeFiles/bench_ablation_spl.dir/bench_ablation_spl.cpp.o.d"
  "bench_ablation_spl"
  "bench_ablation_spl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
