# Empty dependencies file for bench_table1_fsm.
# This may be replaced when dependencies are built.
