file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fsm.dir/bench_table1_fsm.cpp.o"
  "CMakeFiles/bench_table1_fsm.dir/bench_table1_fsm.cpp.o.d"
  "bench_table1_fsm"
  "bench_table1_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
