# Empty dependencies file for bench_fig9_benefit_space.
# This may be replaced when dependencies are built.
