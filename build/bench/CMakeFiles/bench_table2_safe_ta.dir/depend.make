# Empty dependencies file for bench_table2_safe_ta.
# This may be replaced when dependencies are built.
