file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_safe_ta.dir/bench_table2_safe_ta.cpp.o"
  "CMakeFiles/bench_table2_safe_ta.dir/bench_table2_safe_ta.cpp.o.d"
  "bench_table2_safe_ta"
  "bench_table2_safe_ta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_safe_ta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
