file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_roc.dir/bench_fig5_roc.cpp.o"
  "CMakeFiles/bench_fig5_roc.dir/bench_fig5_roc.cpp.o.d"
  "bench_fig5_roc"
  "bench_fig5_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
