# Empty compiler generated dependencies file for security_monitor.
# This may be replaced when dependencies are built.
