file(REMOVE_RECURSE
  "CMakeFiles/energy_scheduler.dir/energy_scheduler.cpp.o"
  "CMakeFiles/energy_scheduler.dir/energy_scheduler.cpp.o.d"
  "energy_scheduler"
  "energy_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
