# Empty compiler generated dependencies file for energy_scheduler.
# This may be replaced when dependencies are built.
