file(REMOVE_RECURSE
  "CMakeFiles/jarvis_cli.dir/jarvis_cli.cpp.o"
  "CMakeFiles/jarvis_cli.dir/jarvis_cli.cpp.o.d"
  "jarvis_cli"
  "jarvis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jarvis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
