# Empty compiler generated dependencies file for jarvis_cli.
# This may be replaced when dependencies are built.
