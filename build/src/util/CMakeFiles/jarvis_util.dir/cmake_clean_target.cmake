file(REMOVE_RECURSE
  "libjarvis_util.a"
)
