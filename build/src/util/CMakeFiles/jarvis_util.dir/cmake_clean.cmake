file(REMOVE_RECURSE
  "CMakeFiles/jarvis_util.dir/csv.cpp.o"
  "CMakeFiles/jarvis_util.dir/csv.cpp.o.d"
  "CMakeFiles/jarvis_util.dir/flags.cpp.o"
  "CMakeFiles/jarvis_util.dir/flags.cpp.o.d"
  "CMakeFiles/jarvis_util.dir/json.cpp.o"
  "CMakeFiles/jarvis_util.dir/json.cpp.o.d"
  "CMakeFiles/jarvis_util.dir/rng.cpp.o"
  "CMakeFiles/jarvis_util.dir/rng.cpp.o.d"
  "CMakeFiles/jarvis_util.dir/stats.cpp.o"
  "CMakeFiles/jarvis_util.dir/stats.cpp.o.d"
  "CMakeFiles/jarvis_util.dir/strings.cpp.o"
  "CMakeFiles/jarvis_util.dir/strings.cpp.o.d"
  "CMakeFiles/jarvis_util.dir/timeofday.cpp.o"
  "CMakeFiles/jarvis_util.dir/timeofday.cpp.o.d"
  "libjarvis_util.a"
  "libjarvis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jarvis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
