# Empty dependencies file for jarvis_util.
# This may be replaced when dependencies are built.
