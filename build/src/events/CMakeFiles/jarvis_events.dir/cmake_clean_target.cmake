file(REMOVE_RECURSE
  "libjarvis_events.a"
)
