file(REMOVE_RECURSE
  "CMakeFiles/jarvis_events.dir/bus.cpp.o"
  "CMakeFiles/jarvis_events.dir/bus.cpp.o.d"
  "CMakeFiles/jarvis_events.dir/event.cpp.o"
  "CMakeFiles/jarvis_events.dir/event.cpp.o.d"
  "CMakeFiles/jarvis_events.dir/handler.cpp.o"
  "CMakeFiles/jarvis_events.dir/handler.cpp.o.d"
  "CMakeFiles/jarvis_events.dir/logger_app.cpp.o"
  "CMakeFiles/jarvis_events.dir/logger_app.cpp.o.d"
  "CMakeFiles/jarvis_events.dir/parser.cpp.o"
  "CMakeFiles/jarvis_events.dir/parser.cpp.o.d"
  "libjarvis_events.a"
  "libjarvis_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jarvis_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
