# Empty dependencies file for jarvis_events.
# This may be replaced when dependencies are built.
