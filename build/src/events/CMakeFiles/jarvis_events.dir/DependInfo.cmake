
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/events/bus.cpp" "src/events/CMakeFiles/jarvis_events.dir/bus.cpp.o" "gcc" "src/events/CMakeFiles/jarvis_events.dir/bus.cpp.o.d"
  "/root/repo/src/events/event.cpp" "src/events/CMakeFiles/jarvis_events.dir/event.cpp.o" "gcc" "src/events/CMakeFiles/jarvis_events.dir/event.cpp.o.d"
  "/root/repo/src/events/handler.cpp" "src/events/CMakeFiles/jarvis_events.dir/handler.cpp.o" "gcc" "src/events/CMakeFiles/jarvis_events.dir/handler.cpp.o.d"
  "/root/repo/src/events/logger_app.cpp" "src/events/CMakeFiles/jarvis_events.dir/logger_app.cpp.o" "gcc" "src/events/CMakeFiles/jarvis_events.dir/logger_app.cpp.o.d"
  "/root/repo/src/events/parser.cpp" "src/events/CMakeFiles/jarvis_events.dir/parser.cpp.o" "gcc" "src/events/CMakeFiles/jarvis_events.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/jarvis_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jarvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
