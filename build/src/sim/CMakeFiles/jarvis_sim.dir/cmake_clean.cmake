file(REMOVE_RECURSE
  "CMakeFiles/jarvis_sim.dir/anomaly.cpp.o"
  "CMakeFiles/jarvis_sim.dir/anomaly.cpp.o.d"
  "CMakeFiles/jarvis_sim.dir/attack.cpp.o"
  "CMakeFiles/jarvis_sim.dir/attack.cpp.o.d"
  "CMakeFiles/jarvis_sim.dir/prices.cpp.o"
  "CMakeFiles/jarvis_sim.dir/prices.cpp.o.d"
  "CMakeFiles/jarvis_sim.dir/resident.cpp.o"
  "CMakeFiles/jarvis_sim.dir/resident.cpp.o.d"
  "CMakeFiles/jarvis_sim.dir/scenario.cpp.o"
  "CMakeFiles/jarvis_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/jarvis_sim.dir/smartstar.cpp.o"
  "CMakeFiles/jarvis_sim.dir/smartstar.cpp.o.d"
  "CMakeFiles/jarvis_sim.dir/testbed.cpp.o"
  "CMakeFiles/jarvis_sim.dir/testbed.cpp.o.d"
  "CMakeFiles/jarvis_sim.dir/thermal.cpp.o"
  "CMakeFiles/jarvis_sim.dir/thermal.cpp.o.d"
  "CMakeFiles/jarvis_sim.dir/weather.cpp.o"
  "CMakeFiles/jarvis_sim.dir/weather.cpp.o.d"
  "libjarvis_sim.a"
  "libjarvis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jarvis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
