file(REMOVE_RECURSE
  "libjarvis_sim.a"
)
