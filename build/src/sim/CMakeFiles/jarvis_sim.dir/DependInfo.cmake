
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/anomaly.cpp" "src/sim/CMakeFiles/jarvis_sim.dir/anomaly.cpp.o" "gcc" "src/sim/CMakeFiles/jarvis_sim.dir/anomaly.cpp.o.d"
  "/root/repo/src/sim/attack.cpp" "src/sim/CMakeFiles/jarvis_sim.dir/attack.cpp.o" "gcc" "src/sim/CMakeFiles/jarvis_sim.dir/attack.cpp.o.d"
  "/root/repo/src/sim/prices.cpp" "src/sim/CMakeFiles/jarvis_sim.dir/prices.cpp.o" "gcc" "src/sim/CMakeFiles/jarvis_sim.dir/prices.cpp.o.d"
  "/root/repo/src/sim/resident.cpp" "src/sim/CMakeFiles/jarvis_sim.dir/resident.cpp.o" "gcc" "src/sim/CMakeFiles/jarvis_sim.dir/resident.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/jarvis_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/jarvis_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/smartstar.cpp" "src/sim/CMakeFiles/jarvis_sim.dir/smartstar.cpp.o" "gcc" "src/sim/CMakeFiles/jarvis_sim.dir/smartstar.cpp.o.d"
  "/root/repo/src/sim/testbed.cpp" "src/sim/CMakeFiles/jarvis_sim.dir/testbed.cpp.o" "gcc" "src/sim/CMakeFiles/jarvis_sim.dir/testbed.cpp.o.d"
  "/root/repo/src/sim/thermal.cpp" "src/sim/CMakeFiles/jarvis_sim.dir/thermal.cpp.o" "gcc" "src/sim/CMakeFiles/jarvis_sim.dir/thermal.cpp.o.d"
  "/root/repo/src/sim/weather.cpp" "src/sim/CMakeFiles/jarvis_sim.dir/weather.cpp.o" "gcc" "src/sim/CMakeFiles/jarvis_sim.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/jarvis_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/jarvis_events.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jarvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
