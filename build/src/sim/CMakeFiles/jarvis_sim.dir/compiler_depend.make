# Empty compiler generated dependencies file for jarvis_sim.
# This may be replaced when dependencies are built.
