
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/dqn_agent.cpp" "src/rl/CMakeFiles/jarvis_rl.dir/dqn_agent.cpp.o" "gcc" "src/rl/CMakeFiles/jarvis_rl.dir/dqn_agent.cpp.o.d"
  "/root/repo/src/rl/iot_env.cpp" "src/rl/CMakeFiles/jarvis_rl.dir/iot_env.cpp.o" "gcc" "src/rl/CMakeFiles/jarvis_rl.dir/iot_env.cpp.o.d"
  "/root/repo/src/rl/replay.cpp" "src/rl/CMakeFiles/jarvis_rl.dir/replay.cpp.o" "gcc" "src/rl/CMakeFiles/jarvis_rl.dir/replay.cpp.o.d"
  "/root/repo/src/rl/reward.cpp" "src/rl/CMakeFiles/jarvis_rl.dir/reward.cpp.o" "gcc" "src/rl/CMakeFiles/jarvis_rl.dir/reward.cpp.o.d"
  "/root/repo/src/rl/tabular_agent.cpp" "src/rl/CMakeFiles/jarvis_rl.dir/tabular_agent.cpp.o" "gcc" "src/rl/CMakeFiles/jarvis_rl.dir/tabular_agent.cpp.o.d"
  "/root/repo/src/rl/trainer.cpp" "src/rl/CMakeFiles/jarvis_rl.dir/trainer.cpp.o" "gcc" "src/rl/CMakeFiles/jarvis_rl.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spl/CMakeFiles/jarvis_spl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jarvis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/neural/CMakeFiles/jarvis_neural.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/jarvis_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jarvis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/jarvis_events.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
