file(REMOVE_RECURSE
  "libjarvis_rl.a"
)
