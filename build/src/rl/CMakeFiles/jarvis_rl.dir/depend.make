# Empty dependencies file for jarvis_rl.
# This may be replaced when dependencies are built.
