file(REMOVE_RECURSE
  "CMakeFiles/jarvis_rl.dir/dqn_agent.cpp.o"
  "CMakeFiles/jarvis_rl.dir/dqn_agent.cpp.o.d"
  "CMakeFiles/jarvis_rl.dir/iot_env.cpp.o"
  "CMakeFiles/jarvis_rl.dir/iot_env.cpp.o.d"
  "CMakeFiles/jarvis_rl.dir/replay.cpp.o"
  "CMakeFiles/jarvis_rl.dir/replay.cpp.o.d"
  "CMakeFiles/jarvis_rl.dir/reward.cpp.o"
  "CMakeFiles/jarvis_rl.dir/reward.cpp.o.d"
  "CMakeFiles/jarvis_rl.dir/tabular_agent.cpp.o"
  "CMakeFiles/jarvis_rl.dir/tabular_agent.cpp.o.d"
  "CMakeFiles/jarvis_rl.dir/trainer.cpp.o"
  "CMakeFiles/jarvis_rl.dir/trainer.cpp.o.d"
  "libjarvis_rl.a"
  "libjarvis_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jarvis_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
