file(REMOVE_RECURSE
  "libjarvis_spl.a"
)
