# Empty dependencies file for jarvis_spl.
# This may be replaced when dependencies are built.
