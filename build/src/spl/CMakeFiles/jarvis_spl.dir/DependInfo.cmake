
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spl/active_learner.cpp" "src/spl/CMakeFiles/jarvis_spl.dir/active_learner.cpp.o" "gcc" "src/spl/CMakeFiles/jarvis_spl.dir/active_learner.cpp.o.d"
  "/root/repo/src/spl/ann_filter.cpp" "src/spl/CMakeFiles/jarvis_spl.dir/ann_filter.cpp.o" "gcc" "src/spl/CMakeFiles/jarvis_spl.dir/ann_filter.cpp.o.d"
  "/root/repo/src/spl/features.cpp" "src/spl/CMakeFiles/jarvis_spl.dir/features.cpp.o" "gcc" "src/spl/CMakeFiles/jarvis_spl.dir/features.cpp.o.d"
  "/root/repo/src/spl/learner.cpp" "src/spl/CMakeFiles/jarvis_spl.dir/learner.cpp.o" "gcc" "src/spl/CMakeFiles/jarvis_spl.dir/learner.cpp.o.d"
  "/root/repo/src/spl/safe_table.cpp" "src/spl/CMakeFiles/jarvis_spl.dir/safe_table.cpp.o" "gcc" "src/spl/CMakeFiles/jarvis_spl.dir/safe_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/jarvis_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/neural/CMakeFiles/jarvis_neural.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jarvis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jarvis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/jarvis_events.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
