file(REMOVE_RECURSE
  "CMakeFiles/jarvis_spl.dir/active_learner.cpp.o"
  "CMakeFiles/jarvis_spl.dir/active_learner.cpp.o.d"
  "CMakeFiles/jarvis_spl.dir/ann_filter.cpp.o"
  "CMakeFiles/jarvis_spl.dir/ann_filter.cpp.o.d"
  "CMakeFiles/jarvis_spl.dir/features.cpp.o"
  "CMakeFiles/jarvis_spl.dir/features.cpp.o.d"
  "CMakeFiles/jarvis_spl.dir/learner.cpp.o"
  "CMakeFiles/jarvis_spl.dir/learner.cpp.o.d"
  "CMakeFiles/jarvis_spl.dir/safe_table.cpp.o"
  "CMakeFiles/jarvis_spl.dir/safe_table.cpp.o.d"
  "libjarvis_spl.a"
  "libjarvis_spl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jarvis_spl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
