# Empty dependencies file for jarvis_neural.
# This may be replaced when dependencies are built.
