file(REMOVE_RECURSE
  "CMakeFiles/jarvis_neural.dir/activation.cpp.o"
  "CMakeFiles/jarvis_neural.dir/activation.cpp.o.d"
  "CMakeFiles/jarvis_neural.dir/layer.cpp.o"
  "CMakeFiles/jarvis_neural.dir/layer.cpp.o.d"
  "CMakeFiles/jarvis_neural.dir/loss.cpp.o"
  "CMakeFiles/jarvis_neural.dir/loss.cpp.o.d"
  "CMakeFiles/jarvis_neural.dir/network.cpp.o"
  "CMakeFiles/jarvis_neural.dir/network.cpp.o.d"
  "CMakeFiles/jarvis_neural.dir/optimizer.cpp.o"
  "CMakeFiles/jarvis_neural.dir/optimizer.cpp.o.d"
  "CMakeFiles/jarvis_neural.dir/serialize.cpp.o"
  "CMakeFiles/jarvis_neural.dir/serialize.cpp.o.d"
  "CMakeFiles/jarvis_neural.dir/tensor.cpp.o"
  "CMakeFiles/jarvis_neural.dir/tensor.cpp.o.d"
  "libjarvis_neural.a"
  "libjarvis_neural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jarvis_neural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
