file(REMOVE_RECURSE
  "libjarvis_neural.a"
)
