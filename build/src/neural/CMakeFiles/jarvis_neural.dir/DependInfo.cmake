
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neural/activation.cpp" "src/neural/CMakeFiles/jarvis_neural.dir/activation.cpp.o" "gcc" "src/neural/CMakeFiles/jarvis_neural.dir/activation.cpp.o.d"
  "/root/repo/src/neural/layer.cpp" "src/neural/CMakeFiles/jarvis_neural.dir/layer.cpp.o" "gcc" "src/neural/CMakeFiles/jarvis_neural.dir/layer.cpp.o.d"
  "/root/repo/src/neural/loss.cpp" "src/neural/CMakeFiles/jarvis_neural.dir/loss.cpp.o" "gcc" "src/neural/CMakeFiles/jarvis_neural.dir/loss.cpp.o.d"
  "/root/repo/src/neural/network.cpp" "src/neural/CMakeFiles/jarvis_neural.dir/network.cpp.o" "gcc" "src/neural/CMakeFiles/jarvis_neural.dir/network.cpp.o.d"
  "/root/repo/src/neural/optimizer.cpp" "src/neural/CMakeFiles/jarvis_neural.dir/optimizer.cpp.o" "gcc" "src/neural/CMakeFiles/jarvis_neural.dir/optimizer.cpp.o.d"
  "/root/repo/src/neural/serialize.cpp" "src/neural/CMakeFiles/jarvis_neural.dir/serialize.cpp.o" "gcc" "src/neural/CMakeFiles/jarvis_neural.dir/serialize.cpp.o.d"
  "/root/repo/src/neural/tensor.cpp" "src/neural/CMakeFiles/jarvis_neural.dir/tensor.cpp.o" "gcc" "src/neural/CMakeFiles/jarvis_neural.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jarvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
