# Empty dependencies file for jarvis_fsm.
# This may be replaced when dependencies are built.
