file(REMOVE_RECURSE
  "CMakeFiles/jarvis_fsm.dir/authorization.cpp.o"
  "CMakeFiles/jarvis_fsm.dir/authorization.cpp.o.d"
  "CMakeFiles/jarvis_fsm.dir/device.cpp.o"
  "CMakeFiles/jarvis_fsm.dir/device.cpp.o.d"
  "CMakeFiles/jarvis_fsm.dir/device_library.cpp.o"
  "CMakeFiles/jarvis_fsm.dir/device_library.cpp.o.d"
  "CMakeFiles/jarvis_fsm.dir/environment.cpp.o"
  "CMakeFiles/jarvis_fsm.dir/environment.cpp.o.d"
  "CMakeFiles/jarvis_fsm.dir/episode.cpp.o"
  "CMakeFiles/jarvis_fsm.dir/episode.cpp.o.d"
  "CMakeFiles/jarvis_fsm.dir/state.cpp.o"
  "CMakeFiles/jarvis_fsm.dir/state.cpp.o.d"
  "libjarvis_fsm.a"
  "libjarvis_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jarvis_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
