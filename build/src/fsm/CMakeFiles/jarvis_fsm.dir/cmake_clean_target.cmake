file(REMOVE_RECURSE
  "libjarvis_fsm.a"
)
