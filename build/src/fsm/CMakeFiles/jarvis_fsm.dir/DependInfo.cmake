
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/authorization.cpp" "src/fsm/CMakeFiles/jarvis_fsm.dir/authorization.cpp.o" "gcc" "src/fsm/CMakeFiles/jarvis_fsm.dir/authorization.cpp.o.d"
  "/root/repo/src/fsm/device.cpp" "src/fsm/CMakeFiles/jarvis_fsm.dir/device.cpp.o" "gcc" "src/fsm/CMakeFiles/jarvis_fsm.dir/device.cpp.o.d"
  "/root/repo/src/fsm/device_library.cpp" "src/fsm/CMakeFiles/jarvis_fsm.dir/device_library.cpp.o" "gcc" "src/fsm/CMakeFiles/jarvis_fsm.dir/device_library.cpp.o.d"
  "/root/repo/src/fsm/environment.cpp" "src/fsm/CMakeFiles/jarvis_fsm.dir/environment.cpp.o" "gcc" "src/fsm/CMakeFiles/jarvis_fsm.dir/environment.cpp.o.d"
  "/root/repo/src/fsm/episode.cpp" "src/fsm/CMakeFiles/jarvis_fsm.dir/episode.cpp.o" "gcc" "src/fsm/CMakeFiles/jarvis_fsm.dir/episode.cpp.o.d"
  "/root/repo/src/fsm/state.cpp" "src/fsm/CMakeFiles/jarvis_fsm.dir/state.cpp.o" "gcc" "src/fsm/CMakeFiles/jarvis_fsm.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jarvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
