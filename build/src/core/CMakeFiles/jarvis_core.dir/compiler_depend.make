# Empty compiler generated dependencies file for jarvis_core.
# This may be replaced when dependencies are built.
