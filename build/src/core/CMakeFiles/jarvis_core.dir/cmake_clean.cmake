file(REMOVE_RECURSE
  "CMakeFiles/jarvis_core.dir/benefit_space.cpp.o"
  "CMakeFiles/jarvis_core.dir/benefit_space.cpp.o.d"
  "CMakeFiles/jarvis_core.dir/jarvis.cpp.o"
  "CMakeFiles/jarvis_core.dir/jarvis.cpp.o.d"
  "CMakeFiles/jarvis_core.dir/online_monitor.cpp.o"
  "CMakeFiles/jarvis_core.dir/online_monitor.cpp.o.d"
  "libjarvis_core.a"
  "libjarvis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jarvis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
