file(REMOVE_RECURSE
  "libjarvis_core.a"
)
