file(REMOVE_RECURSE
  "CMakeFiles/fsm_auth_test.dir/fsm_auth_test.cpp.o"
  "CMakeFiles/fsm_auth_test.dir/fsm_auth_test.cpp.o.d"
  "fsm_auth_test"
  "fsm_auth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
