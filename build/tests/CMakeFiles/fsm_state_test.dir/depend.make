# Empty dependencies file for fsm_state_test.
# This may be replaced when dependencies are built.
