file(REMOVE_RECURSE
  "CMakeFiles/fsm_state_test.dir/fsm_state_test.cpp.o"
  "CMakeFiles/fsm_state_test.dir/fsm_state_test.cpp.o.d"
  "fsm_state_test"
  "fsm_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
