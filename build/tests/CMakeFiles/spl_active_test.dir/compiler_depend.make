# Empty compiler generated dependencies file for spl_active_test.
# This may be replaced when dependencies are built.
