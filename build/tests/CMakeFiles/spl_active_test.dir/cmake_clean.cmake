file(REMOVE_RECURSE
  "CMakeFiles/spl_active_test.dir/spl_active_test.cpp.o"
  "CMakeFiles/spl_active_test.dir/spl_active_test.cpp.o.d"
  "spl_active_test"
  "spl_active_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spl_active_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
