# Empty compiler generated dependencies file for fsm_device_test.
# This may be replaced when dependencies are built.
