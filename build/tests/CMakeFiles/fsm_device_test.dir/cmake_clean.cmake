file(REMOVE_RECURSE
  "CMakeFiles/fsm_device_test.dir/fsm_device_test.cpp.o"
  "CMakeFiles/fsm_device_test.dir/fsm_device_test.cpp.o.d"
  "fsm_device_test"
  "fsm_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
