file(REMOVE_RECURSE
  "CMakeFiles/rl_reward_test.dir/rl_reward_test.cpp.o"
  "CMakeFiles/rl_reward_test.dir/rl_reward_test.cpp.o.d"
  "rl_reward_test"
  "rl_reward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_reward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
