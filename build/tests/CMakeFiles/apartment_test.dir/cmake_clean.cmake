file(REMOVE_RECURSE
  "CMakeFiles/apartment_test.dir/apartment_test.cpp.o"
  "CMakeFiles/apartment_test.dir/apartment_test.cpp.o.d"
  "apartment_test"
  "apartment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apartment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
