# Empty compiler generated dependencies file for apartment_test.
# This may be replaced when dependencies are built.
