# Empty dependencies file for neural_tensor_test.
# This may be replaced when dependencies are built.
