file(REMOVE_RECURSE
  "CMakeFiles/neural_tensor_test.dir/neural_tensor_test.cpp.o"
  "CMakeFiles/neural_tensor_test.dir/neural_tensor_test.cpp.o.d"
  "neural_tensor_test"
  "neural_tensor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
