# Empty dependencies file for neural_network_test.
# This may be replaced when dependencies are built.
