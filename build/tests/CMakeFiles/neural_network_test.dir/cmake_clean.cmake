file(REMOVE_RECURSE
  "CMakeFiles/neural_network_test.dir/neural_network_test.cpp.o"
  "CMakeFiles/neural_network_test.dir/neural_network_test.cpp.o.d"
  "neural_network_test"
  "neural_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
