file(REMOVE_RECURSE
  "CMakeFiles/rl_env_test.dir/rl_env_test.cpp.o"
  "CMakeFiles/rl_env_test.dir/rl_env_test.cpp.o.d"
  "rl_env_test"
  "rl_env_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
