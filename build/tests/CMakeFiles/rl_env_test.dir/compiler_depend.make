# Empty compiler generated dependencies file for rl_env_test.
# This may be replaced when dependencies are built.
