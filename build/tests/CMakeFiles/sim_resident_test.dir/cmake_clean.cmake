file(REMOVE_RECURSE
  "CMakeFiles/sim_resident_test.dir/sim_resident_test.cpp.o"
  "CMakeFiles/sim_resident_test.dir/sim_resident_test.cpp.o.d"
  "sim_resident_test"
  "sim_resident_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_resident_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
