file(REMOVE_RECURSE
  "CMakeFiles/core_jarvis_test.dir/core_jarvis_test.cpp.o"
  "CMakeFiles/core_jarvis_test.dir/core_jarvis_test.cpp.o.d"
  "core_jarvis_test"
  "core_jarvis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_jarvis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
