# Empty compiler generated dependencies file for core_jarvis_test.
# This may be replaced when dependencies are built.
