
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spl_test.cpp" "tests/CMakeFiles/spl_test.dir/spl_test.cpp.o" "gcc" "tests/CMakeFiles/spl_test.dir/spl_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jarvis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/jarvis_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/spl/CMakeFiles/jarvis_spl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jarvis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/jarvis_events.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/jarvis_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/neural/CMakeFiles/jarvis_neural.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jarvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
