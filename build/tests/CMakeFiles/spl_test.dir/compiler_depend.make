# Empty compiler generated dependencies file for spl_test.
# This may be replaced when dependencies are built.
