file(REMOVE_RECURSE
  "CMakeFiles/spl_test.dir/spl_test.cpp.o"
  "CMakeFiles/spl_test.dir/spl_test.cpp.o.d"
  "spl_test"
  "spl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
