file(REMOVE_RECURSE
  "CMakeFiles/rl_trainer_test.dir/rl_trainer_test.cpp.o"
  "CMakeFiles/rl_trainer_test.dir/rl_trainer_test.cpp.o.d"
  "rl_trainer_test"
  "rl_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
