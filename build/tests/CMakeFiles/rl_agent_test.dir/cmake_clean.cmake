file(REMOVE_RECURSE
  "CMakeFiles/rl_agent_test.dir/rl_agent_test.cpp.o"
  "CMakeFiles/rl_agent_test.dir/rl_agent_test.cpp.o.d"
  "rl_agent_test"
  "rl_agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
