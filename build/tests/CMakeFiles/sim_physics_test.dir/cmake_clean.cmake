file(REMOVE_RECURSE
  "CMakeFiles/sim_physics_test.dir/sim_physics_test.cpp.o"
  "CMakeFiles/sim_physics_test.dir/sim_physics_test.cpp.o.d"
  "sim_physics_test"
  "sim_physics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_physics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
