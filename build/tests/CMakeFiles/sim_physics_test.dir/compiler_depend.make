# Empty compiler generated dependencies file for sim_physics_test.
# This may be replaced when dependencies are built.
