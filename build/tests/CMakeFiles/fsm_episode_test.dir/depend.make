# Empty dependencies file for fsm_episode_test.
# This may be replaced when dependencies are built.
