file(REMOVE_RECURSE
  "CMakeFiles/fsm_episode_test.dir/fsm_episode_test.cpp.o"
  "CMakeFiles/fsm_episode_test.dir/fsm_episode_test.cpp.o.d"
  "fsm_episode_test"
  "fsm_episode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_episode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
