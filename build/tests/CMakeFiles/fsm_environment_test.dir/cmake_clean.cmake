file(REMOVE_RECURSE
  "CMakeFiles/fsm_environment_test.dir/fsm_environment_test.cpp.o"
  "CMakeFiles/fsm_environment_test.dir/fsm_environment_test.cpp.o.d"
  "fsm_environment_test"
  "fsm_environment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_environment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
