# Empty dependencies file for neural_gradient_test.
# This may be replaced when dependencies are built.
