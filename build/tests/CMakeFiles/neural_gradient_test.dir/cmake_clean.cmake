file(REMOVE_RECURSE
  "CMakeFiles/neural_gradient_test.dir/neural_gradient_test.cpp.o"
  "CMakeFiles/neural_gradient_test.dir/neural_gradient_test.cpp.o.d"
  "neural_gradient_test"
  "neural_gradient_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_gradient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
