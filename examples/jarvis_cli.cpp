// jarvis_cli: a file-based command-line driver for the full pipeline — the
// workflow a deployment would actually script.
//
//   jarvis_cli simulate --days 14 --out events.log
//       Simulate natural resident behavior and write the event log.
//   jarvis_cli learn --log events.log --out policies.json
//       Run the learning phase (parse log -> Algorithm 1) and save the
//       learnt policies.
//   jarvis_cli audit --log suspect.log --policies policies.json
//       Replay a log through the detector and report flags.
//   jarvis_cli optimize --policies policies.json --day 42 --focus energy --f 0.8
//       Train the constrained DQN for a day and compare against normal.
//   jarvis_cli suggest --policies policies.json --minute 480
//       Print the best safe action for the overnight state at a minute.
//   jarvis_cli fleet --fleet 8 --jobs 4
//       Run a multi-tenant fleet (one Jarvis pipeline per simulated home)
//       across a worker pool and print the per-tenant and aggregate report.
//   jarvis_cli metrics --fleet 2 --format json
//       Run a small instrumented fleet and dump the observability export:
//       fleet-level metrics, aggregated tenant metrics, and the span tree.
//       CI validates this output with tools/check_metrics.py.
//   jarvis_cli checkpoint --log events.log --out home.ckpt
//       Run the learning phase and save the full learnt state (whitelist,
//       ANN filter, optionally a trained DQN with --day) as a versioned,
//       checksummed checkpoint.
//   jarvis_cli restore --checkpoint home.ckpt --day 42 --minute 480
//       Restore a checkpoint (per-section, corruption-tolerant), report
//       what survived, then optimize a day and suggest an action — the
//       crash-recovery workflow without re-running the learning phase.
//   jarvis_cli client <ping|health|metrics|suggest|minutes|ingest|checkpoint|shutdown>
//       Thin client for a running jarvis_serve daemon: frames one request
//       over the wire protocol (DESIGN.md §15), prints the JSON response,
//       and exits 0 iff the response is ok.
//
// All subcommands run on the standard 11-device home.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/jarvis.h"
#include "runtime/fleet.h"
#include "serve/protocol.h"
#include "serve/transport.h"
#include "sim/testbed.h"
#include "util/flags.h"
#include "util/timeofday.h"

namespace {

using namespace jarvis;

int Usage() {
  std::printf(
      "usage: jarvis_cli <simulate|learn|audit|optimize|suggest|fleet|"
      "metrics|checkpoint|restore> [flags]\n"
      "  simulate --days N --out FILE [--seed S]\n"
      "  learn    --log FILE --out FILE [--seed S]\n"
      "  audit    --log FILE --policies FILE\n"
      "  optimize --policies FILE [--day N] [--focus energy|cost|temp] "
      "[--f W] [--episodes N]\n"
      "  suggest  --policies FILE [--day N] [--minute M]\n"
      "  fleet    [--fleet N] [--jobs N] [--days N] [--episodes N] "
      "[--seed S]\n"
      "           [--aggregate true] [--agg-max-batch N] "
      "[--agg-deadline-us N]\n"
      "           [--agg-autotune B] [--agg-fairness rr|fifo] "
      "[--republish-episodes N]\n"
      "           [--republish-ms N] [--republish-on-improvement B]\n"
      "  metrics  [--fleet N] [--jobs N] [--days N] [--episodes N] "
      "[--seed S] [--format json|csv] [--out FILE]\n"
      "  checkpoint --log FILE --out FILE [--day N] [--episodes N] "
      "[--seed S]\n"
      "  restore  --checkpoint FILE [--day N] [--minute M] [--episodes N]\n"
      "  client   <ping|health|metrics|suggest|minutes|ingest|checkpoint|"
      "shutdown>\n"
      "           [--port P | --port-file FILE] [--host H] [--tenant N]\n"
      "           [--minute M] [--minutes A,B,..] [--log FILE] [--dir D]\n");
  return 2;
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  file << content;
}

sim::Testbed MakeTestbed(std::uint64_t seed) {
  sim::TestbedConfig config;
  config.seed = seed;
  config.benign_anomaly_samples = 6000;
  return sim::Testbed(config);
}

int Simulate(const util::Flags& flags) {
  const int days = flags.GetInt("days", 14);
  const std::string out = flags.GetString("out", "events.log");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, seed);
  const sim::ScenarioGenerator generator({}, {}, {}, seed);
  const auto traces = resident.SimulateDays(generator, 0, days);

  std::string log;
  std::size_t events = 0;
  for (const auto& trace : traces) {
    for (const auto& event : trace.events) {
      log += event.ToLogLine();
      log.push_back('\n');
      ++events;
    }
  }
  WriteFile(out, log);
  std::printf("simulated %d days -> %zu events -> %s\n", days, events,
              out.c_str());
  return 0;
}

int Learn(const util::Flags& flags) {
  const std::string log_path = flags.GetString("log", "events.log");
  const std::string out = flags.GetString("out", "policies.json");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  sim::Testbed testbed = MakeTestbed(seed);
  core::Jarvis jarvis(testbed.home_a(), core::JarvisConfig{});

  std::size_t dropped = 0;
  const auto events = events::LoggerApp::ReadLogFile(log_path, &dropped);
  sim::ResidentSimulator resident(testbed.home_a(), sim::ThermalConfig{},
                                  seed);
  const std::size_t episodes = jarvis.LearnFromEvents(
      events, resident.OvernightState(), util::SimTime(0),
      testbed.BuildTrainingSet());
  WriteFile(out, jarvis.learner().ToJsonString());
  std::printf("parsed %zu events (%zu dropped) -> %zu learning episodes -> "
              "%zu safe patterns -> %s\n",
              events.size(), dropped, episodes,
              jarvis.learner().table().admitted_key_count(), out.c_str());
  return 0;
}

spl::SafetyPolicyLearner LoadPolicies(const fsm::EnvironmentFsm& home,
                                      const std::string& path) {
  spl::SafetyPolicyLearner learner(home, spl::SplConfig{});
  learner.LoadJsonString(ReadFile(path));
  return learner;
}

int Audit(const util::Flags& flags) {
  const std::string log_path = flags.GetString("log", "events.log");
  const std::string policies = flags.GetString("policies", "policies.json");

  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  const auto learner = LoadPolicies(home, policies);

  std::size_t dropped = 0;
  const auto events = events::LoggerApp::ReadLogFile(log_path, &dropped);
  events::LogParser parser(home, {util::kMinutesPerDay, 1});
  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 1);
  const auto episodes = parser.Parse(events, resident.OvernightState(),
                                     events.empty() ? util::SimTime(0)
                                                    : events.front().date,
                                     /*keep_partial=*/true);

  std::size_t checked = 0, violations = 0, benign = 0;
  for (const auto& episode : episodes) {
    const auto audit = learner.AuditEpisode(episode);
    checked += audit.transitions_checked;
    violations += audit.violations;
    benign += audit.benign_anomalies;
    for (const auto& flag : audit.flags) {
      if (flag.verdict != spl::Verdict::kViolation) continue;
      const auto& step =
          episode.steps()[static_cast<std::size_t>(flag.step_index)];
      std::printf("VIOLATION %s %s %s\n", step.time.ToString().c_str(),
                  home.device(flag.mini.device).label().c_str(),
                  home.device(flag.mini.device)
                      .action_name(flag.mini.action)
                      .c_str());
    }
  }
  std::printf("audited %zu episodes: %zu transitions, %zu violations, %zu "
              "benign anomalies\n",
              episodes.size(), checked, violations, benign);
  return violations == 0 ? 0 : 1;
}

int Optimize(const util::Flags& flags) {
  const std::string policies = flags.GetString("policies", "policies.json");
  const int day = flags.GetInt("day", 42);
  const std::string focus = flags.GetString("focus", "energy");
  const double f = flags.GetDouble("f", 0.6);

  sim::Testbed testbed = MakeTestbed(42);
  core::JarvisConfig config;
  config.trainer.episodes = flags.GetInt("episodes", 32);
  core::Jarvis jarvis(testbed.home_a(), config);
  jarvis.LoadPolicies(ReadFile(policies));  // skip the learning phase

  const sim::DayTrace natural = testbed.home_b_data().Day(day);
  const auto plan =
      jarvis.OptimizeDay(natural, rl::RewardWeights::Sweep(focus, f));
  std::printf("day %d, focus %s f=%.2f\n", day, focus.c_str(), f);
  std::printf("  normal : %.2f kWh  $%.2f  %.0f degC-min\n",
              plan.normal_metrics.energy_kwh, plan.normal_metrics.cost_usd,
              plan.normal_metrics.comfort_error_c_min);
  std::printf("  jarvis : %.2f kWh  $%.2f  %.0f degC-min  (%zu violations)\n",
              plan.optimized_metrics.energy_kwh,
              plan.optimized_metrics.cost_usd,
              plan.optimized_metrics.comfort_error_c_min, plan.violations);
  return 0;
}

int Suggest(const util::Flags& flags) {
  const std::string policies = flags.GetString("policies", "policies.json");
  const int day = flags.GetInt("day", 42);
  const int minute = flags.GetInt("minute", 8 * 60);

  sim::Testbed testbed = MakeTestbed(42);
  core::JarvisConfig config;
  config.trainer.episodes = flags.GetInt("episodes", 24);
  core::Jarvis jarvis(testbed.home_a(), config);
  jarvis.LoadPolicies(ReadFile(policies));  // skip the learning phase

  const sim::DayTrace natural = testbed.home_b_data().Day(day);
  jarvis.OptimizeDay(natural, rl::RewardWeights{});
  sim::ResidentSimulator resident(testbed.home_a(), sim::ThermalConfig{}, 1);
  const auto action = jarvis.SuggestAction(resident.OvernightState(), minute);
  std::printf("suggested action at %02d:%02d: %s\n", minute / 60, minute % 60,
              testbed.home_a()
                  .codec()
                  .ActionToString(testbed.home_a().devices(), action)
                  .c_str());
  return 0;
}

int FleetRun(const util::Flags& flags) {
  runtime::FleetConfig config;
  config.tenants = static_cast<std::size_t>(flags.GetInt("fleet", 8));
  config.jobs = static_cast<std::size_t>(flags.GetInt("jobs", 1));
  config.fleet_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.tenant_config.trainer.episodes = flags.GetInt("episodes", 24);

  // Streaming republish (DESIGN.md §16): with --republish-episodes N > 0
  // (or the other cadences) each training tenant snapshots its live
  // network through the funnel mid-run, so --aggregate serves policies
  // that are at most N episodes stale instead of waiting for completion.
  rl::RepublishPolicy& republish = config.tenant_config.trainer.republish;
  republish.every_episodes = flags.GetInt("republish-episodes", 0);
  republish.every_ms = flags.GetInt("republish-ms", 0);
  republish.on_loss_improvement =
      flags.GetBool("republish-on-improvement", false);

  runtime::SimulatedWorkloadOptions workload;
  workload.learning_days = flags.GetInt("days", 3);

  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  runtime::Fleet fleet(home, config);

  // --aggregate: attach the cross-tenant inference funnel BEFORE training
  // so a streaming republish policy has somewhere to publish from the
  // first episodes; publish-on-completion still covers every tenant
  // either way. Answers are bit-identical to the direct route, so this
  // changes throughput, never output.
  const bool aggregate = flags.GetBool("aggregate", false);
  if (aggregate) {
    runtime::AggregationConfig agg;
    agg.max_batch =
        static_cast<std::size_t>(flags.GetInt("agg-max-batch", 256));
    agg.deadline_us = flags.GetInt("agg-deadline-us", 200);
    agg.autotune = flags.GetBool("agg-autotune", false);
    const std::string fairness = flags.GetString("agg-fairness", "rr");
    if (fairness == "fifo") {
      agg.fairness = runtime::DrainFairness::kFifo;
    } else if (fairness == "rr") {
      agg.fairness = runtime::DrainFairness::kRoundRobin;
    } else {
      std::fprintf(stderr, "error: --agg-fairness must be rr or fifo\n");
      return 2;
    }
    fleet.EnableAggregation(agg);
  }

  const runtime::FleetReport report =
      fleet.Run(runtime::SimulatedWorkloadFactory(home, workload));

  // With the funnel attached, route a fleet-wide suggestion sweep through
  // it and print the coalescing + republish evidence.
  if (aggregate) {
    sim::ResidentSimulator resident(home, sim::ThermalConfig{},
                                    config.fleet_seed);
    const fsm::StateVector overnight = resident.OvernightState();
    std::vector<int> minutes;
    for (int minute = 0; minute < util::kMinutesPerDay; minute += 15) {
      minutes.push_back(minute);
    }
    for (const auto& tenant : report.tenants) {
      if (tenant.quarantined) continue;
      fleet.SuggestMinutes(tenant.tenant, overnight, minutes);
    }
    const runtime::AggregationStats agg_stats = fleet.aggregator()->stats();
    std::printf(
        "aggregation: %llu queries -> %llu GEMMs (%llu rows, max batch "
        "%llu), %llu rejected\n",
        static_cast<unsigned long long>(agg_stats.answered_queries),
        static_cast<unsigned long long>(agg_stats.gemm_batches),
        static_cast<unsigned long long>(agg_stats.rows_inferred),
        static_cast<unsigned long long>(agg_stats.max_gemm_rows),
        static_cast<unsigned long long>(agg_stats.rejected_queries));
    std::printf(
        "aggregation: %llu weight versions published (%s), effective max "
        "batch %llu (autotune +%llu/-%llu)\n",
        static_cast<unsigned long long>(agg_stats.weights_published),
        republish.enabled() ? "streaming + completion" : "completion only",
        static_cast<unsigned long long>(agg_stats.current_max_batch),
        static_cast<unsigned long long>(agg_stats.autotune_raises),
        static_cast<unsigned long long>(agg_stats.autotune_lowers));
  }

  for (const auto& tenant : report.tenants) {
    if (tenant.quarantined) {
      std::printf("tenant %2zu  QUARANTINED: %s\n", tenant.tenant,
                  tenant.error.c_str());
      continue;
    }
    std::printf(
        "tenant %2zu  %zu episodes  %.2f kWh  $%.2f  %.0f degC-min  "
        "(%zu violations)%s\n",
        tenant.tenant, tenant.learning_episodes,
        tenant.plan.optimized_metrics.energy_kwh,
        tenant.plan.optimized_metrics.cost_usd,
        tenant.plan.optimized_metrics.comfort_error_c_min,
        tenant.plan.violations,
        tenant.health.degraded() ? "  [degraded]" : "");
  }
  std::printf(
      "fleet: %zu tenants, jobs=%zu: %zu completed, %zu quarantined, "
      "%zu degraded; total %.2f kWh  $%.2f  %zu violations\n",
      report.tenants.size(), config.jobs, report.completed,
      report.quarantined, report.degraded, report.total_energy_kwh,
      report.total_cost_usd, report.total_violations);
  return report.quarantined == 0 ? 0 : 1;
}

int Metrics(const util::Flags& flags) {
  runtime::FleetConfig config;
  config.tenants = static_cast<std::size_t>(flags.GetInt("fleet", 2));
  config.jobs = static_cast<std::size_t>(flags.GetInt("jobs", 1));
  config.fleet_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.tenant_config.trainer.episodes = flags.GetInt("episodes", 4);
  config.tenant_config.restarts = 1;

  runtime::SimulatedWorkloadOptions workload;
  workload.learning_days = flags.GetInt("days", 2);
  workload.benign_anomaly_samples = 500;

  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  runtime::Fleet fleet(home, config);
  fleet.Run(runtime::SimulatedWorkloadFactory(home, workload));

  const obs::MetricsSnapshot aggregate = fleet.AggregateTenantMetrics();
  const std::string format = flags.GetString("format", "json");
  std::string output;
  if (format == "json") {
    util::JsonObject document;
    document["fleet"] = fleet.TakeMetricsSnapshot().ToJson();
    document["tenants"] = aggregate.ToJson();
    document["spans"] = obs::SpansToJson(fleet.FlushSpans());
    output = util::JsonValue(std::move(document)).Dump(2);
    output.push_back('\n');
  } else if (format == "csv") {
    output = aggregate.ToCsv();
  } else {
    std::fprintf(stderr, "unknown --format %s (json|csv)\n", format.c_str());
    return 2;
  }

  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fputs(output.c_str(), stdout);
  } else {
    WriteFile(out, output);
    std::printf("metrics (%s) -> %s\n", format.c_str(), out.c_str());
  }
  return 0;
}

int CheckpointCmd(const util::Flags& flags) {
  const std::string log_path = flags.GetString("log", "events.log");
  const std::string out = flags.GetString("out", "home.ckpt");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const int day = flags.GetInt("day", -1);

  sim::Testbed testbed = MakeTestbed(seed);
  core::JarvisConfig config;
  config.trainer.episodes = flags.GetInt("episodes", 24);
  core::Jarvis jarvis(testbed.home_a(), config);

  std::size_t dropped = 0;
  const auto events = events::LoggerApp::ReadLogFile(log_path, &dropped);
  sim::ResidentSimulator resident(testbed.home_a(), sim::ThermalConfig{},
                                  seed);
  const std::size_t episodes = jarvis.LearnFromEvents(
      events, resident.OvernightState(), util::SimTime(0),
      testbed.BuildTrainingSet());
  if (day >= 0) {
    // Also persist a trained policy: the restored instance can then
    // warm-start its DQN instead of training cold.
    jarvis.OptimizeDay(testbed.home_b_data().Day(day), rl::RewardWeights{});
  }
  jarvis.SaveCheckpoint(out);
  std::printf("learned %zu episodes -> checkpoint %s (%zu sections)\n",
              episodes, out.c_str(), jarvis.MakeCheckpoint().section_count());
  return 0;
}

int Restore(const util::Flags& flags) {
  const std::string path = flags.GetString("checkpoint", "home.ckpt");
  const int day = flags.GetInt("day", 42);
  const int minute = flags.GetInt("minute", 8 * 60);

  sim::Testbed testbed = MakeTestbed(42);
  core::JarvisConfig config;
  config.trainer.episodes = flags.GetInt("episodes", 24);
  config.warm_start_dqn = true;
  core::Jarvis jarvis(testbed.home_a(), config);

  const core::Jarvis::RestoreReport report = jarvis.LoadCheckpoint(path);
  std::printf("restore %s: %s, %zu sections restored, %zu failed\n",
              path.c_str(), report.file_found ? "found" : "missing",
              report.sections_restored, report.sections_failed);
  if (!report.issues.empty()) {
    std::printf("issues:\n%s", persist::FormatIssues(report.issues).c_str());
  }
  if (!report.spl_restored) {
    std::printf("policies not restored — re-run the learning phase\n");
    return 1;
  }
  const auto plan =
      jarvis.OptimizeDay(testbed.home_b_data().Day(day), rl::RewardWeights{});
  std::printf("  jarvis : %.2f kWh  $%.2f  %.0f degC-min  (%zu violations)"
              "%s\n",
              plan.optimized_metrics.energy_kwh, plan.optimized_metrics.cost_usd,
              plan.optimized_metrics.comfort_error_c_min, plan.violations,
              report.dqn_staged ? "  [warm-started]" : "");
  sim::ResidentSimulator resident(testbed.home_a(), sim::ThermalConfig{}, 1);
  const auto action = jarvis.SuggestAction(resident.OvernightState(), minute);
  std::printf("suggested action at %02d:%02d: %s\n", minute / 60, minute % 60,
              testbed.home_a()
                  .codec()
                  .ActionToString(testbed.home_a().devices(), action)
                  .c_str());
  return 0;
}

}  // namespace

// Thin daemon client: one request, one framed round trip, the raw JSON
// response on stdout. The serve smoke job in CI scripts this end to end.
int Client(const util::Flags& flags) {
  if (flags.positional().size() < 2) return Usage();
  const std::string action = flags.positional()[1];

  util::JsonObject request;
  request["id"] = 1;
  if (action == "ping" || action == "health" || action == "metrics" ||
      action == "shutdown") {
    request["type"] = action;
  } else if (action == "checkpoint") {
    request["type"] = "checkpoint";
    if (flags.Has("dir")) request["dir"] = flags.GetString("dir", "");
  } else if (action == "suggest") {
    request["type"] = "suggest_action";
    request["tenant"] = flags.GetInt("tenant", 0);
    request["minute"] = flags.GetInt("minute", 480);
  } else if (action == "minutes") {
    request["type"] = "suggest_minutes";
    request["tenant"] = flags.GetInt("tenant", 0);
    util::JsonArray minutes;
    std::stringstream list(flags.GetString("minutes", "480"));
    std::string item;
    while (std::getline(list, item, ',')) {
      if (!item.empty()) minutes.emplace_back(std::stoi(item));
    }
    request["minutes"] = util::JsonValue(std::move(minutes));
  } else if (action == "ingest") {
    request["type"] = "ingest";
    request["tenant"] = flags.GetInt("tenant", 0);
    util::JsonArray lines;
    std::stringstream log(ReadFile(flags.GetString("log", "events.log")));
    std::string line;
    while (std::getline(log, line)) {
      if (!line.empty()) lines.emplace_back(line);
    }
    request["lines"] = util::JsonValue(std::move(lines));
  } else {
    return Usage();
  }

  int port = flags.GetInt("port", 0);
  const std::string port_file = flags.GetString("port-file", "");
  if (port == 0 && !port_file.empty()) {
    port = std::stoi(ReadFile(port_file));
  }
  if (port == 0) {
    std::fprintf(stderr, "client: need --port or --port-file\n");
    return 2;
  }
  std::string error;
  auto transport = serve::ConnectTcp(flags.GetString("host", "127.0.0.1"),
                                     static_cast<std::uint16_t>(port),
                                     &error);
  if (transport == nullptr) {
    std::fprintf(stderr, "client: connect failed: %s\n", error.c_str());
    return 1;
  }
  if (!transport->WritePayload(util::JsonValue(std::move(request)).Dump())) {
    std::fprintf(stderr, "client: write failed\n");
    return 1;
  }
  std::string payload;
  if (transport->ReadPayload(&payload) !=
      serve::FramedTransport::ReadResult::kPayload) {
    std::fprintf(stderr, "client: no response (%s)\n", payload.c_str());
    return 1;
  }
  std::printf("%s\n", payload.c_str());
  return serve::ResponseOk(util::JsonValue::Parse(payload)) ? 0 : 1;
}

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.positional().empty()) return Usage();
    const std::string command = flags.positional()[0];
    if (command == "simulate") return Simulate(flags);
    if (command == "learn") return Learn(flags);
    if (command == "audit") return Audit(flags);
    if (command == "optimize") return Optimize(flags);
    if (command == "suggest") return Suggest(flags);
    if (command == "fleet") return FleetRun(flags);
    if (command == "metrics") return Metrics(flags);
    if (command == "checkpoint") return CheckpointCmd(flags);
    if (command == "restore") return Restore(flags);
    if (command == "client") return Client(flags);
    return Usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
