// Policy explorer: inspect what Jarvis learned.
//
// After the learning phase, this example dumps (a) the learnt safe
// trigger/action repertoire per device, (b) a what-if scan showing how the
// same action flips between safe / benign-anomaly / violation as the
// context changes, and (c) a timeline of the trained policy's suggestions
// across one day — the "Jarvis, what would you do now?" interface.
//
// Run: ./build/examples/policy_explorer
#include <cstdio>
#include <map>

#include "core/jarvis.h"
#include "sim/testbed.h"

int main() {
  using namespace jarvis;

  std::printf("=== Jarvis policy explorer ===\n\n");

  sim::TestbedConfig testbed_config;
  testbed_config.benign_anomaly_samples = 6000;
  sim::Testbed testbed(testbed_config);
  const fsm::EnvironmentFsm& home = testbed.home_a();

  core::JarvisConfig config;
  config.trainer.episodes = 24;
  core::Jarvis jarvis(home, config);
  jarvis.LearnPolicies(testbed.HomeALearningEpisodes(),
                       testbed.BuildTrainingSet());

  // (a) Safe repertoire per device, summarized from the learning episodes.
  const auto observations =
      fsm::ExtractTriggerActions(testbed.HomeALearningEpisodes());
  std::map<std::string, std::map<std::string, int>> repertoire;
  for (const auto& ta : observations) {
    for (std::size_t d = 0; d < ta.action.size(); ++d) {
      if (ta.action[d] == fsm::kNoAction) continue;
      const auto& device = home.devices()[d];
      ++repertoire[device.label()][device.action_name(ta.action[d])];
    }
  }
  std::printf("Learnt safe repertoire (action -> observations):\n");
  for (const auto& [device, actions] : repertoire) {
    std::printf("  %-14s", device.c_str());
    for (const auto& [action, count] : actions) {
      std::printf(" %s:%d", action.c_str(), count);
    }
    std::printf("\n");
  }

  // (b) What-if scan: 'unlock the door' across contexts.
  std::printf("\nWhat-if: 'unlock the front door' across contexts:\n");
  struct Context {
    const char* description;
    const char* door_state;
    int minute;
  };
  const std::vector<Context> contexts = {
      {"verified user at the door, evening", "auth_user", 17 * 60 + 40},
      {"nobody at the door, 2am", "sensing", 2 * 60},
      {"nobody at the door, 1pm (house empty)", "sensing", 13 * 60},
      {"UNVERIFIED user at the door, evening", "unauth_user", 17 * 60 + 40},
      {"morning routine, waking up", "sensing", 6 * 60 + 40},
  };
  for (const auto& context : contexts) {
    fsm::StateVector state(home.device_count(), 0);
    state[1] = *home.device(1).FindState(context.door_state);
    const auto verdict = jarvis.learner().ClassifyMini(
        state, {0, *home.device(0).FindAction("unlock")}, context.minute);
    std::printf("  %-42s -> %s\n", context.description,
                spl::VerdictName(verdict).c_str());
  }

  // (c) Suggestion timeline for a trained day.
  const sim::DayTrace day = testbed.home_b_data().Day(21);
  jarvis.OptimizeDay(day, rl::RewardWeights{});
  std::printf("\nPolicy suggestions across day %d (state = overnight "
              "baseline):\n",
              day.scenario.day);
  for (int minute = 0; minute < util::kMinutesPerDay; minute += 3 * 60) {
    const auto action =
        jarvis.SuggestAction(day.episode.initial_state(), minute);
    std::printf("  %02d:00  %s\n", minute / 60,
                home.codec().ActionToString(home.devices(), action).c_str());
  }
  std::printf("\n('O' = leave the device alone.)\n");
  return 0;
}
