// jarvis_serve: the long-lived serving daemon. Trains a runtime::Fleet
// once at startup (simulated homes, like `jarvis_cli fleet`), then keeps
// it resident and answers requests over the framed wire protocol
// (DESIGN.md §15) until asked to drain.
//
//   jarvis_serve --port 0 --port-file /tmp/port
//       Listen on an ephemeral loopback TCP port, report it in the port
//       file, serve until a shutdown request (or SIGINT) starts the drain.
//   jarvis_serve --stdio
//       Serve a single framed conversation on stdin/stdout (inetd style);
//       EOF or a shutdown request ends it.
//
// Exit is always the graceful path: stop accepting, answer everything
// already admitted, flush checkpoints + buffered ingest to
// --checkpoint-dir, exit 0. `jarvis_cli client` is the matching client.
#include <csignal>
#include <cstdio>
#include <fstream>

#include "runtime/fleet.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "sim/testbed.h"
#include "util/flags.h"

namespace {

using namespace jarvis;

// Async-signal flag: SIGINT requests a drain; the accept loop polls it.
volatile std::sig_atomic_t g_interrupted = 0;

void OnInterrupt(int) { g_interrupted = 1; }

int Usage() {
  std::printf(
      "usage: jarvis_serve [--stdio | --port P [--port-file FILE]]\n"
      "  --tenants N        homes to train and serve (default 2)\n"
      "  --jobs N           training worker threads (default 2)\n"
      "  --seed S           fleet seed (default 42)\n"
      "  --episodes N       DQN episodes per tenant (default 6)\n"
      "  --days N           simulated learning days (default 2)\n"
      "  --workers N        serving worker threads (default 2)\n"
      "  --queue N          admission queue capacity (default 8)\n"
      "  --aggregate B      cross-tenant inference aggregation (default "
      "true)\n"
      "  --agg-max-batch N  aggregation flush batch bound (default 256)\n"
      "  --agg-deadline-us N  aggregation flush deadline (default 200)\n"
      "  --agg-autotune B   histogram-driven max_batch autotuner (default "
      "false)\n"
      "  --agg-fairness M   drain order: rr | fifo (default rr)\n"
      "  --republish-episodes N  stream weights every N training episodes "
      "(default 4, 0 = off)\n"
      "  --republish-ms N   stream weights every N ms of training (default "
      "0 = off)\n"
      "  --republish-on-improvement B  stream on replay-loss improvement "
      "(default false)\n"
      "  --checkpoint-dir D drain flush destination (default none)\n"
      "  --port P           loopback TCP port, 0 = ephemeral (default 0)\n"
      "  --port-file FILE   write the bound port here once listening\n"
      "  --stdio            serve one conversation on stdin/stdout\n");
  return 2;
}

int Run(const util::Flags& flags) {
  runtime::FleetConfig config;
  config.tenants = static_cast<std::size_t>(flags.GetInt("tenants", 2));
  config.jobs = static_cast<std::size_t>(flags.GetInt("jobs", 2));
  config.fleet_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.tenant_config.trainer.episodes = flags.GetInt("episodes", 6);

  // Streaming republish (DESIGN.md §16): while a tenant trains, its live
  // network is snapshotted through the funnel every N episodes, so the
  // daemon serves a policy at most N episodes stale instead of waiting for
  // the whole training pass.
  rl::RepublishPolicy& republish = config.tenant_config.trainer.republish;
  republish.every_episodes = flags.GetInt("republish-episodes", 4);
  republish.every_ms = flags.GetInt("republish-ms", 0);
  republish.on_loss_improvement =
      flags.GetBool("republish-on-improvement", false);

  runtime::SimulatedWorkloadOptions workload;
  workload.learning_days = flags.GetInt("days", 2);

  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  runtime::Fleet fleet(home, config);

  // Cross-tenant inference aggregation (DESIGN.md §16): suggestion
  // handlers coalesce into shared batched GEMMs. On by default — the
  // answers are bit-identical either way — and `--aggregate false` keeps
  // the per-tenant direct route for A/B runs. Attached BEFORE the training
  // run so the republish policy has a funnel to stream into from the very
  // first episodes.
  if (flags.GetBool("aggregate", true)) {
    runtime::AggregationConfig agg;
    agg.max_batch =
        static_cast<std::size_t>(flags.GetInt("agg-max-batch", 256));
    agg.deadline_us = flags.GetInt("agg-deadline-us", 200);
    agg.autotune = flags.GetBool("agg-autotune", false);
    const std::string fairness = flags.GetString("agg-fairness", "rr");
    if (fairness == "fifo") {
      agg.fairness = runtime::DrainFairness::kFifo;
    } else if (fairness == "rr") {
      agg.fairness = runtime::DrainFairness::kRoundRobin;
    } else {
      std::fprintf(stderr, "error: --agg-fairness must be rr or fifo\n");
      return 2;
    }
    fleet.EnableAggregation(agg);
    std::fprintf(stderr,
                 "jarvis_serve: aggregation on (max_batch %zu, deadline "
                 "%lld us, fairness %s, autotune %s, republish every %d "
                 "episodes / %lld ms)\n",
                 agg.max_batch, static_cast<long long>(agg.deadline_us),
                 fairness.c_str(), agg.autotune ? "on" : "off",
                 republish.every_episodes,
                 static_cast<long long>(republish.every_ms));
  }

  std::fprintf(stderr, "jarvis_serve: training %zu tenants...\n",
               config.tenants);
  const runtime::FleetReport report =
      fleet.Run(runtime::SimulatedWorkloadFactory(home, workload));
  std::fprintf(stderr,
               "jarvis_serve: fleet ready (%zu completed, %zu quarantined)\n",
               report.completed, report.quarantined);
  if (const auto aggregator = fleet.aggregator(); aggregator != nullptr) {
    const runtime::AggregationStats stats = aggregator->stats();
    std::fprintf(stderr,
                 "jarvis_serve: %llu weight versions published during "
                 "training (streaming republish)\n",
                 static_cast<unsigned long long>(stats.weights_published));
  }

  sim::ResidentSimulator resident(home, sim::ThermalConfig{},
                                  config.fleet_seed);
  serve::DispatcherOptions dispatch_options;
  dispatch_options.default_state = resident.OvernightState();
  dispatch_options.checkpoint_dir = flags.GetString("checkpoint-dir", "");
  serve::Dispatcher dispatcher(fleet, dispatch_options, &fleet.Metrics());

  serve::ServerConfig server_config;
  server_config.workers = static_cast<std::size_t>(flags.GetInt("workers", 2));
  server_config.queue_capacity =
      static_cast<std::size_t>(flags.GetInt("queue", 8));
  serve::Server server(dispatcher, server_config, &fleet.Metrics());

  // A client that disconnects mid-response must cost one dropped-response
  // counter, not a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, OnInterrupt);
  std::signal(SIGTERM, OnInterrupt);

  if (flags.GetBool("stdio", false)) {
    serve::FdTransport transport(0, 1, /*owns_fds=*/false);
    server.Serve(transport);
  } else {
    serve::TcpListener listener(
        static_cast<std::uint16_t>(flags.GetInt("port", 0)));
    const std::string port_file = flags.GetString("port-file", "");
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << listener.port() << "\n";
    }
    std::fprintf(stderr, "jarvis_serve: listening on 127.0.0.1:%u\n",
                 listener.port());
    // One conversation at a time: Serve returns when the client hangs up,
    // and the 200ms accept timeout keeps the drain/interrupt flags live.
    while (g_interrupted == 0 && !server.draining()) {
      auto transport = listener.Accept(200);
      if (transport != nullptr) server.Serve(*transport);
    }
  }

  server.RequestDrain();
  const serve::DrainFlushReport drained = server.Drain();
  std::fprintf(stderr,
               "jarvis_serve: drained (checkpoints %zu saved / %zu failed, "
               "%zu ingest events flushed)\n",
               drained.checkpoints_saved, drained.checkpoints_failed,
               drained.ingest_events_flushed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.Has("help")) return Usage();
    return Run(flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
