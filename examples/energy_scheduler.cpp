// Energy scheduler: the cost-optimization deployment of Jarvis.
//
// The home faces day-ahead-market electricity prices with a late-afternoon
// peak. Jarvis trains a constrained policy that serves the same comfort
// and appliance demands as the resident, but schedules the flexible loads
// (washer, dishwasher, HVAC pre-heating) against the price curve. The
// example prints the day-ahead schedule, the two behaviors' hourly energy
// profiles, and the bill difference.
//
// Run: ./build/examples/energy_scheduler
#include <cstdio>
#include <vector>

#include "core/jarvis.h"
#include "sim/testbed.h"

int main() {
  using namespace jarvis;

  std::printf("=== Jarvis energy-cost scheduler ===\n\n");

  sim::TestbedConfig testbed_config;
  testbed_config.benign_anomaly_samples = 6000;
  sim::Testbed testbed(testbed_config);
  const fsm::EnvironmentFsm& home = testbed.home_a();

  core::JarvisConfig config;
  config.trainer.episodes = 32;
  core::Jarvis jarvis(home, config);
  jarvis.LearnPolicies(testbed.HomeALearningEpisodes(),
                       testbed.BuildTrainingSet());

  const sim::DayTrace day = testbed.home_b_data().Day(15);
  std::printf("Day-ahead prices ($/kWh) for day %d:\n  ",
              day.scenario.day);
  for (int hour = 0; hour < 24; ++hour) {
    std::printf("%4.2f ", day.scenario.price_usd_per_kwh[static_cast<std::size_t>(
                     hour * 60)]);
    if (hour == 11) std::printf("\n  ");
  }
  std::printf("\n\nOptimizing with cost focus (f_cost = 0.5)...\n");

  const core::DayPlan plan =
      jarvis.OptimizeDay(day, rl::RewardWeights::Sweep("cost", 0.5));

  // Hourly energy profile for both behaviors.
  auto hourly_profile = [&](const fsm::Episode& episode) {
    std::vector<double> kwh(24, 0.0);
    for (const auto& step : episode.steps()) {
      double watts = 0.0;
      for (std::size_t d = 0; d < home.device_count(); ++d) {
        watts += home.devices()[d].PowerDraw(step.state[d]);
      }
      kwh[static_cast<std::size_t>(step.time.hour_of_day())] +=
          watts / 1000.0 / 60.0;
    }
    return kwh;
  };
  const auto normal_profile = hourly_profile(day.episode);
  const auto jarvis_profile = hourly_profile(plan.train.greedy_episode);

  std::printf("\nHourly energy (kWh): hour  normal  jarvis   price\n");
  for (int hour = 0; hour < 24; ++hour) {
    const auto h = static_cast<std::size_t>(hour);
    std::printf("                      %02d    %5.2f   %5.2f   $%.2f%s\n",
                hour, normal_profile[h], jarvis_profile[h],
                day.scenario.price_usd_per_kwh[h * 60],
                hour >= 15 && hour < 20 ? "  <- peak" : "");
  }

  std::printf("\nDaily totals:\n");
  std::printf("  normal : %5.2f kWh  $%5.2f  %6.0f degC-min discomfort\n",
              plan.normal_metrics.energy_kwh, plan.normal_metrics.cost_usd,
              plan.normal_metrics.comfort_error_c_min);
  std::printf("  jarvis : %5.2f kWh  $%5.2f  %6.0f degC-min discomfort\n",
              plan.optimized_metrics.energy_kwh,
              plan.optimized_metrics.cost_usd,
              plan.optimized_metrics.comfort_error_c_min);
  std::printf("  bill saving: $%.2f/day (%.0f%%), with %zu safety "
              "violations.\n",
              plan.normal_metrics.cost_usd - plan.optimized_metrics.cost_usd,
              100.0 *
                  (plan.normal_metrics.cost_usd -
                   plan.optimized_metrics.cost_usd) /
                  plan.normal_metrics.cost_usd,
              plan.violations);
  return 0;
}
