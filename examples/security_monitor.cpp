// Security monitor: the intrusion-detection deployment of Jarvis.
//
// A smart home runs normally for a day while an attacker injects a
// handful of crafted violations (sensor suppression, midnight unlocks, a
// trojan app). The monitor audits the event stream minute by minute and
// reports exactly the malicious transitions, while the resident's slightly
// sloppy-but-benign behavior (a fridge door left open at night) passes as
// a filtered benign anomaly.
//
// Run: ./build/examples/security_monitor
#include <cstdio>

#include "core/jarvis.h"
#include "core/online_monitor.h"
#include "sim/testbed.h"

int main() {
  using namespace jarvis;

  std::printf("=== Jarvis security monitor ===\n\n");

  sim::TestbedConfig testbed_config;
  testbed_config.benign_anomaly_samples = 6000;
  sim::Testbed testbed(testbed_config);
  const fsm::EnvironmentFsm& home = testbed.home_a();

  core::Jarvis jarvis(home, core::JarvisConfig{});
  jarvis.LearnPolicies(testbed.HomeALearningEpisodes(),
                       testbed.BuildTrainingSet());
  std::printf("Learning phase complete: %zu safe behavior patterns.\n\n",
              jarvis.learner().table().admitted_key_count());

  // A normal day...
  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 1001);
  const auto generator = testbed.home_a_generator();
  sim::DayTrace day = resident.SimulateDay(generator.Generate(77),
                                           resident.OvernightState(), 21.0);

  // ...with three injected attacks and one injected benign anomaly.
  const auto violations = testbed.BuildViolations();
  fsm::Episode under_attack = day.episode;
  std::vector<const sim::Violation*> injected;
  for (std::size_t pick : {0u, 120u, 205u}) {  // one per distinct type group
    under_attack = sim::AttackGenerator::InjectIntoEpisode(
        home, under_attack, violations[pick]);
    injected.push_back(&violations[pick]);
  }
  sim::AnomalyGenerator anomalies(home, 55);
  fsm::StateVector home_context(home.device_count(), 0);
  home_context[0] = *home.device(0).FindState("unlocked");
  const auto benign = anomalies.GenerateOfKind(
      sim::AnomalyKind::kFridgeDoorLeftOpen, home_context);

  std::printf("Injected attacks:\n");
  for (const auto* violation : injected) {
    std::printf("  [%s] %s at %02d:%02d\n",
                sim::ViolationTypeName(violation->type).c_str(),
                violation->description.c_str(), violation->minute / 60,
                violation->minute % 60);
  }
  std::printf("Injected benign anomaly: %s at %02d:%02d\n\n",
              benign.description.c_str(), benign.minute / 60,
              benign.minute % 60);

  // Audit the full day.
  const auto audit = jarvis.Audit(under_attack);
  std::printf("Audit of %zu device transitions:\n", audit.transitions_checked);
  for (const auto& flag : audit.flags) {
    const auto& step =
        under_attack.steps()[static_cast<std::size_t>(flag.step_index)];
    const auto& device = home.device(flag.mini.device);
    std::printf("  %02d:%02d  %-12s %-14s -> %s\n", flag.step_index / 60,
                flag.step_index % 60, device.label().c_str(),
                device.action_name(flag.mini.action).c_str(),
                spl::VerdictName(flag.verdict).c_str());
    (void)step;
  }
  std::printf("\nSummary: %zu violations flagged, %zu benign anomalies "
              "filtered, %zu transitions passed as safe.\n",
              audit.violations, audit.benign_anomalies, audit.safe);

  // The benign anomaly, checked directly through the classifier.
  const auto verdict =
      jarvis.learner().Classify(home_context, benign.action, benign.minute);
  std::printf("Direct check of the fridge-door anomaly: %s (a malfunction, "
              "not an attack).\n",
              spl::VerdictName(verdict).c_str());

  // --- Streaming mode ------------------------------------------------—---
  // The same detection, online: the monitor subscribes to the live event
  // bus and raises alerts the moment a flagged command arrives.
  std::printf("\nStreaming mode (OnlineMonitor attached to the event bus):\n");
  core::OnlineMonitor monitor(home, jarvis.learner(),
                              day.episode.initial_state());
  events::EventBus bus;
  monitor.Attach(bus, [&](const core::MonitorAlert& alert) {
    std::printf("  ALERT %s  %-12s %-14s [%s]\n",
                alert.time.ToString().c_str(), alert.device_label.c_str(),
                alert.action_name.c_str(),
                spl::VerdictName(alert.verdict).c_str());
  });
  for (const auto& event : day.events) bus.Publish(event);
  // Inject one live attack event.
  events::Event attack_event;
  attack_event.date = util::SimTime::FromHms(day.scenario.day, 23, 50);
  attack_event.device_label = "temp_sensor";
  attack_event.attribute_value = "off";
  attack_event.command = "power_off";
  bus.Publish(attack_event);
  std::printf("Streamed %zu events: %zu commands classified, %zu violations, "
              "%zu benign anomalies.\n",
              monitor.events_consumed(), monitor.commands_classified(),
              monitor.violations(), monitor.benign_anomalies());

  return audit.violations >= injected.size() ? 0 : 1;
}
