// Quickstart: the complete Jarvis pipeline on the 11-device smart home.
//
//   1. Simulate a one-week learning phase of natural resident behavior.
//   2. Learn safety/security policies (Algorithm 1 + ANN filter).
//   3. Audit an injected attack and a benign anomaly.
//   4. Train the constrained DQN for one day (Algorithm 2) and compare the
//      optimized day against normal behavior.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/benefit_space.h"
#include "core/jarvis.h"
#include "sim/testbed.h"

int main() {
  using namespace jarvis;

  std::printf("=== Jarvis quickstart ===\n\n");

  // The evaluation testbed: 5 users, Home A (OpenSHS-style), Home B
  // (Smart*-style).
  sim::TestbedConfig testbed_config;
  testbed_config.benign_anomaly_samples = 4000;  // keep the demo snappy
  sim::Testbed testbed(testbed_config);
  const fsm::EnvironmentFsm& home = testbed.home_a();
  std::printf("Home A: %zu devices, %zu mini-actions, state space %llu\n",
              home.device_count(), home.codec().mini_action_count(),
              static_cast<unsigned long long>(home.codec().state_space_size()));

  // --- Learning phase ------------------------------------------------------
  core::JarvisConfig config;
  config.trainer.episodes = 8;
  core::Jarvis jarvis(home, config);

  const auto episodes = testbed.HomeALearningEpisodes();
  const auto labeled = testbed.BuildTrainingSet();
  jarvis.LearnPolicies(episodes, labeled);
  std::printf("Learning phase: %zu episodes, %zu labeled samples\n",
              episodes.size(), labeled.size());
  std::printf("P_safe: %zu observed keys, %zu admitted\n",
              jarvis.learner().table().observed_key_count(),
              jarvis.learner().table().admitted_key_count());

  // --- Safety audit ----------------------------------------------------—--
  const auto violations = testbed.BuildViolations();
  std::printf("\nAuditing 3 of %zu crafted violations:\n", violations.size());
  const auto base = testbed.HomeALearningEpisodes().front();
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& violation = violations[i * 60];
    const auto injected =
        sim::AttackGenerator::InjectIntoEpisode(home, base, violation);
    const auto audit = jarvis.Audit(injected);
    std::printf("  [%s] %s -> %zu violation flags\n",
                sim::ViolationTypeName(violation.type).c_str(),
                violation.description.c_str(), audit.violations);
  }

  // --- Optimize a day --------------------------------------------------—--
  const sim::DayTrace day = testbed.home_b_data().Day(42);
  rl::RewardWeights weights;  // balanced energy / cost / temperature
  std::printf("\nOptimizing day 42 (balanced weights)...\n");
  const core::DayPlan plan = jarvis.OptimizeDay(day, weights);

  std::printf("  normal   : %.2f kWh, $%.2f, %.0f degC-min discomfort\n",
              plan.normal_metrics.energy_kwh, plan.normal_metrics.cost_usd,
              plan.normal_metrics.comfort_error_c_min);
  std::printf("  jarvis   : %.2f kWh, $%.2f, %.0f degC-min discomfort\n",
              plan.optimized_metrics.energy_kwh,
              plan.optimized_metrics.cost_usd,
              plan.optimized_metrics.comfort_error_c_min);
  std::printf("  violations by optimized policy: %zu (constrained => 0)\n",
              plan.violations);
  std::printf("  greedy episode reward: %.1f (training: first %.1f, last %.1f)\n",
              plan.train.greedy_reward, plan.train.episode_rewards.front(),
              plan.train.episode_rewards.back());

  // --- Suggest an action ---------------------------------------------—----
  const auto suggestion = jarvis.SuggestAction(day.episode.initial_state(),
                                               7 * 60 + 30);
  std::printf("\nSuggested action at 07:30: %s\n",
              home.codec().ActionToString(home.devices(), suggestion).c_str());
  std::printf("\nDone.\n");
  return 0;
}
