// Table II: normal vs learnt-safe trigger/action behavior for the five
// IFTTT-style apps. The "normal" columns are the apps' context-free
// triggers ('X' = any state); the "safe" columns are the contexts in which
// Algorithm 1 actually observed the behavior during the learning phase —
// plus a check that context-free (unsafe) instantiations of each app's
// action are flagged.
#include <cstdio>
#include <map>
#include <set>

#include "bench_common.h"
#include "spl/safe_table.h"
#include "util/strings.h"

int main() {
  using namespace jarvis;
  bench::PrintHeader(
      "Table II: normal vs safe trigger/action behavior for five apps",
      "Table II (Section V-B-1)");

  bench::Harness harness;
  const auto& home = harness.testbed.home_a();
  const auto& learner = harness.jarvis->learner();

  struct AppRow {
    const char* name;
    const char* normal_trigger;  // paper's context-free trigger
    fsm::DeviceId device;        // acted device
    const char* action;
    // An unsafe instantiation of the same action (context the app ignores).
    fsm::StateVector unsafe_state;
    int unsafe_minute;
  };

  fsm::StateVector away(home.device_count(), 0);  // locked_outside, sensing
  fsm::StateVector unauth = away;
  unauth[1] = *home.device(1).FindState("unauth_user");
  fsm::StateVector cold_night = away;
  cold_night[3] = *home.device(3).FindState("heat");
  cold_night[4] = *home.device(4).FindState("below_optimal");

  const std::vector<AppRow> apps = {
      {"1 unlock-door-on-auth-user", "(p00,p11,X,X,X) -> unlock", 0, "unlock",
       unauth, 14 * 60},
      {"2 maintain-optimal-temperature", "(X,X,X,X,p40/p41) -> inc/dec temp",
       3, "increase_temp", away, 13 * 60},
      {"3 lights-on-arrival", "(p00,p11,X,X,X) -> light on", 2, "power_on",
       away, 3 * 60 + 30},
      {"4 fire-alarm-open-door-lights", "(X,X,X,X,p43) -> unlock+light", 0,
       "unlock", away, 2 * 60},
      {"5 leave-home-shutdown", "(p00,p10,X,X,X) -> light/thermostat off", 3,
       "power_off", cold_night, 3 * 60},
  };

  // Collect the learnt safe contexts per (device, action) from the
  // learning episodes themselves (what Algorithm 1 counted).
  const auto episodes = harness.testbed.HomeALearningEpisodes();
  const auto observations = fsm::ExtractTriggerActions(episodes);
  std::map<std::pair<fsm::DeviceId, fsm::ActionIndex>, std::set<std::string>>
      safe_contexts;
  for (const auto& ta : observations) {
    for (std::size_t d = 0; d < ta.action.size(); ++d) {
      if (ta.action[d] == fsm::kNoAction) continue;
      const std::string context = util::Format(
          "lock=%s door=%s temp=%s %02dh-bucket",
          home.device(0).state_name(ta.trigger_state[0]).c_str(),
          home.device(1).state_name(ta.trigger_state[1]).c_str(),
          home.device(4).state_name(ta.trigger_state[4]).c_str(),
          ta.minute_of_day / spl::kTimeBucketMinutes * 3);
      safe_contexts[{static_cast<fsm::DeviceId>(d), ta.action[d]}].insert(
          context);
    }
  }

  int flagged = 0;
  for (const auto& app : apps) {
    const auto action_index = home.device(app.device).FindAction(app.action);
    std::printf("\nApp %s\n", app.name);
    std::printf("  normal (context-free) T/A: %s\n", app.normal_trigger);
    const auto it =
        safe_contexts.find({app.device, action_index.value_or(-2)});
    std::printf("  learnt safe trigger contexts for action '%s' on %s:\n",
                app.action, home.device(app.device).label().c_str());
    if (it == safe_contexts.end() || it->second.empty()) {
      std::printf("    (none: behavior not observed -> never admitted, as "
                  "for App 4's fire-alarm path, Section V-B-1)\n");
    } else {
      for (const auto& context : it->second) {
        std::printf("    T: %s -> A: %s\n", context.c_str(), app.action);
      }
    }
    const auto verdict = learner.ClassifyMini(
        app.unsafe_state, {app.device, *action_index}, app.unsafe_minute);
    const bool is_flagged = verdict == spl::Verdict::kViolation;
    flagged += is_flagged ? 1 : 0;
    std::printf("  context-free instantiation at %02d:%02d in unsafe "
                "context: %s\n",
                app.unsafe_minute / 60, app.unsafe_minute % 60,
                spl::VerdictName(verdict).c_str());
  }

  std::printf("\nSummary: %d/5 context-free app behaviors flagged when fired "
              "outside their learnt safe contexts (paper: all unsafe "
              "instantiations rejected).\n",
              flagged);
  return flagged == 5 ? 0 : 1;
}
