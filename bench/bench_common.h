// Shared setup for the experiment harnesses: the Fig. 4 testbed with a
// completed SPL learning phase, plus environment-variable knobs so a full
// paper-scale run (JARVIS_BENCH_SCALE=paper) and a quick CI run share one
// binary.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/jarvis.h"
#include "sim/testbed.h"

namespace jarvis::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline bool PaperScale() {
  const char* value = std::getenv("JARVIS_BENCH_SCALE");
  return value != nullptr && std::string(value) == "paper";
}

// Days sampled per sweep point (paper: 30).
inline int SweepDays() {
  return EnvInt("JARVIS_BENCH_DAYS", PaperScale() ? 30 : 4);
}
// DQN training episodes per day (EP).
inline int TrainEpisodes() {
  return EnvInt("JARVIS_BENCH_EPISODES", PaperScale() ? 48 : 32);
}
// Episodes injected per violation in the security evaluation (paper: 100,
// giving 21,400 malicious episodes).
inline int EpisodesPerViolation() {
  return EnvInt("JARVIS_BENCH_EPISODES_PER_VIOLATION", PaperScale() ? 100 : 5);
}
// Benign anomalous episodes for the false-positive evaluation (paper:
// 18,120).
inline int BenignEpisodes() {
  return EnvInt("JARVIS_BENCH_BENIGN_EPISODES", PaperScale() ? 18120 : 1500);
}

struct Harness {
  Harness()
      : testbed(MakeTestbedConfig()),
        jarvis(std::make_unique<core::Jarvis>(testbed.home_a(),
                                              MakeJarvisConfig())) {
    jarvis->LearnPolicies(testbed.HomeALearningEpisodes(),
                          testbed.BuildTrainingSet());
  }

  static sim::TestbedConfig MakeTestbedConfig() {
    sim::TestbedConfig config;
    // The paper's 55,156 SIMADL samples at paper scale; a representative
    // subsample otherwise.
    config.benign_anomaly_samples = PaperScale() ? 55156 : 6000;
    return config;
  }

  static core::JarvisConfig MakeJarvisConfig() {
    core::JarvisConfig config;
    config.trainer.episodes = TrainEpisodes();
    return config;
  }

  sim::Testbed testbed;
  std::unique_ptr<core::Jarvis> jarvis;
};

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Scale: %s (set JARVIS_BENCH_SCALE=paper for full scale)\n",
              PaperScale() ? "paper" : "quick");
  std::printf("==================================================================\n");
}

}  // namespace jarvis::bench
