// Fig. 8: temperature-difference optimization — normal vs Jarvis-optimized
// comfort error (degC-minutes while occupied) across the temp-weight sweep.
#include "bench_sweep_common.h"

int main() {
  return jarvis::bench::RunFunctionalitySweep(
      "temp", "degC-min",
      "Fig. 8 (Section VI-D, temperature difference optimization)");
}
