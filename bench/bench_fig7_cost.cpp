// Fig. 7: electricity-cost minimization under day-ahead-market prices —
// normal vs Jarvis-optimized $ per day across the cost-weight sweep.
#include "bench_sweep_common.h"

int main() {
  return jarvis::bench::RunFunctionalitySweep(
      "cost", "$", "Fig. 7 (Section VI-D, energy price minimization)");
}
