// Fleet inference aggregation bench: cross-tenant suggest throughput with
// the AggregationService funnel versus the per-tenant direct route
// (DESIGN.md §16), swept over tenant counts × flush-deadline settings,
// plus an exact coalescing-arithmetic case and an end-to-end trained-fleet
// parity case.
//
// Shape follows bench_serve: every case carries a `deterministic` object
// (query/answer conservation, exact-parity verdicts, and — for the manual-
// mode case — the full flush arithmetic; all pure functions of the seed)
// gated EXACTLY by tools/check_bench.py against
// bench/baselines/BENCH_fleet.json, and an `advisory` object (throughput,
// speedup, observed GEMM sizes; runners differ, so these only warn).
// Writes BENCH_fleet.json next to the human-readable table. Pass --smoke
// for the CI-sized run (the committed baseline is the --smoke shape).
//
// Both sweep paths spend an identical thread budget (kClients request
// threads); the aggregated path's speedup is GEMM amortization — many
// single-row queries sharing one forward — which is the paper's shared-
// hardware lever (millions of users, one fleet).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "runtime/aggregation_service.h"
#include "runtime/fleet.h"
#include "runtime/inference_batcher.h"
#include "sim/resident.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timeofday.h"

namespace {

using namespace jarvis;

// Suggest-shaped forward: observation-ish width in, Q-row out. Heavy
// enough hidden layers that the GEMM, not the bookkeeping, dominates a
// forward — the regime the funnel exists for (a production policy net;
// the unit tests use toy widths).
constexpr std::size_t kFeatureWidth = 32;

std::unique_ptr<neural::Network> MakeNetwork(std::uint64_t seed) {
  return std::make_unique<neural::Network>(
      kFeatureWidth,
      std::vector<neural::LayerSpec>{{320, neural::Activation::kRelu},
                                     {320, neural::Activation::kTanh},
                                     {16, neural::Activation::kIdentity}},
      neural::Loss::kMeanSquaredError, std::make_unique<neural::Adam>(0.01),
      util::Rng(seed));
}

std::vector<double> MakeRow(util::Rng& rng) {
  std::vector<double> row(kFeatureWidth);
  for (double& x : row) x = rng.NextGaussian();
  return row;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

constexpr std::size_t kClients = 32;

struct SweepOutcome {
  std::size_t tenants = 0;
  std::size_t queries = 0;
  std::size_t answered = 0;
  std::size_t rejected = 0;
  bool parity = true;
  double base_qps = 0;
  double agg_qps = 0;
  double speedup = 0;
  std::uint64_t gemm_batches = 0;
  std::uint64_t max_gemm_rows = 0;
};

// One sweep point: kClients threads issue `per_client` single-row
// suggest-shaped queries, first through the per-tenant direct route
// (per-query InferenceBatcher under a per-tenant lock — exactly
// Fleet::SuggestMinutes' fallback), then through one shared
// AggregationService. All clients walk the tenant catalog on the same
// schedule (tenant = query index mod tenants): the fleet-tick / hot-tenant
// regime, where concurrent demand per tenant is the client count. That
// per-tenant concurrency is the coalescing currency — rows for DIFFERENT
// weight versions can never share a GEMM, so the funnel's win is turning
// same-tenant contention (serialized single-row forwards behind the
// direct route's lock) into one batched forward. Every answer from BOTH
// paths is checked bit-exact against PredictOne after the threads join.
//
// Each path is measured `reps` times and reports its best rep: an
// oversubscribed single-core scheduler makes individual closed-loop runs
// swing tens of percent, and best-of-N is the standard way to read a
// capability number through that noise (both paths get the same
// treatment; the first rep doubles as cache warmup). Parity and
// conservation are checked on EVERY rep, not just the reported one.
SweepOutcome RunSweep(std::size_t tenants, std::size_t per_client,
                      std::int64_t deadline_us, int reps) {
  std::vector<std::unique_ptr<neural::Network>> networks;
  for (std::size_t t = 0; t < tenants; ++t) {
    networks.push_back(MakeNetwork(100 + t));
  }

  struct Answer {
    std::size_t tenant;
    std::vector<double> row;
    std::vector<double> result;
  };
  SweepOutcome outcome;
  outcome.tenants = tenants;
  outcome.queries = kClients * per_client;

  // Exactness: every answer, bit-for-bit (single-threaded — PredictOne
  // uses the source network's scratch).
  const auto verify = [&](const std::vector<std::vector<Answer>>& answers) {
    for (const auto& client_answers : answers) {
      for (const Answer& answer : client_answers) {
        if (answer.result != networks[answer.tenant]->PredictOne(answer.row)) {
          outcome.parity = false;
        }
      }
    }
  };

  // Direct route baseline.
  std::vector<std::unique_ptr<std::mutex>> tenant_locks;
  for (std::size_t t = 0; t < tenants; ++t) {
    tenant_locks.push_back(std::make_unique<std::mutex>());
  }
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::vector<Answer>> base_answers(kClients);
    std::vector<std::thread> clients;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        util::Rng rng(9000 + c);
        for (std::size_t q = 0; q < per_client; ++q) {
          const std::size_t tenant = q % tenants;
          std::vector<double> row = MakeRow(rng);
          std::lock_guard<std::mutex> lock(*tenant_locks[tenant]);
          runtime::InferenceBatcher batcher(*networks[tenant]);
          batcher.Enqueue(row);
          batcher.Flush();
          base_answers[c].push_back({tenant, std::move(row),
                                     batcher.Result(0)});
        }
      });
    }
    for (auto& client : clients) client.join();
    const double seconds = SecondsSince(start);
    outcome.base_qps = std::max(
        outcome.base_qps,
        seconds > 0 ? static_cast<double>(outcome.queries) / seconds : 0);
    verify(base_answers);
  }

  // Aggregated route: same thread budget, one shared funnel per rep.
  // max_batch = the client count, so a full in-flight cohort flushes
  // immediately and the deadline only bounds how long a partial cohort
  // can wait.
  for (int rep = 0; rep < reps; ++rep) {
    runtime::AggregationConfig config;
    config.max_batch = kClients;
    config.deadline_us = deadline_us;
    runtime::AggregationService service(config);
    for (std::size_t t = 0; t < tenants; ++t) {
      service.PublishWeights(t, *networks[t]);
    }
    std::vector<std::vector<Answer>> agg_answers(kClients);
    std::vector<std::thread> clients;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        util::Rng rng(9000 + c);  // same row stream as the baseline
        for (std::size_t q = 0; q < per_client; ++q) {
          const std::size_t tenant = q % tenants;
          std::vector<double> row = MakeRow(rng);
          const auto result = service.Infer(tenant, {row});
          if (!result.has_value()) continue;  // counted via stats().rejected
          agg_answers[c].push_back({tenant, std::move(row),
                                    result->rows[0]});
        }
      });
    }
    for (auto& client : clients) client.join();
    const double seconds = SecondsSince(start);
    const double qps =
        seconds > 0 ? static_cast<double>(outcome.queries) / seconds : 0;
    service.Shutdown();

    const runtime::AggregationStats stats = service.stats();
    // Conservation must close on every rep once the clients have joined.
    if (stats.submitted_queries !=
        stats.answered_queries + stats.rejected_queries) {
      outcome.parity = false;
    }
    verify(agg_answers);
    if (qps > outcome.agg_qps) {
      outcome.agg_qps = qps;
      outcome.answered = stats.answered_queries;
      outcome.rejected = stats.rejected_queries;
      outcome.gemm_batches = stats.gemm_batches;
      outcome.max_gemm_rows = stats.max_gemm_rows;
    }
  }
  outcome.speedup =
      outcome.base_qps > 0 ? outcome.agg_qps / outcome.base_qps : 0;
  return outcome;
}

util::JsonValue SweepCaseJson(const std::string& name,
                              const SweepOutcome& outcome) {
  util::JsonObject deterministic;
  deterministic["tenants"] = static_cast<std::int64_t>(outcome.tenants);
  deterministic["queries"] = static_cast<std::int64_t>(outcome.queries);
  deterministic["answered"] = static_cast<std::int64_t>(outcome.answered);
  deterministic["rejected"] = static_cast<std::int64_t>(outcome.rejected);
  deterministic["parity"] = static_cast<std::int64_t>(outcome.parity ? 1 : 0);
  util::JsonObject advisory;
  advisory["base_qps"] = outcome.base_qps;
  advisory["agg_qps"] = outcome.agg_qps;
  advisory["speedup"] = outcome.speedup;
  advisory["gemm_batches"] = static_cast<double>(outcome.gemm_batches);
  advisory["max_gemm_rows"] = static_cast<double>(outcome.max_gemm_rows);
  util::JsonObject kase;
  kase["name"] = name;
  kase["deterministic"] = util::JsonValue(std::move(deterministic));
  kase["advisory"] = util::JsonValue(std::move(advisory));
  return util::JsonValue(std::move(kase));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t per_client = smoke ? 60 : 400;
  const int reps = smoke ? 3 : 5;
  const int e2e_stride = smoke ? 60 : 15;

  bench::PrintHeader(
      "Fleet inference aggregation: cross-tenant coalescing vs the "
      "per-tenant direct route",
      "aggregation service (DESIGN.md §16); not a paper figure");
  std::printf("mode: %s (%zu clients x %zu queries per sweep point)\n",
              smoke ? "smoke" : "full", kClients, per_client);

  util::JsonArray cases;
  bool healthy = true;

  // ---- coalesce_exact: manual-mode flush arithmetic, fully pinned -------
  // 4 tenants x 8 single-row queries, one FlushNow: the drain must group
  // by weight version into exactly 4 GEMMs of 8 rows each.
  {
    runtime::AggregationConfig config;
    config.manual = true;
    config.max_batch = 256;
    std::vector<std::unique_ptr<neural::Network>> networks;
    runtime::AggregationService service(config);
    for (std::size_t t = 0; t < 4; ++t) {
      networks.push_back(MakeNetwork(10 + t));
      service.PublishWeights(t, *networks[t]);
    }
    util::Rng rng(77);
    struct Pinned {
      std::size_t tenant;
      std::vector<double> row;
      std::uint64_t ticket;
    };
    std::vector<Pinned> pinned;
    for (std::size_t q = 0; q < 32; ++q) {
      const std::size_t tenant = q % 4;
      std::vector<double> row = MakeRow(rng);
      const auto ticket = service.Submit(tenant, {row});
      pinned.push_back({tenant, std::move(row), ticket.value()});
    }
    const auto start = std::chrono::steady_clock::now();
    service.FlushNow();
    const double flush_ms = SecondsSince(start) * 1000.0;
    bool parity = true;
    for (const Pinned& p : pinned) {
      const runtime::AggregatedResult result = service.Wait(p.ticket);
      if (result.rows[0] != networks[p.tenant]->PredictOne(p.row)) {
        parity = false;
      }
    }
    const runtime::AggregationStats stats = service.stats();
    util::JsonObject deterministic;
    deterministic["tenants"] = 4;
    deterministic["queries"] = 32;
    deterministic["answered"] =
        static_cast<std::int64_t>(stats.answered_queries);
    deterministic["rejected"] =
        static_cast<std::int64_t>(stats.rejected_queries);
    deterministic["flushes_manual"] =
        static_cast<std::int64_t>(stats.flushes_manual);
    deterministic["gemm_batches"] =
        static_cast<std::int64_t>(stats.gemm_batches);
    deterministic["max_gemm_rows"] =
        static_cast<std::int64_t>(stats.max_gemm_rows);
    deterministic["rows_inferred"] =
        static_cast<std::int64_t>(stats.rows_inferred);
    deterministic["parity"] = static_cast<std::int64_t>(parity ? 1 : 0);
    util::JsonObject advisory;
    advisory["flush_ms"] = flush_ms;
    util::JsonObject kase;
    kase["name"] = "coalesce_exact";
    kase["deterministic"] = util::JsonValue(std::move(deterministic));
    kase["advisory"] = util::JsonValue(std::move(advisory));
    cases.push_back(util::JsonValue(std::move(kase)));
    healthy = healthy && parity && stats.answered_queries == 32 &&
              stats.gemm_batches == 4 && stats.max_gemm_rows == 8;
    std::printf("coalesce_exact: 32 queries -> %llu GEMMs of <= %llu rows, "
                "parity %s\n",
                static_cast<unsigned long long>(stats.gemm_batches),
                static_cast<unsigned long long>(stats.max_gemm_rows),
                parity ? "ok" : "MISMATCH");
  }

  // ---- the tenants x deadline sweep -------------------------------------
  std::printf("%-14s %8s %12s %12s %9s %10s   parity\n", "case", "queries",
              "direct q/s", "agg q/s", "speedup", "max batch");
  for (const std::size_t tenants : {1u, 4u, 16u, 64u}) {
    for (const std::int64_t deadline_us : {std::int64_t{0},
                                           std::int64_t{200}}) {
      const SweepOutcome outcome =
          RunSweep(tenants, per_client, deadline_us, reps);
      const std::string name = "sweep_t" + std::to_string(tenants) + "_d" +
                               std::to_string(deadline_us);
      std::printf("%-14s %8zu %12.0f %12.0f %8.2fx %10llu   %s\n",
                  name.c_str(), outcome.queries, outcome.base_qps,
                  outcome.agg_qps, outcome.speedup,
                  static_cast<unsigned long long>(outcome.max_gemm_rows),
                  outcome.parity ? "ok" : "MISMATCH");
      healthy = healthy && outcome.parity && outcome.rejected == 0 &&
                outcome.answered == outcome.queries;
      cases.push_back(SweepCaseJson(name, outcome));
    }
  }

  // ---- fleet_suggest_e2e: the real Fleet path, trained end to end -------
  // A tiny trained fleet answers a day of SuggestMinutes twice — direct
  // route first, then with the funnel attached — and the answers must be
  // identical action vectors.
  {
    runtime::FleetConfig config;
    config.tenants = 2;
    config.jobs = 1;
    config.fleet_seed = 2026;
    config.tenant_config.restarts = 1;
    config.tenant_config.trainer.episodes = 2;
    config.tenant_config.trainer.demonstration_episodes = 1;
    config.tenant_config.dqn.hidden_units = {8, 8};
    config.tenant_config.dqn.batch_size = 16;
    config.tenant_config.spl.ann.epochs = 2;
    const fsm::EnvironmentFsm home = fsm::BuildFullHome();
    runtime::SimulatedWorkloadOptions workload;
    workload.learning_days = 1;
    workload.benign_anomaly_samples = 100;

    const auto train_start = std::chrono::steady_clock::now();
    runtime::Fleet fleet(home, config);
    fleet.Run(runtime::SimulatedWorkloadFactory(home, workload));
    const double train_s = SecondsSince(train_start);

    sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 2026);
    const fsm::StateVector overnight = resident.OvernightState();
    std::vector<int> minutes;
    for (int minute = 0; minute < util::kMinutesPerDay;
         minute += e2e_stride) {
      minutes.push_back(minute);
    }

    const auto direct_start = std::chrono::steady_clock::now();
    std::vector<std::vector<fsm::ActionVector>> direct;
    for (std::size_t t = 0; t < 2; ++t) {
      direct.push_back(fleet.SuggestMinutes(t, overnight, minutes));
    }
    const double direct_ms = SecondsSince(direct_start) * 1000.0;

    runtime::AggregationConfig agg;
    agg.max_batch = 256;
    agg.deadline_us = 200;
    fleet.EnableAggregation(agg);
    const auto agg_start = std::chrono::steady_clock::now();
    bool parity = true;
    for (std::size_t t = 0; t < 2; ++t) {
      if (fleet.SuggestMinutes(t, overnight, minutes) != direct[t]) {
        parity = false;
      }
    }
    const double agg_ms = SecondsSince(agg_start) * 1000.0;

    util::JsonObject deterministic;
    deterministic["tenants"] = 2;
    deterministic["minutes"] =
        static_cast<std::int64_t>(2 * minutes.size());
    deterministic["parity"] = static_cast<std::int64_t>(parity ? 1 : 0);
    util::JsonObject advisory;
    advisory["train_s"] = train_s;
    advisory["direct_ms"] = direct_ms;
    advisory["agg_ms"] = agg_ms;
    advisory["rows_inferred"] =
        static_cast<double>(fleet.aggregator()->stats().rows_inferred);
    util::JsonObject kase;
    kase["name"] = "fleet_suggest_e2e";
    kase["deterministic"] = util::JsonValue(std::move(deterministic));
    kase["advisory"] = util::JsonValue(std::move(advisory));
    cases.push_back(util::JsonValue(std::move(kase)));
    healthy = healthy && parity;
    std::printf("fleet_suggest_e2e: %zu minutes x 2 tenants, direct %.1f ms "
                "vs aggregated %.1f ms, parity %s\n",
                minutes.size(), direct_ms, agg_ms,
                parity ? "ok" : "MISMATCH");
  }

  // ---- republish_staleness: streaming republish vs publish-on-completion
  // A deterministic single-threaded "online learning" loop: one tenant
  // trains for kEpisodes (one TrainBatch gradient step per episode), and
  // after every episode a suggest burst of kQueriesPer rows goes through a
  // manual-mode funnel. Three republish cadences are compared:
  //   cadence 0  publish-on-completion only (the pre-streaming behavior):
  //              every query sees the bootstrap version, so a query after
  //              episode e is e episodes stale;
  //   cadence 4  streaming every 4 episodes: staleness cycles 1,2,3,0;
  //   cadence 1  streaming every episode: staleness pinned at 0.
  // Every answer is checked bit-exact against the CloneForInference
  // snapshot taken at publish time — version pinning means answers match
  // the published snapshot, never the live mutating network — and the
  // summed integer staleness is a pure function of the cadence; both are
  // gated exactly. Per-run wall time is advisory: the ratio between the
  // every-episode run and the completion-only run is the streaming
  // overhead evidence (clone + publish on the training path).
  {
    constexpr std::size_t kEpisodes = 16;
    constexpr std::size_t kQueriesPer = 8;
    constexpr std::size_t kOutWidth = 16;  // MakeNetwork's output layer
    struct RepublishOutcome {
      std::size_t staleness_sum = 0;  // summed episodes-behind over queries
      std::size_t publishes = 0;
      std::size_t answered = 0;
      std::size_t mismatch_rows = 0;
      double wall_ms = 0;     // whole loop: train + publish + suggest
      double suggest_ms = 0;  // submit+flush+wait only (the serving cost)
    };
    const auto run_cadence = [&](std::size_t publish_every) {
      RepublishOutcome out;
      runtime::AggregationConfig config;
      config.manual = true;
      config.max_batch = 256;
      runtime::AggregationService service(config);
      std::unique_ptr<neural::Network> network = MakeNetwork(555);
      std::unique_ptr<neural::Network> snapshot = network->CloneForInference();
      service.PublishWeights(0, *network);  // bootstrap version
      ++out.publishes;
      std::size_t last_published = 0;

      util::Rng data_rng(556);
      neural::Tensor input(kQueriesPer, kFeatureWidth);
      neural::Tensor target(kQueriesPer, kOutWidth);
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t episode = 1; episode <= kEpisodes; ++episode) {
        // One deterministic gradient step: the live network mutates, so
        // un-republished versions fall behind it.
        for (std::size_t r = 0; r < kQueriesPer; ++r) {
          for (std::size_t c = 0; c < kFeatureWidth; ++c) {
            input(r, c) = data_rng.NextGaussian();
          }
          for (std::size_t c = 0; c < kOutWidth; ++c) {
            target(r, c) = data_rng.NextGaussian();
          }
        }
        network->TrainBatch(input, target);
        if (publish_every > 0 && episode % publish_every == 0) {
          snapshot = network->CloneForInference();
          service.PublishWeights(0, *network);
          ++out.publishes;
          last_published = episode;
        }
        util::Rng query_rng(9000 + episode);  // same rows for every cadence
        std::vector<std::vector<double>> rows;
        std::vector<std::uint64_t> tickets;
        for (std::size_t q = 0; q < kQueriesPer; ++q) {
          rows.push_back(MakeRow(query_rng));
        }
        const auto suggest_start = std::chrono::steady_clock::now();
        for (std::size_t q = 0; q < kQueriesPer; ++q) {
          tickets.push_back(service.Submit(0, {rows[q]}).value());
        }
        service.FlushNow();
        std::vector<runtime::AggregatedResult> results;
        for (std::size_t q = 0; q < kQueriesPer; ++q) {
          results.push_back(service.Wait(tickets[q]));
        }
        out.suggest_ms += SecondsSince(suggest_start) * 1000.0;
        for (std::size_t q = 0; q < kQueriesPer; ++q) {
          if (results[q].rows[0] != snapshot->PredictOne(rows[q])) {
            ++out.mismatch_rows;
          }
          out.staleness_sum += episode - last_published;
        }
      }
      out.wall_ms = SecondsSince(start) * 1000.0;
      service.PublishWeights(0, *network);  // completion publish, every mode
      ++out.publishes;
      out.answered = service.stats().answered_queries;
      return out;
    };
    const RepublishOutcome completion = run_cadence(0);
    const RepublishOutcome every4 = run_cadence(4);
    const RepublishOutcome every1 = run_cadence(1);

    util::JsonObject deterministic;
    deterministic["episodes"] = static_cast<std::int64_t>(kEpisodes);
    deterministic["queries"] =
        static_cast<std::int64_t>(kEpisodes * kQueriesPer);
    deterministic["answered_completion"] =
        static_cast<std::int64_t>(completion.answered);
    deterministic["answered_every4"] =
        static_cast<std::int64_t>(every4.answered);
    deterministic["answered_every1"] =
        static_cast<std::int64_t>(every1.answered);
    deterministic["staleness_completion"] =
        static_cast<std::int64_t>(completion.staleness_sum);
    deterministic["staleness_every4"] =
        static_cast<std::int64_t>(every4.staleness_sum);
    deterministic["staleness_every1"] =
        static_cast<std::int64_t>(every1.staleness_sum);
    deterministic["publishes_completion"] =
        static_cast<std::int64_t>(completion.publishes);
    deterministic["publishes_every4"] =
        static_cast<std::int64_t>(every4.publishes);
    deterministic["publishes_every1"] =
        static_cast<std::int64_t>(every1.publishes);
    deterministic["mismatch_rows"] = static_cast<std::int64_t>(
        completion.mismatch_rows + every4.mismatch_rows +
        every1.mismatch_rows);
    util::JsonObject advisory;
    advisory["wall_ms_completion"] = completion.wall_ms;
    advisory["wall_ms_every4"] = every4.wall_ms;
    advisory["wall_ms_every1"] = every1.wall_ms;
    advisory["suggest_ms_completion"] = completion.suggest_ms;
    advisory["suggest_ms_every4"] = every4.suggest_ms;
    advisory["suggest_ms_every1"] = every1.suggest_ms;
    // Serving-side cost of streaming: how much slower the suggest bursts
    // got when the funnel also absorbed a publish per episode. This is
    // the <= 1.05x acceptance evidence; the whole-loop wall ratio also
    // carries the training-thread clone cost and is reported separately.
    advisory["suggest_cost_ratio"] =
        completion.suggest_ms > 0 ? every1.suggest_ms / completion.suggest_ms
                                  : 0;
    util::JsonObject kase;
    kase["name"] = "republish_staleness";
    kase["deterministic"] = util::JsonValue(std::move(deterministic));
    kase["advisory"] = util::JsonValue(std::move(advisory));
    cases.push_back(util::JsonValue(std::move(kase)));
    const bool exact =
        completion.mismatch_rows + every4.mismatch_rows +
                every1.mismatch_rows ==
            0 &&
        every1.staleness_sum == 0 &&
        every4.staleness_sum ==
            kQueriesPer * (kEpisodes / 4) * (1 + 2 + 3 + 0) &&
        completion.staleness_sum ==
            kQueriesPer * kEpisodes * (kEpisodes + 1) / 2;
    healthy = healthy && exact;
    std::printf(
        "republish_staleness: summed staleness %zu (completion) -> %zu "
        "(every 4) -> %zu (every 1) episodes over %zu queries, parity %s, "
        "suggest cost %.2fx\n",
        completion.staleness_sum, every4.staleness_sum, every1.staleness_sum,
        kEpisodes * kQueriesPer, exact ? "ok" : "MISMATCH",
        completion.suggest_ms > 0 ? every1.suggest_ms / completion.suggest_ms
                                  : 0.0);
  }

  util::JsonObject doc;
  doc["bench"] = "fleet";
  doc["smoke"] = smoke;
  doc["cases"] = util::JsonValue(std::move(cases));
  std::ofstream out("BENCH_fleet.json");
  out << util::JsonValue(std::move(doc)).Dump(2) << "\n";
  std::printf("wrote BENCH_fleet.json (%s)\n",
              healthy ? "healthy" : "UNHEALTHY");
  return healthy ? 0 : 1;
}
