// Fleet runtime throughput: tenants/sec for a 32-tenant workload at
// jobs = 1, 2, 4, 8, demonstrating that sharded tenant pipelines scale
// across workers without changing a single result (DESIGN.md §10). Writes
// the machine-readable BENCH_fleet.json next to the human-readable table
// so CI can track the scaling curve.
//
// Note the speedup is bounded by the host's core count: on a single-core
// runner every jobs level measures the same sequential work (speedup ~1x);
// the >=3x target at jobs=8 is for hosts with >=8 cores.
#include <chrono>
#include <fstream>

#include "bench_common.h"
#include "runtime/fleet.h"
#include "util/json.h"

namespace {

using namespace jarvis;

int FleetTenants() {
  return bench::EnvInt("JARVIS_BENCH_FLEET_TENANTS", 32);
}

runtime::FleetConfig MakeConfig(std::size_t tenants, std::size_t jobs) {
  runtime::FleetConfig config;
  config.tenants = tenants;
  config.jobs = jobs;
  config.fleet_seed = 42;
  // Small per-tenant pipelines: the bench measures scheduling throughput,
  // not policy quality, so each tenant should be cheap enough that the
  // jobs sweep finishes in CI time.
  config.tenant_config.restarts = 1;
  config.tenant_config.trainer.episodes =
      bench::EnvInt("JARVIS_BENCH_FLEET_EPISODES", 2);
  config.tenant_config.trainer.demonstration_episodes = 1;
  config.tenant_config.dqn.hidden_units = {8, 8};
  config.tenant_config.dqn.batch_size = 16;
  config.tenant_config.spl.ann.epochs = 3;
  return config;
}

runtime::SimulatedWorkloadOptions MakeWorkload() {
  runtime::SimulatedWorkloadOptions options;
  options.learning_days = bench::EnvInt("JARVIS_BENCH_FLEET_DAYS", 2);
  options.benign_anomaly_samples = 200;
  return options;
}

}  // namespace

int main() {
  bench::PrintHeader("Fleet runtime scaling: tenants/sec vs worker count",
                     "fleet runtime (DESIGN.md §10); not a paper figure");

  const auto tenants = static_cast<std::size_t>(FleetTenants());
  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  const auto factory = runtime::SimulatedWorkloadFactory(home, MakeWorkload());

  std::printf("%-6s %10s %14s %9s   parity vs jobs=1\n", "jobs", "seconds",
              "tenants/sec", "speedup");

  util::JsonArray levels;
  double base_seconds = 0.0;
  double base_energy = 0.0;
  bool parity = true;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    runtime::Fleet fleet(home, MakeConfig(tenants, jobs));
    const auto start = std::chrono::steady_clock::now();
    const runtime::FleetReport report = fleet.Run(factory);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    if (jobs == 1) {
      base_seconds = seconds;
      base_energy = report.total_energy_kwh;
    }
    // Exact-equality parity check: worker count must not perturb results.
    const bool level_parity = report.total_energy_kwh == base_energy &&
                              report.completed == tenants;
    parity = parity && level_parity;

    const double rate =
        seconds > 0.0 ? static_cast<double>(tenants) / seconds : 0.0;
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    std::printf("%-6zu %10.2f %14.1f %8.2fx   %s\n", jobs, seconds, rate,
                speedup, level_parity ? "ok" : "MISMATCH");

    util::JsonObject level;
    level["jobs"] = static_cast<std::int64_t>(jobs);
    level["seconds"] = seconds;
    level["tenants_per_sec"] = rate;
    level["speedup_vs_jobs1"] = speedup;
    level["completed"] = static_cast<std::int64_t>(report.completed);
    level["quarantined"] = static_cast<std::int64_t>(report.quarantined);
    levels.push_back(util::JsonValue(std::move(level)));
  }

  util::JsonObject doc;
  doc["bench"] = "fleet";
  doc["tenants"] = static_cast<std::int64_t>(tenants);
  doc["parity"] = parity;
  doc["levels"] = util::JsonValue(std::move(levels));
  std::ofstream out("BENCH_fleet.json");
  out << util::JsonValue(std::move(doc)).Dump(2) << "\n";
  std::printf("wrote BENCH_fleet.json (%zu tenants, parity %s)\n", tenants,
              parity ? "ok" : "MISMATCH");
  return parity ? 0 : 1;
}
