// Shared driver for the three functionality sweeps (Figs. 6-8): for each
// focused weight f in [0.1, 0.9], compare normal user behavior against the
// Jarvis-optimized policy on random days of the Smart*-style dataset.
#pragma once

#include <cstdio>

#include "bench_common.h"
#include "core/benefit_space.h"
#include "util/strings.h"

namespace jarvis::bench {

inline int RunFunctionalitySweep(const char* focus, const char* metric_name,
                                 const char* paper_ref) {
  PrintHeader(util::Format("Functionality sweep: %s", focus).c_str(),
              paper_ref);

  Harness harness;
  core::SweepConfig config;
  config.focus = focus;
  config.f_values = {0.1, 0.3, 0.5, 0.7, 0.9};
  config.days = SweepDays();

  const auto points = core::FunctionalitySweep(
      *harness.jarvis, harness.testbed.home_b_data(), config);

  std::printf("\nDays per point: %d (paper: 30 random days)\n", config.days);
  std::printf("%-6s %16s %16s %14s %11s\n", "f_j",
              util::Format("normal %s", metric_name).c_str(),
              util::Format("jarvis %s", metric_name).c_str(), "advantage",
              "violations");
  int wins = 0;
  std::size_t violations = 0;
  for (const auto& point : points) {
    const double advantage = point.normal_mean - point.jarvis_mean;
    wins += advantage > 0.0 ? 1 : 0;
    violations += point.violations;
    std::printf("%-6.1f %10.3f+-%-5.2f %10.3f+-%-5.2f %14.3f %11zu\n",
                point.f_value, point.normal_mean, point.normal_stddev,
                point.jarvis_mean, point.jarvis_stddev, advantage,
                point.violations);
  }
  std::printf("\nSafe benefit space: Jarvis beats normal behavior at %d/%zu "
              "weight settings with %zu safety violations (paper: advantage "
              "across f_j in [0.1, 0.9], zero violations by construction).\n",
              wins, points.size(), violations);
  return 0;
}

}  // namespace jarvis::bench
