// Microbenchmarks (google-benchmark) for the hot paths: FSM transition
// application, state encoding, SPL classification, ANN inference, DQN
// forward/replay, and a full simulated environment step. These quantify
// the per-minute cost of running Jarvis online in a smart home (the paper
// assumes sub-minute demand response, Section V-A-2).
#include <benchmark/benchmark.h>

#include "fsm/device_library.h"
#include "rl/dqn_agent.h"
#include "rl/iot_env.h"
#include "sim/testbed.h"
#include "spl/learner.h"

namespace {

using namespace jarvis;

const fsm::EnvironmentFsm& Home() {
  static const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  return home;
}

struct LearnedFixture {
  LearnedFixture() : testbed(MakeConfig()), learner(testbed.home_a(), {}) {
    learner.Learn(testbed.HomeALearningEpisodes(), testbed.BuildTrainingSet());
  }
  static sim::TestbedConfig MakeConfig() {
    sim::TestbedConfig config;
    config.benign_anomaly_samples = 2000;
    return config;
  }
  sim::Testbed testbed;
  spl::SafetyPolicyLearner learner;
};

LearnedFixture& Learned() {
  static LearnedFixture fixture;
  return fixture;
}

void BM_FsmApply(benchmark::State& state) {
  const auto& home = Home();
  fsm::StateVector current(home.device_count(), 0);
  fsm::ActionVector action(home.device_count(), fsm::kNoAction);
  action[2] = 1;
  action[3] = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(home.Apply(current, action));
  }
}
BENCHMARK(BM_FsmApply);

void BM_StateEncode(benchmark::State& state) {
  const auto& codec = Home().codec();
  fsm::StateVector current(Home().device_count(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(current));
  }
}
BENCHMARK(BM_StateEncode);

void BM_StateOneHot(benchmark::State& state) {
  const auto& codec = Home().codec();
  fsm::StateVector current(Home().device_count(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.OneHot(current));
  }
}
BENCHMARK(BM_StateOneHot);

void BM_SplClassifyMini(benchmark::State& state) {
  auto& fixture = Learned();
  fsm::StateVector current(fixture.testbed.home_a().device_count(), 0);
  const fsm::MiniAction mini{2, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.learner.ClassifyMini(current, mini, 600));
  }
}
BENCHMARK(BM_SplClassifyMini);

void BM_AnnBenignScore(benchmark::State& state) {
  auto& fixture = Learned();
  fsm::StateVector current(fixture.testbed.home_a().device_count(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.learner.filter().BenignScore(current, {2, 1}, 600));
  }
}
BENCHMARK(BM_AnnBenignScore);

void BM_DqnSelectAction(benchmark::State& state) {
  const auto& home = Home();
  rl::DqnConfig config;
  config.epsilon = 0.0;
  rl::DqnAgent agent(44, home.codec(), config);
  const std::vector<double> features(44, 0.3);
  const std::vector<bool> mask(home.codec().mini_action_count(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.SelectAction(features, mask, true));
  }
}
BENCHMARK(BM_DqnSelectAction);

void BM_DqnReplayBatch(benchmark::State& state) {
  const auto& home = Home();
  rl::DqnConfig config;
  config.batch_size = 32;
  rl::DqnAgent agent(44, home.codec(), config);
  for (int i = 0; i < 256; ++i) {
    rl::Experience experience;
    experience.features.assign(44, 0.1 * (i % 10));
    experience.taken_slots = {static_cast<std::size_t>(
        i % home.codec().mini_action_count())};
    experience.reward = 0.5;
    experience.next_features.assign(44, 0.2);
    experience.next_mask.assign(home.codec().mini_action_count(), true);
    agent.Remember(std::move(experience));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Replay());
  }
}
BENCHMARK(BM_DqnReplayBatch);

void BM_EnvFullEpisode(benchmark::State& state) {
  auto& fixture = Learned();
  const sim::DayTrace day = fixture.testbed.home_b_data().Day(7);
  rl::IoTEnvConfig config;
  config.decision_interval_minutes = 15;
  rl::IoTEnv env(fixture.testbed.home_a(), day, sim::ThermalConfig{},
                 &fixture.learner, config);
  const fsm::ActionVector noop(fixture.testbed.home_a().device_count(),
                               fsm::kNoAction);
  for (auto _ : state) {
    env.Reset();
    while (!env.done()) env.Step(noop);
    benchmark::DoNotOptimize(env.cumulative_reward());
  }
}
BENCHMARK(BM_EnvFullEpisode)->Unit(benchmark::kMillisecond);

void BM_ResidentSimulateDay(benchmark::State& state) {
  const auto& home = Home();
  sim::ResidentSimulator resident(home, sim::ThermalConfig{}, 5);
  const sim::ScenarioGenerator generator({}, {}, {}, 5);
  const auto scenario = generator.Generate(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resident.SimulateDay(scenario, resident.OvernightState(), 21.0));
  }
}
BENCHMARK(BM_ResidentSimulateDay)->Unit(benchmark::kMillisecond);

}  // namespace
