// Table I: the smart-home environment FSM — device states, actions, and
// physical annotations for the example home, plus the six additional
// devices of the 11-device evaluation home.
#include <cstdio>

#include "bench_common.h"
#include "fsm/device_library.h"
#include "util/strings.h"

int main() {
  using namespace jarvis;
  bench::PrintHeader("Table I: Smart Home Environment FSM",
                     "Table I (Section V-B)");

  auto print_home = [](const std::vector<fsm::Device>& devices,
                       const char* title) {
    std::printf("\n%s\n", title);
    std::printf("%-4s %-14s %-34s %s\n", "Di", "Device", "States (p_i_j)",
                "Actions (a_i_j)");
    for (const auto& device : devices) {
      std::string states, actions;
      for (fsm::StateIndex s = 0; s < device.state_count(); ++s) {
        if (s) states += ", ";
        states += device.state_name(s);
      }
      for (fsm::ActionIndex a = 0; a < device.action_count(); ++a) {
        if (a) actions += ", ";
        actions += device.action_name(a);
      }
      std::printf("D%-3d %-14s %-34s %s\n", device.id(),
                  device.label().c_str(), states.c_str(), actions.c_str());
    }
  };

  print_home(fsm::ExampleHomeDevices(),
             "Example home (Table I; sensors gain an explicit 'off' state "
             "so disable attacks are expressible, see DESIGN.md):");
  print_home(fsm::FullHomeDevices(),
             "Full 11-device evaluation home (k = 11, Section VI-D):");

  const fsm::EnvironmentFsm home = fsm::BuildFullHome();
  std::printf("\nJoint state space: %llu states; mini-action head: %zu slots "
              "(vs %llu joint actions)\n",
              static_cast<unsigned long long>(home.codec().state_space_size()),
              home.codec().mini_action_count(),
              static_cast<unsigned long long>([&] {
                unsigned long long product = 1;
                for (const auto& device : home.devices()) {
                  product *= static_cast<unsigned long long>(
                      device.action_count() + 1);
                }
                return product;
              }()));
  return 0;
}
