// Microbenchmarks (google-benchmark) for the fault-injection subsystem:
// FaultInjector::Apply throughput over a day-scale event stream under
// schedules of increasing complexity, and the FaultyBus live-publish path.
// These bound the overhead of running chaos sweeps in CI and of wrapping a
// production bus in the injector.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "events/bus.h"
#include "faults/injector.h"
#include "faults/schedule.h"
#include "util/rng.h"

namespace {

using namespace jarvis;

// A mixed day-scale stream: alternating sensor reports and commands across
// a handful of devices, one event per minute.
std::vector<events::Event> MakeStream(int count) {
  static const std::vector<std::string> kDevices = {
      "light", "temp_sensor", "thermostat", "lock", "door_sensor"};
  util::Rng rng(42);
  std::vector<events::Event> events;
  events.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    events::Event event;
    event.date = util::SimTime(i);
    event.device_label = kDevices[rng.NextIndex(kDevices.size())];
    event.capability = "sensor";
    event.attribute = "state";
    event.attribute_value = rng.NextBool(0.5) ? "on" : "off";
    if (rng.NextBool(0.3)) event.command = "power_on";
    events.push_back(std::move(event));
  }
  return events;
}

faults::FaultSpec Spec(faults::FaultKind kind, double rate) {
  faults::FaultSpec spec;
  spec.kind = kind;
  spec.rate = rate;
  return spec;
}

faults::FaultSchedule FullSchedule() {
  faults::FaultSchedule schedule;
  schedule.seed = 7;
  schedule.specs.push_back(Spec(faults::FaultKind::kDrop, 0.05));
  schedule.specs.push_back(Spec(faults::FaultKind::kDuplicate, 0.05));
  schedule.specs.push_back(Spec(faults::FaultKind::kDelay, 0.1));
  schedule.specs.push_back(Spec(faults::FaultKind::kReorder, 0.05));
  schedule.specs.push_back(Spec(faults::FaultKind::kCorruptField, 0.02));
  schedule.specs.push_back(Spec(faults::FaultKind::kDeviceFlap, 0.1));
  schedule.specs.push_back(Spec(faults::FaultKind::kStuckSensor, 0.1));
  return schedule;
}

void BM_InjectorApplyEmptySchedule(benchmark::State& state) {
  const auto events = MakeStream(static_cast<int>(state.range(0)));
  faults::FaultInjector injector({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.Apply(events));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_InjectorApplyEmptySchedule)->Arg(1440)->Arg(14400);

void BM_InjectorApplyDropOnly(benchmark::State& state) {
  const auto events = MakeStream(static_cast<int>(state.range(0)));
  faults::FaultSchedule schedule;
  schedule.specs.push_back(Spec(faults::FaultKind::kDrop, 0.1));
  faults::FaultInjector injector(schedule);
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.Apply(events));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_InjectorApplyDropOnly)->Arg(1440)->Arg(14400);

void BM_InjectorApplyFullSchedule(benchmark::State& state) {
  const auto events = MakeStream(static_cast<int>(state.range(0)));
  faults::FaultInjector injector(FullSchedule());
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.Apply(events));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_InjectorApplyFullSchedule)->Arg(1440)->Arg(14400);

void BM_FaultyBusPublish(benchmark::State& state) {
  const auto events = MakeStream(1440);
  events::EventBus bus;
  std::size_t delivered = 0;
  bus.Subscribe("", "", [&](const events::Event&) { ++delivered; });
  faults::FaultyBus faulty(bus, FullSchedule());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(faulty.Publish(events[i]));
    i = (i + 1) % events.size();
    if (i == 0) faulty.FlushAll();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultyBusPublish);

}  // namespace

BENCHMARK_MAIN();
