// Table III: action quality under unconstrained vs constrained exploration
// for eight trigger contexts across the three functionalities. For each
// row we train one unconstrained and one constrained agent under the
// functionality's weights, then report each agent's chosen action in the
// trigger context and whether that action violates the learnt policies.
#include <cstdio>

#include "bench_common.h"
#include "rl/trainer.h"

int main() {
  using namespace jarvis;
  bench::PrintHeader(
      "Table III: unconstrained vs constrained action quality",
      "Table III (Section V-B-2)");

  bench::Harness harness;
  const auto& home = harness.testbed.home_a();
  const auto& learner = harness.jarvis->learner();
  const sim::DayTrace day = harness.testbed.home_b_data().Day(42);

  struct Row {
    const char* functionality;
    const char* focus;
    const char* trigger_description;
    fsm::StateVector state;
    int minute;
  };

  fsm::StateVector base(home.device_count(), 0);
  auto with = [&](std::initializer_list<std::pair<int, const char*>> over) {
    fsm::StateVector state = base;
    for (const auto& [device, name] : over) {
      state[static_cast<std::size_t>(device)] =
          *home.device(device).FindState(name);
    }
    return state;
  };

  const std::vector<Row> rows = {
      {"Energy Conservation", "energy",
       "user leaves the house and locks the door",
       with({{2, "on"}, {3, "heat"}, {7, "on"}}), 8 * 60 + 5},
      {"Energy Conservation", "energy", "optimal temperature is reached",
       with({{0, "unlocked"}, {3, "heat"}, {4, "optimal"}}), 20 * 60},
      {"Electricity Cost Minimization", "cost",
       "temperature drops below optimum, user at home",
       with({{0, "unlocked"}, {4, "below_optimal"}}), 18 * 60},
      {"Electricity Cost Minimization", "cost",
       "temperature goes above optimum, user at home",
       with({{0, "unlocked"}, {4, "above_optimal"}, {3, "heat"}}), 18 * 60},
      {"Electricity Cost Minimization", "cost",
       "optimal temperature is reached",
       with({{0, "unlocked"}, {3, "cool"}, {4, "optimal"}}), 19 * 60},
      {"Temperature Optimization", "temp",
       "temperature drops below optimum",
       with({{0, "unlocked"}, {4, "below_optimal"}}), 19 * 60},
      {"Temperature Optimization", "temp",
       "temperature goes above optimum",
       with({{0, "unlocked"}, {4, "above_optimal"}}), 13 * 60},
      {"Temperature Optimization", "temp", "optimal temperature is reached",
       with({{0, "unlocked"}, {3, "heat"}, {4, "optimal"}}), 21 * 60},
  };

  std::printf("\n%-30s %-44s %-28s %-28s %s\n", "Function", "Trigger",
              "High-quality action", "High-quality safe action",
              "Unconstrained violates?");

  int unconstrained_violations = 0;
  std::string last_focus;
  std::unique_ptr<rl::IoTEnv> free_env, safe_env;
  std::unique_ptr<rl::DqnAgent> free_agent, safe_agent;

  for (const auto& row : rows) {
    if (row.focus != last_focus) {
      last_focus = row.focus;
      rl::IoTEnvConfig env_config;
      env_config.weights = rl::RewardWeights::Sweep(row.focus, 0.8);
      env_config.constrained = false;
      free_env = std::make_unique<rl::IoTEnv>(home, day, sim::ThermalConfig{},
                                              &learner, env_config);
      env_config.constrained = true;
      safe_env = std::make_unique<rl::IoTEnv>(home, day, sim::ThermalConfig{},
                                              &learner, env_config);
      rl::DqnConfig dqn;
      dqn.seed = 3;
      free_agent = std::make_unique<rl::DqnAgent>(free_env->feature_width(),
                                                  home.codec(), dqn);
      safe_agent = std::make_unique<rl::DqnAgent>(safe_env->feature_width(),
                                                  home.codec(), dqn);
      rl::TrainerConfig trainer;
      trainer.episodes = bench::TrainEpisodes();
      rl::Train(*free_env, *free_agent, trainer);
      rl::Train(*safe_env, *safe_agent, trainer);
    }

    const auto features = free_env->FeaturesFor(row.state, row.minute);
    const auto free_mask = free_env->SafeSlotMaskFor(row.state, row.minute);
    const auto safe_mask = safe_env->SafeSlotMaskFor(row.state, row.minute);
    const auto free_action =
        free_agent->SelectAction(features, free_mask, /*greedy=*/true);
    const auto safe_action =
        safe_agent->SelectAction(features, safe_mask, /*greedy=*/true);

    const auto free_verdict =
        learner.Classify(row.state, free_action, row.minute);
    if (free_verdict == spl::Verdict::kViolation) ++unconstrained_violations;

    std::printf("%-30s %-44s %-28s %-28s %s\n", row.functionality,
                row.trigger_description,
                home.codec().ActionToString(home.devices(), free_action)
                    .substr(0, 27)
                    .c_str(),
                home.codec().ActionToString(home.devices(), safe_action)
                    .substr(0, 27)
                    .c_str(),
                free_verdict == spl::Verdict::kViolation ? "yes" : "no");
  }

  std::printf("\nConstrained actions are whitelisted by construction; the "
              "unconstrained optimizer picked flagged actions in %d/8 "
              "contexts (paper: unconstrained optimization leads to unsafe "
              "situations).\n",
              unconstrained_violations);
  return 0;
}
